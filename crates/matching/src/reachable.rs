//! Matching-size maximization with reachable radii (the case study,
//! Sec. IV-C).
//!
//! In this variant each worker has a *reachable distance*: an assignment
//! only succeeds if the true worker–task distance is within the radius
//! (incomplete bipartite graph). Under privacy, the server sees only
//! obfuscated locations, so both algorithms reason about reachability
//! indirectly:
//!
//! * [`ProbMatcher`] — the Prob baseline (To et al., ICDE'18 style): assign
//!   the available worker with the highest probability of being truly
//!   reachable given the observed Laplace-noised separation, skipping the
//!   task if no worker clears an acceptance threshold.
//! * [`TbfReachMatcher`] — the paper's TBF adapted to the case study: "for
//!   each task find the nearest reachable worker on the HST". The paper does
//!   not pin how reachability is judged on obfuscated tree nodes; judging it
//!   by raw tree distance is hopeless because HST distances over-estimate
//!   Euclidean ones by `O(log N)` with high variance. Instead, every
//!   (possibly fake) leaf resolves to a *representative* predefined point
//!   (`pombm_hst::Hst::representative`), reachability is checked between
//!   representative positions, and the nearest eligible worker *on the
//!   tree* wins — see DESIGN.md.

use pombm_geom::Point;
use pombm_hst::{CodeContext, LeafCode};
use pombm_privacy::reach::ReachProbability;
use pombm_privacy::ReachEstimator;

/// Prob: probabilistic reachability assignment over Laplace-obfuscated
/// coordinates.
///
/// Generic over the probability provider `P`: use
/// [`pombm_privacy::ReachEstimator`] directly for small instances or a
/// [`pombm_privacy::reach::ReachTable`] when the `O(n·m)` query volume of a
/// full experiment makes per-query Monte-Carlo too slow.
#[derive(Debug, Clone)]
pub struct ProbMatcher<P = ReachEstimator> {
    workers: Vec<Point>,
    radii: Vec<f64>,
    available: Vec<bool>,
    remaining: usize,
    estimator: P,
    threshold: f64,
}

/// Default acceptance threshold for [`ProbMatcher`]: assign only when the
/// worker is more likely reachable than not.
pub const DEFAULT_THRESHOLD: f64 = 0.5;

impl<P: ReachProbability> ProbMatcher<P> {
    /// Creates the matcher over obfuscated worker locations and their
    /// (public) reachable radii.
    ///
    /// # Panics
    ///
    /// Panics if `workers` and `radii` lengths differ or the threshold is
    /// outside `[0, 1]`.
    pub fn new(workers: Vec<Point>, radii: Vec<f64>, estimator: P, threshold: f64) -> Self {
        assert_eq!(workers.len(), radii.len(), "one radius per worker");
        assert!((0.0..=1.0).contains(&threshold), "threshold in [0,1]");
        let n = workers.len();
        ProbMatcher {
            workers,
            radii,
            available: vec![true; n],
            remaining: n,
            estimator,
            threshold,
        }
    }

    /// Number of still-unassigned workers.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Attempts to assign the task at obfuscated location `t`: picks the
    /// available worker maximizing the reachability probability, provided it
    /// reaches the threshold. Ties break to the lower worker index.
    pub fn assign(&mut self, t: &Point) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, w) in self.workers.iter().enumerate() {
            if !self.available[i] {
                continue;
            }
            let p = self.estimator.probability(w.dist(t), self.radii[i]);
            if best.is_none_or(|(_, bp)| p > bp) {
                best = Some((i, p));
            }
        }
        let (i, p) = best?;
        if p < self.threshold {
            return None;
        }
        self.available[i] = false;
        self.remaining -= 1;
        Some(i)
    }
}

/// TBF for the case study: nearest reachable worker on the HST, with
/// reachability judged between representative positions of the obfuscated
/// leaves.
#[derive(Debug, Clone)]
pub struct TbfReachMatcher {
    ctx: CodeContext,
    workers: Vec<LeafCode>,
    /// Representative Euclidean position of each worker's obfuscated leaf.
    worker_pos: Vec<Point>,
    radii: Vec<f64>,
    available: Vec<bool>,
    remaining: usize,
    /// Additive slack on the radius check, absorbing the predefined-grid
    /// snapping error (half a cell diagonal per endpoint).
    radius_slack: f64,
}

impl TbfReachMatcher {
    /// Creates the matcher over obfuscated worker leaves, their
    /// representative positions, and radii.
    ///
    /// `radius_slack` is added to every radius during the eligibility check;
    /// pass the grid cell diagonal to compensate the two snapping errors.
    pub fn new(
        ctx: CodeContext,
        workers: Vec<LeafCode>,
        worker_pos: Vec<Point>,
        radii: Vec<f64>,
        radius_slack: f64,
    ) -> Self {
        assert_eq!(workers.len(), radii.len(), "one radius per worker");
        assert_eq!(workers.len(), worker_pos.len(), "one position per worker");
        assert!(radius_slack >= 0.0, "slack must be non-negative");
        let n = workers.len();
        TbfReachMatcher {
            ctx,
            workers,
            worker_pos,
            radii,
            available: vec![true; n],
            remaining: n,
            radius_slack,
        }
    }

    /// Number of still-unassigned workers.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Attempts to assign the task at obfuscated leaf `t` (with
    /// representative position `t_pos`) to the tree-nearest available worker
    /// whose radius (plus slack) covers the representative separation.
    pub fn assign(&mut self, t: LeafCode, t_pos: &Point) -> Option<usize> {
        let mut best: Option<(usize, u64, u64)> = None;
        for (i, &w) in self.workers.iter().enumerate() {
            if !self.available[i] {
                continue;
            }
            if self.worker_pos[i].dist(t_pos) > self.radii[i] + self.radius_slack {
                continue;
            }
            let d = self.ctx.tree_dist_units(t, w);
            if best.is_none_or(|(_, bd, bc)| (d, w.0) < (bd, bc)) {
                best = Some((i, d, w.0));
            }
        }
        let (i, _, _) = best?;
        self.available[i] = false;
        self.remaining -= 1;
        Some(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pombm_privacy::Epsilon;

    fn estimator() -> ReachEstimator {
        ReachEstimator::new(Epsilon::new(0.5), 4000, 3)
    }

    #[test]
    fn prob_prefers_closer_worker() {
        let mut m = ProbMatcher::new(
            vec![Point::new(0.0, 0.0), Point::new(50.0, 0.0)],
            vec![10.0, 10.0],
            estimator(),
            0.1,
        );
        assert_eq!(m.assign(&Point::new(1.0, 0.0)), Some(0));
    }

    #[test]
    fn prob_skips_hopeless_tasks() {
        let mut m = ProbMatcher::new(
            vec![Point::new(0.0, 0.0)],
            vec![1.0],
            estimator(),
            DEFAULT_THRESHOLD,
        );
        // Separation 500 with radius 1: probability ~0 < threshold.
        assert_eq!(m.assign(&Point::new(500.0, 0.0)), None);
        assert_eq!(m.remaining(), 1, "worker is preserved for later tasks");
        // A genuinely close task still succeeds afterwards... with sep 0 and
        // radius 1 at ε=0.5 the reach probability is small too, so use a
        // wide-radius worker for the positive case below.
        let mut m2 = ProbMatcher::new(
            vec![Point::new(0.0, 0.0)],
            vec![50.0],
            estimator(),
            DEFAULT_THRESHOLD,
        );
        assert_eq!(m2.assign(&Point::new(1.0, 0.0)), Some(0));
    }

    #[test]
    fn prob_exhausts_workers() {
        let mut m = ProbMatcher::new(
            vec![Point::new(0.0, 0.0), Point::new(2.0, 0.0)],
            vec![100.0, 100.0],
            estimator(),
            0.5,
        );
        assert!(m.assign(&Point::new(0.0, 0.0)).is_some());
        assert!(m.assign(&Point::new(0.0, 0.0)).is_some());
        assert_eq!(m.assign(&Point::new(0.0, 0.0)), None);
    }

    #[test]
    fn tbf_reach_respects_radius() {
        let ctx = CodeContext::new(2, 4);
        // Worker positioned 30 units away with radius 10: ineligible.
        let mut m = TbfReachMatcher::new(
            ctx,
            vec![LeafCode(8)],
            vec![Point::new(30.0, 0.0)],
            vec![10.0],
            0.0,
        );
        assert_eq!(m.assign(LeafCode(0), &Point::new(0.0, 0.0)), None);
        assert_eq!(m.remaining(), 1, "worker preserved for later tasks");
        // A task next to the worker succeeds.
        assert_eq!(m.assign(LeafCode(9), &Point::new(28.0, 0.0)), Some(0));
    }

    #[test]
    fn tbf_reach_picks_tree_nearest_among_eligible() {
        let ctx = CodeContext::new(2, 4);
        // Both workers eligible (generous radii); leaf 1 is 4 tree units
        // from the task at leaf 0, leaf 2 is 12 units.
        let mut m = TbfReachMatcher::new(
            ctx,
            vec![LeafCode(2), LeafCode(1)],
            vec![Point::new(1.0, 0.0), Point::new(2.0, 0.0)],
            vec![100.0, 100.0],
            0.0,
        );
        assert_eq!(m.assign(LeafCode(0), &Point::new(0.0, 0.0)), Some(1));
        assert_eq!(m.remaining(), 1);
    }

    #[test]
    fn tbf_slack_expands_eligibility() {
        let ctx = CodeContext::new(2, 4);
        let task_pos = Point::new(0.0, 0.0);
        let worker_pos = Point::new(12.0, 0.0);
        let mut strict =
            TbfReachMatcher::new(ctx, vec![LeafCode(8)], vec![worker_pos], vec![10.0], 0.0);
        assert_eq!(strict.assign(LeafCode(0), &task_pos), None, "12 > 10");
        let mut slacked =
            TbfReachMatcher::new(ctx, vec![LeafCode(8)], vec![worker_pos], vec![10.0], 3.0);
        assert_eq!(slacked.assign(LeafCode(0), &task_pos), Some(0), "12 <= 13");
    }

    #[test]
    #[should_panic(expected = "one radius per worker")]
    fn mismatched_radii_rejected() {
        let _ = TbfReachMatcher::new(
            CodeContext::new(2, 3),
            vec![LeafCode(0)],
            vec![Point::ORIGIN],
            vec![],
            0.0,
        );
    }
}
