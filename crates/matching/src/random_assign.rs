//! Uniform random assignment: the sanity floor for every comparison.
//!
//! Assigning each arriving task to a worker drawn uniformly from the
//! available pool ignores locations entirely. Any privacy mechanism +
//! matcher combination must beat this floor by a wide margin for its
//! distance numbers to mean anything — the experiments harness uses it to
//! calibrate how much headroom the sweeps actually have.

use rand::Rng;

/// Online matcher assigning a uniformly random available worker, blind to
/// all location information.
#[derive(Debug, Clone)]
pub struct RandomAssign {
    /// Still-available worker indices; order is irrelevant.
    pool: Vec<usize>,
}

impl RandomAssign {
    /// Creates a matcher over `num_workers` workers.
    pub fn new(num_workers: usize) -> Self {
        RandomAssign {
            pool: (0..num_workers).collect(),
        }
    }

    /// Number of still-unassigned workers.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.pool.len()
    }

    /// Assigns a uniformly random available worker; `None` when exhausted.
    pub fn assign<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<usize> {
        if self.pool.is_empty() {
            return None;
        }
        let i = rng.gen_range(0..self.pool.len());
        Some(self.pool.swap_remove(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pombm_geom::seeded_rng;

    #[test]
    fn assigns_each_worker_exactly_once() {
        let mut m = RandomAssign::new(25);
        let mut rng = seeded_rng(0, 0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..25 {
            let w = m.assign(&mut rng).unwrap();
            assert!(seen.insert(w));
            assert!(w < 25);
        }
        assert_eq!(m.assign(&mut rng), None);
        assert_eq!(m.remaining(), 0);
    }

    #[test]
    fn first_pick_is_roughly_uniform() {
        let trials = 6000;
        let mut counts = [0usize; 4];
        for seed in 0..trials {
            let mut m = RandomAssign::new(4);
            let mut rng = seeded_rng(seed, 1);
            counts[m.assign(&mut rng).unwrap()] += 1;
        }
        for (w, &c) in counts.iter().enumerate() {
            let frac = c as f64 / trials as f64;
            assert!(
                (frac - 0.25).abs() < 0.03,
                "worker {w} picked {frac}, expected ~0.25"
            );
        }
    }

    #[test]
    fn empty_pool_returns_none() {
        let mut m = RandomAssign::new(0);
        let mut rng = seeded_rng(1, 0);
        assert_eq!(m.assign(&mut rng), None);
    }
}
