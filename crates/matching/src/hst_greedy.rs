//! HST-greedy online matching (Alg. 4 of the paper).

use pombm_hst::{CodeContext, LeafCode, SubtreeCounter};
use serde::{Deserialize, Serialize};

/// Which nearest-leaf engine an [`HstGreedy`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum HstGreedyEngine {
    /// The paper's linear scan over all available workers: `O(n·D)` per
    /// task (Alg. 4 as written; total `O(D·n·m)`).
    #[default]
    Scan,
    /// Subtree-count index: `O(c·D)` per task. Produces a matching with the
    /// same per-task tree distances (tie-breaking may select a different
    /// equidistant worker).
    Indexed,
}

/// Online greedy matching on the HST: each arriving task is assigned to the
/// available worker whose obfuscated leaf is nearest in the tree metric.
///
/// Used by both Lap-HG (Laplace noise, then snap to the tree) and the
/// paper's TBF (HST mechanism output directly). Workers and tasks are
/// identified by leaf codes of the same complete tree; note obfuscated
/// leaves may be *fake* leaves, which is fine — the tree metric is defined
/// on all codes.
#[derive(Debug, Clone)]
pub struct HstGreedy {
    ctx: CodeContext,
    engine: HstGreedyEngine,
    workers: Vec<LeafCode>,
    available: Vec<bool>,
    remaining: usize,
    /// Indexed engine state: occupancy counter plus per-leaf stacks of
    /// worker ids so a found leaf resolves to a concrete worker. A
    /// `BTreeMap` keyed by leaf code: the stacks are built by iterating
    /// this map, and hash order must never reach assignment order.
    counter: Option<SubtreeCounter>,
    residents: std::collections::BTreeMap<LeafCode, Vec<usize>>,
}

impl HstGreedy {
    /// Creates a matcher over the reported (obfuscated) worker leaves.
    pub fn new(ctx: CodeContext, workers: Vec<LeafCode>, engine: HstGreedyEngine) -> Self {
        let n = workers.len();
        let (counter, residents) = match engine {
            HstGreedyEngine::Scan => (None, std::collections::BTreeMap::new()),
            HstGreedyEngine::Indexed => {
                let mut counter = SubtreeCounter::new(ctx);
                let mut residents: std::collections::BTreeMap<LeafCode, Vec<usize>> =
                    std::collections::BTreeMap::new();
                for (i, &w) in workers.iter().enumerate() {
                    counter.insert(w);
                    residents.entry(w).or_default().push(i);
                }
                // Lower ids pop first to mirror scan tie-breaking within a
                // leaf.
                for stack in residents.values_mut() {
                    stack.reverse();
                }
                (Some(counter), residents)
            }
        };
        HstGreedy {
            ctx,
            engine,
            workers,
            available: vec![true; n],
            remaining: n,
            counter,
            residents,
        }
    }

    /// The engine in use.
    pub fn engine(&self) -> HstGreedyEngine {
        self.engine
    }

    /// Number of still-unassigned workers.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Assigns the available worker nearest on the tree to the task leaf
    /// `t`, removing it from the pool. Returns `None` when all workers are
    /// taken.
    pub fn assign(&mut self, t: LeafCode) -> Option<usize> {
        if self.remaining == 0 {
            return None;
        }
        let chosen = match self.engine {
            HstGreedyEngine::Scan => self.scan(t)?,
            HstGreedyEngine::Indexed => {
                let counter = self.counter.as_mut().expect("indexed engine has counter");
                let leaf = counter.take_nearest(t)?;
                let stack = self
                    .residents
                    .get_mut(&leaf)
                    .expect("counter and residents agree");
                stack.pop().expect("non-empty stack for counted leaf")
            }
        };
        debug_assert!(self.available[chosen]);
        self.available[chosen] = false;
        self.remaining -= 1;
        Some(chosen)
    }

    fn scan(&self, t: LeafCode) -> Option<usize> {
        // Tie-break by (distance, leaf code, worker index); the indexed
        // engine's downward walk picks the minimal occupied leaf code at the
        // minimal distance, so this makes both engines produce identical
        // matchings.
        let mut best: Option<(usize, u64, u64)> = None;
        for (i, &w) in self.workers.iter().enumerate() {
            if !self.available[i] {
                continue;
            }
            let d = self.ctx.tree_dist_units(t, w);
            if best.is_none_or(|(_, bd, bc)| (d, w.0) < (bd, bc)) {
                best = Some((i, d, w.0));
            }
        }
        best.map(|(i, _, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pombm_geom::seeded_rng;
    use rand::Rng;

    fn ctx() -> CodeContext {
        CodeContext::new(2, 4)
    }

    #[test]
    fn assigns_nearest_on_tree() {
        // Workers at leaves 0, 2, 8 of a depth-4 binary tree. A task at
        // leaf 1 is closest to worker at 0 (LCA level 1).
        let mut g = HstGreedy::new(
            ctx(),
            vec![LeafCode(0), LeafCode(2), LeafCode(8)],
            HstGreedyEngine::Scan,
        );
        assert_eq!(g.assign(LeafCode(1)), Some(0));
        // Next task at leaf 1: nearest remaining is leaf 2 (LCA level 2 = 12
        // units) vs leaf 8 (level 4 = 60 units).
        assert_eq!(g.assign(LeafCode(1)), Some(1));
        assert_eq!(g.assign(LeafCode(1)), Some(2));
        assert_eq!(g.assign(LeafCode(1)), None);
    }

    #[test]
    fn scan_ties_break_to_lower_leaf_code() {
        // Workers at leaves 2 and 3 are equidistant from a task at leaf 0
        // (both LCA level 2); the canonical tie-break picks the lower code.
        let mut g = HstGreedy::new(ctx(), vec![LeafCode(3), LeafCode(2)], HstGreedyEngine::Scan);
        assert_eq!(g.assign(LeafCode(0)), Some(1));
    }

    #[test]
    fn scan_equal_codes_break_to_lower_index() {
        let mut g = HstGreedy::new(ctx(), vec![LeafCode(2), LeafCode(2)], HstGreedyEngine::Scan);
        assert_eq!(g.assign(LeafCode(0)), Some(0));
    }

    #[test]
    fn engines_produce_identical_matchings() {
        // With the canonical (distance, leaf code, worker index) tie-break,
        // the scan and indexed engines agree worker-for-worker on any
        // arrival sequence.
        let c = CodeContext::new(3, 5);
        let mut rng = seeded_rng(17, 0);
        let workers: Vec<LeafCode> = (0..120)
            .map(|_| LeafCode(rng.gen_range(0..c.num_leaves())))
            .collect();
        let tasks: Vec<LeafCode> = (0..120)
            .map(|_| LeafCode(rng.gen_range(0..c.num_leaves())))
            .collect();
        let mut scan = HstGreedy::new(c, workers.clone(), HstGreedyEngine::Scan);
        let mut indexed = HstGreedy::new(c, workers.clone(), HstGreedyEngine::Indexed);
        for &t in &tasks {
            let a = scan.assign(t).unwrap();
            let b = indexed.assign(t).unwrap();
            assert_eq!(a, b, "engines disagree for task {t}");
        }
        assert_eq!(scan.remaining(), 0);
        assert_eq!(indexed.remaining(), 0);
    }

    #[test]
    fn indexed_engine_handles_duplicate_leaves() {
        let c = ctx();
        let mut g = HstGreedy::new(
            c,
            vec![LeafCode(5), LeafCode(5), LeafCode(5)],
            HstGreedyEngine::Indexed,
        );
        let mut seen = std::collections::HashSet::new();
        for _ in 0..3 {
            let w = g.assign(LeafCode(5)).unwrap();
            assert!(seen.insert(w), "worker {w} assigned twice");
        }
        assert_eq!(g.assign(LeafCode(5)), None);
    }

    #[test]
    fn fake_leaf_tasks_and_workers_are_fine() {
        // Codes needn't correspond to real predefined points; any code in
        // the complete tree works.
        let c = ctx();
        let mut g = HstGreedy::new(c, vec![LeafCode(15)], HstGreedyEngine::Scan);
        assert_eq!(g.assign(LeafCode(14)), Some(0));
    }

    #[test]
    fn empty_worker_pool() {
        let mut g = HstGreedy::new(ctx(), vec![], HstGreedyEngine::Indexed);
        assert_eq!(g.assign(LeafCode(0)), None);
        assert_eq!(g.remaining(), 0);
    }
}
