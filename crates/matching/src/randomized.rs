//! Randomized HST greedy: uniform choice among tree-nearest workers.
//!
//! The paper's Alg. 4 breaks ties "arbitrarily"; the analysis it leans on
//! (Meyerson et al., SODA'06 — the paper's ref \[15\]) actually randomizes
//! that choice: the arriving task is assigned to a worker drawn *uniformly
//! at random among all available workers at minimum tree distance*. On an
//! ultrametric every free worker in the minimal occupied subtree outside
//! the already-searched child is exactly equidistant, so the randomization
//! never pays extra tree distance — it only spreads the choice, which is
//! what the competitive analysis needs and what reduces the variance of the
//! *Euclidean* cost of the produced matching.
//!
//! Implementation: the upward walk of [`SubtreeCounter::nearest`] finds the
//! LCA level of the nearest free worker; the downward walk then picks each
//! child with probability proportional to its occupancy count, which makes
//! the final leaf choice uniform over resident workers. `O(c·D)` per task.

use pombm_hst::{CodeContext, LeafCode, SubtreeCounter};
use rand::Rng;
use std::collections::BTreeMap;

/// Online randomized-greedy matcher on the complete HST (see module docs).
#[derive(Debug, Clone)]
pub struct RandomizedGreedy {
    counter: SubtreeCounter,
    /// `BTreeMap` keyed by leaf code — per-leaf stacks stay in a
    /// hash-seed-free order.
    residents: BTreeMap<LeafCode, Vec<usize>>,
    remaining: usize,
}

impl RandomizedGreedy {
    /// Creates a matcher over the reported (obfuscated) worker leaves.
    pub fn new(ctx: CodeContext, workers: Vec<LeafCode>) -> Self {
        let mut counter = SubtreeCounter::new(ctx);
        let mut residents: BTreeMap<LeafCode, Vec<usize>> = BTreeMap::new();
        for (i, &w) in workers.iter().enumerate() {
            counter.insert(w);
            residents.entry(w).or_default().push(i);
        }
        let remaining = workers.len();
        RandomizedGreedy {
            counter,
            residents,
            remaining,
        }
    }

    /// Number of still-unassigned workers.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Assigns a uniformly random tree-nearest available worker to the task
    /// leaf `t`. Returns `None` when all workers are taken.
    pub fn assign<R: Rng + ?Sized>(&mut self, t: LeafCode, rng: &mut R) -> Option<usize> {
        if self.remaining == 0 {
            return None;
        }
        let ctx = self.counter.ctx();
        let leaf = if self.counter.node_count_at(0, t.0) > 0 {
            // Workers at the task's own leaf have distance 0; all of them
            // are interchangeable.
            t
        } else {
            // Upward walk: first level whose subtree holds a worker outside
            // the already-searched child subtree.
            let mut found = None;
            for level in 1..=ctx.depth {
                let anc = ctx.ancestor(t, level);
                let searched = ctx.ancestor(t, level - 1);
                if self.counter.node_count_at(level, anc)
                    > self.counter.node_count_at(level - 1, searched)
                {
                    found = Some(self.descend_random(level, anc, Some(searched), rng));
                    break;
                }
            }
            found.expect("non-empty pool must yield a leaf")
        };
        let removed = self.counter.remove(leaf);
        debug_assert!(removed);
        let stack = self
            .residents
            .get_mut(&leaf)
            .expect("counter and residents agree");
        let w = stack.pop().expect("non-empty stack for counted leaf");
        self.remaining -= 1;
        Some(w)
    }

    /// Walks down from `(level, prefix)`, choosing each child with
    /// probability proportional to its occupancy; `skip` excludes the
    /// already-searched child at the first step. The returned leaf is
    /// uniform over the resident workers of the eligible subtrees.
    fn descend_random<R: Rng + ?Sized>(
        &self,
        mut level: u32,
        mut prefix: u64,
        mut skip: Option<u64>,
        rng: &mut R,
    ) -> LeafCode {
        let ctx = self.counter.ctx();
        let c = ctx.branching as u64;
        while level > 0 {
            let counts: Vec<(u64, u32)> = (0..c)
                .map(|j| prefix * c + j)
                .filter(|&child| Some(child) != skip)
                .map(|child| (child, self.counter.node_count_at(level - 1, child)))
                .filter(|&(_, n)| n > 0)
                .collect();
            let total: u32 = counts.iter().map(|&(_, n)| n).sum();
            debug_assert!(total > 0, "count invariant violated during descent");
            let mut pick = rng.gen_range(0..total);
            let mut chosen = counts[counts.len() - 1].0;
            for &(child, n) in &counts {
                if pick < n {
                    chosen = child;
                    break;
                }
                pick -= n;
            }
            prefix = chosen;
            level -= 1;
            skip = None;
        }
        LeafCode(prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pombm_geom::seeded_rng;

    fn ctx() -> CodeContext {
        CodeContext::new(2, 4)
    }

    #[test]
    fn exact_leaf_hit_is_taken_first() {
        let mut m = RandomizedGreedy::new(ctx(), vec![LeafCode(9), LeafCode(5)]);
        let mut rng = seeded_rng(0, 0);
        assert_eq!(m.assign(LeafCode(5), &mut rng), Some(1));
        assert_eq!(m.assign(LeafCode(5), &mut rng), Some(0));
        assert_eq!(m.assign(LeafCode(5), &mut rng), None);
        assert_eq!(m.remaining(), 0);
    }

    #[test]
    fn every_assignment_is_nearest_in_own_pool() {
        // Whatever the coin flips, each task must be assigned a worker at
        // minimum tree distance among the matcher's *remaining* pool (the
        // greedy invariant; pools diverge across runs once a tie is broken
        // differently, so cross-run distance comparison would be wrong).
        let c = CodeContext::new(3, 4);
        let mut rng = seeded_rng(1, 0);
        use rand::Rng as _;
        for trial in 0..20 {
            let workers: Vec<LeafCode> = (0..40)
                .map(|_| LeafCode(rng.gen_range(0..c.num_leaves())))
                .collect();
            let tasks: Vec<LeafCode> = (0..40)
                .map(|_| LeafCode(rng.gen_range(0..c.num_leaves())))
                .collect();
            let mut ran = RandomizedGreedy::new(c, workers.clone());
            let mut available = vec![true; workers.len()];
            let mut coin = seeded_rng(trial, 7);
            for &t in &tasks {
                let b = ran.assign(t, &mut coin).unwrap();
                assert!(available[b], "trial {trial}: worker {b} reused");
                let best = workers
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| available[i])
                    .map(|(_, &w)| c.tree_dist_units(t, w))
                    .min()
                    .unwrap();
                assert_eq!(
                    c.tree_dist_units(t, workers[b]),
                    best,
                    "trial {trial}: task {t} not assigned a nearest worker"
                );
                available[b] = false;
            }
        }
    }

    #[test]
    fn equidistant_workers_are_chosen_uniformly() {
        // Workers at leaves 2 and 3 are both at LCA level 2 from a task at
        // leaf 0; each must win about half the time.
        let trials = 4000;
        let mut wins_2 = 0;
        for seed in 0..trials {
            let mut m = RandomizedGreedy::new(ctx(), vec![LeafCode(2), LeafCode(3)]);
            let mut rng = seeded_rng(seed, 11);
            if m.assign(LeafCode(0), &mut rng) == Some(0) {
                wins_2 += 1;
            }
        }
        let frac = wins_2 as f64 / trials as f64;
        assert!(
            (frac - 0.5).abs() < 0.04,
            "leaf 2 won {frac} of the time, expected ~0.5"
        );
    }

    #[test]
    fn choice_is_uniform_over_workers_not_leaves() {
        // Two workers at leaf 2, one at leaf 3: leaf 2 must win ~2/3.
        let trials = 4000;
        let mut wins_leaf2 = 0;
        for seed in 0..trials {
            let mut m = RandomizedGreedy::new(ctx(), vec![LeafCode(2), LeafCode(2), LeafCode(3)]);
            let mut rng = seeded_rng(seed, 13);
            let w = m.assign(LeafCode(0), &mut rng).unwrap();
            if w < 2 {
                wins_leaf2 += 1;
            }
        }
        let frac = wins_leaf2 as f64 / trials as f64;
        assert!(
            (frac - 2.0 / 3.0).abs() < 0.04,
            "leaf 2 won {frac} of the time, expected ~0.667"
        );
    }

    #[test]
    fn matches_all_tasks_and_is_a_permutation() {
        let c = CodeContext::new(2, 6);
        let mut rng = seeded_rng(3, 0);
        use rand::Rng as _;
        let workers: Vec<LeafCode> = (0..64)
            .map(|_| LeafCode(rng.gen_range(0..c.num_leaves())))
            .collect();
        let mut m = RandomizedGreedy::new(c, workers);
        let mut seen = std::collections::HashSet::new();
        for i in 0..64u64 {
            let w = m.assign(LeafCode(i % c.num_leaves()), &mut rng).unwrap();
            assert!(seen.insert(w), "worker {w} assigned twice");
        }
        assert_eq!(m.assign(LeafCode(0), &mut rng), None);
    }

    #[test]
    fn empty_pool_returns_none() {
        let mut m = RandomizedGreedy::new(ctx(), vec![]);
        let mut rng = seeded_rng(4, 0);
        assert_eq!(m.assign(LeafCode(0), &mut rng), None);
    }
}
