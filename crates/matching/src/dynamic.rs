//! Dynamic-pool matchers: workers that come and go.
//!
//! The paper's interaction model registers the full worker set upfront; a
//! deployed platform sees drivers start and end shifts continuously. The
//! matchers in this module maintain a *mutable* pool: workers can be added
//! (shift start, with their obfuscated report) and withdrawn (shift end, if
//! not yet assigned) at any point between task arrivals.
//!
//! Three pool families cover the main design axes:
//!
//! * [`DynamicHstGreedy`] — the same `O(c·D)` nearest-free-worker index as
//!   [`crate::HstGreedy`]'s indexed engine, over tree-leaf reports. The
//!   ultrametric walk is oblivious to how the pool got its contents, so
//!   per-assignment behaviour — nearest available worker on the tree,
//!   canonical tie-break — is unchanged from the static matcher.
//! * [`DynamicKdRebuild`] — Euclidean nearest over planar reports via a
//!   k-d tree that is rebuilt lazily after pool mutations (assignments use
//!   the tree's logical deletion, so only shift churn pays the rebuild).
//! * [`DynamicRandomPool`] — uniform draw from the live pool, blind to all
//!   location information: the sanity floor under fleet churn.

use pombm_geom::Point;
use pombm_hst::{CodeContext, LeafCode, SubtreeCounter};
use rand::Rng;
use std::collections::HashMap;

/// Online greedy matcher over a mutable worker pool (see module docs).
///
/// Workers are identified by caller-chosen `u64` ids (unique among
/// *present* workers).
#[derive(Debug, Clone)]
pub struct DynamicHstGreedy {
    counter: SubtreeCounter,
    /// Present, unassigned workers resident at each occupied leaf.
    // lint: allow(DET-HASH) — per-leaf lookups only; draws resolve through
    // the counter walk, never through map iteration.
    residents: HashMap<LeafCode, Vec<u64>>,
    /// Leaf of each present, unassigned worker.
    // lint: allow(DET-HASH) — per-id lookups only; never iterated.
    leaf_of: HashMap<u64, LeafCode>,
}

impl DynamicHstGreedy {
    /// Creates an empty pool for trees with context `ctx`.
    pub fn new(ctx: CodeContext) -> Self {
        DynamicHstGreedy {
            counter: SubtreeCounter::new(ctx),
            // lint: allow(DET-HASH) — see the field note: lookups only.
            residents: HashMap::new(),
            // lint: allow(DET-HASH) — see the field note: lookups only.
            leaf_of: HashMap::new(),
        }
    }

    /// Number of present, unassigned workers.
    #[inline]
    pub fn available(&self) -> usize {
        self.leaf_of.len()
    }

    /// True iff worker `id` is present and unassigned.
    #[inline]
    pub fn contains(&self, id: u64) -> bool {
        self.leaf_of.contains_key(&id)
    }

    /// Adds a worker with its reported (obfuscated) leaf.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already present — ids must be unique among live
    /// workers (a departed or assigned id may be reused).
    pub fn add(&mut self, id: u64, leaf: LeafCode) {
        let prev = self.leaf_of.insert(id, leaf);
        assert!(prev.is_none(), "worker id {id} already present");
        self.counter.insert(leaf);
        let stack = self.residents.entry(leaf).or_default();
        // Keep each leaf's residents sorted descending so the lowest id
        // pops first — the same canonical tie-break as the static matcher.
        let pos = stack.partition_point(|&other| other > id);
        stack.insert(pos, id);
    }

    /// Adds a batch of workers in order — observationally identical to
    /// calling [`Self::add`] for each pair (per-leaf counter inserts are
    /// inherently per-item, so this is a convenience, not a fast path).
    ///
    /// # Panics
    ///
    /// Panics like [`Self::add`] if any id is already present (including
    /// duplicates within the batch).
    pub fn add_batch(&mut self, batch: impl IntoIterator<Item = (u64, LeafCode)>) {
        for (id, leaf) in batch {
            self.add(id, leaf);
        }
    }

    /// Withdraws an unassigned worker (shift end). Returns `false` if the
    /// worker is not present (already assigned or never added).
    pub fn withdraw(&mut self, id: u64) -> bool {
        let Some(leaf) = self.leaf_of.remove(&id) else {
            return false;
        };
        self.detach(id, leaf);
        true
    }

    /// Assigns the tree-nearest available worker to the task leaf `t` and
    /// removes it from the pool. Returns `None` when the pool is empty.
    pub fn assign(&mut self, t: LeafCode) -> Option<u64> {
        let leaf = self.counter.nearest(t)?;
        let id = *self
            .residents
            .get(&leaf)
            .and_then(|stack| stack.last())
            .expect("counter and residents agree");
        self.leaf_of.remove(&id);
        self.detach(id, leaf);
        Some(id)
    }

    fn detach(&mut self, id: u64, leaf: LeafCode) {
        let removed = self.counter.remove(leaf);
        debug_assert!(removed);
        let stack = self.residents.get_mut(&leaf).expect("resident stack");
        let pos = stack
            .iter()
            .position(|&other| other == id)
            .expect("worker listed at its leaf");
        stack.remove(pos);
        if stack.is_empty() {
            self.residents.remove(&leaf);
        }
    }
}

/// Euclidean nearest-available matcher over a mutable pool of planar
/// reports, backed by a [`crate::kdtree::KdTree`] that is rebuilt lazily
/// after pool *mutations* (adds and withdrawals). Assignments themselves use
/// the tree's logical deletion, so a burst of task arrivals between two
/// shift events pays one rebuild, not one per task.
///
/// Tie-breaking is canonical — (distance, lowest id) — independent of
/// insertion order, mirroring [`DynamicHstGreedy`].
#[derive(Debug, Clone, Default)]
pub struct DynamicKdRebuild {
    /// Present, unassigned workers, sorted ascending by id (so k-d tree
    /// index ties resolve to the lowest id).
    live: Vec<(u64, Point)>,
    /// Tree over the `live` snapshot at the last rebuild; entry `i` of the
    /// snapshot is worker `snapshot[i]`.
    tree: Option<crate::kdtree::KdTree>,
    snapshot: Vec<u64>,
    /// Set when `live` changed since the last rebuild.
    dirty: bool,
}

impl DynamicKdRebuild {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of present, unassigned workers.
    #[inline]
    pub fn available(&self) -> usize {
        self.live.len()
    }

    /// True iff worker `id` is present and unassigned.
    #[inline]
    pub fn contains(&self, id: u64) -> bool {
        self.live.binary_search_by_key(&id, |&(w, _)| w).is_ok()
    }

    /// Adds a worker with its reported (obfuscated) planar location.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already present — ids must be unique among live
    /// workers (a departed or assigned id may be reused).
    pub fn add(&mut self, id: u64, location: Point) {
        match self.live.binary_search_by_key(&id, |&(w, _)| w) {
            Ok(_) => panic!("worker id {id} already present"),
            Err(pos) => self.live.insert(pos, (id, location)),
        }
        self.dirty = true;
    }

    /// Adds a batch of workers — the pool state afterwards is identical to
    /// calling [`Self::add`] for each pair, but one append + re-sort
    /// (`O((n + k) log (n + k))`) replaces `k` sorted insertions
    /// (`O(k · n)`), which matters for micro-batched arrivals on large
    /// fleets. Validation is atomic: every id is checked (against the live
    /// pool *and* within the batch) before any mutation.
    ///
    /// # Panics
    ///
    /// Panics like [`Self::add`] if any id is already present (including
    /// duplicates within the batch).
    pub fn add_batch(&mut self, batch: Vec<(u64, Point)>) {
        for (i, &(id, _)) in batch.iter().enumerate() {
            let dup_in_batch = batch[..i].iter().any(|&(other, _)| other == id);
            if dup_in_batch || self.contains(id) {
                panic!("worker id {id} already present");
            }
        }
        if batch.is_empty() {
            return;
        }
        self.live.extend(batch);
        self.live.sort_by_key(|&(w, _)| w);
        self.dirty = true;
    }

    /// Withdraws an unassigned worker (shift end). Returns `false` if the
    /// worker is not present (already assigned or never added).
    pub fn withdraw(&mut self, id: u64) -> bool {
        match self.live.binary_search_by_key(&id, |&(w, _)| w) {
            Ok(pos) => {
                self.live.remove(pos);
                self.dirty = true;
                true
            }
            Err(_) => false,
        }
    }

    /// Assigns the Euclidean-nearest available worker to the task location
    /// `t` and removes it from the pool. Returns `None` when the pool is
    /// empty.
    pub fn assign(&mut self, t: &Point) -> Option<u64> {
        if self.live.is_empty() {
            return None;
        }
        if self.dirty || self.tree.is_none() {
            self.snapshot = self.live.iter().map(|&(w, _)| w).collect();
            self.tree = Some(crate::kdtree::KdTree::build(
                self.live.iter().map(|&(_, p)| p).collect(),
            ));
            self.dirty = false;
        }
        let idx = self.tree.as_mut().expect("just built").take_nearest(t)?;
        let id = self.snapshot[idx];
        let pos = self
            .live
            .binary_search_by_key(&id, |&(w, _)| w)
            .expect("assigned worker is live");
        self.live.remove(pos);
        // The tree's logical deletion keeps it consistent with `live`
        // without a rebuild; only shift churn sets `dirty`.
        Some(id)
    }
}

/// Location-blind uniform assignment over a mutable pool: the dynamic
/// counterpart of [`crate::RandomAssign`].
#[derive(Debug, Clone, Default)]
pub struct DynamicRandomPool {
    /// Present, unassigned worker ids; order is an implementation detail
    /// (draws are uniform regardless).
    live: Vec<u64>,
    /// Position of each live id in `live`, for O(1) withdrawal.
    // lint: allow(DET-HASH) — per-id lookups only; draws index `live`.
    pos_of: HashMap<u64, usize>,
}

impl DynamicRandomPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of present, unassigned workers.
    #[inline]
    pub fn available(&self) -> usize {
        self.live.len()
    }

    /// True iff worker `id` is present and unassigned.
    #[inline]
    pub fn contains(&self, id: u64) -> bool {
        self.pos_of.contains_key(&id)
    }

    /// Adds a worker (its location report is irrelevant to this matcher).
    ///
    /// # Panics
    ///
    /// Panics if `id` is already present.
    pub fn add(&mut self, id: u64) {
        let prev = self.pos_of.insert(id, self.live.len());
        assert!(prev.is_none(), "worker id {id} already present");
        self.live.push(id);
    }

    /// Adds a batch of workers in order — identical to calling
    /// [`Self::add`] per id, with the backing vector grown once.
    ///
    /// # Panics
    ///
    /// Panics like [`Self::add`] if any id is already present (including
    /// duplicates within the batch).
    pub fn add_batch(&mut self, ids: &[u64]) {
        self.live.reserve(ids.len());
        for &id in ids {
            self.add(id);
        }
    }

    /// Withdraws an unassigned worker. Returns `false` if not present.
    pub fn withdraw(&mut self, id: u64) -> bool {
        let Some(pos) = self.pos_of.remove(&id) else {
            return false;
        };
        self.live.swap_remove(pos);
        if let Some(&moved) = self.live.get(pos) {
            self.pos_of.insert(moved, pos);
        }
        true
    }

    /// Assigns a uniformly random available worker; `None` when the pool is
    /// empty.
    pub fn assign<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<u64> {
        if self.live.is_empty() {
            return None;
        }
        let id = self.live[rng.gen_range(0..self.live.len())];
        let removed = self.withdraw(id);
        debug_assert!(removed);
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pombm_geom::seeded_rng;
    use rand::Rng;

    fn ctx() -> CodeContext {
        CodeContext::new(2, 4)
    }

    #[test]
    fn add_assign_roundtrip() {
        let mut m = DynamicHstGreedy::new(ctx());
        m.add(7, LeafCode(3));
        m.add(9, LeafCode(12));
        assert_eq!(m.available(), 2);
        assert_eq!(m.assign(LeafCode(2)), Some(7), "leaf 3 is nearer to 2");
        assert_eq!(m.assign(LeafCode(2)), Some(9));
        assert_eq!(m.assign(LeafCode(2)), None);
    }

    #[test]
    fn withdraw_removes_from_consideration() {
        let mut m = DynamicHstGreedy::new(ctx());
        m.add(1, LeafCode(0));
        m.add(2, LeafCode(15));
        assert!(m.withdraw(1));
        assert!(!m.withdraw(1), "second withdraw is a no-op");
        assert_eq!(m.assign(LeafCode(0)), Some(2), "withdrawn worker skipped");
    }

    #[test]
    fn assigned_worker_cannot_be_withdrawn() {
        let mut m = DynamicHstGreedy::new(ctx());
        m.add(4, LeafCode(5));
        assert_eq!(m.assign(LeafCode(5)), Some(4));
        assert!(!m.withdraw(4));
    }

    #[test]
    fn id_reuse_after_departure_is_allowed() {
        let mut m = DynamicHstGreedy::new(ctx());
        m.add(1, LeafCode(0));
        assert!(m.withdraw(1));
        m.add(1, LeafCode(8));
        assert_eq!(m.assign(LeafCode(8)), Some(1));
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn duplicate_live_id_panics() {
        let mut m = DynamicHstGreedy::new(ctx());
        m.add(1, LeafCode(0));
        m.add(1, LeafCode(1));
    }

    #[test]
    fn matches_static_indexed_engine_when_pool_is_static() {
        // With all workers added upfront and none withdrawn, assignment
        // must be identical to the static indexed matcher.
        let c = CodeContext::new(3, 4);
        let mut rng = seeded_rng(2, 0);
        let workers: Vec<LeafCode> = (0..30)
            .map(|_| LeafCode(rng.gen_range(0..c.num_leaves())))
            .collect();
        let mut dynamic = DynamicHstGreedy::new(c);
        for (i, &w) in workers.iter().enumerate() {
            dynamic.add(i as u64, w);
        }
        let mut fixed = crate::HstGreedy::new(c, workers, crate::HstGreedyEngine::Indexed);
        for _ in 0..30 {
            let t = LeafCode(rng.gen_range(0..c.num_leaves()));
            assert_eq!(dynamic.assign(t), fixed.assign(t).map(|w| w as u64));
        }
    }

    #[test]
    fn interleaved_adds_and_tasks() {
        let mut m = DynamicHstGreedy::new(ctx());
        assert_eq!(m.assign(LeafCode(0)), None, "empty pool drops the task");
        m.add(10, LeafCode(14));
        assert_eq!(m.assign(LeafCode(1)), Some(10), "only present worker");
        m.add(11, LeafCode(1));
        m.add(12, LeafCode(2));
        assert_eq!(m.assign(LeafCode(0)), Some(11), "nearest of the two");
        assert_eq!(m.available(), 1);
    }

    #[test]
    fn canonical_tie_break_matches_static_matcher() {
        // Two workers at equidistant leaves: lowest leaf code wins; equal
        // leaves: lowest id wins — regardless of insertion order.
        let mut m = DynamicHstGreedy::new(ctx());
        m.add(5, LeafCode(3));
        m.add(4, LeafCode(2));
        assert_eq!(m.assign(LeafCode(0)), Some(4));
        let mut m = DynamicHstGreedy::new(ctx());
        m.add(9, LeafCode(6));
        m.add(3, LeafCode(6));
        assert_eq!(m.assign(LeafCode(6)), Some(3));
    }

    // --- DynamicKdRebuild ---------------------------------------------

    #[test]
    fn kd_rebuild_roundtrip_and_withdraw() {
        let mut m = DynamicKdRebuild::new();
        assert_eq!(m.assign(&Point::new(0.0, 0.0)), None, "empty pool");
        m.add(7, Point::new(1.0, 0.0));
        m.add(9, Point::new(10.0, 0.0));
        assert_eq!(m.available(), 2);
        assert!(m.contains(7) && m.contains(9));
        assert_eq!(m.assign(&Point::new(0.0, 0.0)), Some(7), "nearest wins");
        assert!(!m.contains(7), "assigned worker left the pool");
        assert!(m.withdraw(9));
        assert!(!m.withdraw(9), "second withdraw is a no-op");
        assert_eq!(m.assign(&Point::new(0.0, 0.0)), None);
    }

    #[test]
    fn kd_rebuild_ties_resolve_to_lowest_id_any_insertion_order() {
        let p = Point::new(5.0, 5.0);
        let mut m = DynamicKdRebuild::new();
        m.add(9, p);
        m.add(3, p);
        m.add(6, p);
        assert_eq!(m.assign(&p), Some(3));
        assert_eq!(m.assign(&p), Some(6));
        assert_eq!(m.assign(&p), Some(9));
    }

    #[test]
    fn kd_rebuild_interleaved_mutations_match_brute_force() {
        // Random add/withdraw/assign churn against a linear-scan oracle.
        let mut rng = seeded_rng(8, 0);
        let mut m = DynamicKdRebuild::new();
        let mut oracle: Vec<(u64, Point)> = Vec::new();
        let mut next_id = 0u64;
        for _ in 0..400 {
            match rng.gen_range(0..3u32) {
                0 => {
                    let p = Point::new(rng.gen::<f64>() * 100.0, rng.gen::<f64>() * 100.0);
                    m.add(next_id, p);
                    oracle.push((next_id, p));
                    next_id += 1;
                }
                1 => {
                    if !oracle.is_empty() {
                        let victim = oracle[rng.gen_range(0..oracle.len())].0;
                        assert!(m.withdraw(victim));
                        oracle.retain(|&(w, _)| w != victim);
                    }
                }
                _ => {
                    let t = Point::new(rng.gen::<f64>() * 100.0, rng.gen::<f64>() * 100.0);
                    let want = oracle
                        .iter()
                        .min_by(|a, b| {
                            (a.1.dist_sq(&t), a.0)
                                .partial_cmp(&(b.1.dist_sq(&t), b.0))
                                .unwrap()
                        })
                        .map(|&(w, _)| w);
                    assert_eq!(m.assign(&t), want);
                    if let Some(w) = want {
                        oracle.retain(|&(o, _)| o != w);
                    }
                }
            }
            assert_eq!(m.available(), oracle.len());
        }
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn kd_rebuild_duplicate_live_id_panics() {
        let mut m = DynamicKdRebuild::new();
        m.add(1, Point::new(0.0, 0.0));
        m.add(1, Point::new(1.0, 1.0));
    }

    // --- DynamicRandomPool --------------------------------------------

    #[test]
    fn random_pool_assigns_each_live_worker_once() {
        let mut m = DynamicRandomPool::new();
        for id in 0..25 {
            m.add(id);
        }
        assert!(m.withdraw(13));
        let mut rng = seeded_rng(0, 0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..24 {
            let w = m.assign(&mut rng).unwrap();
            assert!(seen.insert(w));
            assert_ne!(w, 13, "withdrawn worker must never be assigned");
        }
        assert_eq!(m.assign(&mut rng), None);
        assert_eq!(m.available(), 0);
    }

    #[test]
    fn random_pool_first_pick_is_roughly_uniform() {
        let trials = 6000;
        let mut counts = [0usize; 4];
        for seed in 0..trials {
            let mut m = DynamicRandomPool::new();
            for id in 0..4 {
                m.add(id);
            }
            let mut rng = seeded_rng(seed, 1);
            counts[m.assign(&mut rng).unwrap() as usize] += 1;
        }
        for (w, &c) in counts.iter().enumerate() {
            let frac = c as f64 / trials as f64;
            assert!(
                (frac - 0.25).abs() < 0.03,
                "worker {w} picked {frac}, expected ~0.25"
            );
        }
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn random_pool_duplicate_live_id_panics() {
        let mut m = DynamicRandomPool::new();
        m.add(1);
        m.add(1);
    }

    // --- add_batch ----------------------------------------------------

    #[test]
    fn batched_adds_match_sequential_adds_on_every_pool() {
        // The same churn driven through add_batch vs a loop of add must
        // leave observationally identical pools (assignment order proves
        // it). Trait-level equivalence across registered matchers is
        // proptested in `tests/serve.rs`; this is the unit-level pin.
        let c = ctx();
        let mut rng = seeded_rng(17, 0);
        let workers: Vec<(u64, LeafCode)> = (0..40)
            .map(|i| (i, LeafCode(rng.gen_range(0..c.num_leaves()))))
            .collect();

        let mut batched = DynamicHstGreedy::new(c);
        batched.add_batch(workers.iter().copied());
        let mut sequential = DynamicHstGreedy::new(c);
        for &(id, leaf) in &workers {
            sequential.add(id, leaf);
        }
        for _ in 0..40 {
            let t = LeafCode(rng.gen_range(0..c.num_leaves()));
            assert_eq!(batched.assign(t), sequential.assign(t));
        }

        let points: Vec<(u64, Point)> = (0..40)
            .map(|i| {
                (
                    i,
                    Point::new(rng.gen::<f64>() * 50.0, rng.gen::<f64>() * 50.0),
                )
            })
            .collect();
        let mut batched = DynamicKdRebuild::new();
        batched.add_batch(points.clone());
        let mut sequential = DynamicKdRebuild::new();
        for &(id, p) in &points {
            sequential.add(id, p);
        }
        for _ in 0..40 {
            let t = Point::new(rng.gen::<f64>() * 50.0, rng.gen::<f64>() * 50.0);
            assert_eq!(batched.assign(&t), sequential.assign(&t));
        }

        let ids: Vec<u64> = (0..40).collect();
        let mut batched = DynamicRandomPool::new();
        batched.add_batch(&ids);
        let mut sequential = DynamicRandomPool::new();
        for &id in &ids {
            sequential.add(id);
        }
        let mut rng_a = seeded_rng(3, 9);
        let mut rng_b = seeded_rng(3, 9);
        for _ in 0..40 {
            assert_eq!(batched.assign(&mut rng_a), sequential.assign(&mut rng_b));
        }
    }

    #[test]
    fn kd_rebuild_batch_is_atomic_on_duplicate() {
        // A batch with an internal duplicate must panic before mutating.
        let points = vec![
            (1, Point::new(0.0, 0.0)),
            (2, Point::new(1.0, 0.0)),
            (2, Point::new(2.0, 0.0)),
        ];
        let mut m = DynamicKdRebuild::new();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.add_batch(points);
        }));
        assert!(err.is_err());
        assert_eq!(m.available(), 0, "failed batch must not mutate the pool");
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn kd_rebuild_batch_rejects_id_already_live() {
        let mut m = DynamicKdRebuild::new();
        m.add(5, Point::new(0.0, 0.0));
        m.add_batch(vec![(6, Point::new(1.0, 0.0)), (5, Point::new(2.0, 0.0))]);
    }
}
