//! Dynamic-pool HST-greedy: workers that come and go.
//!
//! The paper's interaction model registers the full worker set upfront; a
//! deployed platform sees drivers start and end shifts continuously. This
//! matcher maintains the same `O(c·D)` nearest-free-worker index as
//! [`crate::HstGreedy`]'s indexed engine but over a *mutable* pool:
//! workers can be added (shift start, with their obfuscated leaf) and
//! withdrawn (shift end, if not yet assigned) at any point between task
//! arrivals. The ultrametric walk is oblivious to how the pool got its
//! contents, so per-assignment behaviour — nearest available worker on the
//! tree, canonical tie-break — is unchanged.

use pombm_hst::{CodeContext, LeafCode, SubtreeCounter};
use std::collections::HashMap;

/// Online greedy matcher over a mutable worker pool (see module docs).
///
/// Workers are identified by caller-chosen `u64` ids (unique among
/// *present* workers).
#[derive(Debug, Clone)]
pub struct DynamicHstGreedy {
    counter: SubtreeCounter,
    /// Present, unassigned workers resident at each occupied leaf.
    residents: HashMap<LeafCode, Vec<u64>>,
    /// Leaf of each present, unassigned worker.
    leaf_of: HashMap<u64, LeafCode>,
}

impl DynamicHstGreedy {
    /// Creates an empty pool for trees with context `ctx`.
    pub fn new(ctx: CodeContext) -> Self {
        DynamicHstGreedy {
            counter: SubtreeCounter::new(ctx),
            residents: HashMap::new(),
            leaf_of: HashMap::new(),
        }
    }

    /// Number of present, unassigned workers.
    #[inline]
    pub fn available(&self) -> usize {
        self.leaf_of.len()
    }

    /// True iff worker `id` is present and unassigned.
    #[inline]
    pub fn contains(&self, id: u64) -> bool {
        self.leaf_of.contains_key(&id)
    }

    /// Adds a worker with its reported (obfuscated) leaf.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already present — ids must be unique among live
    /// workers (a departed or assigned id may be reused).
    pub fn add(&mut self, id: u64, leaf: LeafCode) {
        let prev = self.leaf_of.insert(id, leaf);
        assert!(prev.is_none(), "worker id {id} already present");
        self.counter.insert(leaf);
        let stack = self.residents.entry(leaf).or_default();
        // Keep each leaf's residents sorted descending so the lowest id
        // pops first — the same canonical tie-break as the static matcher.
        let pos = stack.partition_point(|&other| other > id);
        stack.insert(pos, id);
    }

    /// Withdraws an unassigned worker (shift end). Returns `false` if the
    /// worker is not present (already assigned or never added).
    pub fn withdraw(&mut self, id: u64) -> bool {
        let Some(leaf) = self.leaf_of.remove(&id) else {
            return false;
        };
        self.detach(id, leaf);
        true
    }

    /// Assigns the tree-nearest available worker to the task leaf `t` and
    /// removes it from the pool. Returns `None` when the pool is empty.
    pub fn assign(&mut self, t: LeafCode) -> Option<u64> {
        let leaf = self.counter.nearest(t)?;
        let id = *self
            .residents
            .get(&leaf)
            .and_then(|stack| stack.last())
            .expect("counter and residents agree");
        self.leaf_of.remove(&id);
        self.detach(id, leaf);
        Some(id)
    }

    fn detach(&mut self, id: u64, leaf: LeafCode) {
        let removed = self.counter.remove(leaf);
        debug_assert!(removed);
        let stack = self.residents.get_mut(&leaf).expect("resident stack");
        let pos = stack
            .iter()
            .position(|&other| other == id)
            .expect("worker listed at its leaf");
        stack.remove(pos);
        if stack.is_empty() {
            self.residents.remove(&leaf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pombm_geom::seeded_rng;
    use rand::Rng;

    fn ctx() -> CodeContext {
        CodeContext::new(2, 4)
    }

    #[test]
    fn add_assign_roundtrip() {
        let mut m = DynamicHstGreedy::new(ctx());
        m.add(7, LeafCode(3));
        m.add(9, LeafCode(12));
        assert_eq!(m.available(), 2);
        assert_eq!(m.assign(LeafCode(2)), Some(7), "leaf 3 is nearer to 2");
        assert_eq!(m.assign(LeafCode(2)), Some(9));
        assert_eq!(m.assign(LeafCode(2)), None);
    }

    #[test]
    fn withdraw_removes_from_consideration() {
        let mut m = DynamicHstGreedy::new(ctx());
        m.add(1, LeafCode(0));
        m.add(2, LeafCode(15));
        assert!(m.withdraw(1));
        assert!(!m.withdraw(1), "second withdraw is a no-op");
        assert_eq!(m.assign(LeafCode(0)), Some(2), "withdrawn worker skipped");
    }

    #[test]
    fn assigned_worker_cannot_be_withdrawn() {
        let mut m = DynamicHstGreedy::new(ctx());
        m.add(4, LeafCode(5));
        assert_eq!(m.assign(LeafCode(5)), Some(4));
        assert!(!m.withdraw(4));
    }

    #[test]
    fn id_reuse_after_departure_is_allowed() {
        let mut m = DynamicHstGreedy::new(ctx());
        m.add(1, LeafCode(0));
        assert!(m.withdraw(1));
        m.add(1, LeafCode(8));
        assert_eq!(m.assign(LeafCode(8)), Some(1));
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn duplicate_live_id_panics() {
        let mut m = DynamicHstGreedy::new(ctx());
        m.add(1, LeafCode(0));
        m.add(1, LeafCode(1));
    }

    #[test]
    fn matches_static_indexed_engine_when_pool_is_static() {
        // With all workers added upfront and none withdrawn, assignment
        // must be identical to the static indexed matcher.
        let c = CodeContext::new(3, 4);
        let mut rng = seeded_rng(2, 0);
        let workers: Vec<LeafCode> = (0..30)
            .map(|_| LeafCode(rng.gen_range(0..c.num_leaves())))
            .collect();
        let mut dynamic = DynamicHstGreedy::new(c);
        for (i, &w) in workers.iter().enumerate() {
            dynamic.add(i as u64, w);
        }
        let mut fixed = crate::HstGreedy::new(c, workers, crate::HstGreedyEngine::Indexed);
        for _ in 0..30 {
            let t = LeafCode(rng.gen_range(0..c.num_leaves()));
            assert_eq!(dynamic.assign(t), fixed.assign(t).map(|w| w as u64));
        }
    }

    #[test]
    fn interleaved_adds_and_tasks() {
        let mut m = DynamicHstGreedy::new(ctx());
        assert_eq!(m.assign(LeafCode(0)), None, "empty pool drops the task");
        m.add(10, LeafCode(14));
        assert_eq!(m.assign(LeafCode(1)), Some(10), "only present worker");
        m.add(11, LeafCode(1));
        m.add(12, LeafCode(2));
        assert_eq!(m.assign(LeafCode(0)), Some(11), "nearest of the two");
        assert_eq!(m.available(), 1);
    }

    #[test]
    fn canonical_tie_break_matches_static_matcher() {
        // Two workers at equidistant leaves: lowest leaf code wins; equal
        // leaves: lowest id wins — regardless of insertion order.
        let mut m = DynamicHstGreedy::new(ctx());
        m.add(5, LeafCode(3));
        m.add(4, LeafCode(2));
        assert_eq!(m.assign(LeafCode(0)), Some(4));
        let mut m = DynamicHstGreedy::new(ctx());
        m.add(9, LeafCode(6));
        m.add(3, LeafCode(6));
        assert_eq!(m.assign(LeafCode(6)), Some(3));
    }
}
