//! A static k-d tree with deletions, the third engine option for Euclidean
//! greedy matching.
//!
//! The cell index in [`crate::euclidean`] degrades when worker density is
//! very non-uniform (hotspot workloads): a few buckets hold almost
//! everything. A k-d tree adapts to the data distribution. Built once over
//! the reported worker locations (`O(n log n)`), it supports
//! nearest-available queries with branch-and-bound pruning and *logical*
//! deletion (subtree live-counters), so a full greedy run is
//! `O(n log n)` amortized in benign cases.
//!
//! Tie-breaking matches the linear scan — (distance, worker index) — so all
//! three Euclidean engines produce identical matchings.

use pombm_geom::Point;

/// Node of the k-d tree, region-splitting on the median by alternating axis.
#[derive(Debug, Clone)]
struct Node {
    /// Worker id stored at this node (the median of its range).
    worker: usize,
    /// Split axis: 0 = x, 1 = y.
    axis: u8,
    /// Whether this node's own worker is still available.
    alive: bool,
    /// Number of available workers in this subtree (including self).
    live: usize,
    left: Option<usize>,
    right: Option<usize>,
}

/// K-d tree over worker locations with logical deletion.
#[derive(Debug, Clone)]
pub struct KdTree {
    nodes: Vec<Node>,
    points: Vec<Point>,
    root: Option<usize>,
    /// Node index holding each worker, for O(depth) deletion.
    node_of_worker: Vec<usize>,
}

impl KdTree {
    /// Builds the tree over worker locations. `O(n log n)` expected (median
    /// by sorting each range once per level).
    pub fn build(points: Vec<Point>) -> Self {
        let n = points.len();
        let mut tree = KdTree {
            nodes: Vec::with_capacity(n),
            node_of_worker: vec![usize::MAX; n],
            points,
            root: None,
        };
        let mut ids: Vec<usize> = (0..n).collect();
        tree.root = tree.build_range(&mut ids, 0);
        tree
    }

    fn build_range(&mut self, ids: &mut [usize], depth: u32) -> Option<usize> {
        if ids.is_empty() {
            return None;
        }
        let axis = (depth % 2) as u8;
        ids.sort_unstable_by(|&a, &b| {
            let (pa, pb) = (self.points[a], self.points[b]);
            let (ka, kb) = if axis == 0 {
                (pa.x, pb.x)
            } else {
                (pa.y, pb.y)
            };
            ka.partial_cmp(&kb)
                .expect("finite coordinates")
                .then(a.cmp(&b))
        });
        let mid = ids.len() / 2;
        let worker = ids[mid];
        let node_idx = self.nodes.len();
        self.nodes.push(Node {
            worker,
            axis,
            alive: true,
            live: ids.len(),
            left: None,
            right: None,
        });
        self.node_of_worker[worker] = node_idx;
        // Split around the median; recurse on copies of the halves.
        let (mut left_ids, mut right_ids) = {
            let (l, r) = ids.split_at_mut(mid);
            (l.to_vec(), r[1..].to_vec())
        };
        let left = self.build_range(&mut left_ids, depth + 1);
        let right = self.build_range(&mut right_ids, depth + 1);
        self.nodes[node_idx].left = left;
        self.nodes[node_idx].right = right;
        Some(node_idx)
    }

    /// Number of available workers.
    pub fn live(&self) -> usize {
        self.root.map_or(0, |r| self.nodes[r].live)
    }

    /// Marks a worker unavailable. Returns `false` if already removed or
    /// unknown.
    pub fn remove(&mut self, worker: usize) -> bool {
        if worker >= self.node_of_worker.len() {
            return false;
        }
        let node_idx = self.node_of_worker[worker];
        if node_idx == usize::MAX || !self.nodes[node_idx].alive {
            return false;
        }
        self.nodes[node_idx].alive = false;
        // Decrement live counters on the root path. Walk down from the root
        // following the key, which is cheaper than storing parent pointers.
        let target = self.points[worker];
        let mut cur = self.root.expect("non-empty tree");
        loop {
            self.nodes[cur].live -= 1;
            if cur == node_idx {
                break;
            }
            let node = &self.nodes[cur];
            let (key_t, key_n) = if node.axis == 0 {
                (target.x, self.points[node.worker].x)
            } else {
                (target.y, self.points[node.worker].y)
            };
            // Equal keys were ordered by worker id at build time.
            let go_left = (key_t, worker) < (key_n, node.worker);
            cur = if go_left {
                node.left.expect("target below this node")
            } else {
                node.right.expect("target below this node")
            };
        }
        true
    }

    /// Nearest available worker to `t` by (distance, worker index).
    pub fn nearest(&self, t: &Point) -> Option<usize> {
        let root = self.root?;
        if self.nodes[root].live == 0 {
            return None;
        }
        let mut best: Option<(f64, usize)> = None;
        self.search(root, t, &mut best);
        best.map(|(_, w)| w)
    }

    fn search(&self, idx: usize, t: &Point, best: &mut Option<(f64, usize)>) {
        let node = &self.nodes[idx];
        if node.live == 0 {
            return;
        }
        if node.alive {
            let d = self.points[node.worker].dist_sq(t);
            if best.is_none_or(|(bd, bw)| (d, node.worker) < (bd, bw)) {
                *best = Some((d, node.worker));
            }
        }
        let split = if node.axis == 0 {
            self.points[node.worker].x
        } else {
            self.points[node.worker].y
        };
        let key = if node.axis == 0 { t.x } else { t.y };
        let (near, far) = if key < split {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        if let Some(n) = near {
            self.search(n, t, best);
        }
        // Prune the far side unless the splitting plane is closer than the
        // incumbent.
        let plane = key - split;
        if let Some(f) = far {
            if best.is_none_or(|(bd, _)| plane * plane <= bd) {
                self.search(f, t, best);
            }
        }
    }

    /// Convenience: find, remove and return the nearest available worker.
    pub fn take_nearest(&mut self, t: &Point) -> Option<usize> {
        let w = self.nearest(t)?;
        let removed = self.remove(w);
        debug_assert!(removed);
        Some(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pombm_geom::seeded_rng;
    use rand::Rng;

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = seeded_rng(seed, 0);
        (0..n)
            .map(|_| Point::new(rng.gen::<f64>() * 100.0, rng.gen::<f64>() * 100.0))
            .collect()
    }

    #[test]
    fn empty_tree() {
        let mut t = KdTree::build(vec![]);
        assert_eq!(t.live(), 0);
        assert_eq!(t.nearest(&Point::new(0.0, 0.0)), None);
        assert_eq!(t.take_nearest(&Point::new(0.0, 0.0)), None);
        assert!(!t.remove(0), "no worker 0 exists to remove");
    }

    #[test]
    fn single_point() {
        let mut t = KdTree::build(vec![Point::new(3.0, 4.0)]);
        assert_eq!(t.live(), 1);
        assert_eq!(t.take_nearest(&Point::new(0.0, 0.0)), Some(0));
        assert_eq!(t.live(), 0);
        assert_eq!(t.nearest(&Point::new(0.0, 0.0)), None);
        assert!(!t.remove(0), "double removal fails");
    }

    #[test]
    fn nearest_matches_scan_static() {
        let pts = random_points(200, 1);
        let tree = KdTree::build(pts.clone());
        let queries = random_points(100, 2);
        for q in &queries {
            let want = pts
                .iter()
                .enumerate()
                .min_by(|(i, a), (j, b)| {
                    (a.dist_sq(q), *i).partial_cmp(&(b.dist_sq(q), *j)).unwrap()
                })
                .map(|(i, _)| i);
            assert_eq!(tree.nearest(q), want);
        }
    }

    #[test]
    fn greedy_run_matches_linear_scan_engine() {
        let workers = random_points(300, 3);
        let tasks = random_points(300, 4);
        let mut tree = KdTree::build(workers.clone());
        let mut scan = crate::EuclideanGreedy::new(workers);
        for t in &tasks {
            assert_eq!(tree.take_nearest(t), scan.assign(t), "divergence at {t}");
        }
        assert_eq!(tree.live(), 0);
    }

    #[test]
    fn duplicate_coordinates_resolve_by_index() {
        let p = Point::new(5.0, 5.0);
        let mut tree = KdTree::build(vec![p, p, p]);
        assert_eq!(tree.take_nearest(&p), Some(0));
        assert_eq!(tree.take_nearest(&p), Some(1));
        assert_eq!(tree.take_nearest(&p), Some(2));
        assert_eq!(tree.take_nearest(&p), None);
    }

    #[test]
    fn removal_updates_live_counters() {
        let pts = random_points(50, 5);
        let mut tree = KdTree::build(pts);
        for expected_live in (0..50).rev() {
            assert!(tree.remove(expected_live));
            assert_eq!(tree.live(), expected_live);
        }
    }

    #[test]
    fn clustered_points_still_correct() {
        // Hotspot-style distribution: 90% of points in a tiny cluster.
        let mut rng = seeded_rng(6, 0);
        let mut pts: Vec<Point> = (0..270)
            .map(|_| Point::new(50.0 + rng.gen::<f64>(), 50.0 + rng.gen::<f64>()))
            .collect();
        pts.extend((0..30).map(|_| Point::new(rng.gen::<f64>() * 100.0, rng.gen::<f64>() * 100.0)));
        let tasks = random_points(300, 7);
        let mut tree = KdTree::build(pts.clone());
        let mut scan = crate::EuclideanGreedy::new(pts);
        for t in &tasks {
            assert_eq!(tree.take_nearest(t), scan.assign(t));
        }
    }
}
