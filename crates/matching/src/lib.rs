#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

//! Bipartite matching algorithms for online task assignment.
//!
//! The paper evaluates three online matchers plus one case-study pair:
//!
//! * [`EuclideanGreedy`] — the greedy of Tong et al. (PVLDB'16): assign each
//!   arriving task to the nearest *available* worker in the Euclidean plane
//!   (the matcher of the Lap-GR baseline).
//! * [`HstGreedy`] — Alg. 4: assign each arriving task to the available
//!   worker nearest *on the HST* (used by both Lap-HG and the paper's TBF).
//!   Two interchangeable engines: the paper's `O(n·D)` linear scan and an
//!   `O(c·D)` subtree-count index.
//! * [`offline::OfflineOptimal`] — an exact min-cost offline matcher
//!   (successive shortest augmenting paths with potentials), used to measure
//!   empirical competitive ratios against `OPT`.
//! * [`clairvoyant::ClairvoyantOptimal`] — the dynamic analogue: the
//!   max-cardinality min-cost matching over a time-expanded feasibility
//!   graph (a task may only use a worker whose shift covers its arrival),
//!   solved by padding into the dense engine above; the denominator of the
//!   ratio-under-churn measurement.
//! * [`reachable::ProbMatcher`] / [`reachable::TbfReachMatcher`] — the case
//!   study (Sec. IV-C): maximize matching size when workers have bounded
//!   reachable radii.
//!
//! Beyond the paper's evaluation, the crate ships alternative online rules
//! for ablations and extensions:
//!
//! * [`RandomizedGreedy`] — Alg. 4 with the uniform tie-break randomization
//!   of Meyerson et al. (the paper's ref \[15\]).
//! * [`ChainMatcher`] — the chain-reassignment rule of Bansal et al. (the
//!   paper's ref \[19\]).
//! * [`CapacitatedGreedy`] — workers serving up to `q` tasks each (a
//!   future-work generalization).
//! * [`RandomAssign`] — location-blind uniform assignment, the sanity
//!   floor every mechanism/matcher pair must clear.
//!
//! The paper-evaluated matchers are deterministic given their inputs;
//! randomness otherwise lives in the privacy mechanisms, the workload
//! generators, and the explicitly randomized matchers above (which take an
//! `Rng` per call).
//!
//! # Example
//!
//! ```
//! use pombm_hst::{CodeContext, LeafCode};
//! use pombm_matching::{HstGreedy, HstGreedyEngine};
//!
//! // A complete binary tree of depth 4; workers report (obfuscated) leaves.
//! let ctx = CodeContext::new(2, 4);
//! let workers = vec![LeafCode(0), LeafCode(6), LeafCode(15)];
//! let mut matcher = HstGreedy::new(ctx, workers, HstGreedyEngine::Indexed);
//!
//! // Each arriving task takes the tree-nearest available worker (Alg. 4).
//! assert_eq!(matcher.assign(LeafCode(1)), Some(0));
//! assert_eq!(matcher.assign(LeafCode(1)), Some(1));
//! assert_eq!(matcher.remaining(), 1);
//! ```

pub mod capacity;
pub mod chain;
pub mod clairvoyant;
pub mod dynamic;
pub mod euclidean;
pub mod hst_greedy;
pub mod kdtree;
pub mod offline;
pub mod random_assign;
pub mod randomized;
pub mod reachable;

pub use capacity::CapacitatedGreedy;
pub use chain::{ChainMatcher, ChainOutcome};
pub use clairvoyant::{ClairvoyantAssignment, ClairvoyantOptimal};
pub use dynamic::{DynamicHstGreedy, DynamicKdRebuild, DynamicRandomPool};
pub use euclidean::EuclideanGreedy;
pub use hst_greedy::{HstGreedy, HstGreedyEngine};
pub use random_assign::RandomAssign;
pub use randomized::RandomizedGreedy;

/// A (task, worker) assignment produced by an online or offline matcher.
///
/// Indices refer to the caller's task/worker arrays. The paper's
/// effectiveness metric — total travel distance — is always evaluated on
/// *true* locations even when the matching was computed on obfuscated data;
/// see [`Matching::total_distance`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Matching {
    /// Assigned pairs in assignment order: `(task index, worker index)`.
    pub pairs: Vec<(usize, usize)>,
}

impl Matching {
    /// Creates an empty matching.
    pub fn new() -> Self {
        Matching { pairs: Vec::new() }
    }

    /// Number of assigned pairs (the case study's "matching size").
    pub fn size(&self) -> usize {
        self.pairs.len()
    }

    /// Sums `d(tasks[t], workers[w])` over assigned pairs — the paper's
    /// total (travel) distance, computed on whatever coordinates the caller
    /// passes (true locations for evaluation).
    pub fn total_distance(
        &self,
        tasks: &[pombm_geom::Point],
        workers: &[pombm_geom::Point],
    ) -> f64 {
        self.pairs
            .iter()
            .map(|&(t, w)| tasks[t].dist(&workers[w]))
            .sum()
    }

    /// Checks that no worker and no task appears twice.
    pub fn is_valid(&self) -> bool {
        // lint: allow(DET-HASH) — membership tests only; never iterated.
        let mut tasks = std::collections::HashSet::new();
        // lint: allow(DET-HASH) — membership tests only; never iterated.
        let mut workers = std::collections::HashSet::new();
        self.pairs
            .iter()
            .all(|&(t, w)| tasks.insert(t) && workers.insert(w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pombm_geom::Point;

    #[test]
    fn matching_metrics() {
        let tasks = vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)];
        let workers = vec![Point::new(3.0, 4.0), Point::new(10.0, 1.0)];
        let m = Matching {
            pairs: vec![(0, 0), (1, 1)],
        };
        assert_eq!(m.size(), 2);
        assert!((m.total_distance(&tasks, &workers) - 6.0).abs() < 1e-12);
        assert!(m.is_valid());
    }

    #[test]
    fn duplicate_worker_is_invalid() {
        let m = Matching {
            pairs: vec![(0, 0), (1, 0)],
        };
        assert!(!m.is_valid());
        let m2 = Matching {
            pairs: vec![(0, 0), (0, 1)],
        };
        assert!(!m2.is_valid());
    }

    #[test]
    fn empty_matching_is_valid() {
        assert!(Matching::new().is_valid());
        assert_eq!(Matching::new().size(), 0);
    }
}
