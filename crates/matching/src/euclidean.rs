//! Online greedy matching in the Euclidean plane.

use pombm_geom::{Point, Rect};

/// The online greedy matcher of the Lap-GR baseline: each arriving task is
/// assigned to the nearest still-available worker by straight-line distance
/// over the (obfuscated) coordinates.
///
/// Two lookup engines share the same assignment semantics:
///
/// * **linear scan** — the paper's `O(n)` per task;
/// * **cell index** — an optional uniform-grid bucket index bringing the
///   average case down to the local worker density (an engineering ablation;
///   see `benches/matching.rs`).
///
/// Ties are broken toward the lower worker index in both engines, so the two
/// produce identical matchings.
#[derive(Debug, Clone)]
pub struct EuclideanGreedy {
    workers: Vec<Point>,
    available: Vec<bool>,
    remaining: usize,
    cells: Option<CellIndex>,
}

impl EuclideanGreedy {
    /// Creates a matcher with linear-scan lookup over the reported worker
    /// locations.
    pub fn new(workers: Vec<Point>) -> Self {
        let n = workers.len();
        EuclideanGreedy {
            workers,
            available: vec![true; n],
            remaining: n,
            cells: None,
        }
    }

    /// Creates a matcher with a uniform-grid bucket index over `region`
    /// (`cells × cells` buckets).
    pub fn with_cell_index(workers: Vec<Point>, region: Rect, cells: usize) -> Self {
        let index = CellIndex::build(&workers, region, cells);
        let n = workers.len();
        EuclideanGreedy {
            workers,
            available: vec![true; n],
            remaining: n,
            cells: Some(index),
        }
    }

    /// Number of still-unassigned workers.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Assigns the nearest available worker to a task at `t`, removing the
    /// worker from the pool. Returns `None` when all workers are taken.
    pub fn assign(&mut self, t: &Point) -> Option<usize> {
        if self.remaining == 0 {
            return None;
        }
        let chosen = match &self.cells {
            None => self.scan(t),
            Some(index) => index.nearest(t, &self.workers, &self.available),
        }?;
        self.available[chosen] = false;
        self.remaining -= 1;
        if let Some(index) = &mut self.cells {
            index.remove(chosen, &self.workers);
        }
        Some(chosen)
    }

    fn scan(&self, t: &Point) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, w) in self.workers.iter().enumerate() {
            if !self.available[i] {
                continue;
            }
            let d = w.dist_sq(t);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        best.map(|(i, _)| i)
    }
}

/// Uniform-grid bucket index over worker locations, searched in expanding
/// rings around the query cell.
#[derive(Debug, Clone)]
struct CellIndex {
    region: Rect,
    cells: usize,
    buckets: Vec<Vec<usize>>,
}

impl CellIndex {
    fn build(workers: &[Point], region: Rect, cells: usize) -> Self {
        assert!(cells > 0, "need at least one cell");
        let mut buckets = vec![Vec::new(); cells * cells];
        let mut index = CellIndex {
            region,
            cells,
            buckets: Vec::new(),
        };
        for (i, w) in workers.iter().enumerate() {
            buckets[index.cell_of(w)].push(i);
        }
        index.buckets = buckets;
        index
    }

    fn cell_of(&self, p: &Point) -> usize {
        let cx = if self.region.width() > 0.0 {
            (((p.x - self.region.min_x) / self.region.width() * self.cells as f64) as isize)
                .clamp(0, self.cells as isize - 1) as usize
        } else {
            0
        };
        let cy = if self.region.height() > 0.0 {
            (((p.y - self.region.min_y) / self.region.height() * self.cells as f64) as isize)
                .clamp(0, self.cells as isize - 1) as usize
        } else {
            0
        };
        cy * self.cells + cx
    }

    fn remove(&mut self, worker: usize, workers: &[Point]) {
        let cell = self.cell_of(&workers[worker]);
        if let Some(pos) = self.buckets[cell].iter().position(|&w| w == worker) {
            self.buckets[cell].swap_remove(pos);
        }
    }

    /// Nearest available worker by ring search: examine cells in growing
    /// Chebyshev rings around the query; once a candidate is found, finish
    /// the rings that could still contain something closer.
    fn nearest(&self, t: &Point, workers: &[Point], available: &[bool]) -> Option<usize> {
        let cell = self.cell_of(t);
        let (cx, cy) = ((cell % self.cells) as isize, (cell / self.cells) as isize);
        let cell_w = self.region.width() / self.cells as f64;
        let cell_h = self.region.height() / self.cells as f64;
        let min_pitch = cell_w.min(cell_h).max(f64::MIN_POSITIVE);

        let mut best: Option<(usize, f64)> = None;
        let max_ring = self.cells as isize;
        for ring in 0..=max_ring {
            // Any point in a farther ring is at least (ring-1)*min_pitch
            // away; stop when that exceeds the current best.
            if let Some((_, bd)) = best {
                let lower = ((ring - 1).max(0) as f64) * min_pitch;
                if lower * lower > bd {
                    break;
                }
            }
            let visit = |x: isize, y: isize, best: &mut Option<(usize, f64)>| {
                if x < 0 || y < 0 || x >= self.cells as isize || y >= self.cells as isize {
                    return;
                }
                for &w in &self.buckets[y as usize * self.cells + x as usize] {
                    if !available[w] {
                        continue;
                    }
                    let d = workers[w].dist_sq(t);
                    // Tie-break toward the lower worker index to match the
                    // linear scan exactly.
                    if best.is_none_or(|(bw, bd)| d < bd || (d == bd && w < bw)) {
                        *best = Some((w, d));
                    }
                }
            };
            if ring == 0 {
                visit(cx, cy, &mut best);
            } else {
                for dx in -ring..=ring {
                    visit(cx + dx, cy - ring, &mut best);
                    visit(cx + dx, cy + ring, &mut best);
                }
                for dy in (1 - ring)..ring {
                    visit(cx - ring, cy + dy, &mut best);
                    visit(cx + ring, cy + dy, &mut best);
                }
            }
        }
        best.map(|(w, _)| w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pombm_geom::seeded_rng;
    use rand::Rng;

    #[test]
    fn assigns_nearest_available() {
        let workers = vec![
            Point::new(0.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(10.0, 0.0),
        ];
        let mut g = EuclideanGreedy::new(workers);
        assert_eq!(g.assign(&Point::new(4.0, 0.0)), Some(1));
        // Worker 1 is gone; next nearest to 4.0 is worker 0.
        assert_eq!(g.assign(&Point::new(4.0, 0.0)), Some(0));
        assert_eq!(g.assign(&Point::new(4.0, 0.0)), Some(2));
        assert_eq!(g.assign(&Point::new(4.0, 0.0)), None);
        assert_eq!(g.remaining(), 0);
    }

    #[test]
    fn ties_break_to_lower_index() {
        let workers = vec![Point::new(-1.0, 0.0), Point::new(1.0, 0.0)];
        let mut g = EuclideanGreedy::new(workers);
        assert_eq!(g.assign(&Point::new(0.0, 0.0)), Some(0));
    }

    #[test]
    fn cell_index_matches_linear_scan() {
        let region = Rect::square(100.0);
        let mut rng = seeded_rng(31, 0);
        let workers: Vec<Point> = (0..300)
            .map(|_| Point::new(rng.gen::<f64>() * 100.0, rng.gen::<f64>() * 100.0))
            .collect();
        let tasks: Vec<Point> = (0..300)
            .map(|_| Point::new(rng.gen::<f64>() * 100.0, rng.gen::<f64>() * 100.0))
            .collect();
        let mut scan = EuclideanGreedy::new(workers.clone());
        let mut indexed = EuclideanGreedy::with_cell_index(workers, region, 8);
        for t in &tasks {
            assert_eq!(scan.assign(t), indexed.assign(t), "divergence at {t}");
        }
    }

    #[test]
    fn cell_index_handles_out_of_region_tasks() {
        let region = Rect::square(10.0);
        let workers = vec![Point::new(1.0, 1.0), Point::new(9.0, 9.0)];
        let mut g = EuclideanGreedy::with_cell_index(workers, region, 4);
        // Task far outside the region still finds the nearest worker.
        assert_eq!(g.assign(&Point::new(-50.0, -50.0)), Some(0));
        assert_eq!(g.assign(&Point::new(100.0, 100.0)), Some(1));
    }

    #[test]
    fn exhaustion_returns_none_and_stays_consistent() {
        let mut g =
            EuclideanGreedy::with_cell_index(vec![Point::new(5.0, 5.0)], Rect::square(10.0), 2);
        assert_eq!(g.assign(&Point::new(0.0, 0.0)), Some(0));
        assert_eq!(g.assign(&Point::new(0.0, 0.0)), None);
        assert_eq!(g.assign(&Point::new(9.0, 9.0)), None);
    }
}
