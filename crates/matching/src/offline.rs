//! Exact offline minimum-cost bipartite matching.
//!
//! `OPT` in the competitive-ratio definition (Definition 8) is the minimum
//! total distance matching when *all* tasks and workers are known in
//! advance. This module implements the Hungarian algorithm in its successive
//! shortest augmenting path form with dual potentials — `O(k²·max(n,m))`
//! for `k = min(n,m)`.
//!
//! # Performance shape
//!
//! The historical formulation re-invoked the cost closure on every probe,
//! evaluating `O(k²·max(n,m))` Euclidean square roots; it survives as
//! [`OfflineOptimal::solve_reference`], the equivalence oracle for tests
//! and `benches/offline_opt.rs`. The production engine instead works
//! cache-blocked, in three stacked layers (each bit-identical to the
//! last):
//!
//! 1. **Dense materialization** — the generic closure path evaluates each
//!    cost once into a row-major buffer; every probe becomes a sequential
//!    load. For Euclidean instances past the ~32 MB crossover
//!    (`EUCLID_DENSE_MAX_CELLS`), where the matrix would stream from
//!    memory, the kernels instead recompute `Point::dist` from the
//!    cache-resident coordinate arrays — the same correctly-rounded
//!    `sub/mul/add/sqrt`, so the value is bit-identical either way.
//! 2. **Fused SIMD scan** — each augmenting step's dual update and
//!    column-minimum scan run as one branch-free pass (AVX-512F or AVX2
//!    when the CPU has them, runtime-detected; an element-equivalent
//!    scalar kernel otherwise). Per-element IEEE operations match the
//!    textbook loop exactly, and the `(minimum, lowest column)` reduction
//!    reproduces the ascending scan's strict-`<` tie rule.
//! 3. **Blocked threading** — [`OfflineOptimal::solve_with_threads`]
//!    gives each `crossbeam` scoped thread a contiguous column block,
//!    synchronized per step by spin barriers; block minima combine in
//!    `(cost, lowest column)` order. The augmenting path, the final
//!    pairing and the total cost are **bit-identical at every thread
//!    count** — the same shard-invariance contract the sweep engine
//!    guarantees.

use crate::Matching;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Exact min-cost bipartite matching over an explicit cost function.
#[derive(Debug, Clone, Copy, Default)]
pub struct OfflineOptimal;

/// Below this many columns a parallel solve falls back to the sequential
/// scan: the per-step reduction is too small to amortize synchronization.
/// The fallback never changes the result — only wall-clock.
const PARALLEL_MIN_COLS: usize = 1024;

/// Minimum column-block size handed to one thread; caps the effective
/// thread count on mid-size instances so blocks stay cache-line friendly.
const MIN_BLOCK_COLS: usize = 256;

/// Crossover for Euclidean instances: at or below this many matrix cells
/// (2048², a 32 MB f64 matrix) the materialized dense path wins because
/// the matrix stays cache-resident; above it, streaming the matrix from
/// memory loses to recomputing distances in-kernel from the coordinate
/// arrays. Both paths are bit-identical — the cutover is purely a
/// wall-clock choice.
const EUCLID_DENSE_MAX_CELLS: usize = 1 << 22;

impl OfflineOptimal {
    /// Computes a minimum-total-cost matching of size `min(num_tasks,
    /// num_workers)`; `cost(t, w)` gives the edge cost.
    ///
    /// Costs must be finite and non-negative. Equivalent to
    /// [`OfflineOptimal::solve_with_threads`] with one thread.
    pub fn solve<F>(num_tasks: usize, num_workers: usize, cost: F) -> Matching
    where
        F: Fn(usize, usize) -> f64,
    {
        Self::solve_oriented(num_tasks, num_workers, 1, cost)
    }

    /// [`OfflineOptimal::solve`] with the inner column scan sharded over
    /// `threads` scoped threads (`0` = one per available core).
    ///
    /// The result is bit-identical for every thread count, including the
    /// sequential `threads = 1` path — parallelism only trades wall-clock
    /// for cores.
    pub fn solve_with_threads<F>(
        num_tasks: usize,
        num_workers: usize,
        threads: usize,
        cost: F,
    ) -> Matching
    where
        F: Fn(usize, usize) -> f64 + Sync,
    {
        Self::solve_oriented(num_tasks, num_workers, resolve_threads(threads), cost)
    }

    fn solve_oriented<F>(num_tasks: usize, num_workers: usize, threads: usize, cost: F) -> Matching
    where
        F: Fn(usize, usize) -> f64,
    {
        if num_tasks == 0 || num_workers == 0 {
            return Matching::new();
        }
        // The potentials formulation needs rows ≤ columns; swap sides when
        // there are more tasks than workers.
        if num_tasks <= num_workers {
            let a = materialize(num_tasks, num_workers, &cost);
            let matrix = CostMatrix::Dense {
                a: &a,
                cols: num_workers,
            };
            let assignment = hungarian_dense(num_tasks, matrix, threads);
            Matching { pairs: assignment }
        } else {
            let a = materialize(num_workers, num_tasks, &|r, c| cost(c, r));
            let matrix = CostMatrix::Dense {
                a: &a,
                cols: num_tasks,
            };
            let assignment = hungarian_dense(num_workers, matrix, threads);
            Matching {
                pairs: assignment.into_iter().map(|(w, t)| (t, w)).collect(),
            }
        }
    }

    /// Convenience wrapper over Euclidean points: minimizes total travel
    /// distance between `tasks` and `workers`.
    pub fn solve_euclidean(tasks: &[pombm_geom::Point], workers: &[pombm_geom::Point]) -> Matching {
        Self::solve_euclidean_with_threads(tasks, workers, 1)
    }

    /// [`OfflineOptimal::solve_euclidean`] over `threads` scoped threads
    /// (`0` = auto); bit-identical to the sequential path and to the
    /// generic closure path.
    ///
    /// Point instances skip matrix materialization entirely: the scan
    /// kernels recompute [`pombm_geom::Point::dist`] from the coordinate
    /// arrays (structure-of-arrays, cache-resident) with the same
    /// correctly-rounded operations, which at large `k` beats streaming a
    /// `k²` matrix from memory — and squared differences make the
    /// row/column orientation swap exact.
    pub fn solve_euclidean_with_threads(
        tasks: &[pombm_geom::Point],
        workers: &[pombm_geom::Point],
        threads: usize,
    ) -> Matching {
        if tasks.is_empty() || workers.is_empty() {
            return Matching::new();
        }
        let threads = resolve_threads(threads);
        if tasks.len().saturating_mul(workers.len()) <= EUCLID_DENSE_MAX_CELLS {
            // Cache-resident regime: the materialized matrix beats
            // in-kernel square roots.
            return Self::solve_oriented(tasks.len(), workers.len(), threads, |t, w| {
                tasks[t].dist(&workers[w])
            });
        }
        let (tx, ty): (Vec<f64>, Vec<f64>) = tasks.iter().map(|p| (p.x, p.y)).unzip();
        let (wx, wy): (Vec<f64>, Vec<f64>) = workers.iter().map(|p| (p.x, p.y)).unzip();
        if tasks.len() <= workers.len() {
            let matrix = CostMatrix::Euclid {
                row_x: &tx,
                row_y: &ty,
                col_x: &wx,
                col_y: &wy,
            };
            Matching {
                pairs: hungarian_dense(tasks.len(), matrix, threads),
            }
        } else {
            let matrix = CostMatrix::Euclid {
                row_x: &wx,
                row_y: &wy,
                col_x: &tx,
                col_y: &ty,
            };
            let assignment = hungarian_dense(workers.len(), matrix, threads);
            Matching {
                pairs: assignment.into_iter().map(|(w, t)| (t, w)).collect(),
            }
        }
    }

    /// The pre-refactor solver: probes the cost closure on every scan step
    /// instead of materializing the matrix, single-threaded.
    ///
    /// Kept verbatim as the equivalence oracle — proptests pin the dense
    /// and parallel paths to its exact pairs, and `benches/offline_opt.rs`
    /// measures the speedup against it. Not for production use.
    pub fn solve_reference<F>(num_tasks: usize, num_workers: usize, cost: F) -> Matching
    where
        F: Fn(usize, usize) -> f64,
    {
        if num_tasks == 0 || num_workers == 0 {
            return Matching::new();
        }
        if num_tasks <= num_workers {
            let assignment = hungarian_reference(num_tasks, num_workers, &cost);
            Matching { pairs: assignment }
        } else {
            let assignment = hungarian_reference(num_workers, num_tasks, |r, c| cost(c, r));
            Matching {
                pairs: assignment.into_iter().map(|(w, t)| (t, w)).collect(),
            }
        }
    }
}

/// Resolves a user-facing thread count: `0` means one per available core.
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Evaluates the cost function once per cell into a dense row-major
/// `rows × cols` buffer.
fn materialize<F: Fn(usize, usize) -> f64>(rows: usize, cols: usize, cost: &F) -> Vec<f64> {
    let mut a = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = cost(r, c);
            debug_assert!(v.is_finite(), "cost({r}, {c}) must be finite");
            a.push(v);
        }
    }
    a
}

/// How the engine reads edge costs.
///
/// `Dense` is the generic path: the closure was materialized once into a
/// row-major buffer. `Euclid` is the cache-blocked specialization for
/// point instances: costs are recomputed inside the scan kernel from the
/// two coordinate arrays (a few hundred KB that live in cache), because at
/// `k ≳ 4096` streaming a multi-hundred-MB dense matrix from memory costs
/// more than eight-lane `sub/mul/add/sqrt` — every operation of
/// [`pombm_geom::Point::dist`], correctly rounded, so the computed cost is
/// bit-identical to the materialized one.
#[derive(Clone, Copy)]
enum CostMatrix<'a> {
    Dense {
        a: &'a [f64],
        cols: usize,
    },
    Euclid {
        row_x: &'a [f64],
        row_y: &'a [f64],
        col_x: &'a [f64],
        col_y: &'a [f64],
    },
}

/// One scan step's view of row `i0`: a dense row slice, or the row point
/// whose distances the kernel computes against the block's column points.
#[derive(Clone, Copy)]
enum RowData<'a> {
    Slice(&'a [f64]),
    Point { x: f64, y: f64 },
}

impl<'a> CostMatrix<'a> {
    /// Number of columns.
    fn cols(&self) -> usize {
        match *self {
            CostMatrix::Dense { a, cols } => {
                debug_assert!(cols == 0 || a.len() % cols == 0);
                cols
            }
            CostMatrix::Euclid { col_x, .. } => col_x.len(),
        }
    }

    /// Row `i0` (1-indexed) restricted to columns `[lo, hi)` (1-indexed).
    fn row_data(&self, i0: usize, lo: usize, hi: usize) -> RowData<'a> {
        match *self {
            CostMatrix::Dense { a, cols } => {
                let base = (i0 - 1) * cols;
                RowData::Slice(&a[base + lo - 1..base + hi - 1])
            }
            CostMatrix::Euclid { row_x, row_y, .. } => RowData::Point {
                x: row_x[i0 - 1],
                y: row_y[i0 - 1],
            },
        }
    }

    /// Column coordinates restricted to `[lo, hi)` (1-indexed); empty in
    /// dense mode.
    fn col_block(&self, lo: usize, hi: usize) -> (&'a [f64], &'a [f64]) {
        match *self {
            CostMatrix::Dense { .. } => (&[], &[]),
            CostMatrix::Euclid { col_x, col_y, .. } => {
                (&col_x[lo - 1..hi - 1], &col_y[lo - 1..hi - 1])
            }
        }
    }
}

/// Hungarian algorithm (shortest augmenting paths with potentials) over a
/// [`CostMatrix`], `rows ≤ cols`. Returns `(row, col)` pairs for every
/// row.
///
/// One blocked engine drives both execution modes: a single block run
/// inline (the sequential path) or one contiguous column block per scoped
/// thread synchronized step-wise by spin barriers. Every block executes
/// the same fused kernel — apply the previous step's dual update, mark the
/// newly-used column, scan for the block's `(minimum, lowest column)` —
/// with identical per-element IEEE operations in the AVX-512, AVX2 and
/// scalar kernels, so results are bit-identical across thread counts and
/// ISA paths.
fn hungarian_dense(rows: usize, matrix: CostMatrix<'_>, threads: usize) -> Vec<(usize, usize)> {
    let cols = matrix.cols();
    debug_assert!(rows <= cols);
    let threads = threads.min(cols.div_ceil(MIN_BLOCK_COLS)).max(1);
    if threads > 1 && cols >= PARALLEL_MIN_COLS {
        hungarian_blocked(rows, matrix, threads)
    } else {
        hungarian_blocked(rows, matrix, 1)
    }
}

/// A sense-reversing barrier that spins briefly before yielding, so steps
/// synchronize in sub-microsecond time when threads have dedicated cores
/// yet degrade gracefully under oversubscription (e.g. inside a sharded
/// sweep).
struct StepBarrier {
    arrived: AtomicUsize,
    generation: AtomicUsize,
    total: usize,
}

impl StepBarrier {
    fn new(total: usize) -> Self {
        StepBarrier {
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            total,
        }
    }

    fn wait(&self) {
        let generation = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            self.arrived.store(0, Ordering::Release);
            self.generation.store(generation + 1, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == generation {
                spins += 1;
                if spins < 4096 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Commands the coordinator publishes to the scan threads.
const CMD_SCAN: usize = 0;
const CMD_FLUSH: usize = 1;
const CMD_DONE: usize = 2;

/// Sentinel for "no column to mark used this step".
const NO_MARK: usize = usize::MAX;

/// One step of work, fully described. `delta` is the previous step's dual
/// update (fused into this step's pass), `mark` the column selected by the
/// previous step — it was unused when `delta` was issued, so its potential
/// is exempt from the update even though the scan must now skip it.
#[derive(Clone, Copy)]
enum Step<'r> {
    Scan {
        row: RowData<'r>,
        u_i0: f64,
        j0: usize,
        delta: Option<f64>,
        mark: Option<usize>,
        row_start: bool,
    },
    Flush {
        delta: f64,
    },
}

/// Step state shared between the coordinator and the scan threads; every
/// field is published before a barrier and read after it, so `Relaxed`
/// element accesses are ordered by the barrier's acquire/release pairs.
struct StepState {
    command: AtomicUsize,
    /// Row index `i0` driving this scan (1-indexed; threads re-derive
    /// their row view from the shared [`CostMatrix`]).
    i0: AtomicUsize,
    /// `u[i0]` of that row, as f64 bits.
    u_i0: AtomicU64,
    /// Origin column of this scan (for `way`).
    j0: AtomicUsize,
    /// Pending dual update from the previous step, as f64 bits;
    /// meaningful only when `has_pending`.
    pending: AtomicU64,
    has_pending: AtomicBool,
    /// Column to mark used before scanning ([`NO_MARK`] = none).
    mark: AtomicUsize,
    /// Set on the first step of each row: blocks reset their slices
    /// before scanning.
    row_start: AtomicBool,
}

impl StepState {
    fn publish(&self, step: &Step<'_>, i0: usize) {
        match *step {
            Step::Scan {
                u_i0,
                j0,
                delta,
                mark,
                row_start,
                ..
            } => {
                self.command.store(CMD_SCAN, Ordering::Relaxed);
                self.i0.store(i0, Ordering::Relaxed);
                self.u_i0.store(u_i0.to_bits(), Ordering::Relaxed);
                self.j0.store(j0, Ordering::Relaxed);
                self.pending
                    .store(delta.unwrap_or(0.0).to_bits(), Ordering::Relaxed);
                self.has_pending.store(delta.is_some(), Ordering::Relaxed);
                self.mark.store(mark.unwrap_or(NO_MARK), Ordering::Relaxed);
                self.row_start.store(row_start, Ordering::Relaxed);
            }
            Step::Flush { delta } => {
                self.command.store(CMD_FLUSH, Ordering::Relaxed);
                self.pending.store(delta.to_bits(), Ordering::Relaxed);
            }
        }
    }

    fn recover<'r>(&self, matrix: &CostMatrix<'r>, lo: usize, hi: usize) -> Step<'r> {
        match self.command.load(Ordering::Relaxed) {
            CMD_FLUSH => Step::Flush {
                delta: f64::from_bits(self.pending.load(Ordering::Relaxed)),
            },
            _ => {
                let i0 = self.i0.load(Ordering::Relaxed);
                let mark = self.mark.load(Ordering::Relaxed);
                Step::Scan {
                    row: matrix.row_data(i0, lo, hi),
                    u_i0: f64::from_bits(self.u_i0.load(Ordering::Relaxed)),
                    j0: self.j0.load(Ordering::Relaxed),
                    delta: self
                        .has_pending
                        .load(Ordering::Relaxed)
                        .then(|| f64::from_bits(self.pending.load(Ordering::Relaxed))),
                    mark: match mark {
                        NO_MARK => None,
                        m => Some(m),
                    },
                    row_start: self.row_start.load(Ordering::Relaxed),
                }
            }
        }
    }
}

/// Per-block reduction slot, padded to its own cache line to avoid false
/// sharing between adjacent blocks.
#[repr(align(64))]
struct BlockMin {
    /// Smallest `minv` in the block, as f64 bits (`INF` when empty).
    best: AtomicU64,
    /// Lowest column attaining it.
    best_j: AtomicUsize,
}

/// One thread's owned state: a contiguous column block `[lo, hi)` of the
/// 1-indexed column range plus its slices of the per-column arrays.
/// `used_f` encodes "column is used" in the f64 sign bit (`-0.0` used,
/// `+0.0` free), which is exactly the lane-select predicate of
/// `vblendvpd` — the kernels stay branch-free. `col_x`/`col_y` hold the
/// block's column coordinates in Euclid mode (empty for dense).
struct Block<'a> {
    lo: usize,
    hi: usize,
    v: &'a mut [f64],
    minv: &'a mut [f64],
    used_f: &'a mut [f64],
    col_x: &'a [f64],
    col_y: &'a [f64],
}

impl Block<'_> {
    /// Executes one step on this block; returns the block's
    /// `(minimum, lowest column)` candidate for `Step::Scan`.
    fn step(&mut self, step: &Step<'_>, way: &[AtomicUsize]) -> (f64, usize) {
        match *step {
            Step::Flush { delta } => {
                // End of row: apply the last pending update so `v` is
                // exact for the next row. The column the final step
                // selected was never marked used, so the masked update
                // leaves its potential alone — exactly the sequential
                // skip rule.
                apply_update(self.v, self.minv, self.used_f, delta);
                (f64::INFINITY, 0)
            }
            Step::Scan {
                row,
                u_i0,
                j0,
                delta,
                mark,
                row_start,
            } => {
                if row_start {
                    self.minv.fill(f64::INFINITY);
                    self.used_f.fill(0.0);
                }
                // Mark before the fused pass; the saved potential undoes
                // the one update the masked subtract will now wrongly
                // apply to the freshly-marked column (it was unused when
                // `delta` was issued). Store/restore, not arithmetic —
                // exactness is what makes the fusion legal.
                let saved = mark.and_then(|m| {
                    (self.lo..self.hi).contains(&m).then(|| {
                        let k = m - self.lo;
                        self.minv[k] = f64::INFINITY;
                        self.used_f[k] = -0.0;
                        (k, self.v[k])
                    })
                });
                let (best, best_j) = fused_scan(
                    self.v,
                    self.minv,
                    self.used_f,
                    row,
                    self.col_x,
                    self.col_y,
                    u_i0,
                    delta,
                    j0,
                    self.lo,
                    way,
                );
                if let Some((k, v_saved)) = saved {
                    if delta.is_some() {
                        self.v[k] = v_saved;
                    }
                }
                (best, best_j)
            }
        }
    }
}

/// The fused dual-update + column-minimum scan over one block.
/// Dispatches to the widest kernel the CPU has; all kernels perform the
/// identical per-element operations.
// The scan consumes the solver's whole working set; separate slice
// parameters keep the mutable borrows disjoint.
#[allow(clippy::too_many_arguments)]
fn fused_scan(
    v: &mut [f64],
    minv: &mut [f64],
    used_f: &[f64],
    row: RowData<'_>,
    col_x: &[f64],
    col_y: &[f64],
    u_i0: f64,
    delta: Option<f64>,
    j0: usize,
    lo: usize,
    way: &[AtomicUsize],
) -> (f64, usize) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: the AVX-512F feature was just detected at runtime.
            return unsafe {
                fused_scan_avx512(v, minv, used_f, row, col_x, col_y, u_i0, delta, j0, lo, way)
            };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the AVX2 feature was just detected at runtime.
            return unsafe {
                fused_scan_avx2(v, minv, used_f, row, col_x, col_y, u_i0, delta, j0, lo, way)
            };
        }
    }
    fused_scan_scalar(
        v, minv, used_f, row, col_x, col_y, u_i0, delta, j0, lo, way, 0,
    )
}

/// Scalar kernel: the element-wise reference the vector kernels mirror.
/// `from` supports tail processing after a vectorized prefix.
// Same working-set signature as `fused_scan`, plus the tail start.
#[allow(clippy::too_many_arguments)]
fn fused_scan_scalar(
    v: &mut [f64],
    minv: &mut [f64],
    used_f: &[f64],
    row: RowData<'_>,
    col_x: &[f64],
    col_y: &[f64],
    u_i0: f64,
    delta: Option<f64>,
    j0: usize,
    lo: usize,
    way: &[AtomicUsize],
    from: usize,
) -> (f64, usize) {
    let mut best = f64::INFINITY;
    let mut best_j = 0usize;
    for k in from..minv.len() {
        let used = used_f[k].is_sign_negative();
        if let Some(d) = delta {
            // The sequential split: `v -= δ` for used columns,
            // `minv -= δ` for free ones. Used `minv` is pinned at +∞, so
            // the unconditional subtraction leaves it there.
            minv[k] -= d;
            if used {
                v[k] -= d;
            }
        }
        let cost = match row {
            RowData::Slice(r) => r[k],
            RowData::Point { x, y } => {
                // Exactly `Point::dist`: sub, mul, add, sqrt — each
                // correctly rounded, so recomputation equals the
                // materialized value bit-for-bit.
                let dx = x - col_x[k];
                let dy = y - col_y[k];
                (dx * dx + dy * dy).sqrt()
            }
        };
        let cur = cost - u_i0 - v[k];
        let cur = if used { f64::INFINITY } else { cur };
        if cur < minv[k] {
            minv[k] = cur;
            way[lo + k].store(j0, Ordering::Relaxed);
        }
        if minv[k] < best {
            best = minv[k];
            best_j = lo + k;
        }
    }
    (best, best_j)
}

/// Shared lane-fold: resolves per-lane `(minimum, first column)` partials
/// in `(value, lowest column)` order — the ascending scan's strict-< rule
/// — then folds in the scalar tail (tail columns are larger, so ties keep
/// the vector winner).
fn fold_lanes(best_arr: &[f64], j_arr: &[i64], tail: (f64, usize)) -> (f64, usize) {
    let mut best = f64::INFINITY;
    let mut best_j = 0usize;
    for lane in 0..best_arr.len() {
        let (val, col) = (best_arr[lane], j_arr[lane] as usize);
        if val < best || (val == best && col != 0 && (best_j == 0 || col < best_j)) {
            best = val;
            best_j = col;
        }
    }
    if tail.0 < best {
        return tail;
    }
    (best, best_j)
}

/// AVX2 kernel: four columns per lane-step, branch-free via sign-select
/// blends. Per-element arithmetic — `minv − δ`, `v − δ` (used lanes only),
/// `cost − u_i0 − v`, strict `<` updates — is exactly the scalar kernel's,
/// so live values are bit-identical.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// Same working-set signature as the scalar reference kernel.
#[allow(clippy::too_many_arguments)]
// SAFETY: callers must have detected AVX2 at runtime. Every slice spans
// the full block, so all lane accesses below `minv.len()` are in bounds.
unsafe fn fused_scan_avx2(
    v: &mut [f64],
    minv: &mut [f64],
    used_f: &[f64],
    row: RowData<'_>,
    col_x: &[f64],
    col_y: &[f64],
    u_i0: f64,
    delta: Option<f64>,
    j0: usize,
    lo: usize,
    way: &[AtomicUsize],
) -> (f64, usize) {
    use std::arch::x86_64::*;

    // The closure-parameterized inner loop; shares the outer kernel's
    // working set plus the per-lane cost source.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    // SAFETY: callers run this with AVX2 enabled and pass `vec_n` no
    // larger than any slice's length; `cost4(k)` must be in bounds for
    // all `k < vec_n`.
    unsafe fn run(
        v: &mut [f64],
        minv: &mut [f64],
        used_f: &[f64],
        cost4: impl Fn(usize) -> __m256d,
        u_i0: f64,
        delta: Option<f64>,
        j0: usize,
        lo: usize,
        way: &[AtomicUsize],
        vec_n: usize,
    ) -> ([f64; 4], [i64; 4]) {
        // SAFETY: the caller upholds this fn's contract — AVX2 enabled,
        // `vec_n` within every slice — so each unaligned load/store at
        // `k < vec_n` is in bounds.
        unsafe {
            const LANES: usize = 4;
            let inf_v = _mm256_set1_pd(f64::INFINITY);
            let u_v = _mm256_set1_pd(u_i0);
            let delta_v = _mm256_set1_pd(delta.unwrap_or(0.0));
            let has_delta = delta.is_some();
            let mut best_v = inf_v;
            let mut best_j_v = _mm256_setzero_si256();
            let mut j_v =
                _mm256_setr_epi64x(lo as i64, lo as i64 + 1, lo as i64 + 2, lo as i64 + 3);
            let step_v = _mm256_set1_epi64x(LANES as i64);

            let mut k = 0usize;
            while k < vec_n {
                let uf = _mm256_loadu_pd(used_f.as_ptr().add(k));
                let mut mv = _mm256_loadu_pd(minv.as_ptr().add(k));
                let mut vv = _mm256_loadu_pd(v.as_ptr().add(k));
                if has_delta {
                    mv = _mm256_sub_pd(mv, delta_v);
                    // Sign-select: used lanes take `v − δ`, free lanes keep `v`.
                    vv = _mm256_blendv_pd(vv, _mm256_sub_pd(vv, delta_v), uf);
                    _mm256_storeu_pd(v.as_mut_ptr().add(k), vv);
                }
                let cur = _mm256_sub_pd(_mm256_sub_pd(cost4(k), u_v), vv);
                let cur = _mm256_blendv_pd(cur, inf_v, uf);
                let lt = _mm256_cmp_pd::<_CMP_LT_OQ>(cur, mv);
                mv = _mm256_blendv_pd(mv, cur, lt);
                _mm256_storeu_pd(minv.as_mut_ptr().add(k), mv);
                let hit = _mm256_movemask_pd(lt);
                if hit != 0 {
                    // Rare past the first steps of a row: record the scan
                    // origin for path unwinding, lane by lane.
                    for lane in 0..LANES {
                        if hit & (1 << lane) != 0 {
                            way[lo + k + lane].store(j0, Ordering::Relaxed);
                        }
                    }
                }
                let better = _mm256_cmp_pd::<_CMP_LT_OQ>(mv, best_v);
                best_v = _mm256_blendv_pd(best_v, mv, better);
                best_j_v = _mm256_blendv_epi8(best_j_v, j_v, _mm256_castpd_si256(better));
                j_v = _mm256_add_epi64(j_v, step_v);
                k += LANES;
            }
            let mut best_arr = [0f64; 4];
            let mut j_arr = [0i64; 4];
            _mm256_storeu_pd(best_arr.as_mut_ptr(), best_v);
            _mm256_storeu_si256(j_arr.as_mut_ptr().cast(), best_j_v);
            (best_arr, j_arr)
        }
    }

    let n = minv.len();
    let vec_n = n - n % 4;
    let (best_arr, j_arr) = match row {
        // SAFETY: this fn's own contract matches `run`'s — AVX2 is on and
        // `vec_n <= minv.len() <= r.len()` keeps the closure loads in bounds.
        RowData::Slice(r) => unsafe {
            run(
                v,
                minv,
                used_f,
                |k| _mm256_loadu_pd(r.as_ptr().add(k)),
                u_i0,
                delta,
                j0,
                lo,
                way,
                vec_n,
            )
        },
        RowData::Point { x, y } => {
            let tx = _mm256_set1_pd(x);
            let ty = _mm256_set1_pd(y);
            // SAFETY: as above; `col_x`/`col_y` span the full block, so the
            // closure loads at `k < vec_n` are in bounds.
            unsafe {
                run(
                    v,
                    minv,
                    used_f,
                    |k| {
                        let dx = _mm256_sub_pd(tx, _mm256_loadu_pd(col_x.as_ptr().add(k)));
                        let dy = _mm256_sub_pd(ty, _mm256_loadu_pd(col_y.as_ptr().add(k)));
                        _mm256_sqrt_pd(_mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)))
                    },
                    u_i0,
                    delta,
                    j0,
                    lo,
                    way,
                    vec_n,
                )
            }
        }
    };
    let tail = fused_scan_scalar(
        v, minv, used_f, row, col_x, col_y, u_i0, delta, j0, lo, way, vec_n,
    );
    fold_lanes(&best_arr, &j_arr, tail)
}

/// AVX-512F kernel: eight columns per lane-step with native write masks.
/// Same per-element operations and `(value, lowest column)` reduction as
/// the scalar and AVX2 kernels — bit-identical results, wider lanes. The
/// "used" predicate is the f64 sign bit, recovered with an integer
/// compare (`-0.0` is `i64::MIN`), so only the F subset is required.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
// Same working-set signature as the scalar reference kernel.
#[allow(clippy::too_many_arguments)]
// SAFETY: callers must have detected AVX-512F at runtime. Every slice
// spans the full block, so all lane accesses below `minv.len()` are in
// bounds.
unsafe fn fused_scan_avx512(
    v: &mut [f64],
    minv: &mut [f64],
    used_f: &[f64],
    row: RowData<'_>,
    col_x: &[f64],
    col_y: &[f64],
    u_i0: f64,
    delta: Option<f64>,
    j0: usize,
    lo: usize,
    way: &[AtomicUsize],
) -> (f64, usize) {
    use std::arch::x86_64::*;

    // The closure-parameterized inner loop; shares the outer kernel's
    // working set plus the per-lane cost source.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    // SAFETY: callers run this with AVX-512F enabled and pass `vec_n` no
    // larger than any slice's length; `cost8(k)` must be in bounds for
    // all `k < vec_n`.
    unsafe fn run(
        v: &mut [f64],
        minv: &mut [f64],
        used_f: &[f64],
        cost8: impl Fn(usize) -> __m512d,
        u_i0: f64,
        delta: Option<f64>,
        j0: usize,
        lo: usize,
        way: &[AtomicUsize],
        vec_n: usize,
    ) -> ([f64; 8], [i64; 8]) {
        // SAFETY: the caller upholds this fn's contract — AVX-512F
        // enabled, `vec_n` within every slice — so each unaligned
        // load/store at `k < vec_n` is in bounds.
        unsafe {
            const LANES: usize = 8;
            let inf_v = _mm512_set1_pd(f64::INFINITY);
            let u_v = _mm512_set1_pd(u_i0);
            let delta_v = _mm512_set1_pd(delta.unwrap_or(0.0));
            let has_delta = delta.is_some();
            let mut best_v = inf_v;
            let mut best_j_v = _mm512_setzero_si512();
            let mut j_v = _mm512_setr_epi64(
                lo as i64,
                lo as i64 + 1,
                lo as i64 + 2,
                lo as i64 + 3,
                lo as i64 + 4,
                lo as i64 + 5,
                lo as i64 + 6,
                lo as i64 + 7,
            );
            let step_v = _mm512_set1_epi64(LANES as i64);
            let zero_i = _mm512_setzero_si512();

            let mut k = 0usize;
            while k < vec_n {
                let uf = _mm512_loadu_pd(used_f.as_ptr().add(k));
                let used_m = _mm512_cmplt_epi64_mask(_mm512_castpd_si512(uf), zero_i);
                let mut mv = _mm512_loadu_pd(minv.as_ptr().add(k));
                let mut vv = _mm512_loadu_pd(v.as_ptr().add(k));
                if has_delta {
                    mv = _mm512_sub_pd(mv, delta_v);
                    vv = _mm512_mask_sub_pd(vv, used_m, vv, delta_v);
                    _mm512_storeu_pd(v.as_mut_ptr().add(k), vv);
                }
                let cur = _mm512_sub_pd(_mm512_sub_pd(cost8(k), u_v), vv);
                let cur = _mm512_mask_mov_pd(cur, used_m, inf_v);
                let lt = _mm512_cmp_pd_mask::<_CMP_LT_OQ>(cur, mv);
                mv = _mm512_mask_mov_pd(mv, lt, cur);
                _mm512_storeu_pd(minv.as_mut_ptr().add(k), mv);
                if lt != 0 {
                    for lane in 0..LANES {
                        if lt & (1 << lane) != 0 {
                            way[lo + k + lane].store(j0, Ordering::Relaxed);
                        }
                    }
                }
                let better = _mm512_cmp_pd_mask::<_CMP_LT_OQ>(mv, best_v);
                best_v = _mm512_mask_mov_pd(best_v, better, mv);
                best_j_v = _mm512_mask_mov_epi64(best_j_v, better, j_v);
                j_v = _mm512_add_epi64(j_v, step_v);
                k += LANES;
            }
            let mut best_arr = [0f64; 8];
            let mut j_arr = [0i64; 8];
            _mm512_storeu_pd(best_arr.as_mut_ptr(), best_v);
            _mm512_storeu_si512(j_arr.as_mut_ptr().cast(), best_j_v);
            (best_arr, j_arr)
        }
    }

    let n = minv.len();
    let vec_n = n - n % 8;
    let (best_arr, j_arr) = match row {
        // SAFETY: this fn's own contract matches `run`'s — AVX-512F is on
        // and `vec_n <= minv.len() <= r.len()` keeps the closure loads in
        // bounds.
        RowData::Slice(r) => unsafe {
            run(
                v,
                minv,
                used_f,
                |k| _mm512_loadu_pd(r.as_ptr().add(k)),
                u_i0,
                delta,
                j0,
                lo,
                way,
                vec_n,
            )
        },
        RowData::Point { x, y } => {
            let tx = _mm512_set1_pd(x);
            let ty = _mm512_set1_pd(y);
            // SAFETY: as above; `col_x`/`col_y` span the full block, so the
            // closure loads at `k < vec_n` are in bounds.
            unsafe {
                run(
                    v,
                    minv,
                    used_f,
                    |k| {
                        let dx = _mm512_sub_pd(tx, _mm512_loadu_pd(col_x.as_ptr().add(k)));
                        let dy = _mm512_sub_pd(ty, _mm512_loadu_pd(col_y.as_ptr().add(k)));
                        _mm512_sqrt_pd(_mm512_add_pd(_mm512_mul_pd(dx, dx), _mm512_mul_pd(dy, dy)))
                    },
                    u_i0,
                    delta,
                    j0,
                    lo,
                    way,
                    vec_n,
                )
            }
        }
    };
    let tail = fused_scan_scalar(
        v, minv, used_f, row, col_x, col_y, u_i0, delta, j0, lo, way, vec_n,
    );
    fold_lanes(&best_arr, &j_arr, tail)
}

/// Applies a pending dual update without scanning (row-end flush):
/// `v −= δ` on used columns, `minv −= δ` elsewhere, element-exact.
fn apply_update(v: &mut [f64], minv: &mut [f64], used_f: &[f64], delta: f64) {
    for k in 0..minv.len() {
        minv[k] -= delta;
        if used_f[k].is_sign_negative() {
            v[k] -= delta;
        }
    }
}

/// The blocked Hungarian engine behind [`hungarian_dense`]: `threads`
/// contiguous column blocks execute each augmenting step in lock step
/// (inline when `threads == 1`), the coordinator combines block minima in
/// `(value, lowest column)` order and drives the row potentials.
fn hungarian_blocked(rows: usize, matrix: CostMatrix<'_>, threads: usize) -> Vec<(usize, usize)> {
    const INF: f64 = f64::INFINITY;
    let cols = matrix.cols();
    let mut u = vec![0.0f64; rows + 1];
    // Column-indexed shared arrays: `p` (column → matched row) is written
    // by the coordinator only between steps; `way` records each column's
    // scan origin for path unwinding.
    let p: Vec<AtomicUsize> = (0..=cols).map(|_| AtomicUsize::new(0)).collect();
    let way: Vec<AtomicUsize> = (0..=cols).map(|_| AtomicUsize::new(0)).collect();

    // Contiguous column blocks over the 1-indexed range [1, cols]; block 0
    // belongs to the coordinator.
    let chunk = cols.div_ceil(threads);
    let bounds: Vec<(usize, usize)> = (0..threads)
        .map(|t| (1 + t * chunk, (1 + (t + 1) * chunk).min(cols + 1)))
        .filter(|&(lo, hi)| lo < hi)
        .collect();
    let workers = bounds.len();

    // Per-block ownership of v/minv/used_f as disjoint slices.
    let mut v_store = vec![0.0f64; cols];
    let mut minv_store = vec![INF; cols];
    let mut used_store = vec![0.0f64; cols];
    let mut blocks: Vec<Block<'_>> = Vec::with_capacity(workers);
    {
        let (mut v_rest, mut m_rest, mut u_rest) =
            (&mut v_store[..], &mut minv_store[..], &mut used_store[..]);
        for &(lo, hi) in &bounds {
            let (v_head, v_tail) = v_rest.split_at_mut(hi - lo);
            let (m_head, m_tail) = m_rest.split_at_mut(hi - lo);
            let (u_head, u_tail) = u_rest.split_at_mut(hi - lo);
            v_rest = v_tail;
            m_rest = m_tail;
            u_rest = u_tail;
            let (col_x, col_y) = matrix.col_block(lo, hi);
            blocks.push(Block {
                lo,
                hi,
                v: v_head,
                minv: m_head,
                used_f: u_head,
                col_x,
                col_y,
            });
        }
    }

    let state = StepState {
        command: AtomicUsize::new(CMD_SCAN),
        i0: AtomicUsize::new(1),
        u_i0: AtomicU64::new(0f64.to_bits()),
        j0: AtomicUsize::new(0),
        pending: AtomicU64::new(0),
        has_pending: AtomicBool::new(false),
        mark: AtomicUsize::new(NO_MARK),
        row_start: AtomicBool::new(true),
    };
    let mins: Vec<BlockMin> = (0..workers)
        .map(|_| BlockMin {
            best: AtomicU64::new(INF.to_bits()),
            best_j: AtomicUsize::new(0),
        })
        .collect();
    let start = StepBarrier::new(workers);
    let done = StepBarrier::new(workers);

    let mut result = Vec::with_capacity(rows);
    let mut own_block = blocks.remove(0);
    let (own_lo, own_hi) = (own_block.lo, own_block.hi);
    crossbeam::thread::scope(|scope| {
        // Blocks 1.. get scan threads (none in the inline/sequential mode).
        for (slot, mut block) in blocks.into_iter().enumerate() {
            let (state, way, start, done) = (&state, &way, &start, &done);
            let matrix = &matrix;
            let out = &mins[slot + 1];
            scope.spawn(move |_| loop {
                start.wait();
                if state.command.load(Ordering::Relaxed) == CMD_DONE {
                    done.wait();
                    return;
                }
                let step = state.recover(matrix, block.lo, block.hi);
                let (best, best_j) = block.step(&step, way);
                out.best.store(best.to_bits(), Ordering::Relaxed);
                out.best_j.store(best_j, Ordering::Relaxed);
                done.wait();
            });
        }

        // Executes one step across all blocks and returns the combined
        // (delta, column) minimum under the canonical tie rule.
        let mut run_step = |step: Step<'_>, i0: usize| -> (f64, usize) {
            if workers == 1 {
                return own_block.step(&step, &way);
            }
            state.publish(&step, i0);
            start.wait();
            let (own_best, own_j) = own_block.step(&step, &way);
            done.wait();
            let mut delta = own_best;
            let mut j1 = own_j;
            for m in &mins[1..] {
                let best = f64::from_bits(m.best.load(Ordering::Relaxed));
                // Strict <: ties keep the earlier (lower-column) block,
                // matching the ascending sequential scan.
                if best < delta {
                    delta = best;
                    j1 = m.best_j.load(Ordering::Relaxed);
                }
            }
            (delta, j1)
        };

        for i in 1..=rows {
            p[0].store(i, Ordering::Relaxed);
            // Columns marked used this row, in marking order; drives the
            // coordinator's `u[p[j]] += delta` updates (j = 0 stands for
            // the current row i).
            let mut used_cols: Vec<usize> = vec![0];
            let mut j0 = 0usize;
            let mut pending: Option<f64> = None;
            let mut mark: Option<usize> = None;
            let mut row_start = true;
            loop {
                let i0 = p[j0].load(Ordering::Relaxed);
                let (delta, j1) = run_step(
                    Step::Scan {
                        row: matrix.row_data(i0, own_lo, own_hi),
                        u_i0: u[i0],
                        j0,
                        delta: pending,
                        mark,
                        row_start,
                    },
                    i0,
                );
                row_start = false;
                debug_assert!(delta < INF, "graph must be complete");

                // The sequential loop applies `u[p[j]] += delta` for every
                // used column now; `v`/`minv` updates are fused into the
                // blocks' next pass.
                for &j in &used_cols {
                    let row = p[j].load(Ordering::Relaxed);
                    u[row] += delta;
                }
                pending = Some(delta);
                mark = Some(j1);

                j0 = j1;
                if p[j0].load(Ordering::Relaxed) == 0 {
                    // Flush the pending update so `v` is exact for the
                    // next row, then unwind the augmenting path.
                    run_step(Step::Flush { delta }, 0);
                    break;
                }
                used_cols.push(j0);
            }
            loop {
                let j1 = way[j0].load(Ordering::Relaxed);
                let moved = p[j1].load(Ordering::Relaxed);
                p[j0].store(moved, Ordering::Relaxed);
                j0 = j1;
                if j0 == 0 {
                    break;
                }
            }
        }

        if workers > 1 {
            state.command.store(CMD_DONE, Ordering::Relaxed);
            start.wait();
            done.wait();
        }

        for (j, slot) in p.iter().enumerate().skip(1) {
            let row = slot.load(Ordering::Relaxed);
            if row != 0 {
                result.push((row - 1, j - 1));
            }
        }
    })
    .expect("hungarian scan threads never panic");
    result
}

/// The pre-refactor Hungarian: probes `cost` on every scan step
/// (`O(k²·max(n,m))` closure evaluations), `rows ≤ cols`.
fn hungarian_reference<F>(rows: usize, cols: usize, cost: F) -> Vec<(usize, usize)>
where
    F: Fn(usize, usize) -> f64,
{
    debug_assert!(rows <= cols);
    const INF: f64 = f64::INFINITY;
    let mut u = vec![0.0f64; rows + 1];
    let mut v = vec![0.0f64; cols + 1];
    let mut p = vec![0usize; cols + 1];
    let mut way = vec![0usize; cols + 1];

    for i in 1..=rows {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; cols + 1];
        let mut used = vec![false; cols + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=cols {
                if used[j] {
                    continue;
                }
                let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                debug_assert!(cur.is_finite() || cur == INF, "cost must be finite");
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            debug_assert!(delta < INF, "graph must be complete");
            for j in 0..=cols {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    (1..=cols)
        .filter(|&j| p[j] != 0)
        .map(|j| (p[j] - 1, j - 1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pombm_geom::{seeded_rng, Point};
    use rand::Rng;

    #[test]
    fn trivial_instances() {
        let m = OfflineOptimal::solve(1, 1, |_, _| 3.0);
        assert_eq!(m.pairs, vec![(0, 0)]);
        assert_eq!(OfflineOptimal::solve(0, 5, |_, _| 1.0).size(), 0);
        assert_eq!(OfflineOptimal::solve(5, 0, |_, _| 1.0).size(), 0);
    }

    #[test]
    fn picks_cheaper_cross_assignment() {
        // cost matrix [[1, 10], [10, 1]] -> diagonal, total 2.
        let costs = [[1.0, 10.0], [10.0, 1.0]];
        let m = OfflineOptimal::solve(2, 2, |t, w| costs[t][w]);
        let total: f64 = m.pairs.iter().map(|&(t, w)| costs[t][w]).sum();
        assert!((total - 2.0).abs() < 1e-12);
        assert!(m.is_valid());
    }

    #[test]
    fn anti_greedy_instance() {
        // Greedy would pair task0 with worker0 (distance 1) forcing task1 to
        // worker1 (distance 10); OPT crosses for total 2 + 2 = 4... classic
        // configuration on a line: t0=0, t1=3; w0=1, w1=-10.
        let tasks = vec![Point::new(0.0, 0.0), Point::new(3.0, 0.0)];
        let workers = vec![Point::new(1.0, 0.0), Point::new(-10.0, 0.0)];
        let m = OfflineOptimal::solve_euclidean(&tasks, &workers);
        // OPT pairs t0-w1 (10) + t1-w0 (2) = 12 vs t0-w0 (1) + t1-w1 (13) =
        // 14: OPT must pick 12.
        let total = m.total_distance(&tasks, &workers);
        assert!((total - 12.0).abs() < 1e-9, "got {total}");
    }

    #[test]
    fn rectangular_more_workers() {
        let tasks = vec![Point::new(0.0, 0.0)];
        let workers = vec![
            Point::new(5.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(3.0, 0.0),
        ];
        let m = OfflineOptimal::solve_euclidean(&tasks, &workers);
        assert_eq!(m.pairs, vec![(0, 1)]);
    }

    #[test]
    fn rectangular_more_tasks() {
        let tasks = vec![
            Point::new(5.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(3.0, 0.0),
        ];
        let workers = vec![Point::new(0.0, 0.0)];
        let m = OfflineOptimal::solve_euclidean(&tasks, &workers);
        assert_eq!(m.pairs.len(), 1);
        assert_eq!(m.pairs[0], (1, 0), "nearest task gets the only worker");
    }

    /// Brute-force minimum over all permutations (small instances).
    fn brute_force(tasks: &[Point], workers: &[Point]) -> f64 {
        fn perms(k: usize) -> Vec<Vec<usize>> {
            if k == 0 {
                return vec![vec![]];
            }
            let mut out = Vec::new();
            for p in perms(k - 1) {
                for i in 0..=p.len() {
                    let mut q = p.clone();
                    q.insert(i, k - 1);
                    out.push(q);
                }
            }
            out
        }
        // Choose |tasks| workers out of n in all ordered ways: iterate over
        // permutations of workers and take the first |tasks|; minimal cost.
        let mut best = f64::INFINITY;
        for p in perms(workers.len()) {
            let total: f64 = tasks
                .iter()
                .zip(p.iter())
                .map(|(t, &w)| t.dist(&workers[w]))
                .sum();
            best = best.min(total);
        }
        best
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        let mut rng = seeded_rng(41, 0);
        for trial in 0..30 {
            let m_tasks = rng.gen_range(1..=5);
            let n_workers = rng.gen_range(m_tasks..=6);
            let tasks: Vec<Point> = (0..m_tasks)
                .map(|_| Point::new(rng.gen::<f64>() * 50.0, rng.gen::<f64>() * 50.0))
                .collect();
            let workers: Vec<Point> = (0..n_workers)
                .map(|_| Point::new(rng.gen::<f64>() * 50.0, rng.gen::<f64>() * 50.0))
                .collect();
            let opt = OfflineOptimal::solve_euclidean(&tasks, &workers);
            assert!(opt.is_valid());
            assert_eq!(opt.size(), m_tasks);
            let brute = brute_force(&tasks, &workers);
            let got = opt.total_distance(&tasks, &workers);
            assert!(
                (got - brute).abs() < 1e-9,
                "trial {trial}: hungarian {got} vs brute {brute}"
            );
        }
    }

    /// Brute-force minimum cost over every injective assignment of the
    /// smaller side into the larger one, for an arbitrary cost function.
    fn brute_force_cost<F: Fn(usize, usize) -> f64>(
        num_tasks: usize,
        num_workers: usize,
        cost: &F,
    ) -> f64 {
        fn dfs<G: Fn(usize, usize) -> f64>(
            row: usize,
            rows: usize,
            used: &mut Vec<bool>,
            cost: &G,
        ) -> f64 {
            if row == rows {
                return 0.0;
            }
            let mut best = f64::INFINITY;
            for col in 0..used.len() {
                if !used[col] {
                    used[col] = true;
                    best = best.min(cost(row, col) + dfs(row + 1, rows, used, cost));
                    used[col] = false;
                }
            }
            best
        }
        if num_tasks == 0 || num_workers == 0 {
            return 0.0;
        }
        if num_tasks <= num_workers {
            dfs(0, num_tasks, &mut vec![false; num_workers], cost)
        } else {
            dfs(0, num_workers, &mut vec![false; num_tasks], &|w, t| {
                cost(t, w)
            })
        }
    }

    /// Exhaustive comparison against the `O(n!)` brute force on every shape
    /// up to 6×6 — square, rectangular both ways, and 0/1-sided degenerate —
    /// with several seeded random cost matrices per shape.
    #[test]
    fn matches_brute_force_exhaustively_up_to_six_by_six() {
        let mut rng = seeded_rng(97, 0);
        for n_tasks in 0..=6usize {
            for n_workers in 0..=6usize {
                for trial in 0..4 {
                    let costs: Vec<Vec<f64>> = (0..n_tasks.max(1))
                        .map(|_| {
                            (0..n_workers.max(1))
                                .map(|_| (rng.gen::<f64>() * 100.0).round() / 4.0)
                                .collect()
                        })
                        .collect();
                    let cost = |t: usize, w: usize| costs[t][w];
                    let m = OfflineOptimal::solve(n_tasks, n_workers, cost);
                    assert!(m.is_valid(), "{n_tasks}x{n_workers} trial {trial}");
                    assert_eq!(
                        m.size(),
                        n_tasks.min(n_workers),
                        "{n_tasks}x{n_workers} trial {trial}: not maximum"
                    );
                    assert!(
                        m.pairs.iter().all(|&(t, w)| t < n_tasks && w < n_workers),
                        "{n_tasks}x{n_workers} trial {trial}: out-of-range pair"
                    );
                    let got: f64 = m.pairs.iter().map(|&(t, w)| cost(t, w)).sum();
                    let brute = brute_force_cost(n_tasks, n_workers, &cost);
                    let reference = if n_tasks.min(n_workers) == 0 {
                        0.0
                    } else {
                        brute
                    };
                    assert!(
                        (got - reference).abs() < 1e-9,
                        "{n_tasks}x{n_workers} trial {trial}: hungarian {got} vs brute {reference}"
                    );
                }
            }
        }
    }

    /// Ties and zero costs (many co-optimal matchings) must still hit the
    /// brute-force minimum.
    #[test]
    fn matches_brute_force_with_degenerate_costs() {
        let mut rng = seeded_rng(98, 0);
        for trial in 0..20 {
            let n_tasks = rng.gen_range(1..=5);
            let n_workers = rng.gen_range(1..=5);
            // Integer costs in {0, 1, 2}: heavy ties by construction.
            let costs: Vec<Vec<f64>> = (0..n_tasks)
                .map(|_| {
                    (0..n_workers)
                        .map(|_| rng.gen_range(0..3u32) as f64)
                        .collect()
                })
                .collect();
            let cost = |t: usize, w: usize| costs[t][w];
            let m = OfflineOptimal::solve(n_tasks, n_workers, cost);
            let got: f64 = m.pairs.iter().map(|&(t, w)| cost(t, w)).sum();
            let brute = brute_force_cost(n_tasks, n_workers, &cost);
            assert!(
                (got - brute).abs() < 1e-12,
                "trial {trial} ({n_tasks}x{n_workers}): hungarian {got} vs brute {brute}"
            );
        }
    }

    #[test]
    fn one_sided_and_single_pair_instances() {
        // 1×1: the only possible pair.
        assert_eq!(OfflineOptimal::solve(1, 1, |_, _| 7.5).pairs, vec![(0, 0)]);
        // 1×n and n×1 pick the cheapest partner.
        let m = OfflineOptimal::solve(1, 6, |_, w| (6 - w) as f64);
        assert_eq!(m.pairs, vec![(0, 5)]);
        let m = OfflineOptimal::solve(6, 1, |t, _| (t + 1) as f64);
        assert_eq!(m.pairs, vec![(0, 0)]);
        // 0-sided instances are empty, whatever the other side holds.
        for n in 0..=6 {
            assert_eq!(OfflineOptimal::solve(0, n, |_, _| 1.0).size(), 0);
            assert_eq!(OfflineOptimal::solve(n, 0, |_, _| 1.0).size(), 0);
        }
    }

    #[test]
    fn opt_lower_bounds_any_greedy_order() {
        let mut rng = seeded_rng(43, 0);
        let tasks: Vec<Point> = (0..40)
            .map(|_| Point::new(rng.gen::<f64>() * 100.0, rng.gen::<f64>() * 100.0))
            .collect();
        let workers: Vec<Point> = (0..50)
            .map(|_| Point::new(rng.gen::<f64>() * 100.0, rng.gen::<f64>() * 100.0))
            .collect();
        let opt =
            OfflineOptimal::solve_euclidean(&tasks, &workers).total_distance(&tasks, &workers);
        let mut greedy = crate::EuclideanGreedy::new(workers.clone());
        let mut greedy_total = 0.0;
        for t in &tasks {
            let w = greedy.assign(t).unwrap();
            greedy_total += t.dist(&workers[w]);
        }
        assert!(
            opt <= greedy_total + 1e-9,
            "OPT {opt} > greedy {greedy_total}"
        );
    }

    /// Random rectangular Euclidean instances: the dense solver and the
    /// parallel solver at several thread counts return the reference
    /// solver's exact pairs (and hence bit-identical totals).
    #[test]
    fn dense_and_parallel_match_reference_exactly() {
        let mut rng = seeded_rng(71, 0);
        for trial in 0..12 {
            let m_tasks = rng.gen_range(1..=90);
            let n_workers = rng.gen_range(1..=90);
            let tasks: Vec<Point> = (0..m_tasks)
                .map(|_| Point::new(rng.gen::<f64>() * 80.0, rng.gen::<f64>() * 80.0))
                .collect();
            let workers: Vec<Point> = (0..n_workers)
                .map(|_| Point::new(rng.gen::<f64>() * 80.0, rng.gen::<f64>() * 80.0))
                .collect();
            let cost = |t: usize, w: usize| tasks[t].dist(&workers[w]);
            let reference = OfflineOptimal::solve_reference(m_tasks, n_workers, cost);
            let dense = OfflineOptimal::solve(m_tasks, n_workers, cost);
            assert_eq!(dense.pairs, reference.pairs, "trial {trial}: dense drifted");
            for threads in [1usize, 2, 7] {
                let par = OfflineOptimal::solve_with_threads(m_tasks, n_workers, threads, cost);
                assert_eq!(
                    par.pairs, reference.pairs,
                    "trial {trial}: {threads} threads drifted"
                );
            }
        }
    }

    /// The parallel scan path proper (columns past the sequential-fallback
    /// cutoff) is bit-identical to the sequential dense scan, including on
    /// tie-heavy integer costs where the `(cost, lowest column)` rule is
    /// load-bearing.
    #[test]
    fn parallel_scan_path_is_bit_identical_beyond_the_cutoff() {
        let rows = 48;
        let cols = PARALLEL_MIN_COLS + 37;
        for (name, seed, tie_heavy) in [("euclidean", 5u64, false), ("ties", 6, true)] {
            let mut rng = seeded_rng(seed, 0);
            let a: Vec<f64> = (0..rows * cols)
                .map(|_| {
                    if tie_heavy {
                        rng.gen_range(0..4u32) as f64
                    } else {
                        rng.gen::<f64>() * 100.0
                    }
                })
                .collect();
            let cost = |t: usize, w: usize| a[t * cols + w];
            let sequential = OfflineOptimal::solve(rows, cols, cost);
            for threads in [2usize, 3, 7] {
                let par = OfflineOptimal::solve_with_threads(rows, cols, threads, cost);
                assert_eq!(par.pairs, sequential.pairs, "{name}: {threads} threads");
            }
            // Swapped orientation exercises the transposed materialization.
            let transposed = |t: usize, w: usize| a[w * cols + t];
            let swapped_seq = OfflineOptimal::solve(cols, rows, transposed);
            let swapped_par = OfflineOptimal::solve_with_threads(cols, rows, 5, transposed);
            assert_eq!(swapped_par.pairs, swapped_seq.pairs, "{name}: swapped");
        }
    }

    /// The Euclidean entry point is bit-identical to the closure-probing
    /// reference in both orientations, at several thread counts, in both
    /// engine regimes: the cache-resident dense path (small instances,
    /// past the parallel cutoff) and the in-kernel distance path (past
    /// the dense/Euclid crossover).
    #[test]
    fn euclid_kernels_match_reference_across_threads_and_orientations() {
        let mut rng = seeded_rng(31, 0);
        let mut points = |n: usize| -> Vec<Point> {
            (0..n)
                .map(|_| Point::new(rng.gen::<f64>() * 150.0, rng.gen::<f64>() * 150.0))
                .collect()
        };
        let small = points(70);
        // Past the parallel cutoff but within the dense crossover.
        let mid = points(PARALLEL_MIN_COLS + 53);
        // 40 × this exceeds EUCLID_DENSE_MAX_CELLS: the in-kernel
        // distance path runs (rows stay few so the check is fast).
        let tiny = points(40);
        let huge = points(EUCLID_DENSE_MAX_CELLS / 40 + 101);
        assert!(tiny.len() * huge.len() > EUCLID_DENSE_MAX_CELLS);
        for (tasks, workers) in [
            (&small, &mid),
            (&mid, &small),
            (&tiny, &huge),
            (&huge, &tiny),
        ] {
            let reference = OfflineOptimal::solve_reference(tasks.len(), workers.len(), |t, w| {
                tasks[t].dist(&workers[w])
            });
            for threads in [1usize, 2, 7] {
                let got = OfflineOptimal::solve_euclidean_with_threads(tasks, workers, threads);
                assert_eq!(
                    got.pairs,
                    reference.pairs,
                    "{}x{} at {threads} threads",
                    tasks.len(),
                    workers.len()
                );
            }
        }
    }

    #[test]
    fn auto_thread_count_resolves() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
        // threads = 0 must run and agree on a mid-size instance.
        let mut rng = seeded_rng(9, 0);
        let a: Vec<f64> = (0..32 * 1200).map(|_| rng.gen::<f64>()).collect();
        let cost = |t: usize, w: usize| a[t * 1200 + w];
        let auto = OfflineOptimal::solve_with_threads(32, 1200, 0, cost);
        let seq = OfflineOptimal::solve(32, 1200, cost);
        assert_eq!(auto.pairs, seq.pairs);
    }
}
