//! Exact offline minimum-cost bipartite matching.
//!
//! `OPT` in the competitive-ratio definition (Definition 8) is the minimum
//! total distance matching when *all* tasks and workers are known in
//! advance. This module implements the Hungarian algorithm in its successive
//! shortest augmenting path form with dual potentials — `O(k²·max(n,m))`
//! for `k = min(n,m)` — which is exact and fast enough for the
//! competitive-ratio experiments on instances with a few thousand points.

use crate::Matching;

/// Exact min-cost bipartite matching over an explicit cost function.
#[derive(Debug, Clone, Copy, Default)]
pub struct OfflineOptimal;

impl OfflineOptimal {
    /// Computes a minimum-total-cost matching of size `min(num_tasks,
    /// num_workers)`; `cost(t, w)` gives the edge cost.
    ///
    /// Costs must be finite and non-negative.
    pub fn solve<F>(num_tasks: usize, num_workers: usize, cost: F) -> Matching
    where
        F: Fn(usize, usize) -> f64,
    {
        if num_tasks == 0 || num_workers == 0 {
            return Matching::new();
        }
        // The potentials formulation needs rows ≤ columns; swap sides when
        // there are more tasks than workers.
        if num_tasks <= num_workers {
            let assignment = hungarian(num_tasks, num_workers, &cost);
            Matching { pairs: assignment }
        } else {
            let assignment = hungarian(num_workers, num_tasks, |r, c| cost(c, r));
            Matching {
                pairs: assignment.into_iter().map(|(w, t)| (t, w)).collect(),
            }
        }
    }

    /// Convenience wrapper over Euclidean points: minimizes total travel
    /// distance between `tasks` and `workers`.
    pub fn solve_euclidean(tasks: &[pombm_geom::Point], workers: &[pombm_geom::Point]) -> Matching {
        Self::solve(tasks.len(), workers.len(), |t, w| {
            tasks[t].dist(&workers[w])
        })
    }
}

/// Hungarian algorithm (shortest augmenting paths with potentials) for
/// `rows ≤ cols`. Returns `(row, col)` pairs for every row.
fn hungarian<F>(rows: usize, cols: usize, cost: F) -> Vec<(usize, usize)>
where
    F: Fn(usize, usize) -> f64,
{
    debug_assert!(rows <= cols);
    const INF: f64 = f64::INFINITY;
    // 1-indexed arrays; p[j] = row matched to column j (0 = free).
    let mut u = vec![0.0f64; rows + 1];
    let mut v = vec![0.0f64; cols + 1];
    let mut p = vec![0usize; cols + 1];
    let mut way = vec![0usize; cols + 1];

    for i in 1..=rows {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; cols + 1];
        let mut used = vec![false; cols + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=cols {
                if used[j] {
                    continue;
                }
                let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                debug_assert!(cur.is_finite() || cur == INF, "cost must be finite");
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            debug_assert!(delta < INF, "graph must be complete");
            for j in 0..=cols {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Unwind the augmenting path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    (1..=cols)
        .filter(|&j| p[j] != 0)
        .map(|j| (p[j] - 1, j - 1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pombm_geom::{seeded_rng, Point};
    use rand::Rng;

    #[test]
    fn trivial_instances() {
        let m = OfflineOptimal::solve(1, 1, |_, _| 3.0);
        assert_eq!(m.pairs, vec![(0, 0)]);
        assert_eq!(OfflineOptimal::solve(0, 5, |_, _| 1.0).size(), 0);
        assert_eq!(OfflineOptimal::solve(5, 0, |_, _| 1.0).size(), 0);
    }

    #[test]
    fn picks_cheaper_cross_assignment() {
        // cost matrix [[1, 10], [10, 1]] -> diagonal, total 2.
        let costs = [[1.0, 10.0], [10.0, 1.0]];
        let m = OfflineOptimal::solve(2, 2, |t, w| costs[t][w]);
        let total: f64 = m.pairs.iter().map(|&(t, w)| costs[t][w]).sum();
        assert!((total - 2.0).abs() < 1e-12);
        assert!(m.is_valid());
    }

    #[test]
    fn anti_greedy_instance() {
        // Greedy would pair task0 with worker0 (distance 1) forcing task1 to
        // worker1 (distance 10); OPT crosses for total 2 + 2 = 4... classic
        // configuration on a line: t0=0, t1=3; w0=1, w1=-10.
        let tasks = vec![Point::new(0.0, 0.0), Point::new(3.0, 0.0)];
        let workers = vec![Point::new(1.0, 0.0), Point::new(-10.0, 0.0)];
        let m = OfflineOptimal::solve_euclidean(&tasks, &workers);
        // OPT pairs t0-w1 (10) + t1-w0 (2) = 12 vs t0-w0 (1) + t1-w1 (13) =
        // 14: OPT must pick 12.
        let total = m.total_distance(&tasks, &workers);
        assert!((total - 12.0).abs() < 1e-9, "got {total}");
    }

    #[test]
    fn rectangular_more_workers() {
        let tasks = vec![Point::new(0.0, 0.0)];
        let workers = vec![
            Point::new(5.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(3.0, 0.0),
        ];
        let m = OfflineOptimal::solve_euclidean(&tasks, &workers);
        assert_eq!(m.pairs, vec![(0, 1)]);
    }

    #[test]
    fn rectangular_more_tasks() {
        let tasks = vec![
            Point::new(5.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(3.0, 0.0),
        ];
        let workers = vec![Point::new(0.0, 0.0)];
        let m = OfflineOptimal::solve_euclidean(&tasks, &workers);
        assert_eq!(m.pairs.len(), 1);
        assert_eq!(m.pairs[0], (1, 0), "nearest task gets the only worker");
    }

    /// Brute-force minimum over all permutations (small instances).
    fn brute_force(tasks: &[Point], workers: &[Point]) -> f64 {
        fn perms(k: usize) -> Vec<Vec<usize>> {
            if k == 0 {
                return vec![vec![]];
            }
            let mut out = Vec::new();
            for p in perms(k - 1) {
                for i in 0..=p.len() {
                    let mut q = p.clone();
                    q.insert(i, k - 1);
                    out.push(q);
                }
            }
            out
        }
        // Choose |tasks| workers out of n in all ordered ways: iterate over
        // permutations of workers and take the first |tasks|; minimal cost.
        let mut best = f64::INFINITY;
        for p in perms(workers.len()) {
            let total: f64 = tasks
                .iter()
                .zip(p.iter())
                .map(|(t, &w)| t.dist(&workers[w]))
                .sum();
            best = best.min(total);
        }
        best
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        let mut rng = seeded_rng(41, 0);
        for trial in 0..30 {
            let m_tasks = rng.gen_range(1..=5);
            let n_workers = rng.gen_range(m_tasks..=6);
            let tasks: Vec<Point> = (0..m_tasks)
                .map(|_| Point::new(rng.gen::<f64>() * 50.0, rng.gen::<f64>() * 50.0))
                .collect();
            let workers: Vec<Point> = (0..n_workers)
                .map(|_| Point::new(rng.gen::<f64>() * 50.0, rng.gen::<f64>() * 50.0))
                .collect();
            let opt = OfflineOptimal::solve_euclidean(&tasks, &workers);
            assert!(opt.is_valid());
            assert_eq!(opt.size(), m_tasks);
            let brute = brute_force(&tasks, &workers);
            let got = opt.total_distance(&tasks, &workers);
            assert!(
                (got - brute).abs() < 1e-9,
                "trial {trial}: hungarian {got} vs brute {brute}"
            );
        }
    }

    /// Brute-force minimum cost over every injective assignment of the
    /// smaller side into the larger one, for an arbitrary cost function.
    fn brute_force_cost<F: Fn(usize, usize) -> f64>(
        num_tasks: usize,
        num_workers: usize,
        cost: &F,
    ) -> f64 {
        fn dfs<G: Fn(usize, usize) -> f64>(
            row: usize,
            rows: usize,
            used: &mut Vec<bool>,
            cost: &G,
        ) -> f64 {
            if row == rows {
                return 0.0;
            }
            let mut best = f64::INFINITY;
            for col in 0..used.len() {
                if !used[col] {
                    used[col] = true;
                    best = best.min(cost(row, col) + dfs(row + 1, rows, used, cost));
                    used[col] = false;
                }
            }
            best
        }
        if num_tasks == 0 || num_workers == 0 {
            return 0.0;
        }
        if num_tasks <= num_workers {
            dfs(0, num_tasks, &mut vec![false; num_workers], cost)
        } else {
            dfs(0, num_workers, &mut vec![false; num_tasks], &|w, t| {
                cost(t, w)
            })
        }
    }

    /// Exhaustive comparison against the `O(n!)` brute force on every shape
    /// up to 6×6 — square, rectangular both ways, and 0/1-sided degenerate —
    /// with several seeded random cost matrices per shape.
    #[test]
    fn matches_brute_force_exhaustively_up_to_six_by_six() {
        let mut rng = seeded_rng(97, 0);
        for n_tasks in 0..=6usize {
            for n_workers in 0..=6usize {
                for trial in 0..4 {
                    let costs: Vec<Vec<f64>> = (0..n_tasks.max(1))
                        .map(|_| {
                            (0..n_workers.max(1))
                                .map(|_| (rng.gen::<f64>() * 100.0).round() / 4.0)
                                .collect()
                        })
                        .collect();
                    let cost = |t: usize, w: usize| costs[t][w];
                    let m = OfflineOptimal::solve(n_tasks, n_workers, cost);
                    assert!(m.is_valid(), "{n_tasks}x{n_workers} trial {trial}");
                    assert_eq!(
                        m.size(),
                        n_tasks.min(n_workers),
                        "{n_tasks}x{n_workers} trial {trial}: not maximum"
                    );
                    assert!(
                        m.pairs.iter().all(|&(t, w)| t < n_tasks && w < n_workers),
                        "{n_tasks}x{n_workers} trial {trial}: out-of-range pair"
                    );
                    let got: f64 = m.pairs.iter().map(|&(t, w)| cost(t, w)).sum();
                    let brute = brute_force_cost(n_tasks, n_workers, &cost);
                    let reference = if n_tasks.min(n_workers) == 0 {
                        0.0
                    } else {
                        brute
                    };
                    assert!(
                        (got - reference).abs() < 1e-9,
                        "{n_tasks}x{n_workers} trial {trial}: hungarian {got} vs brute {reference}"
                    );
                }
            }
        }
    }

    /// Ties and zero costs (many co-optimal matchings) must still hit the
    /// brute-force minimum.
    #[test]
    fn matches_brute_force_with_degenerate_costs() {
        let mut rng = seeded_rng(98, 0);
        for trial in 0..20 {
            let n_tasks = rng.gen_range(1..=5);
            let n_workers = rng.gen_range(1..=5);
            // Integer costs in {0, 1, 2}: heavy ties by construction.
            let costs: Vec<Vec<f64>> = (0..n_tasks)
                .map(|_| {
                    (0..n_workers)
                        .map(|_| rng.gen_range(0..3u32) as f64)
                        .collect()
                })
                .collect();
            let cost = |t: usize, w: usize| costs[t][w];
            let m = OfflineOptimal::solve(n_tasks, n_workers, cost);
            let got: f64 = m.pairs.iter().map(|&(t, w)| cost(t, w)).sum();
            let brute = brute_force_cost(n_tasks, n_workers, &cost);
            assert!(
                (got - brute).abs() < 1e-12,
                "trial {trial} ({n_tasks}x{n_workers}): hungarian {got} vs brute {brute}"
            );
        }
    }

    #[test]
    fn one_sided_and_single_pair_instances() {
        // 1×1: the only possible pair.
        assert_eq!(OfflineOptimal::solve(1, 1, |_, _| 7.5).pairs, vec![(0, 0)]);
        // 1×n and n×1 pick the cheapest partner.
        let m = OfflineOptimal::solve(1, 6, |_, w| (6 - w) as f64);
        assert_eq!(m.pairs, vec![(0, 5)]);
        let m = OfflineOptimal::solve(6, 1, |t, _| (t + 1) as f64);
        assert_eq!(m.pairs, vec![(0, 0)]);
        // 0-sided instances are empty, whatever the other side holds.
        for n in 0..=6 {
            assert_eq!(OfflineOptimal::solve(0, n, |_, _| 1.0).size(), 0);
            assert_eq!(OfflineOptimal::solve(n, 0, |_, _| 1.0).size(), 0);
        }
    }

    #[test]
    fn opt_lower_bounds_any_greedy_order() {
        let mut rng = seeded_rng(43, 0);
        let tasks: Vec<Point> = (0..40)
            .map(|_| Point::new(rng.gen::<f64>() * 100.0, rng.gen::<f64>() * 100.0))
            .collect();
        let workers: Vec<Point> = (0..50)
            .map(|_| Point::new(rng.gen::<f64>() * 100.0, rng.gen::<f64>() * 100.0))
            .collect();
        let opt =
            OfflineOptimal::solve_euclidean(&tasks, &workers).total_distance(&tasks, &workers);
        let mut greedy = crate::EuclideanGreedy::new(workers.clone());
        let mut greedy_total = 0.0;
        for t in &tasks {
            let w = greedy.assign(t).unwrap();
            greedy_total += t.dist(&workers[w]);
        }
        assert!(
            opt <= greedy_total + 1e-9,
            "OPT {opt} > greedy {greedy_total}"
        );
    }
}
