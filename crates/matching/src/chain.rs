//! Chain-reassignment online matching (Bansal et al., Algorithmica 2014).
//!
//! The paper's related work describes the `O(log² k)`-competitive algorithm
//! of its ref \[19\] as: *"The algorithm successively assigns the task to
//! workers (including those matched ones) until it finds an unmatched
//! worker as the result."* This module implements exactly that chain rule
//! on the HST metric:
//!
//! 1. An arriving task `t` finds its nearest worker `w₁` — matched or not.
//! 2. If `w₁` is unmatched, assign and stop. Otherwise the search restarts
//!    *from `w₁`'s leaf*, excluding workers already visited by this chain,
//!    and repeats until an unmatched worker is reached.
//!
//! The chain hops are where the competitive-ratio magic lives: a task that
//! lands in a crowded, exhausted region pays the local detour step by step
//! rather than jumping straight across the tree. Each hop is a nearest
//! query over non-visited workers, so a task costs `O(h·n·D)` where `h` is
//! its chain length; the worst case is slower than greedy but `h` is small
//! in practice.
//!
//! This is a baseline/extension for comparing online assignment rules under
//! the same privacy mechanisms; the paper's own TBF uses plain greedy
//! (Alg. 4).

use pombm_hst::{CodeContext, LeafCode};

/// Online chain-reassignment matcher on the complete HST (see module docs).
#[derive(Debug, Clone)]
pub struct ChainMatcher {
    ctx: CodeContext,
    workers: Vec<LeafCode>,
    matched: Vec<bool>,
    remaining: usize,
    /// Scratch marker per worker; `visit_epoch[i] == epoch` means worker `i`
    /// was already visited by the current chain. Reused across tasks to
    /// avoid a per-task allocation.
    visit_epoch: Vec<u64>,
    epoch: u64,
}

/// Statistics of a single chain assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainOutcome {
    /// Index of the unmatched worker finally assigned.
    pub worker: usize,
    /// Number of matched workers the chain passed through before ending
    /// (0 = behaved exactly like greedy).
    pub hops: usize,
}

impl ChainMatcher {
    /// Creates a matcher over the reported (obfuscated) worker leaves.
    pub fn new(ctx: CodeContext, workers: Vec<LeafCode>) -> Self {
        let n = workers.len();
        ChainMatcher {
            ctx,
            workers,
            matched: vec![false; n],
            remaining: n,
            visit_epoch: vec![0; n],
            epoch: 0,
        }
    }

    /// Number of still-unassigned workers.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Runs the chain rule for a task at leaf `t`; returns the assigned
    /// worker and the chain length, or `None` when all workers are taken.
    pub fn assign(&mut self, t: LeafCode) -> Option<ChainOutcome> {
        if self.remaining == 0 {
            return None;
        }
        self.epoch += 1;
        let mut from = t;
        let mut hops = 0usize;
        loop {
            let next = self.nearest_unvisited(from)?;
            self.visit_epoch[next] = self.epoch;
            if !self.matched[next] {
                self.matched[next] = true;
                self.remaining -= 1;
                return Some(ChainOutcome { worker: next, hops });
            }
            hops += 1;
            from = self.workers[next];
        }
    }

    /// Nearest worker (matched or not) not yet visited by the current
    /// chain, with the canonical (distance, leaf code, index) tie-break.
    fn nearest_unvisited(&self, from: LeafCode) -> Option<usize> {
        let mut best: Option<(usize, u64, u64)> = None;
        for (i, &w) in self.workers.iter().enumerate() {
            if self.visit_epoch[i] == self.epoch {
                continue;
            }
            let d = self.ctx.tree_dist_units(from, w);
            if best.is_none_or(|(_, bd, bc)| (d, w.0) < (bd, bc)) {
                best = Some((i, d, w.0));
            }
        }
        best.map(|(i, _, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pombm_geom::seeded_rng;
    use rand::Rng;

    fn ctx() -> CodeContext {
        CodeContext::new(2, 4)
    }

    #[test]
    fn behaves_like_greedy_when_unmatched_is_nearest() {
        let mut m = ChainMatcher::new(ctx(), vec![LeafCode(0), LeafCode(8)]);
        let out = m.assign(LeafCode(1)).unwrap();
        assert_eq!(out.worker, 0);
        assert_eq!(out.hops, 0);
    }

    #[test]
    fn chain_hops_through_matched_workers() {
        // Workers at 0 and 1; first task takes 0. Second task at leaf 0:
        // nearest is the matched worker 0 (distance 0), chain hops to it,
        // then finds worker 1 from leaf 0.
        let mut m = ChainMatcher::new(ctx(), vec![LeafCode(0), LeafCode(1)]);
        assert_eq!(m.assign(LeafCode(0)).unwrap().worker, 0);
        let out = m.assign(LeafCode(0)).unwrap();
        assert_eq!(out.worker, 1);
        assert_eq!(out.hops, 1);
    }

    #[test]
    fn chain_can_be_longer_than_one_hop() {
        // Workers clustered at leaves 0,1,2 plus one far at 15. Exhaust the
        // cluster: the final cluster task must hop through matched workers
        // before reaching the far worker.
        let mut m = ChainMatcher::new(
            ctx(),
            vec![LeafCode(0), LeafCode(1), LeafCode(2), LeafCode(15)],
        );
        assert_eq!(m.assign(LeafCode(0)).unwrap().worker, 0);
        assert_eq!(m.assign(LeafCode(1)).unwrap().worker, 1);
        assert_eq!(m.assign(LeafCode(2)).unwrap().worker, 2);
        let out = m.assign(LeafCode(0)).unwrap();
        assert_eq!(out.worker, 3);
        assert!(out.hops >= 1, "expected a chain, got {out:?}");
    }

    #[test]
    fn all_tasks_match_and_assignment_is_a_permutation() {
        let c = CodeContext::new(3, 4);
        let mut rng = seeded_rng(5, 0);
        let workers: Vec<LeafCode> = (0..50)
            .map(|_| LeafCode(rng.gen_range(0..c.num_leaves())))
            .collect();
        let tasks: Vec<LeafCode> = (0..50)
            .map(|_| LeafCode(rng.gen_range(0..c.num_leaves())))
            .collect();
        let mut m = ChainMatcher::new(c, workers);
        let mut seen = std::collections::HashSet::new();
        for &t in &tasks {
            let out = m.assign(t).unwrap();
            assert!(seen.insert(out.worker), "worker assigned twice");
        }
        assert_eq!(m.remaining(), 0);
        assert_eq!(m.assign(LeafCode(0)), None);
    }

    #[test]
    fn chain_never_revisits_a_worker() {
        // With every worker at the same leaf the chain must still terminate
        // (the visited set breaks the distance-0 cycle).
        let mut m = ChainMatcher::new(ctx(), vec![LeafCode(7); 6]);
        for i in 0..6 {
            let out = m.assign(LeafCode(7)).unwrap();
            assert_eq!(out.hops, i, "task {i} should hop through {i} matched");
        }
        assert_eq!(m.assign(LeafCode(7)), None);
    }

    #[test]
    fn empty_pool_returns_none() {
        let mut m = ChainMatcher::new(ctx(), vec![]);
        assert_eq!(m.assign(LeafCode(0)), None);
    }
}
