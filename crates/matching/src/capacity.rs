//! Capacitated HST-greedy: workers that can serve more than one task.
//!
//! The paper matches each worker at most once (OMBM is a bipartite
//! *matching*). Real platforms let a driver take several orders per shift;
//! this module generalizes Alg. 4 to per-worker capacities — an extension
//! the paper leaves open. A worker with capacity `q` behaves exactly like
//! `q` co-located copies of a unit worker, so the ultrametric nearest-free
//! walk and its guarantees carry over unchanged: the matcher simply keeps a
//! worker in the pool until its residual capacity reaches zero.

use pombm_hst::{CodeContext, LeafCode, SubtreeCounter};
use std::collections::BTreeMap;

/// Online greedy matcher where worker `i` may serve up to `capacity[i]`
/// tasks. Each arriving task goes to the tree-nearest worker with residual
/// capacity.
#[derive(Debug, Clone)]
pub struct CapacitatedGreedy {
    counter: SubtreeCounter,
    /// Workers resident at each occupied leaf, lowest index popped first.
    /// `BTreeMap` so the stack-fixup iteration below is hash-seed free.
    residents: BTreeMap<LeafCode, Vec<usize>>,
    workers: Vec<LeafCode>,
    residual: Vec<u32>,
    remaining_slots: usize,
}

impl CapacitatedGreedy {
    /// Creates a matcher from worker leaves and per-worker capacities.
    ///
    /// # Panics
    ///
    /// Panics if the two slices differ in length.
    pub fn new(ctx: CodeContext, workers: Vec<LeafCode>, capacity: Vec<u32>) -> Self {
        assert_eq!(
            workers.len(),
            capacity.len(),
            "one capacity per worker required"
        );
        let mut counter = SubtreeCounter::new(ctx);
        let mut residents: BTreeMap<LeafCode, Vec<usize>> = BTreeMap::new();
        let mut remaining_slots = 0usize;
        for (i, (&w, &q)) in workers.iter().zip(&capacity).enumerate() {
            if q > 0 {
                counter.insert(w);
                residents.entry(w).or_default().push(i);
                remaining_slots += q as usize;
            }
        }
        // Lower ids pop first (stacks are LIFO).
        for stack in residents.values_mut() {
            stack.sort_unstable_by(|a, b| b.cmp(a));
        }
        CapacitatedGreedy {
            counter,
            residents,
            workers,
            residual: capacity,
            remaining_slots,
        }
    }

    /// Uniform capacity `q` for every worker.
    pub fn uniform(ctx: CodeContext, workers: Vec<LeafCode>, q: u32) -> Self {
        let n = workers.len();
        Self::new(ctx, workers, vec![q; n])
    }

    /// Total unassigned task slots across all workers.
    #[inline]
    pub fn remaining_slots(&self) -> usize {
        self.remaining_slots
    }

    /// Residual capacity of worker `i`.
    #[inline]
    pub fn residual(&self, i: usize) -> u32 {
        self.residual[i]
    }

    /// Assigns the tree-nearest worker with residual capacity to the task
    /// leaf `t`. Returns `None` when every worker is saturated.
    pub fn assign(&mut self, t: LeafCode) -> Option<usize> {
        if self.remaining_slots == 0 {
            return None;
        }
        let leaf = self.counter.nearest(t)?;
        // Peek the lowest-id resident; only drop it from the pool when its
        // capacity is exhausted.
        let stack = self
            .residents
            .get_mut(&leaf)
            .expect("counter and residents agree");
        let w = *stack.last().expect("non-empty stack for counted leaf");
        debug_assert!(self.residual[w] > 0);
        self.residual[w] -= 1;
        self.remaining_slots -= 1;
        if self.residual[w] == 0 {
            stack.pop();
            let removed = self.counter.remove(self.workers[w]);
            debug_assert!(removed);
        }
        Some(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pombm_geom::seeded_rng;
    use rand::Rng;

    fn ctx() -> CodeContext {
        CodeContext::new(2, 4)
    }

    #[test]
    fn capacity_one_equals_plain_greedy() {
        let c = CodeContext::new(3, 4);
        let mut rng = seeded_rng(0, 0);
        let workers: Vec<LeafCode> = (0..40)
            .map(|_| LeafCode(rng.gen_range(0..c.num_leaves())))
            .collect();
        let tasks: Vec<LeafCode> = (0..40)
            .map(|_| LeafCode(rng.gen_range(0..c.num_leaves())))
            .collect();
        let mut cap = CapacitatedGreedy::uniform(c, workers.clone(), 1);
        let mut plain = crate::HstGreedy::new(c, workers, crate::HstGreedyEngine::Indexed);
        for &t in &tasks {
            assert_eq!(cap.assign(t), plain.assign(t), "task {t}");
        }
    }

    #[test]
    fn worker_serves_until_saturation() {
        let mut m = CapacitatedGreedy::new(ctx(), vec![LeafCode(0), LeafCode(15)], vec![3, 1]);
        assert_eq!(m.remaining_slots(), 4);
        // Three tasks at leaf 0 all go to worker 0.
        for _ in 0..3 {
            assert_eq!(m.assign(LeafCode(0)), Some(0));
        }
        assert_eq!(m.residual(0), 0);
        // Worker 0 is saturated; the next nearby task crosses the tree.
        assert_eq!(m.assign(LeafCode(0)), Some(1));
        assert_eq!(m.assign(LeafCode(0)), None);
    }

    #[test]
    fn zero_capacity_workers_never_assigned() {
        let mut m = CapacitatedGreedy::new(ctx(), vec![LeafCode(0), LeafCode(1)], vec![0, 2]);
        assert_eq!(m.assign(LeafCode(0)), Some(1));
        assert_eq!(m.assign(LeafCode(0)), Some(1));
        assert_eq!(m.assign(LeafCode(0)), None);
    }

    #[test]
    fn per_worker_loads_respect_capacities() {
        let c = CodeContext::new(2, 5);
        let mut rng = seeded_rng(1, 0);
        let workers: Vec<LeafCode> = (0..10)
            .map(|_| LeafCode(rng.gen_range(0..c.num_leaves())))
            .collect();
        let caps: Vec<u32> = (0..10).map(|_| rng.gen_range(0..4)).collect();
        let slots: usize = caps.iter().sum::<u32>() as usize;
        let mut m = CapacitatedGreedy::new(c, workers, caps.clone());
        let mut load = [0u32; 10];
        let mut assigned = 0;
        loop {
            let t = LeafCode(rng.gen_range(0..c.num_leaves()));
            match m.assign(t) {
                Some(w) => {
                    load[w] += 1;
                    assigned += 1;
                }
                None => break,
            }
        }
        assert_eq!(assigned, slots, "all slots must be fillable");
        for (w, (&l, &q)) in load.iter().zip(&caps).enumerate() {
            assert!(l <= q, "worker {w} over capacity: {l} > {q}");
        }
    }

    #[test]
    #[should_panic(expected = "one capacity per worker")]
    fn mismatched_lengths_panic() {
        let _ = CapacitatedGreedy::new(ctx(), vec![LeafCode(0)], vec![1, 2]);
    }
}
