//! Clairvoyant offline optimum on a time-expanded feasibility graph.
//!
//! The dynamic driver replays a shift/task timeline online: a task can only
//! go to a worker that is on shift at the arrival instant and not already
//! consumed. The *clairvoyant* optimum answers "what would a scheduler with
//! the whole timeline revealed in advance have paid": a
//! maximum-cardinality, minimum-total-cost matching over exactly the edges
//! the online driver could ever have used. It is the denominator of the
//! dynamic competitive ratio (the churn analogue of Definition 8's `OPT`).
//!
//! # Reduction to the dense Hungarian engine
//!
//! Rather than a bespoke sparse solver, the production path pads the
//! feasibility graph into a complete bipartite instance and reuses the
//! cache-blocked successive-shortest-augmenting-path engine of
//! [`OfflineOptimal`] (dense materialization + fused SIMD column scans +
//! blocked threading): every infeasible edge gets one shared penalty cost
//! `BIG`, chosen as a power of two strictly greater than
//! `min(n, m) · max_feasible_cost`. Any matching that uses one fewer
//! penalty edge then beats any real-cost rearrangement, so the padded
//! optimum uses as few penalty edges as possible — i.e. it is
//! maximum-cardinality over the *feasible* edges — and among those it
//! minimizes the real cost. Stripping the penalty pairs afterwards yields
//! the clairvoyant assignment. With integer edge costs the power-of-two
//! penalty keeps every dual update exact in `f64`, which is what lets the
//! equivalence tests compare totals bit-for-bit.
//!
//! The result inherits [`OfflineOptimal`]'s determinism contract: the
//! assignment is bit-identical at every thread count.
//!
//! # Reference solver
//!
//! [`ClairvoyantOptimal::solve_reference`] re-solves the same padded
//! instance as a naive successive-shortest-path min-cost-flow: each
//! augmenting path is found by plain Bellman-Ford relaxation sweeps over
//! the residual graph, with no dual potentials, no materialized matrix and
//! no SIMD. Under cost ties distinct optimal matchings exist and the two
//! engines may pick different ones, so equivalence is pinned on the
//! optimum's invariants — cardinality and total cost (bit-exact on integer
//! costs) — rather than on the pair list.

use crate::offline::OfflineOptimal;
use crate::Matching;

/// Exact clairvoyant matching over an explicit feasibility predicate.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClairvoyantOptimal;

/// The clairvoyant optimum: feasible pairs, unmatchable tasks, total cost.
#[derive(Debug, Clone, PartialEq)]
pub struct ClairvoyantAssignment {
    /// Matched `(task, worker)` pairs over feasible edges only, sorted by
    /// task index.
    pub pairs: Vec<(usize, usize)>,
    /// Tasks the optimum leaves unmatched (no feasible worker left even
    /// with full foresight), ascending.
    pub dropped: Vec<usize>,
    /// Total cost of `pairs`, summed in worker-index order — the same
    /// arrival-invariant convention as the static ratio denominator.
    pub total_cost: f64,
}

impl ClairvoyantAssignment {
    /// Number of matched pairs.
    pub fn size(&self) -> usize {
        self.pairs.len()
    }
}

impl ClairvoyantOptimal {
    /// Computes the maximum-cardinality, minimum-total-cost matching using
    /// only edges with `feasible(task, worker)`, sequentially.
    ///
    /// `cost(task, worker)` must be finite and non-negative for feasible
    /// edges; it is never evaluated on infeasible ones.
    pub fn solve<F, C>(
        num_tasks: usize,
        num_workers: usize,
        feasible: F,
        cost: C,
    ) -> ClairvoyantAssignment
    where
        F: Fn(usize, usize) -> bool + Sync,
        C: Fn(usize, usize) -> f64 + Sync,
    {
        Self::solve_with_threads(num_tasks, num_workers, feasible, cost, 1)
    }

    /// [`ClairvoyantOptimal::solve`] with the padded Hungarian solve
    /// sharded over `threads` scoped threads (`0` = one per core).
    /// Bit-identical at every thread count.
    pub fn solve_with_threads<F, C>(
        num_tasks: usize,
        num_workers: usize,
        feasible: F,
        cost: C,
        threads: usize,
    ) -> ClairvoyantAssignment
    where
        F: Fn(usize, usize) -> bool + Sync,
        C: Fn(usize, usize) -> f64 + Sync,
    {
        if num_tasks == 0 || num_workers == 0 {
            return finish(num_tasks, Matching::new(), &feasible, &cost);
        }
        let big = penalty(num_tasks, num_workers, &feasible, &cost);
        let padded = OfflineOptimal::solve_with_threads(num_tasks, num_workers, threads, |t, w| {
            if feasible(t, w) {
                cost(t, w)
            } else {
                big
            }
        });
        finish(num_tasks, padded, &feasible, &cost)
    }

    /// The equivalence oracle: solves the same penalty-padded instance as a
    /// naive successive-shortest-path min-cost flow whose augmenting paths
    /// come from plain Bellman-Ford sweeps (no potentials, no blocking, no
    /// SIMD). Test/bench use only.
    pub fn solve_reference<F, C>(
        num_tasks: usize,
        num_workers: usize,
        feasible: F,
        cost: C,
    ) -> ClairvoyantAssignment
    where
        F: Fn(usize, usize) -> bool,
        C: Fn(usize, usize) -> f64,
    {
        if num_tasks == 0 || num_workers == 0 {
            return finish(num_tasks, Matching::new(), &feasible, &cost);
        }
        let big = penalty(num_tasks, num_workers, &feasible, &cost);
        let padded_cost = |t: usize, w: usize| if feasible(t, w) { cost(t, w) } else { big };
        // The row-sequential formulation needs rows <= columns; swap sides
        // when there are more tasks than workers (mirrors the engine).
        let padded = if num_tasks <= num_workers {
            Matching {
                pairs: bellman_ford_assignment(num_tasks, num_workers, padded_cost),
            }
        } else {
            let assignment =
                bellman_ford_assignment(num_workers, num_tasks, |r, c| padded_cost(c, r));
            Matching {
                pairs: assignment.into_iter().map(|(w, t)| (t, w)).collect(),
            }
        };
        finish(num_tasks, padded, &feasible, &cost)
    }
}

/// The shared infeasible-edge penalty: the smallest power of two strictly
/// greater than `min(n, m) · max_feasible_cost`. A power of two keeps
/// integer-cost dual arithmetic exact, and the bound guarantees that
/// dropping one penalty edge always beats any real-cost rearrangement.
fn penalty<F, C>(num_tasks: usize, num_workers: usize, feasible: &F, cost: &C) -> f64
where
    F: Fn(usize, usize) -> bool,
    C: Fn(usize, usize) -> f64,
{
    let mut max_cost = 0.0f64;
    for t in 0..num_tasks {
        for w in 0..num_workers {
            if feasible(t, w) {
                let c = cost(t, w);
                debug_assert!(
                    c.is_finite() && c >= 0.0,
                    "cost({t}, {w}) must be finite and non-negative"
                );
                max_cost = max_cost.max(c);
            }
        }
    }
    let bound = num_tasks.min(num_workers) as f64 * max_cost;
    let mut big = 1.0f64;
    while big <= bound {
        big *= 2.0;
    }
    big
}

/// Strips penalty pairs out of a padded matching and normalizes the result:
/// feasible pairs sorted by task, dropped tasks ascending, total cost
/// summed in worker-index order.
fn finish<F, C>(num_tasks: usize, padded: Matching, feasible: &F, cost: &C) -> ClairvoyantAssignment
where
    F: Fn(usize, usize) -> bool,
    C: Fn(usize, usize) -> f64,
{
    let mut pairs: Vec<(usize, usize)> = padded
        .pairs
        .into_iter()
        .filter(|&(t, w)| feasible(t, w))
        .collect();
    let mut by_worker = pairs.clone();
    by_worker.sort_unstable_by_key(|&(_, w)| w);
    let total_cost = by_worker.iter().map(|&(t, w)| cost(t, w)).sum();
    pairs.sort_unstable();
    let mut matched = vec![false; num_tasks];
    for &(t, _) in &pairs {
        matched[t] = true;
    }
    let dropped = (0..num_tasks).filter(|&t| !matched[t]).collect();
    ClairvoyantAssignment {
        pairs,
        dropped,
        total_cost,
    }
}

/// Min-cost assignment of all `rows` (requires `rows <= cols`) by
/// successive shortest augmenting paths, each found with textbook
/// Bellman-Ford over the residual graph. `O(rows · cols³)` worst case —
/// an oracle, not an engine.
fn bellman_ford_assignment<C: Fn(usize, usize) -> f64>(
    rows: usize,
    cols: usize,
    cost: C,
) -> Vec<(usize, usize)> {
    debug_assert!(rows <= cols, "caller orients rows <= cols");
    // row_of[c]: the row currently matched to column c.
    let mut row_of: Vec<Option<usize>> = vec![None; cols];
    for r0 in 0..rows {
        // dist[c]: cheapest residual path source -> r0 -> ... -> c.
        // parent[c]: the previous column on that path (None = direct).
        let mut dist: Vec<f64> = (0..cols).map(|c| cost(r0, c)).collect();
        let mut parent: Vec<Option<usize>> = vec![None; cols];
        // Bellman-Ford: relax matched-column pivots until a fixpoint. The
        // residual graph of a min-cost partial matching has no negative
        // cycle, so at most `cols + 1` sweeps converge.
        for sweep in 0.. {
            let mut changed = false;
            for c in 0..cols {
                let Some(r) = row_of[c] else { continue };
                let through = dist[c] - cost(r, c);
                for c2 in 0..cols {
                    if c2 == c {
                        continue;
                    }
                    let alt = through + cost(r, c2);
                    if alt < dist[c2] {
                        dist[c2] = alt;
                        parent[c2] = Some(c);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
            debug_assert!(sweep <= cols, "Bellman-Ford failed to converge");
        }
        // Cheapest free column ends the augmenting path (lowest index on a
        // tie, matching the ascending scan).
        let mut end = None;
        for (c, &d) in dist.iter().enumerate() {
            if row_of[c].is_none() && end.is_none_or(|(_, best)| d < best) {
                end = Some((c, d));
            }
        }
        let (mut c, _) = end.expect("rows <= cols leaves a free column");
        // Augment: every column on the path takes its parent's row; the
        // path head takes the new row.
        while let Some(pc) = parent[c] {
            row_of[c] = row_of[pc];
            c = pc;
        }
        row_of[c] = Some(r0);
    }
    (0..cols)
        .filter_map(|c| row_of[c].map(|r| (r, c)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive optimum by branch-and-bound over all task->worker
    /// injections: maximize cardinality, then minimize total cost.
    fn brute_force<F, C>(
        num_tasks: usize,
        num_workers: usize,
        feasible: &F,
        cost: &C,
    ) -> (usize, f64)
    where
        F: Fn(usize, usize) -> bool,
        C: Fn(usize, usize) -> f64,
    {
        // Recursive brute force threads its whole search state explicitly.
        #[allow(clippy::too_many_arguments)]
        fn go<F, C>(
            t: usize,
            num_tasks: usize,
            num_workers: usize,
            used: &mut Vec<bool>,
            size: usize,
            total: f64,
            best: &mut (usize, f64),
            feasible: &F,
            cost: &C,
        ) where
            F: Fn(usize, usize) -> bool,
            C: Fn(usize, usize) -> f64,
        {
            if t == num_tasks {
                if size > best.0 || (size == best.0 && total < best.1) {
                    *best = (size, total);
                }
                return;
            }
            // Drop task t.
            go(
                t + 1,
                num_tasks,
                num_workers,
                used,
                size,
                total,
                best,
                feasible,
                cost,
            );
            for w in 0..num_workers {
                if !used[w] && feasible(t, w) {
                    used[w] = true;
                    go(
                        t + 1,
                        num_tasks,
                        num_workers,
                        used,
                        size + 1,
                        total + cost(t, w),
                        best,
                        feasible,
                        cost,
                    );
                    used[w] = false;
                }
            }
        }
        let mut best = (0usize, f64::INFINITY);
        let mut used = vec![false; num_workers];
        go(
            0,
            num_tasks,
            num_workers,
            &mut used,
            0,
            0.0,
            &mut best,
            feasible,
            cost,
        );
        if best.0 == 0 {
            best.1 = 0.0;
        }
        (best.0, best.1)
    }

    /// Deterministic integer cost in `0..=15` from the pattern id.
    fn tie_heavy_cost(pattern: u64) -> impl Fn(usize, usize) -> f64 {
        move |t, w| {
            let x = pattern
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((t as u64) << 8)
                .wrapping_add(w as u64);
            let x = x ^ (x >> 29);
            (x % 16) as f64
        }
    }

    #[test]
    fn exhaustive_feasibility_patterns_match_brute_force() {
        // Every feasibility bitmask on shapes up to 3x3 (incl. the empty
        // mask — zero overlap), with tie-heavy small-integer costs. All
        // arithmetic is exact, so totals compare bitwise.
        for (n, m) in [(1, 1), (2, 2), (2, 3), (3, 2), (3, 3)] {
            for mask in 0u32..(1 << (n * m)) {
                let feasible = |t: usize, w: usize| mask & (1 << (t * m + w)) != 0;
                let cost = tie_heavy_cost(mask as u64);
                let got = ClairvoyantOptimal::solve(n, m, feasible, &cost);
                let (best_size, best_cost) = brute_force(n, m, &feasible, &cost);
                assert_eq!(got.size(), best_size, "{n}x{m} mask {mask:b}");
                assert_eq!(got.total_cost, best_cost, "{n}x{m} mask {mask:b}");
                assert_eq!(got.pairs.len() + got.dropped.len(), n);
                for &(t, w) in &got.pairs {
                    assert!(feasible(t, w), "{n}x{m} mask {mask:b}: infeasible pair");
                }
                let reference = ClairvoyantOptimal::solve_reference(n, m, feasible, &cost);
                assert_eq!(reference.size(), best_size, "{n}x{m} mask {mask:b} (bf)");
                assert_eq!(
                    reference.total_cost, best_cost,
                    "{n}x{m} mask {mask:b} (bf)"
                );
            }
        }
    }

    #[test]
    fn zero_overlap_drops_everything() {
        let got = ClairvoyantOptimal::solve(4, 5, |_, _| false, |_, _| 1.0);
        assert!(got.pairs.is_empty());
        assert_eq!(got.dropped, vec![0, 1, 2, 3]);
        assert_eq!(got.total_cost, 0.0);
        let reference = ClairvoyantOptimal::solve_reference(4, 5, |_, _| false, |_, _| 1.0);
        assert_eq!(got, reference);
    }

    #[test]
    fn empty_sides_are_fine() {
        let a = ClairvoyantOptimal::solve(0, 3, |_, _| true, |_, _| 1.0);
        assert!(a.pairs.is_empty() && a.dropped.is_empty());
        let b = ClairvoyantOptimal::solve(3, 0, |_, _| true, |_, _| 1.0);
        assert!(b.pairs.is_empty());
        assert_eq!(b.dropped, vec![0, 1, 2]);
    }

    #[test]
    fn full_feasibility_reduces_to_the_hungarian_optimum() {
        // With every edge feasible the clairvoyant optimum must cost
        // exactly what the plain engine computes.
        let cost = tie_heavy_cost(99);
        let plain = OfflineOptimal::solve(7, 9, &cost);
        let mut sorted = plain.pairs.clone();
        sorted.sort_unstable_by_key(|&(_, w)| w);
        let plain_total: f64 = sorted.iter().map(|&(t, w)| cost(t, w)).sum();
        let clair = ClairvoyantOptimal::solve(7, 9, |_, _| true, &cost);
        assert_eq!(clair.size(), 7);
        assert!(clair.dropped.is_empty());
        assert_eq!(clair.total_cost, plain_total);
    }

    #[test]
    fn engine_is_thread_invariant_and_reference_equivalent() {
        for seed in 0..12u64 {
            let n = 6 + (seed % 5) as usize;
            let m = 5 + (seed % 7) as usize;
            // Sparse-ish deterministic feasibility with some all-zero rows.
            let feasible = move |t: usize, w: usize| {
                let x = seed
                    .wrapping_mul(0xA076_1D64_78BD_642F)
                    .wrapping_add((t as u64) << 16)
                    .wrapping_add(w as u64);
                let x = x ^ (x >> 31);
                x % 3 != 0
            };
            let cost = tie_heavy_cost(seed.wrapping_add(7));
            let reference = ClairvoyantOptimal::solve_reference(n, m, feasible, &cost);
            let base = ClairvoyantOptimal::solve_with_threads(n, m, feasible, &cost, 1);
            assert_eq!(base.size(), reference.size(), "seed {seed}");
            assert_eq!(base.total_cost, reference.total_cost, "seed {seed}");
            for threads in [2, 7] {
                let t = ClairvoyantOptimal::solve_with_threads(n, m, feasible, &cost, threads);
                assert_eq!(t, base, "seed {seed} threads {threads}");
            }
        }
    }
}
