//! The case study on matching-size maximization (Sec. IV-C).
//!
//! Here each worker has a reachable radius and the objective flips from
//! minimizing total distance to maximizing the number of *successful*
//! assignments — an assignment succeeds only if the true worker–task
//! distance is within the worker's radius (the server, seeing only
//! obfuscated data, can get this wrong; such assignments waste the worker
//! and do not count toward the matching size).

use crate::registry::registry;
use crate::server::Server;
use pombm_geom::{seeded_rng, Point};
use pombm_hst::LeafCode;
use pombm_matching::reachable::{ProbMatcher, TbfReachMatcher, DEFAULT_THRESHOLD};
use pombm_privacy::{Epsilon, ReachEstimator};
use pombm_workload::Instance;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// The two case-study algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CaseStudyAlgorithm {
    /// Prob: planar Laplace + probabilistic reachability assignment (To et
    /// al., ICDE'18 style).
    Prob,
    /// TBF: HST mechanism + nearest reachable worker on the tree.
    Tbf,
}

impl CaseStudyAlgorithm {
    /// Both algorithms in the paper's plotting order.
    pub const ALL: [CaseStudyAlgorithm; 2] = [CaseStudyAlgorithm::Prob, CaseStudyAlgorithm::Tbf];

    /// The label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            CaseStudyAlgorithm::Prob => "Prob",
            CaseStudyAlgorithm::Tbf => "TBF",
        }
    }
}

impl std::fmt::Display for CaseStudyAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Outcome of one case-study run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CaseStudyResult {
    /// Successful assignments: served within the worker's true reach.
    pub matching_size: usize,
    /// Assignments the server attempted (successful or not).
    pub attempted: usize,
    /// Time spent in the assignment loop.
    pub assign_time: Duration,
}

/// Runs a case-study algorithm on an instance carrying radii.
///
/// # Panics
///
/// Panics if the instance has no radii.
pub fn run_case_study(
    algorithm: CaseStudyAlgorithm,
    instance: &Instance,
    server: &Server,
    epsilon: f64,
    seed: u64,
) -> CaseStudyResult {
    let radii = instance
        .radii
        .as_ref()
        .expect("case study needs reachable radii");
    let epsilon = Epsilon::new(epsilon);
    let mut rng = seeded_rng(seed, 0xCA5E);

    match algorithm {
        CaseStudyAlgorithm::Prob => {
            // The Prob baseline reports through the registered planar
            // Laplace mechanism.
            let mechanism = registry().mechanism("laplace").expect("registered");
            let mut reporter = mechanism
                .reporter(epsilon, Some(server))
                .expect("laplace needs no server");
            let workers: Vec<Point> = instance
                .workers
                .iter()
                .map(|w| {
                    reporter
                        .report(w, &mut rng)
                        .into_point(Some(server), "prob case study")
                        .expect("laplace reports are planar")
                })
                .collect();
            let tasks: Vec<Point> = instance
                .tasks
                .iter()
                .map(|t| {
                    reporter
                        .report(t, &mut rng)
                        .into_point(Some(server), "prob case study")
                        .expect("laplace reports are planar")
                })
                .collect();
            let estimator = ReachEstimator::with_defaults(epsilon, seed);
            let mut matcher =
                ProbMatcher::new(workers, radii.clone(), estimator, DEFAULT_THRESHOLD);
            // lint: allow(DET-TIME) — running-time metric of the case study;
            // measured output, not part of any golden fingerprint.
            let start = Instant::now();
            let mut attempted = 0;
            let mut matched = 0;
            for (t_idx, t) in tasks.iter().enumerate() {
                if let Some(w_idx) = matcher.assign(t) {
                    attempted += 1;
                    if instance.tasks[t_idx].dist(&instance.workers[w_idx]) <= radii[w_idx] {
                        matched += 1;
                    }
                }
            }
            CaseStudyResult {
                matching_size: matched,
                attempted,
                assign_time: start.elapsed(),
            }
        }
        CaseStudyAlgorithm::Tbf => {
            // TBF reports through the registered HST random-walk mechanism.
            let mechanism = registry().mechanism("hst").expect("registered");
            let mut reporter = mechanism
                .reporter(epsilon, Some(server))
                .expect("server supplied");
            let workers: Vec<LeafCode> = instance
                .workers
                .iter()
                .map(|w| {
                    reporter
                        .report(w, &mut rng)
                        .into_leaf(Some(server), "tbf case study")
                        .expect("hst reports are leaves")
                })
                .collect();
            let worker_pos = workers
                .iter()
                .map(|&w| server.hst().representative_point(w))
                .collect();
            let tasks: Vec<LeafCode> = instance
                .tasks
                .iter()
                .map(|t| {
                    reporter
                        .report(t, &mut rng)
                        .into_leaf(Some(server), "tbf case study")
                        .expect("hst reports are leaves")
                })
                .collect();
            // Snapping to the grid moves each endpoint by at most half a
            // cell diagonal (typical error is ~0.38 of a pitch), so half a
            // diagonal of slack balances false admissions (which burn a
            // worker on an unreachable task) against false rejections.
            let slack =
                (server.grid().pitch_x().powi(2) + server.grid().pitch_y().powi(2)).sqrt() / 2.0;
            let mut matcher = TbfReachMatcher::new(
                server.hst().ctx(),
                workers,
                worker_pos,
                radii.clone(),
                slack,
            );
            // lint: allow(DET-TIME) — running-time metric of the case study;
            // measured output, not part of any golden fingerprint.
            let start = Instant::now();
            let mut attempted = 0;
            let mut matched = 0;
            for (t_idx, &t) in tasks.iter().enumerate() {
                let t_pos = server.hst().representative_point(t);
                if let Some(w_idx) = matcher.assign(t, &t_pos) {
                    attempted += 1;
                    if instance.tasks[t_idx].dist(&instance.workers[w_idx]) <= radii[w_idx] {
                        matched += 1;
                    }
                }
            }
            CaseStudyResult {
                matching_size: matched,
                attempted,
                assign_time: start.elapsed(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pombm_workload::{synthetic, SyntheticParams};

    fn radii_instance(seed: u64, tasks: usize, workers: usize) -> Instance {
        let params = SyntheticParams {
            num_tasks: tasks,
            num_workers: workers,
            ..SyntheticParams::default()
        };
        synthetic::generate_with_radii(&params, &mut seeded_rng(seed, 0))
    }

    #[test]
    fn both_algorithms_produce_results() {
        let instance = radii_instance(1, 80, 150);
        let server = Server::new(instance.region, 32, 9);
        for algo in CaseStudyAlgorithm::ALL {
            let r = run_case_study(algo, &instance, &server, 0.6, 0);
            assert!(r.matching_size <= r.attempted, "{algo}");
            assert!(r.attempted <= 80, "{algo}");
        }
    }

    #[test]
    fn results_are_reproducible() {
        let instance = radii_instance(2, 50, 100);
        let server = Server::new(instance.region, 32, 9);
        for algo in CaseStudyAlgorithm::ALL {
            let a = run_case_study(algo, &instance, &server, 0.4, 7);
            let b = run_case_study(algo, &instance, &server, 0.4, 7);
            assert_eq!(a.matching_size, b.matching_size, "{algo}");
            assert_eq!(a.attempted, b.attempted, "{algo}");
        }
    }

    #[test]
    #[should_panic(expected = "needs reachable radii")]
    fn missing_radii_panics() {
        let params = SyntheticParams {
            num_tasks: 5,
            num_workers: 5,
            ..SyntheticParams::default()
        };
        let instance = synthetic::generate(&params, &mut seeded_rng(3, 0));
        let server = Server::new(instance.region, 16, 0);
        let _ = run_case_study(CaseStudyAlgorithm::Tbf, &instance, &server, 0.5, 0);
    }

    #[test]
    fn looser_budget_helps_matching_size() {
        // With ε = 5 the obfuscation is nearly exact, so reachability
        // decisions are nearly always right; ε = 0.05 should do worse on
        // average for both algorithms.
        let instance = radii_instance(4, 150, 400);
        let server = Server::new(instance.region, 32, 5);
        for algo in CaseStudyAlgorithm::ALL {
            let avg = |eps: f64| -> f64 {
                (0..4)
                    .map(|s| run_case_study(algo, &instance, &server, eps, s).matching_size as f64)
                    .sum::<f64>()
                    / 4.0
            };
            let strict = avg(0.05);
            let loose = avg(5.0);
            assert!(
                loose >= strict,
                "{algo}: ε=5 size {loose} < ε=0.05 size {strict}"
            );
        }
    }
}
