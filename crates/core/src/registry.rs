//! Global registry of named mechanisms, matchers and their pairings.
//!
//! The paper's seven evaluated algorithms are ordinary entries here; the
//! registry also exposes the raw mechanism and matcher catalogues so any
//! `mechanism × matcher` product can be composed by name (the CLI's
//! `--mechanism X --matcher Y`), including pairings the legacy
//! [`crate::Algorithm`] enum could not express (e.g. `exp` × `chain`, or
//! `hst` × `capacity`).
//!
//! Lookup is case-insensitive and alias-aware (`lapgr` → `lap-gr`, `TBF` →
//! `tbf`), so serialized configs and scripts from the enum era keep
//! resolving.

use crate::algorithm::{
    AssignStrategy, BlindMechanism, CapacitatedStrategy, ChainStrategy, DynamicAssignStrategy,
    DynamicHstGreedyStrategy, DynamicKdRebuildStrategy, DynamicRandomStrategy,
    EuclideanGreedyStrategy, ExponentialReportMechanism, HstGreedyStrategy, HstWalkMechanism,
    IdentityMechanism, KdGreedyStrategy, LaplaceMechanism, OfflineOptimalStrategy, PipelineError,
    RandomAssignStrategy, RandomizedGreedyStrategy, ReportMechanism,
};
use crate::fault::{Burst, DupStorm, FaultPlan, FlakyWire, NoFault};
use crate::scenario::{
    AdversarialCellScenario, HotspotScenario, NormalScenario, PoissonDiskScenario, Scenario,
    UniformScenario,
};
use std::sync::{Arc, OnceLock};

/// A named `mechanism × matcher` pairing.
#[derive(Clone)]
pub struct AlgorithmSpec {
    name: String,
    label: String,
    /// Stage 1: the privacy mechanism.
    pub mechanism: Arc<dyn ReportMechanism>,
    /// Stage 2: the online matcher.
    pub matcher: Arc<dyn AssignStrategy>,
}

impl AlgorithmSpec {
    /// Creates a named spec.
    pub fn new(
        name: impl Into<String>,
        label: impl Into<String>,
        mechanism: Arc<dyn ReportMechanism>,
        matcher: Arc<dyn AssignStrategy>,
    ) -> Self {
        AlgorithmSpec {
            name: name.into(),
            label: label.into(),
            mechanism,
            matcher,
        }
    }

    /// Composes an ad-hoc spec named `<mechanism>+<matcher>`.
    pub fn compose(mechanism: Arc<dyn ReportMechanism>, matcher: Arc<dyn AssignStrategy>) -> Self {
        let name = format!("{}+{}", mechanism.name(), matcher.name());
        AlgorithmSpec {
            label: name.clone(),
            name,
            mechanism,
            matcher,
        }
    }

    /// Registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Figure label (`TBF`, `Lap-GR`, ...).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// True when either stage needs the server's published artifacts.
    pub fn needs_server(&self) -> bool {
        self.mechanism.needs_server() || self.matcher.needs_server()
    }
}

impl std::fmt::Debug for AlgorithmSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlgorithmSpec")
            .field("name", &self.name)
            .field("mechanism", &self.mechanism.name())
            .field("matcher", &self.matcher.name())
            .finish()
    }
}

/// The catalogue of mechanisms, matchers and named pairings.
pub struct Registry {
    mechanisms: Vec<Arc<dyn ReportMechanism>>,
    matchers: Vec<Arc<dyn AssignStrategy>>,
    dynamic_matchers: Vec<Arc<dyn DynamicAssignStrategy>>,
    scenarios: Vec<Arc<dyn Scenario>>,
    fault_plans: Vec<Arc<dyn FaultPlan>>,
    specs: Vec<AlgorithmSpec>,
    spec_aliases: Vec<(&'static str, &'static str)>,
}

fn normalize(name: &str) -> String {
    name.to_ascii_lowercase()
}

impl Registry {
    /// All named specs, in presentation order (paper algorithms first).
    pub fn specs(&self) -> &[AlgorithmSpec] {
        &self.specs
    }

    /// All registered mechanisms.
    pub fn mechanisms(&self) -> &[Arc<dyn ReportMechanism>] {
        &self.mechanisms
    }

    /// All registered matchers.
    pub fn matchers(&self) -> &[Arc<dyn AssignStrategy>] {
        &self.matchers
    }

    /// All registered dynamic matchers (stage 2 of the shifting-fleet
    /// pipeline, [`crate::dynamic::run_dynamic_spec`]).
    pub fn dynamic_matchers(&self) -> &[Arc<dyn DynamicAssignStrategy>] {
        &self.dynamic_matchers
    }

    /// Case-insensitive, alias-aware spec lookup.
    pub fn spec(&self, name: &str) -> Option<&AlgorithmSpec> {
        let wanted = normalize(name);
        let wanted = self
            .spec_aliases
            .iter()
            .find(|(alias, _)| *alias == wanted)
            .map(|&(_, target)| target.to_string())
            .unwrap_or(wanted);
        self.specs.iter().find(|s| s.name == wanted)
    }

    /// Spec lookup returning a listing-rich error for CLI surfaces.
    pub fn require_spec(&self, name: &str) -> Result<&AlgorithmSpec, PipelineError> {
        self.spec(name).ok_or_else(|| PipelineError::UnknownName {
            kind: "algorithm",
            name: name.to_string(),
            known: self.specs.iter().map(|s| s.name.clone()).collect(),
        })
    }

    /// Case-insensitive mechanism lookup.
    pub fn mechanism(&self, name: &str) -> Option<Arc<dyn ReportMechanism>> {
        let wanted = normalize(name);
        self.mechanisms.iter().find(|m| m.name() == wanted).cloned()
    }

    /// Case-insensitive matcher lookup.
    pub fn matcher(&self, name: &str) -> Option<Arc<dyn AssignStrategy>> {
        let wanted = normalize(name);
        self.matchers.iter().find(|m| m.name() == wanted).cloned()
    }

    /// Case-insensitive dynamic matcher lookup.
    pub fn dynamic_matcher(&self, name: &str) -> Option<Arc<dyn DynamicAssignStrategy>> {
        let wanted = normalize(name);
        self.dynamic_matchers
            .iter()
            .find(|m| m.name() == wanted)
            .cloned()
    }

    /// All registered workload scenarios (the spatial+temporal axis of
    /// [`crate::scenario`]).
    pub fn scenarios(&self) -> &[Arc<dyn Scenario>] {
        &self.scenarios
    }

    /// Case-insensitive scenario lookup.
    pub fn scenario(&self, name: &str) -> Option<Arc<dyn Scenario>> {
        let wanted = normalize(name);
        self.scenarios.iter().find(|s| s.name() == wanted).cloned()
    }

    /// Scenario lookup returning a listing-rich error for CLI surfaces.
    pub fn require_scenario(&self, name: &str) -> Result<Arc<dyn Scenario>, PipelineError> {
        self.scenario(name)
            .ok_or_else(|| PipelineError::UnknownName {
                kind: "scenario",
                name: name.to_string(),
                known: self
                    .scenarios
                    .iter()
                    .map(|s| s.name().to_string())
                    .collect(),
            })
    }

    /// All registered serve fault plans (the deterministic-chaos axis of
    /// [`crate::fault`]).
    pub fn fault_plans(&self) -> &[Arc<dyn FaultPlan>] {
        &self.fault_plans
    }

    /// Case-insensitive fault-plan lookup.
    pub fn fault_plan(&self, name: &str) -> Option<Arc<dyn FaultPlan>> {
        let wanted = normalize(name);
        self.fault_plans
            .iter()
            .find(|p| p.name() == wanted)
            .cloned()
    }

    /// Fault-plan lookup returning a listing-rich error for CLI surfaces.
    pub fn require_fault_plan(&self, name: &str) -> Result<Arc<dyn FaultPlan>, PipelineError> {
        self.fault_plan(name)
            .ok_or_else(|| PipelineError::UnknownName {
                kind: "fault plan",
                name: name.to_string(),
                known: self
                    .fault_plans
                    .iter()
                    .map(|p| p.name().to_string())
                    .collect(),
            })
    }

    /// Dynamic matcher lookup returning a listing-rich error for CLI
    /// surfaces.
    pub fn require_dynamic_matcher(
        &self,
        name: &str,
    ) -> Result<Arc<dyn DynamicAssignStrategy>, PipelineError> {
        self.dynamic_matcher(name)
            .ok_or_else(|| PipelineError::UnknownName {
                kind: "dynamic matcher",
                name: name.to_string(),
                known: self
                    .dynamic_matchers
                    .iter()
                    .map(|m| m.name().to_string())
                    .collect(),
            })
    }

    /// Composes a free `mechanism × matcher` pairing by name.
    pub fn compose(&self, mechanism: &str, matcher: &str) -> Result<AlgorithmSpec, PipelineError> {
        let mech = self
            .mechanism(mechanism)
            .ok_or_else(|| PipelineError::UnknownName {
                kind: "mechanism",
                name: mechanism.to_string(),
                known: self
                    .mechanisms
                    .iter()
                    .map(|m| m.name().to_string())
                    .collect(),
            })?;
        let strat = self
            .matcher(matcher)
            .ok_or_else(|| PipelineError::UnknownName {
                kind: "matcher",
                name: matcher.to_string(),
                known: self.matchers.iter().map(|m| m.name().to_string()).collect(),
            })?;
        Ok(AlgorithmSpec::compose(mech, strat))
    }
}

/// The process-wide registry (built once, immutable afterwards).
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(build)
}

fn build() -> Registry {
    let laplace: Arc<dyn ReportMechanism> = Arc::new(LaplaceMechanism);
    let hst: Arc<dyn ReportMechanism> = Arc::new(HstWalkMechanism);
    let exp: Arc<dyn ReportMechanism> = Arc::new(ExponentialReportMechanism);
    let identity: Arc<dyn ReportMechanism> = Arc::new(IdentityMechanism);
    let blind: Arc<dyn ReportMechanism> = Arc::new(BlindMechanism);

    let greedy: Arc<dyn AssignStrategy> = Arc::new(EuclideanGreedyStrategy);
    let kd: Arc<dyn AssignStrategy> = Arc::new(KdGreedyStrategy);
    let hst_greedy: Arc<dyn AssignStrategy> = Arc::new(HstGreedyStrategy);
    let hst_rand: Arc<dyn AssignStrategy> = Arc::new(RandomizedGreedyStrategy);
    let chain: Arc<dyn AssignStrategy> = Arc::new(ChainStrategy);
    let capacity: Arc<dyn AssignStrategy> = Arc::new(CapacitatedStrategy);
    let random: Arc<dyn AssignStrategy> = Arc::new(RandomAssignStrategy);
    let offline_opt: Arc<dyn AssignStrategy> = Arc::new(OfflineOptimalStrategy);

    let dyn_hst: Arc<dyn DynamicAssignStrategy> = Arc::new(DynamicHstGreedyStrategy);
    let dyn_kd: Arc<dyn DynamicAssignStrategy> = Arc::new(DynamicKdRebuildStrategy);
    let dyn_random: Arc<dyn DynamicAssignStrategy> = Arc::new(DynamicRandomStrategy);

    let specs = vec![
        // The paper's compared algorithms (Sec. IV-A)...
        AlgorithmSpec::new("lap-gr", "Lap-GR", laplace.clone(), greedy.clone()),
        AlgorithmSpec::new("lap-hg", "Lap-HG", laplace.clone(), hst_greedy.clone()),
        AlgorithmSpec::new("tbf", "TBF", hst.clone(), hst_greedy.clone()),
        // ...this repository's ablations/extensions...
        AlgorithmSpec::new("exp-hg", "Exp-HG", exp.clone(), hst_greedy.clone()),
        AlgorithmSpec::new("tbf-rand", "TBF-Rand", hst.clone(), hst_rand.clone()),
        AlgorithmSpec::new("tbf-chain", "TBF-Chain", hst.clone(), chain.clone()),
        AlgorithmSpec::new("random", "Random", blind.clone(), random.clone()),
        // ...and pairings the closed enum could not express.
        AlgorithmSpec::new("exp-chain", "Exp-Chain", exp.clone(), chain.clone()),
        AlgorithmSpec::new("tbf-cap", "TBF-Cap", hst.clone(), capacity.clone()),
        AlgorithmSpec::new("lap-kd", "Lap-KD", laplace.clone(), kd.clone()),
        // The exact offline optimum on true locations: the competitive-ratio
        // denominator as a runnable pairing (ratio = 1.0 by construction).
        AlgorithmSpec::new("opt", "OPT", identity.clone(), offline_opt.clone()),
    ];

    Registry {
        mechanisms: vec![laplace, hst, exp, identity, blind],
        matchers: vec![
            greedy,
            kd,
            hst_greedy,
            hst_rand,
            chain,
            capacity,
            random,
            offline_opt,
        ],
        dynamic_matchers: vec![dyn_hst, dyn_kd, dyn_random],
        scenarios: vec![
            Arc::new(UniformScenario),
            Arc::new(NormalScenario),
            Arc::new(HotspotScenario),
            Arc::new(PoissonDiskScenario),
            Arc::new(AdversarialCellScenario),
        ],
        fault_plans: vec![
            Arc::new(NoFault),
            Arc::new(FlakyWire),
            Arc::new(DupStorm),
            Arc::new(Burst),
        ],
        specs,
        spec_aliases: vec![
            ("lapgr", "lap-gr"),
            ("laphg", "lap-hg"),
            ("exphg", "exp-hg"),
            ("tbfrand", "tbf-rand"),
            ("tbfchain", "tbf-chain"),
            ("expchain", "exp-chain"),
            ("tbfcap", "tbf-cap"),
            ("lapkd", "lap-kd"),
            ("random-floor", "random"),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_names_resolve_case_insensitively() {
        for name in [
            "tbf",
            "TBF",
            "Lap-GR",
            "lapgr",
            "tbf-chain",
            "TbfChain",
            "random",
        ] {
            assert!(registry().spec(name).is_some(), "{name} should resolve");
        }
        assert!(registry().spec("nope").is_none());
    }

    #[test]
    fn require_spec_lists_known_names() {
        let err = registry().require_spec("bogus").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("bogus") && msg.contains("tbf") && msg.contains("exp-chain"));
    }

    #[test]
    fn compose_builds_novel_pairings() {
        let spec = registry().compose("exp", "chain").unwrap();
        assert_eq!(spec.name(), "exp+chain");
        assert!(spec.needs_server());
        assert!(registry().compose("exp", "bogus").is_err());
        assert!(registry().compose("bogus", "chain").is_err());
    }

    #[test]
    fn catalogue_is_complete() {
        let names: Vec<&str> = registry().specs().iter().map(|s| s.name()).collect();
        for expected in [
            "lap-gr",
            "lap-hg",
            "tbf",
            "exp-hg",
            "tbf-rand",
            "tbf-chain",
            "random",
            "exp-chain",
            "tbf-cap",
            "lap-kd",
            "opt",
        ] {
            assert!(names.contains(&expected), "missing spec {expected}");
        }
        assert_eq!(registry().mechanisms().len(), 5);
        assert_eq!(registry().matchers().len(), 8);
    }

    #[test]
    fn dynamic_matchers_are_catalogued() {
        let names: Vec<&str> = registry()
            .dynamic_matchers()
            .iter()
            .map(|m| m.name())
            .collect();
        assert_eq!(names, ["hst-greedy", "kd-rebuild", "random"]);
        let hst = registry().dynamic_matcher("HST-Greedy").expect("resolves");
        assert!(hst.needs_server());
        assert!(!registry()
            .dynamic_matcher("kd-rebuild")
            .unwrap()
            .needs_server());
        assert!(registry().dynamic_matcher("bogus").is_none());
        let err = registry()
            .require_dynamic_matcher("bogus")
            .map(|m| m.name())
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("bogus") && msg.contains("kd-rebuild"), "{msg}");
    }

    #[test]
    fn scenarios_are_catalogued() {
        let names: Vec<&str> = registry().scenarios().iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            [
                "uniform",
                "normal",
                "hotspot",
                "poisson-disk",
                "adversarial-cell"
            ]
        );
        let hotspot = registry().scenario("HotSpot").expect("case-insensitive");
        assert_eq!(hotspot.name(), "hotspot");
        assert!(registry().scenario("bogus").is_none());
        let err = registry()
            .require_scenario("bogus")
            .map(|_| ())
            .unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("unknown scenario `bogus`")
                && msg.contains("poisson-disk")
                && msg.contains("uniform"),
            "{msg}"
        );
    }

    #[test]
    fn fault_plans_are_catalogued() {
        let names: Vec<&str> = registry().fault_plans().iter().map(|p| p.name()).collect();
        assert_eq!(names, ["none", "flaky-wire", "dup-storm", "burst"]);
        let flaky = registry()
            .fault_plan("Flaky-Wire")
            .expect("case-insensitive");
        assert_eq!(flaky.name(), "flaky-wire");
        assert!(registry().fault_plan("bogus").is_none());
        let err = registry()
            .require_fault_plan("bogus")
            .map(|_| ())
            .unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("unknown fault plan `bogus`")
                && msg.contains("dup-storm")
                && msg.contains("burst"),
            "{msg}"
        );
    }

    #[test]
    fn offline_opt_is_registered_as_a_matcher() {
        let matcher = registry().matcher("offline-opt").expect("registered");
        assert_eq!(matcher.name(), "offline-opt");
        assert!(!matcher.needs_server());
        let spec = registry().spec("opt").expect("named pairing");
        assert_eq!(spec.mechanism.name(), "identity");
        assert_eq!(spec.matcher.name(), "offline-opt");
        assert!(!spec.needs_server());
    }
}
