//! Global registry of named mechanisms, matchers and their pairings.
//!
//! The paper's seven evaluated algorithms are ordinary entries here; the
//! registry also exposes the raw mechanism and matcher catalogs so any
//! `mechanism × matcher` product can be composed by name (the CLI's
//! `--mechanism X --matcher Y`), including pairings the legacy
//! [`crate::Algorithm`] enum could not express (e.g. `exp` × `chain`, or
//! `hst` × `capacity`).
//!
//! # One generic [`Catalog`] per axis
//!
//! Every named axis — algorithm specs, mechanisms, static matchers,
//! dynamic matchers, scenarios, fault plans — is one [`Catalog<T>`]
//! sharing a single lookup implementation: case-insensitive resolution,
//! alias awareness (`lapgr` → `lap-gr`, `TBF` → `tbf`), and a typed
//! [`PipelineError::UnknownEntry`] error that names the axis and lists the
//! sorted candidates. Adding a new axis is a one-line field plus its
//! registrations — there is no per-axis lookup code left to copy.
//!
//! Catalog entries carry a [`Role`] capability. Most entries are
//! [`Role::Pairing`] — free to combine with anything on the other axis.
//! [`Role::OracleOnly`] marks measurement denominators: `dynamic-opt`, the
//! clairvoyant offline optimum over the revealed shift/task timeline, is
//! registered at oracle position so that pairing it like an online matcher
//! is a typed [`PipelineError::RoleMismatch`] at resolve time instead of a
//! runtime panic. Ratio surfaces resolve it through
//! [`Registry::dynamic_oracle`].

use crate::algorithm::{
    AssignStrategy, BlindMechanism, CapacitatedStrategy, ChainStrategy, DynamicAssignStrategy,
    DynamicHstGreedyStrategy, DynamicKdRebuildStrategy, DynamicOptStrategy, DynamicRandomStrategy,
    EuclideanGreedyStrategy, ExponentialReportMechanism, HstGreedyStrategy, HstWalkMechanism,
    IdentityMechanism, KdGreedyStrategy, LaplaceMechanism, OfflineOptimalStrategy, PipelineError,
    RandomAssignStrategy, RandomizedGreedyStrategy, ReportMechanism,
};
use crate::fault::{Burst, DupStorm, FaultPlan, FlakyWire, NoFault};
use crate::scenario::{
    AdversarialCellScenario, HotspotScenario, NormalScenario, PoissonDiskScenario, Scenario,
    UniformScenario,
};
use std::sync::{Arc, OnceLock};

/// The registry name of the default dynamic ratio oracle.
pub const DEFAULT_DYNAMIC_ORACLE: &str = "dynamic-opt";

/// A named `mechanism × matcher` pairing.
#[derive(Clone)]
pub struct AlgorithmSpec {
    name: String,
    label: String,
    /// Stage 1: the privacy mechanism.
    pub mechanism: Arc<dyn ReportMechanism>,
    /// Stage 2: the online matcher.
    pub matcher: Arc<dyn AssignStrategy>,
}

impl AlgorithmSpec {
    /// Creates a named spec.
    pub fn new(
        name: impl Into<String>,
        label: impl Into<String>,
        mechanism: Arc<dyn ReportMechanism>,
        matcher: Arc<dyn AssignStrategy>,
    ) -> Self {
        AlgorithmSpec {
            name: name.into(),
            label: label.into(),
            mechanism,
            matcher,
        }
    }

    /// Composes an ad-hoc spec named `<mechanism>+<matcher>`.
    pub fn compose(mechanism: Arc<dyn ReportMechanism>, matcher: Arc<dyn AssignStrategy>) -> Self {
        let name = format!("{}+{}", mechanism.name(), matcher.name());
        AlgorithmSpec {
            label: name.clone(),
            name,
            mechanism,
            matcher,
        }
    }

    /// Registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Figure label (`TBF`, `Lap-GR`, ...).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// True when either stage needs the server's published artifacts.
    pub fn needs_server(&self) -> bool {
        self.mechanism.needs_server() || self.matcher.needs_server()
    }
}

impl std::fmt::Debug for AlgorithmSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlgorithmSpec")
            .field("name", &self.name)
            .field("mechanism", &self.mechanism.name())
            .field("matcher", &self.matcher.name())
            .finish()
    }
}

/// What positions a [`Catalog`] entry may occupy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Freely combinable with the other axis (the default).
    Pairing,
    /// A measurement denominator: resolvable only through an oracle
    /// surface (e.g. [`Registry::dynamic_oracle`]), never paired like an
    /// online component.
    OracleOnly,
}

impl Role {
    /// Stable label used in error messages and listings.
    pub fn label(self) -> &'static str {
        match self {
            Role::Pairing => "pairing",
            Role::OracleOnly => "oracle-only",
        }
    }
}

/// Anything a [`Catalog`] can index: a value with a canonical (lower-case)
/// registry name.
pub trait CatalogItem {
    /// Canonical registry name.
    fn catalog_name(&self) -> &str;
}

impl CatalogItem for Arc<dyn ReportMechanism> {
    fn catalog_name(&self) -> &str {
        self.as_ref().name()
    }
}

impl CatalogItem for Arc<dyn AssignStrategy> {
    fn catalog_name(&self) -> &str {
        self.as_ref().name()
    }
}

impl CatalogItem for Arc<dyn DynamicAssignStrategy> {
    fn catalog_name(&self) -> &str {
        self.as_ref().name()
    }
}

impl CatalogItem for Arc<dyn Scenario> {
    fn catalog_name(&self) -> &str {
        self.as_ref().name()
    }
}

impl CatalogItem for Arc<dyn FaultPlan> {
    fn catalog_name(&self) -> &str {
        self.as_ref().name()
    }
}

impl CatalogItem for AlgorithmSpec {
    fn catalog_name(&self) -> &str {
        &self.name
    }
}

/// One named registry axis: the single, shared lookup implementation
/// behind every `require_*` surface.
///
/// Lookup is case-insensitive and alias-aware; misses produce a typed
/// [`PipelineError::UnknownEntry`] naming the axis (`kind`) and listing
/// the sorted candidates.
pub struct Catalog<T> {
    kind: &'static str,
    values: Vec<T>,
    roles: Vec<Role>,
    aliases: Vec<(&'static str, &'static str)>,
}

fn normalize(name: &str) -> String {
    name.to_ascii_lowercase()
}

impl<T: CatalogItem + Clone> Catalog<T> {
    fn new(kind: &'static str) -> Self {
        Catalog {
            kind,
            values: Vec::new(),
            roles: Vec::new(),
            aliases: Vec::new(),
        }
    }

    /// Registers a [`Role::Pairing`] entry.
    fn register(&mut self, value: T) {
        self.register_as(Role::Pairing, value);
    }

    /// Registers an entry with an explicit role.
    fn register_as(&mut self, role: Role, value: T) {
        debug_assert!(
            self.index_of(value.catalog_name()).is_none(),
            "duplicate {} `{}`",
            self.kind,
            value.catalog_name()
        );
        self.values.push(value);
        self.roles.push(role);
    }

    /// Registers a legacy alias resolving to `target`.
    fn alias(&mut self, from: &'static str, to: &'static str) {
        self.aliases.push((from, to));
    }

    /// The axis name this catalog reports in errors (`mechanism`,
    /// `scenario`, ...).
    pub fn kind(&self) -> &'static str {
        self.kind
    }

    /// Number of registered entries, every role included.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Every entry in registration order, every role included.
    pub fn all(&self) -> &[T] {
        &self.values
    }

    /// `(entry, role)` pairs in registration order.
    pub fn entries(&self) -> impl Iterator<Item = (&T, Role)> {
        self.values.iter().zip(self.roles.iter().copied())
    }

    /// Entries holding `role`, in registration order.
    pub fn with_role(&self, role: Role) -> Vec<T> {
        self.entries()
            .filter(|&(_, r)| r == role)
            .map(|(v, _)| v.clone())
            .collect()
    }

    fn canonical(&self, name: &str) -> String {
        let wanted = normalize(name);
        self.aliases
            .iter()
            .find(|(alias, _)| *alias == wanted)
            .map(|&(_, target)| target.to_string())
            .unwrap_or(wanted)
    }

    fn index_of(&self, name: &str) -> Option<usize> {
        let wanted = self.canonical(name);
        self.values.iter().position(|v| v.catalog_name() == wanted)
    }

    /// Case-insensitive, alias-aware lookup across every role.
    pub fn get(&self, name: &str) -> Option<&T> {
        self.index_of(name).map(|i| &self.values[i])
    }

    /// The role of `name`, if registered.
    pub fn role_of(&self, name: &str) -> Option<Role> {
        self.index_of(name).map(|i| self.roles[i])
    }

    /// Every registered name, sorted — the candidate listing of
    /// [`PipelineError::UnknownEntry`].
    pub fn sorted_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .values
            .iter()
            .map(|v| v.catalog_name().to_string())
            .collect();
        names.sort_unstable();
        names
    }

    fn unknown(&self, name: &str) -> PipelineError {
        PipelineError::UnknownEntry {
            kind: self.kind,
            name: name.to_string(),
            known: self.sorted_names(),
        }
    }

    /// Lookup across every role, with the typed listing-rich error.
    pub fn resolve(&self, name: &str) -> Result<T, PipelineError> {
        self.get(name).cloned().ok_or_else(|| self.unknown(name))
    }

    /// Lookup restricted to entries holding `wanted`: a registered name
    /// with a different role is a typed [`PipelineError::RoleMismatch`],
    /// not an unknown entry.
    pub fn resolve_role(&self, name: &str, wanted: Role) -> Result<T, PipelineError> {
        let i = self.index_of(name).ok_or_else(|| self.unknown(name))?;
        if self.roles[i] != wanted {
            return Err(PipelineError::RoleMismatch {
                kind: self.kind,
                name: self.values[i].catalog_name().to_string(),
                role: self.roles[i].label(),
                wanted: wanted.label(),
            });
        }
        Ok(self.values[i].clone())
    }
}

/// The catalogue of mechanisms, matchers and named pairings.
pub struct Registry {
    specs: Catalog<AlgorithmSpec>,
    mechanisms: Catalog<Arc<dyn ReportMechanism>>,
    matchers: Catalog<Arc<dyn AssignStrategy>>,
    dynamic_matchers: Catalog<Arc<dyn DynamicAssignStrategy>>,
    scenarios: Catalog<Arc<dyn Scenario>>,
    fault_plans: Catalog<Arc<dyn FaultPlan>>,
}

impl Registry {
    /// All named specs, in presentation order (paper algorithms first).
    pub fn specs(&self) -> &[AlgorithmSpec] {
        self.specs.all()
    }

    /// All registered mechanisms.
    pub fn mechanisms(&self) -> &[Arc<dyn ReportMechanism>] {
        self.mechanisms.all()
    }

    /// All registered matchers.
    pub fn matchers(&self) -> &[Arc<dyn AssignStrategy>] {
        self.matchers.all()
    }

    /// All pairing dynamic matchers (stage 2 of the shifting-fleet
    /// pipeline, [`crate::dynamic::run_dynamic_spec`]); the oracle-only
    /// `dynamic-opt` entry is excluded — see
    /// [`Registry::dynamic_matcher_catalog`] for the full axis.
    pub fn dynamic_matchers(&self) -> Vec<Arc<dyn DynamicAssignStrategy>> {
        self.dynamic_matchers.with_role(Role::Pairing)
    }

    /// The full dynamic-matcher catalog, roles included.
    pub fn dynamic_matcher_catalog(&self) -> &Catalog<Arc<dyn DynamicAssignStrategy>> {
        &self.dynamic_matchers
    }

    /// Case-insensitive, alias-aware spec lookup.
    pub fn spec(&self, name: &str) -> Option<&AlgorithmSpec> {
        self.specs.get(name)
    }

    /// Spec lookup returning a listing-rich error for CLI surfaces.
    pub fn require_spec(&self, name: &str) -> Result<AlgorithmSpec, PipelineError> {
        self.specs.resolve(name)
    }

    /// Case-insensitive mechanism lookup.
    pub fn mechanism(&self, name: &str) -> Option<Arc<dyn ReportMechanism>> {
        self.mechanisms.get(name).cloned()
    }

    /// Mechanism lookup returning a listing-rich error for CLI surfaces.
    pub fn require_mechanism(&self, name: &str) -> Result<Arc<dyn ReportMechanism>, PipelineError> {
        self.mechanisms.resolve(name)
    }

    /// Case-insensitive matcher lookup.
    pub fn matcher(&self, name: &str) -> Option<Arc<dyn AssignStrategy>> {
        self.matchers.get(name).cloned()
    }

    /// Matcher lookup returning a listing-rich error for CLI surfaces.
    pub fn require_matcher(&self, name: &str) -> Result<Arc<dyn AssignStrategy>, PipelineError> {
        self.matchers.resolve(name)
    }

    /// Case-insensitive dynamic matcher lookup, every role included.
    pub fn dynamic_matcher(&self, name: &str) -> Option<Arc<dyn DynamicAssignStrategy>> {
        self.dynamic_matchers.get(name).cloned()
    }

    /// All registered workload scenarios (the spatial+temporal axis of
    /// [`crate::scenario`]).
    pub fn scenarios(&self) -> &[Arc<dyn Scenario>] {
        self.scenarios.all()
    }

    /// Case-insensitive scenario lookup.
    pub fn scenario(&self, name: &str) -> Option<Arc<dyn Scenario>> {
        self.scenarios.get(name).cloned()
    }

    /// Scenario lookup returning a listing-rich error for CLI surfaces.
    pub fn require_scenario(&self, name: &str) -> Result<Arc<dyn Scenario>, PipelineError> {
        self.scenarios.resolve(name)
    }

    /// All registered serve fault plans (the deterministic-chaos axis of
    /// [`crate::fault`]).
    pub fn fault_plans(&self) -> &[Arc<dyn FaultPlan>] {
        self.fault_plans.all()
    }

    /// Case-insensitive fault-plan lookup.
    pub fn fault_plan(&self, name: &str) -> Option<Arc<dyn FaultPlan>> {
        self.fault_plans.get(name).cloned()
    }

    /// Fault-plan lookup returning a listing-rich error for CLI surfaces.
    pub fn require_fault_plan(&self, name: &str) -> Result<Arc<dyn FaultPlan>, PipelineError> {
        self.fault_plans.resolve(name)
    }

    /// Dynamic matcher lookup restricted to pairing entries: asking for
    /// the oracle here is a typed [`PipelineError::RoleMismatch`].
    pub fn require_dynamic_matcher(
        &self,
        name: &str,
    ) -> Result<Arc<dyn DynamicAssignStrategy>, PipelineError> {
        self.dynamic_matchers.resolve_role(name, Role::Pairing)
    }

    /// Dynamic matcher lookup across every role — the ratio surfaces,
    /// where the oracle may legitimately sit in matcher position (its cell
    /// measures the denominator against itself, ratio exactly 1).
    pub fn dynamic_matcher_any(
        &self,
        name: &str,
    ) -> Result<Arc<dyn DynamicAssignStrategy>, PipelineError> {
        self.dynamic_matchers.resolve(name)
    }

    /// Resolves a dynamic ratio oracle by name ([`DEFAULT_DYNAMIC_ORACLE`]
    /// unless configured otherwise): only [`Role::OracleOnly`] entries
    /// qualify, so a pairing matcher in oracle position is a typed
    /// [`PipelineError::RoleMismatch`].
    pub fn dynamic_oracle(
        &self,
        name: &str,
    ) -> Result<Arc<dyn DynamicAssignStrategy>, PipelineError> {
        self.dynamic_matchers.resolve_role(name, Role::OracleOnly)
    }

    /// Composes a free `mechanism × matcher` pairing by name.
    pub fn compose(&self, mechanism: &str, matcher: &str) -> Result<AlgorithmSpec, PipelineError> {
        let mech = self.mechanisms.resolve(mechanism)?;
        let strat = self.matchers.resolve(matcher)?;
        Ok(AlgorithmSpec::compose(mech, strat))
    }
}

/// The process-wide registry (built once, immutable afterwards).
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(build)
}

fn build() -> Registry {
    let laplace: Arc<dyn ReportMechanism> = Arc::new(LaplaceMechanism);
    let hst: Arc<dyn ReportMechanism> = Arc::new(HstWalkMechanism);
    let exp: Arc<dyn ReportMechanism> = Arc::new(ExponentialReportMechanism);
    let identity: Arc<dyn ReportMechanism> = Arc::new(IdentityMechanism);
    let blind: Arc<dyn ReportMechanism> = Arc::new(BlindMechanism);

    let greedy: Arc<dyn AssignStrategy> = Arc::new(EuclideanGreedyStrategy);
    let kd: Arc<dyn AssignStrategy> = Arc::new(KdGreedyStrategy);
    let hst_greedy: Arc<dyn AssignStrategy> = Arc::new(HstGreedyStrategy);
    let hst_rand: Arc<dyn AssignStrategy> = Arc::new(RandomizedGreedyStrategy);
    let chain: Arc<dyn AssignStrategy> = Arc::new(ChainStrategy);
    let capacity: Arc<dyn AssignStrategy> = Arc::new(CapacitatedStrategy);
    let random: Arc<dyn AssignStrategy> = Arc::new(RandomAssignStrategy);
    let offline_opt: Arc<dyn AssignStrategy> = Arc::new(OfflineOptimalStrategy);

    let mut specs = Catalog::new("algorithm");
    for spec in [
        // The paper's compared algorithms (Sec. IV-A)...
        AlgorithmSpec::new("lap-gr", "Lap-GR", laplace.clone(), greedy.clone()),
        AlgorithmSpec::new("lap-hg", "Lap-HG", laplace.clone(), hst_greedy.clone()),
        AlgorithmSpec::new("tbf", "TBF", hst.clone(), hst_greedy.clone()),
        // ...this repository's ablations/extensions...
        AlgorithmSpec::new("exp-hg", "Exp-HG", exp.clone(), hst_greedy.clone()),
        AlgorithmSpec::new("tbf-rand", "TBF-Rand", hst.clone(), hst_rand.clone()),
        AlgorithmSpec::new("tbf-chain", "TBF-Chain", hst.clone(), chain.clone()),
        AlgorithmSpec::new("random", "Random", blind.clone(), random.clone()),
        // ...and pairings the closed enum could not express.
        AlgorithmSpec::new("exp-chain", "Exp-Chain", exp.clone(), chain.clone()),
        AlgorithmSpec::new("tbf-cap", "TBF-Cap", hst.clone(), capacity.clone()),
        AlgorithmSpec::new("lap-kd", "Lap-KD", laplace.clone(), kd.clone()),
        // The exact offline optimum on true locations: the competitive-ratio
        // denominator as a runnable pairing (ratio = 1.0 by construction).
        AlgorithmSpec::new("opt", "OPT", identity.clone(), offline_opt.clone()),
    ] {
        specs.register(spec);
    }
    for (from, to) in [
        ("lapgr", "lap-gr"),
        ("laphg", "lap-hg"),
        ("exphg", "exp-hg"),
        ("tbfrand", "tbf-rand"),
        ("tbfchain", "tbf-chain"),
        ("expchain", "exp-chain"),
        ("tbfcap", "tbf-cap"),
        ("lapkd", "lap-kd"),
        ("random-floor", "random"),
    ] {
        specs.alias(from, to);
    }

    let mut mechanisms = Catalog::new("mechanism");
    for m in [laplace, hst, exp, identity, blind] {
        mechanisms.register(m);
    }

    let mut matchers = Catalog::new("matcher");
    for m in [
        greedy,
        kd,
        hst_greedy,
        hst_rand,
        chain,
        capacity,
        random,
        offline_opt,
    ] {
        matchers.register(m);
    }

    let mut dynamic_matchers = Catalog::new("dynamic matcher");
    dynamic_matchers.register(Arc::new(DynamicHstGreedyStrategy) as Arc<dyn DynamicAssignStrategy>);
    dynamic_matchers.register(Arc::new(DynamicKdRebuildStrategy));
    dynamic_matchers.register(Arc::new(DynamicRandomStrategy));
    // The clairvoyant offline optimum: the ratio-under-churn denominator,
    // resolvable only through `dynamic_oracle` / the ratio surfaces.
    dynamic_matchers.register_as(Role::OracleOnly, Arc::new(DynamicOptStrategy));

    let mut scenarios = Catalog::new("scenario");
    scenarios.register(Arc::new(UniformScenario) as Arc<dyn Scenario>);
    scenarios.register(Arc::new(NormalScenario));
    scenarios.register(Arc::new(HotspotScenario));
    scenarios.register(Arc::new(PoissonDiskScenario));
    scenarios.register(Arc::new(AdversarialCellScenario));

    let mut fault_plans = Catalog::new("fault plan");
    fault_plans.register(Arc::new(NoFault) as Arc<dyn FaultPlan>);
    fault_plans.register(Arc::new(FlakyWire));
    fault_plans.register(Arc::new(DupStorm));
    fault_plans.register(Arc::new(Burst));

    Registry {
        specs,
        mechanisms,
        matchers,
        dynamic_matchers,
        scenarios,
        fault_plans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_names_resolve_case_insensitively() {
        for name in [
            "tbf",
            "TBF",
            "Lap-GR",
            "lapgr",
            "tbf-chain",
            "TbfChain",
            "random",
        ] {
            assert!(registry().spec(name).is_some(), "{name} should resolve");
        }
        assert!(registry().spec("nope").is_none());
    }

    #[test]
    fn require_spec_lists_known_names() {
        let err = registry().require_spec("bogus").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("bogus") && msg.contains("tbf") && msg.contains("exp-chain"));
    }

    #[test]
    fn compose_builds_novel_pairings() {
        let spec = registry().compose("exp", "chain").unwrap();
        assert_eq!(spec.name(), "exp+chain");
        assert!(spec.needs_server());
        assert!(registry().compose("exp", "bogus").is_err());
        assert!(registry().compose("bogus", "chain").is_err());
    }

    #[test]
    fn catalogue_is_complete() {
        let names: Vec<&str> = registry().specs().iter().map(|s| s.name()).collect();
        for expected in [
            "lap-gr",
            "lap-hg",
            "tbf",
            "exp-hg",
            "tbf-rand",
            "tbf-chain",
            "random",
            "exp-chain",
            "tbf-cap",
            "lap-kd",
            "opt",
        ] {
            assert!(names.contains(&expected), "missing spec {expected}");
        }
        assert_eq!(registry().mechanisms().len(), 5);
        assert_eq!(registry().matchers().len(), 8);
    }

    #[test]
    fn dynamic_matchers_are_catalogued() {
        let matchers = registry().dynamic_matchers();
        let names: Vec<&str> = matchers.iter().map(|m| m.name()).collect();
        assert_eq!(names, ["hst-greedy", "kd-rebuild", "random"]);
        let hst = registry().dynamic_matcher("HST-Greedy").expect("resolves");
        assert!(hst.needs_server());
        assert!(!registry()
            .dynamic_matcher("kd-rebuild")
            .unwrap()
            .needs_server());
        assert!(registry().dynamic_matcher("bogus").is_none());
        let err = registry()
            .require_dynamic_matcher("bogus")
            .map(|m| m.name())
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("bogus") && msg.contains("kd-rebuild"), "{msg}");
    }

    #[test]
    fn the_oracle_is_catalogued_but_not_pairable() {
        // Visible in the full catalog with its role...
        let catalog = registry().dynamic_matcher_catalog();
        assert_eq!(catalog.kind(), "dynamic matcher");
        assert_eq!(catalog.len(), 4);
        assert_eq!(
            catalog.role_of(DEFAULT_DYNAMIC_ORACLE),
            Some(Role::OracleOnly)
        );
        assert_eq!(catalog.role_of("hst-greedy"), Some(Role::Pairing));
        // ...resolvable as an oracle (case-insensitively)...
        let oracle = registry().dynamic_oracle("Dynamic-OPT").expect("resolves");
        assert_eq!(oracle.name(), "dynamic-opt");
        assert!(!oracle.needs_server());
        // ...but a typed role error in pairing position, and vice versa.
        let err = registry()
            .require_dynamic_matcher(DEFAULT_DYNAMIC_ORACLE)
            .map(|m| m.name())
            .unwrap_err();
        assert!(
            matches!(err, PipelineError::RoleMismatch { .. }),
            "got {err}"
        );
        assert!(err.to_string().contains("oracle-only"), "{err}");
        let err = registry()
            .dynamic_oracle("hst-greedy")
            .map(|m| m.name())
            .unwrap_err();
        assert!(
            matches!(err, PipelineError::RoleMismatch { .. }),
            "got {err}"
        );
        // Unknown names still report the axis with sorted candidates.
        let err = registry().dynamic_oracle("bogus").map(|_| ()).unwrap_err();
        assert!(
            matches!(err, PipelineError::UnknownEntry { .. }),
            "got {err}"
        );
    }

    #[test]
    fn unknown_entry_candidates_are_sorted() {
        let err = registry()
            .require_scenario("bogus")
            .map(|_| ())
            .unwrap_err();
        let PipelineError::UnknownEntry { kind, known, .. } = &err else {
            panic!("expected UnknownEntry, got {err}");
        };
        assert_eq!(*kind, "scenario");
        let mut sorted = known.clone();
        sorted.sort();
        assert_eq!(*known, sorted, "candidates must be sorted");
    }

    #[test]
    fn scenarios_are_catalogued() {
        let names: Vec<&str> = registry().scenarios().iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            [
                "uniform",
                "normal",
                "hotspot",
                "poisson-disk",
                "adversarial-cell"
            ]
        );
        let hotspot = registry().scenario("HotSpot").expect("case-insensitive");
        assert_eq!(hotspot.name(), "hotspot");
        assert!(registry().scenario("bogus").is_none());
        let err = registry()
            .require_scenario("bogus")
            .map(|_| ())
            .unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("unknown scenario `bogus`")
                && msg.contains("poisson-disk")
                && msg.contains("uniform"),
            "{msg}"
        );
    }

    #[test]
    fn fault_plans_are_catalogued() {
        let names: Vec<&str> = registry().fault_plans().iter().map(|p| p.name()).collect();
        assert_eq!(names, ["none", "flaky-wire", "dup-storm", "burst"]);
        let flaky = registry()
            .fault_plan("Flaky-Wire")
            .expect("case-insensitive");
        assert_eq!(flaky.name(), "flaky-wire");
        assert!(registry().fault_plan("bogus").is_none());
        let err = registry()
            .require_fault_plan("bogus")
            .map(|_| ())
            .unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("unknown fault plan `bogus`")
                && msg.contains("dup-storm")
                && msg.contains("burst"),
            "{msg}"
        );
    }

    #[test]
    fn offline_opt_is_registered_as_a_matcher() {
        let matcher = registry().matcher("offline-opt").expect("registered");
        assert_eq!(matcher.name(), "offline-opt");
        assert!(!matcher.needs_server());
        let spec = registry().spec("opt").expect("named pairing");
        assert_eq!(spec.mechanism.name(), "identity");
        assert_eq!(spec.matcher.name(), "offline-opt");
        assert!(!spec.needs_server());
    }
}
