//! The untrusted crowdsourcing server's published artifacts.

use pombm_geom::{seeded_rng, Grid, Point, Rect};
use pombm_hst::{Hst, LeafCode};

/// Step 1 of the paper's workflow: the server constructs an HST upon a
/// predefined set of points and publishes both.
///
/// The predefined set is a uniform grid over the workspace (the paper leaves
/// the choice open; a grid gives even coverage and O(1) location-to-point
/// snapping — see `pombm_geom::Grid`). Workers and tasks use
/// [`Server::snap`] to map a true location to its HST leaf, then obfuscate
/// that leaf with their mechanism of choice before reporting.
#[derive(Debug, Clone)]
pub struct Server {
    region: Rect,
    grid: Grid,
    hst: Hst,
}

/// Which HST construction the server publishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TreeConstruction {
    /// The paper's randomized FRT construction (Alg. 1).
    #[default]
    Frt,
    /// Deterministic dyadic quadtree (the `ablatetree` ablation); ignores
    /// the seed.
    Quadtree,
}

impl Server {
    /// Builds the server's artifacts: a `grid_side × grid_side` grid of
    /// predefined points over `region` and a random HST over it, seeded for
    /// reproducibility.
    pub fn new(region: Rect, grid_side: usize, seed: u64) -> Self {
        Self::with_construction(region, grid_side, seed, TreeConstruction::Frt)
    }

    /// Builds the server with an explicit HST construction.
    pub fn with_construction(
        region: Rect,
        grid_side: usize,
        seed: u64,
        construction: TreeConstruction,
    ) -> Self {
        let grid = Grid::square(region, grid_side);
        let hst = match construction {
            TreeConstruction::Frt => {
                let mut rng = seeded_rng(seed, 0x45F7);
                Hst::build(&grid.to_point_set(), &mut rng)
            }
            TreeConstruction::Quadtree => Hst::from_quadtree(&grid.to_point_set()),
        };
        Server { region, grid, hst }
    }

    /// The workspace region.
    pub fn region(&self) -> Rect {
        self.region
    }

    /// The predefined point grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The published HST.
    pub fn hst(&self) -> &Hst {
        &self.hst
    }

    /// Number of predefined points `N` (the paper's competitive ratio is
    /// `O(ε⁻⁴ log N log² k)`).
    pub fn num_predefined(&self) -> usize {
        self.grid.len()
    }

    /// Maps a location to the HST leaf of its nearest predefined point.
    /// O(1) via grid arithmetic.
    pub fn snap(&self, location: &Point) -> LeafCode {
        self.hst.leaf_of(self.grid.nearest(location))
    }

    /// The Euclidean coordinates of a *real* leaf's predefined point;
    /// `None` for fake leaves.
    pub fn leaf_location(&self, code: LeafCode) -> Option<Point> {
        self.hst.point_of(code).map(|p| self.grid.point(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snap_is_consistent_with_grid() {
        let server = Server::new(Rect::square(200.0), 8, 42);
        let p = Point::new(13.0, 187.0);
        let id = server.grid().nearest(&p);
        assert_eq!(server.snap(&p), server.hst().leaf_of(id));
    }

    #[test]
    fn leaf_location_roundtrips_real_leaves() {
        let server = Server::new(Rect::square(200.0), 4, 7);
        for id in 0..server.grid().len() {
            let code = server.hst().leaf_of(id);
            assert_eq!(server.leaf_location(code), Some(server.grid().point(id)));
        }
    }

    #[test]
    fn same_seed_same_tree() {
        let a = Server::new(Rect::square(100.0), 8, 5);
        let b = Server::new(Rect::square(100.0), 8, 5);
        for id in 0..a.grid().len() {
            assert_eq!(a.hst().leaf_of(id), b.hst().leaf_of(id));
        }
    }

    #[test]
    fn different_seeds_usually_differ() {
        let a = Server::new(Rect::square(100.0), 8, 5);
        let b = Server::new(Rect::square(100.0), 8, 6);
        let same = (0..a.grid().len())
            .filter(|&id| a.hst().leaf_of(id) == b.hst().leaf_of(id))
            .count();
        assert!(same < a.grid().len(), "trees should differ between seeds");
    }

    #[test]
    fn num_predefined_is_grid_size() {
        let server = Server::new(Rect::square(50.0), 6, 0);
        assert_eq!(server.num_predefined(), 36);
    }
}
