//! The pipeline driver: one generic obfuscate → register → assign loop.
//!
//! Historically each compared algorithm of Sec. IV was one arm of a large
//! `match` here, duplicating the plumbing seven times. The driver is now a
//! single generic function over an [`AlgorithmSpec`] — a named pairing of
//! a [`ReportMechanism`](crate::algorithm::ReportMechanism) and an
//! [`AssignStrategy`](crate::algorithm::AssignStrategy) from the
//! [`registry`] — and the [`Algorithm`] enum survives only as a set of
//! thin aliases resolving into that registry, so existing callers and
//! serialized configs keep working.
//!
//! Timing semantics: `obfuscation_time` covers mechanism construction plus
//! every report; `assign_time` covers worker registration (matcher
//! construction) plus the online assignment loop; `setup_time` covers
//! building the server's published artifacts (zero when a prebuilt server
//! is supplied).

use crate::algorithm::{AssignCtx, PipelineError, Report, ReportSet, Reports};
use crate::registry::{registry, AlgorithmSpec};
use crate::server::Server;
use pombm_geom::seeded_rng;
use pombm_matching::{HstGreedyEngine, Matching};
use pombm_privacy::Epsilon;
use pombm_workload::Instance;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// The compared algorithms of the main evaluation (Sec. IV-A), plus the
/// extension/ablation variants this repository adds.
///
/// Soft-deprecated: these are aliases into the [`registry`]; new code
/// (and new pairings like `exp-chain`) should address specs by name via
/// [`registry()`][registry] and run them with [`run_spec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Lap-GR: planar Laplace mechanism + Euclidean greedy.
    LapGr,
    /// Lap-HG: planar Laplace mechanism + HST-greedy (locations snapped to
    /// the tree after noising).
    LapHg,
    /// TBF: the paper's tree-based framework (Alg. 3 mechanism + Alg. 4
    /// matching).
    Tbf,
    /// Exp-HG: exponential mechanism over the predefined points + HST-greedy.
    /// Same output domain and matcher as TBF but no tree in the *mechanism*
    /// — the ablation separating "discretize" from "use the tree".
    ExpHg,
    /// TBF-Rand: the TBF mechanism + randomized greedy (uniform choice
    /// among tree-nearest workers, Meyerson et al. style).
    TbfRand,
    /// TBF-Chain: the TBF mechanism + the chain-reassignment matcher of
    /// Bansal et al.
    TbfChain,
    /// Random: location-blind uniform assignment on true arrivals; the
    /// sanity floor (no mechanism — nothing location-dependent is reported).
    RandomFloor,
}

impl Algorithm {
    /// The paper's three algorithms, in its plotting order.
    pub const ALL: [Algorithm; 3] = [Algorithm::LapGr, Algorithm::LapHg, Algorithm::Tbf];

    /// The extension/ablation variants added by this repository.
    pub const EXTENDED: [Algorithm; 4] = [
        Algorithm::ExpHg,
        Algorithm::TbfRand,
        Algorithm::TbfChain,
        Algorithm::RandomFloor,
    ];

    /// The registry name this variant aliases.
    pub fn spec_name(&self) -> &'static str {
        match self {
            Algorithm::LapGr => "lap-gr",
            Algorithm::LapHg => "lap-hg",
            Algorithm::Tbf => "tbf",
            Algorithm::ExpHg => "exp-hg",
            Algorithm::TbfRand => "tbf-rand",
            Algorithm::TbfChain => "tbf-chain",
            Algorithm::RandomFloor => "random",
        }
    }

    /// The registered spec this variant resolves to.
    pub fn spec(&self) -> &'static AlgorithmSpec {
        registry()
            .spec(self.spec_name())
            .expect("legacy algorithms are always registered")
    }

    /// The label used in the paper's figures (or our extension labels).
    pub fn label(&self) -> &'static str {
        match self {
            Algorithm::LapGr => "Lap-GR",
            Algorithm::LapHg => "Lap-HG",
            Algorithm::Tbf => "TBF",
            Algorithm::ExpHg => "Exp-HG",
            Algorithm::TbfRand => "TBF-Rand",
            Algorithm::TbfChain => "TBF-Chain",
            Algorithm::RandomFloor => "Random",
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Pipeline configuration shared by all algorithms of one experiment.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Privacy budget ε (per workspace unit).
    pub epsilon: f64,
    /// Predefined-point grid side; `N = grid_side²`.
    pub grid_side: usize,
    /// Nearest-worker engine for the HST matchers.
    pub engine: HstGreedyEngine,
    /// Bucket-grid resolution for the Euclidean matcher (cells per axis);
    /// 0 disables the index (paper-faithful linear scan).
    pub euclid_cells: usize,
    /// Per-worker task capacity for the `capacity` matcher; ignored by
    /// matchers that assign each worker at most once.
    pub capacity: u32,
    /// Base seed; mechanisms, tree construction and arrival shuffling derive
    /// independent streams from it.
    pub seed: u64,
    /// Worker threads for the in-run hot paths — batched obfuscation
    /// ([`crate::algorithm::ReportMechanism::report_batch`]) and the
    /// Hungarian `offline-opt` matcher. `0` = auto-size (one per core /
    /// batch-proportional), `1` = sequential. Results are bit-identical
    /// for every value: threads trade wall-clock for cores, never output.
    pub threads: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            epsilon: 0.6,
            grid_side: 32,
            engine: HstGreedyEngine::Scan,
            euclid_cells: 0,
            capacity: 1,
            seed: 0,
            threads: 1,
        }
    }
}

/// The fields every execution surface's configuration repeats —
/// [`PipelineConfig`], [`crate::DynamicConfig`] and [`crate::ServeConfig`]
/// each carry their own `epsilon`/`grid_side`/`seed` (and usually
/// `threads`) because their serialized layouts are pinned by golden JSON
/// and cannot embed a shared struct without changing bytes. This trait
/// unifies them behind delegating accessors instead, so generic drivers
/// and diagnostics can read the common knobs off any config.
pub trait CommonConfig {
    /// Privacy budget ε (per workspace unit).
    fn epsilon(&self) -> f64;
    /// Predefined-point grid side; `N = grid_side²`.
    fn grid_side(&self) -> usize;
    /// Base seed every derived RNG stream descends from.
    fn seed(&self) -> u64;
    /// Worker threads for intra-run parallel paths (`0` = auto, `1` =
    /// sequential); surfaces without such a path report `1`.
    fn threads(&self) -> usize {
        1
    }
}

impl CommonConfig for PipelineConfig {
    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn grid_side(&self) -> usize {
        self.grid_side
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn threads(&self) -> usize {
        self.threads
    }
}

/// Effectiveness and efficiency metrics of one run, mirroring the paper's
/// reported quantities.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Total travel distance over *true* locations (Figs. 6a-d, 7a-d).
    pub total_distance: f64,
    /// Number of assigned pairs.
    pub matching_size: usize,
    /// Wall-clock time spent registering workers and assigning tasks —
    /// "from receiving a task to the completion of the assignment"
    /// (Figs. 6e-h, 7e-h).
    pub assign_time: Duration,
    /// Wall-clock time spent in the privacy mechanism (not part of the
    /// paper's running-time metric; reported separately).
    pub obfuscation_time: Duration,
    /// Wall-clock time spent building server artifacts (HST construction);
    /// zero when a prebuilt server is supplied.
    pub setup_time: Duration,
}

impl RunMetrics {
    /// Mean assignment latency per task.
    ///
    /// Divides in `u128` nanoseconds: the previous
    /// `assign_time / size as u32` silently wrapped the divisor for
    /// matchings larger than `u32::MAX`.
    pub fn avg_task_latency(&self) -> Duration {
        if self.matching_size == 0 {
            Duration::ZERO
        } else {
            let nanos = self.assign_time.as_nanos() / self.matching_size as u128;
            Duration::from_nanos(u64::try_from(nanos).unwrap_or(u64::MAX))
        }
    }
}

/// A completed pipeline run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The produced assignment (task index, worker index).
    pub matching: Matching,
    /// Collected metrics.
    pub metrics: RunMetrics,
}

/// Runs a registered or composed spec, building the server artifacts
/// internally when either stage needs them.
///
/// `repetition` decorrelates the randomness of repeated runs: the paper
/// repeats every experiment 10 times and reports averages.
pub fn run_spec(
    spec: &AlgorithmSpec,
    instance: &Instance,
    config: &PipelineConfig,
    repetition: u64,
) -> Result<RunResult, PipelineError> {
    // lint: allow(DET-TIME) — stage timing for RunMetrics.wall_ms, which
    // the sweep strips before fingerprinting.
    let setup_start = Instant::now();
    let server = spec.needs_server().then(|| {
        Server::new(
            instance.region,
            config.grid_side,
            config.seed ^ (repetition.wrapping_mul(0x9E37_79B9)),
        )
    });
    let setup_time = setup_start.elapsed();
    let mut result = run_spec_with_server(spec, instance, config, server.as_ref(), repetition)?;
    result.metrics.setup_time = setup_time;
    Ok(result)
}

/// Runs a spec against an optional prebuilt [`Server`] — the single
/// generic driver behind every algorithm: obfuscate (stage 1), register +
/// assign (stage 2), evaluate on true locations.
pub fn run_spec_with_server(
    spec: &AlgorithmSpec,
    instance: &Instance,
    config: &PipelineConfig,
    server: Option<&Server>,
    repetition: u64,
) -> Result<RunResult, PipelineError> {
    let epsilon = Epsilon::new(config.epsilon);
    let mut mech_rng = seeded_rng(config.seed.wrapping_add(repetition), 0x0BF5);

    // Stage 1: obfuscation. Workers report first (step 2 of the paper's
    // workflow), then tasks in arrival order (step 3), all on one RNG
    // stream so runs are reproducible per (seed, repetition). The batched
    // entry point is contractually bit-identical to the scalar report loop
    // at every `config.threads`, so parallelism never moves a report.
    // One concatenated batch, split afterwards: a custom mechanism whose
    // reporter carries cross-report state sees the same single
    // worker-then-task stream the pre-batch driver fed it.
    // lint: allow(DET-TIME) — stage timing for RunMetrics.wall_ms, which
    // the sweep strips before fingerprinting.
    let obf_start = Instant::now();
    let mut locations = Vec::with_capacity(instance.num_workers() + instance.num_tasks());
    locations.extend_from_slice(&instance.workers);
    locations.extend_from_slice(&instance.tasks);
    let mut worker_reports: Vec<Report> =
        spec.mechanism
            .report_batch(epsilon, server, &locations, &mut mech_rng, config.threads)?;
    let task_reports: Vec<Report> = worker_reports.split_off(instance.num_workers());
    let mechanism_name = spec.mechanism.name();
    let reports = ReportSet {
        workers: Reports::collect(worker_reports, mechanism_name)?,
        tasks: Reports::collect(task_reports, mechanism_name)?,
    };
    let obfuscation_time = obf_start.elapsed();

    // Stage 2: registration + online assignment.
    let mut tie_rng = seeded_rng(config.seed.wrapping_add(repetition), 0x7A9D);
    let mut ctx = AssignCtx {
        instance,
        config,
        server,
        mech_rng: &mut mech_rng,
        tie_rng: &mut tie_rng,
    };
    // lint: allow(DET-TIME) — stage timing for RunMetrics.wall_ms, which
    // the sweep strips before fingerprinting.
    let assign_start = Instant::now();
    let matching = spec.matcher.assign(reports, &mut ctx)?;
    let assign_time = assign_start.elapsed();

    debug_assert!(
        valid_for(&matching, spec.matcher.reuses_workers()),
        "{}: invalid matching",
        spec.name()
    );

    // Evaluation is always on true locations, whatever was reported.
    let total_distance = matching.total_distance(&instance.tasks, &instance.workers);
    let matching_size = matching.size();
    Ok(RunResult {
        matching,
        metrics: RunMetrics {
            total_distance,
            matching_size,
            assign_time,
            obfuscation_time,
            setup_time: Duration::ZERO,
        },
    })
}

/// Tasks must be unique always; workers only for non-capacitated matchers.
fn valid_for(matching: &Matching, reuses_workers: bool) -> bool {
    if reuses_workers {
        // lint: allow(DET-HASH) — membership test only; never iterated.
        let mut tasks = std::collections::HashSet::new();
        matching.pairs.iter().all(|&(t, _)| tasks.insert(t))
    } else {
        matching.is_valid()
    }
}

/// Runs a legacy [`Algorithm`] alias, building the server internally.
pub fn run(
    algorithm: Algorithm,
    instance: &Instance,
    config: &PipelineConfig,
    repetition: u64,
) -> RunResult {
    run_spec(algorithm.spec(), instance, config, repetition)
        .expect("legacy algorithm specs are always runnable")
}

/// Runs a legacy [`Algorithm`] alias against a prebuilt [`Server`]
/// (required for the tree-based variants, ignored for `LapGr`).
pub fn run_with_server(
    algorithm: Algorithm,
    instance: &Instance,
    config: &PipelineConfig,
    server: Option<&Server>,
    repetition: u64,
) -> RunResult {
    match run_spec_with_server(algorithm.spec(), instance, config, server, repetition) {
        Ok(result) => result,
        Err(PipelineError::MissingServer(who)) => {
            panic!("{} needs a server: {who}", algorithm.label())
        }
        Err(e) => panic!("{}: {e}", algorithm.label()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pombm_workload::{synthetic, SyntheticParams};

    fn small_instance(seed: u64) -> Instance {
        let params = SyntheticParams {
            num_tasks: 60,
            num_workers: 100,
            ..SyntheticParams::default()
        };
        synthetic::generate(&params, &mut seeded_rng(seed, 0))
    }

    #[test]
    fn common_config_unifies_every_surface() {
        fn summarize(c: &dyn CommonConfig) -> (f64, usize, u64, usize) {
            (c.epsilon(), c.grid_side(), c.seed(), c.threads())
        }
        let pipeline = PipelineConfig {
            seed: 7,
            threads: 4,
            ..PipelineConfig::default()
        };
        assert_eq!(summarize(&pipeline), (0.6, 32, 7, 4));
        let dynamic = crate::DynamicConfig {
            seed: 9,
            ..crate::DynamicConfig::default()
        };
        // The event loop has no parallel path: threads reports 1.
        assert_eq!(summarize(&dynamic), (0.6, 32, 9, 1));
        let serve = crate::ServeConfig {
            grid_side: 16,
            threads: 0,
            ..crate::ServeConfig::default()
        };
        assert_eq!(summarize(&serve), (0.6, 16, 0, 0));
    }

    #[test]
    fn all_algorithms_match_every_task() {
        let instance = small_instance(1);
        let config = PipelineConfig::default();
        for algo in Algorithm::ALL {
            let r = run(algo, &instance, &config, 0);
            assert_eq!(r.matching.size(), 60, "{algo} must match all tasks");
            assert!(r.matching.is_valid());
            assert!(r.metrics.total_distance > 0.0);
        }
    }

    #[test]
    fn runs_are_reproducible() {
        let instance = small_instance(2);
        let config = PipelineConfig::default();
        for algo in Algorithm::ALL {
            let a = run(algo, &instance, &config, 3);
            let b = run(algo, &instance, &config, 3);
            assert_eq!(a.matching.pairs, b.matching.pairs, "{algo}");
            assert_eq!(a.metrics.total_distance, b.metrics.total_distance, "{algo}");
        }
    }

    #[test]
    fn repetitions_decorrelate() {
        let instance = small_instance(3);
        let config = PipelineConfig::default();
        let a = run(Algorithm::Tbf, &instance, &config, 0);
        let b = run(Algorithm::Tbf, &instance, &config, 1);
        assert_ne!(
            a.matching.pairs, b.matching.pairs,
            "different repetitions should use different randomness"
        );
    }

    #[test]
    fn indexed_and_scan_engines_agree() {
        let instance = small_instance(4);
        let scan = PipelineConfig {
            engine: HstGreedyEngine::Scan,
            ..PipelineConfig::default()
        };
        let indexed = PipelineConfig {
            engine: HstGreedyEngine::Indexed,
            ..PipelineConfig::default()
        };
        for algo in [Algorithm::LapHg, Algorithm::Tbf] {
            let a = run(algo, &instance, &scan, 5);
            let b = run(algo, &instance, &indexed, 5);
            assert_eq!(a.matching.pairs, b.matching.pairs, "{algo}");
        }
    }

    #[test]
    fn cell_index_matches_plain_scan_for_lapgr() {
        let instance = small_instance(5);
        let plain = PipelineConfig::default();
        let indexed = PipelineConfig {
            euclid_cells: 8,
            ..PipelineConfig::default()
        };
        let a = run(Algorithm::LapGr, &instance, &plain, 6);
        let b = run(Algorithm::LapGr, &instance, &indexed, 6);
        assert_eq!(a.matching.pairs, b.matching.pairs);
    }

    #[test]
    fn more_tasks_than_workers_matches_all_workers() {
        let params = SyntheticParams {
            num_tasks: 50,
            num_workers: 20,
            ..SyntheticParams::default()
        };
        let instance = synthetic::generate(&params, &mut seeded_rng(7, 0));
        for algo in Algorithm::ALL {
            let r = run(algo, &instance, &PipelineConfig::default(), 0);
            assert_eq!(r.matching.size(), 20, "{algo}: k = min(n, m)");
        }
    }

    #[test]
    fn tighter_privacy_budget_worsens_distance_on_average() {
        // ε = 0.05 vs ε = 5.0 over several repetitions: the loose budget
        // must win by a wide margin for every algorithm.
        let instance = small_instance(8);
        for algo in Algorithm::ALL {
            let total = |eps: f64| -> f64 {
                (0..5)
                    .map(|rep| {
                        let config = PipelineConfig {
                            epsilon: eps,
                            ..PipelineConfig::default()
                        };
                        run(algo, &instance, &config, rep).metrics.total_distance
                    })
                    .sum::<f64>()
                    / 5.0
            };
            let strict = total(0.05);
            let loose = total(5.0);
            assert!(
                loose < strict,
                "{algo}: ε=5 distance {loose} should beat ε=0.05 {strict}"
            );
        }
    }

    #[test]
    fn extended_algorithms_match_every_task() {
        let instance = small_instance(10);
        let config = PipelineConfig::default();
        for algo in Algorithm::EXTENDED {
            let r = run(algo, &instance, &config, 0);
            assert_eq!(r.matching.size(), 60, "{algo} must match all tasks");
            assert!(r.matching.is_valid(), "{algo}");
            assert!(r.metrics.total_distance > 0.0, "{algo}");
        }
    }

    #[test]
    fn extended_runs_are_reproducible() {
        let instance = small_instance(11);
        let config = PipelineConfig::default();
        for algo in Algorithm::EXTENDED {
            let a = run(algo, &instance, &config, 2);
            let b = run(algo, &instance, &config, 2);
            assert_eq!(a.matching.pairs, b.matching.pairs, "{algo}");
        }
    }

    #[test]
    fn random_floor_loses_to_every_location_aware_algorithm() {
        let instance = small_instance(12);
        let config = PipelineConfig::default();
        let avg = |algo: Algorithm| -> f64 {
            (0..5)
                .map(|rep| run(algo, &instance, &config, rep).metrics.total_distance)
                .sum::<f64>()
                / 5.0
        };
        let floor = avg(Algorithm::RandomFloor);
        for algo in [
            Algorithm::LapGr,
            Algorithm::LapHg,
            Algorithm::Tbf,
            Algorithm::ExpHg,
            Algorithm::TbfRand,
            Algorithm::TbfChain,
        ] {
            let d = avg(algo);
            assert!(
                d < floor,
                "{algo} ({d}) should beat the random floor ({floor})"
            );
        }
    }

    #[test]
    fn tbf_variants_stay_close_to_plain_tbf() {
        // Randomized tie-breaking and chain hops change individual pairs
        // but the total distance must stay in the same ballpark (within 2×
        // on average) — they optimize the same tree-distance objective.
        let instance = small_instance(13);
        let config = PipelineConfig::default();
        let avg = |algo: Algorithm| -> f64 {
            (0..5)
                .map(|rep| run(algo, &instance, &config, rep).metrics.total_distance)
                .sum::<f64>()
                / 5.0
        };
        let tbf = avg(Algorithm::Tbf);
        for algo in [Algorithm::TbfRand, Algorithm::TbfChain] {
            let d = avg(algo);
            assert!(
                d < 2.0 * tbf && d > 0.3 * tbf,
                "{algo} ({d}) drifted far from TBF ({tbf})"
            );
        }
    }

    #[test]
    fn avg_task_latency_is_consistent() {
        let instance = small_instance(9);
        let r = run(Algorithm::Tbf, &instance, &PipelineConfig::default(), 0);
        let avg = r.metrics.avg_task_latency();
        assert!(avg <= r.metrics.assign_time);
        // Duration division truncates, so allow up to 60 lost nanoseconds.
        assert!(avg.as_nanos() * 60 + 60 >= r.metrics.assign_time.as_nanos());
    }

    #[test]
    fn avg_task_latency_survives_huge_matchings() {
        // 5 billion pairs overflows a u32 divisor; the old
        // `assign_time / size as u32` wrapped to dividing by ~705 million,
        // reporting a latency ~7x too large.
        let metrics = RunMetrics {
            total_distance: 0.0,
            matching_size: 5_000_000_000,
            assign_time: Duration::from_secs(5_000),
            obfuscation_time: Duration::ZERO,
            setup_time: Duration::ZERO,
        };
        assert_eq!(metrics.avg_task_latency(), Duration::from_micros(1));
        let empty = RunMetrics {
            matching_size: 0,
            ..metrics
        };
        assert_eq!(empty.avg_task_latency(), Duration::ZERO);
    }

    #[test]
    fn capacity_spec_reuses_workers() {
        // 90 tasks onto 40 workers of capacity 3: every task is served,
        // which the unit-capacity matchers cannot do.
        let params = SyntheticParams {
            num_tasks: 90,
            num_workers: 40,
            ..SyntheticParams::default()
        };
        let instance = synthetic::generate(&params, &mut seeded_rng(21, 0));
        let config = PipelineConfig {
            capacity: 3,
            ..PipelineConfig::default()
        };
        let spec = registry().spec("tbf-cap").unwrap();
        let r = run_spec(spec, &instance, &config, 0).unwrap();
        assert_eq!(r.matching.size(), 90);
        let unit = run(Algorithm::Tbf, &instance, &config, 0);
        assert_eq!(unit.matching.size(), 40);
    }
}
