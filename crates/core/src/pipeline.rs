//! End-to-end pipelines: the compared algorithms of Sec. IV.

use crate::server::Server;
use pombm_geom::{seeded_rng, Point};
use pombm_hst::LeafCode;
use pombm_matching::{
    ChainMatcher, EuclideanGreedy, HstGreedy, HstGreedyEngine, Matching, RandomAssign,
    RandomizedGreedy,
};
use pombm_privacy::{Epsilon, ExponentialMechanism, HstMechanism, PlanarLaplace};
use pombm_workload::Instance;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// The compared algorithms of the main evaluation (Sec. IV-A), plus the
/// extension/ablation variants this repository adds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Lap-GR: planar Laplace mechanism + Euclidean greedy.
    LapGr,
    /// Lap-HG: planar Laplace mechanism + HST-greedy (locations snapped to
    /// the tree after noising).
    LapHg,
    /// TBF: the paper's tree-based framework (Alg. 3 mechanism + Alg. 4
    /// matching).
    Tbf,
    /// Exp-HG: exponential mechanism over the predefined points + HST-greedy.
    /// Same output domain and matcher as TBF but no tree in the *mechanism*
    /// — the ablation separating "discretize" from "use the tree".
    ExpHg,
    /// TBF-Rand: the TBF mechanism + randomized greedy (uniform choice
    /// among tree-nearest workers, Meyerson et al. style).
    TbfRand,
    /// TBF-Chain: the TBF mechanism + the chain-reassignment matcher of
    /// Bansal et al.
    TbfChain,
    /// Random: location-blind uniform assignment on true arrivals; the
    /// sanity floor (no mechanism — nothing location-dependent is reported).
    RandomFloor,
}

impl Algorithm {
    /// The paper's three algorithms, in its plotting order.
    pub const ALL: [Algorithm; 3] = [Algorithm::LapGr, Algorithm::LapHg, Algorithm::Tbf];

    /// The extension/ablation variants added by this repository.
    pub const EXTENDED: [Algorithm; 4] = [
        Algorithm::ExpHg,
        Algorithm::TbfRand,
        Algorithm::TbfChain,
        Algorithm::RandomFloor,
    ];

    /// The label used in the paper's figures (or our extension labels).
    pub fn label(&self) -> &'static str {
        match self {
            Algorithm::LapGr => "Lap-GR",
            Algorithm::LapHg => "Lap-HG",
            Algorithm::Tbf => "TBF",
            Algorithm::ExpHg => "Exp-HG",
            Algorithm::TbfRand => "TBF-Rand",
            Algorithm::TbfChain => "TBF-Chain",
            Algorithm::RandomFloor => "Random",
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Pipeline configuration shared by all algorithms of one experiment.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Privacy budget ε (per workspace unit).
    pub epsilon: f64,
    /// Predefined-point grid side; `N = grid_side²`.
    pub grid_side: usize,
    /// Nearest-worker engine for the HST matchers.
    pub engine: HstGreedyEngine,
    /// Bucket-grid resolution for the Euclidean matcher (cells per axis);
    /// 0 disables the index (paper-faithful linear scan).
    pub euclid_cells: usize,
    /// Base seed; mechanisms, tree construction and arrival shuffling derive
    /// independent streams from it.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            epsilon: 0.6,
            grid_side: 32,
            engine: HstGreedyEngine::Scan,
            euclid_cells: 0,
            seed: 0,
        }
    }
}

/// Effectiveness and efficiency metrics of one run, mirroring the paper's
/// reported quantities.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Total travel distance over *true* locations (Figs. 6a-d, 7a-d).
    pub total_distance: f64,
    /// Number of assigned pairs.
    pub matching_size: usize,
    /// Wall-clock time spent assigning tasks — "from receiving a task to the
    /// completion of the assignment" (Figs. 6e-h, 7e-h).
    pub assign_time: Duration,
    /// Wall-clock time spent in the privacy mechanism (not part of the
    /// paper's running-time metric; reported separately).
    pub obfuscation_time: Duration,
    /// Wall-clock time spent building server artifacts (HST construction);
    /// zero when a prebuilt server is supplied.
    pub setup_time: Duration,
}

impl RunMetrics {
    /// Mean assignment latency per task.
    pub fn avg_task_latency(&self) -> Duration {
        if self.matching_size == 0 {
            Duration::ZERO
        } else {
            self.assign_time / self.matching_size as u32
        }
    }
}

/// A completed pipeline run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The produced assignment (task index, worker index).
    pub matching: Matching,
    /// Collected metrics.
    pub metrics: RunMetrics,
}

/// Runs `algorithm` on `instance`, building the server artifacts internally.
///
/// `repetition` decorrelates the randomness of repeated runs: the paper
/// repeats every experiment 10 times and reports averages.
pub fn run(
    algorithm: Algorithm,
    instance: &Instance,
    config: &PipelineConfig,
    repetition: u64,
) -> RunResult {
    let needs_tree = matches!(
        algorithm,
        Algorithm::LapHg
            | Algorithm::Tbf
            | Algorithm::ExpHg
            | Algorithm::TbfRand
            | Algorithm::TbfChain
    );
    let setup_start = Instant::now();
    let server = needs_tree.then(|| {
        Server::new(
            instance.region,
            config.grid_side,
            config.seed ^ (repetition.wrapping_mul(0x9E37_79B9)),
        )
    });
    let setup_time = setup_start.elapsed();
    let mut result = run_with_server(algorithm, instance, config, server.as_ref(), repetition);
    result.metrics.setup_time = setup_time;
    result
}

/// Runs `algorithm` against a prebuilt [`Server`] (required for
/// [`Algorithm::LapHg`] and [`Algorithm::Tbf`], ignored for
/// [`Algorithm::LapGr`]).
pub fn run_with_server(
    algorithm: Algorithm,
    instance: &Instance,
    config: &PipelineConfig,
    server: Option<&Server>,
    repetition: u64,
) -> RunResult {
    let epsilon = Epsilon::new(config.epsilon);
    let mut mech_rng = seeded_rng(config.seed.wrapping_add(repetition), 0x0BF5);

    match algorithm {
        Algorithm::LapGr => {
            let laplace = PlanarLaplace::new(epsilon);
            let obf_start = Instant::now();
            let reported_workers: Vec<Point> = instance
                .workers
                .iter()
                .map(|w| laplace.obfuscate(w, &mut mech_rng))
                .collect();
            let reported_tasks: Vec<Point> = instance
                .tasks
                .iter()
                .map(|t| laplace.obfuscate(t, &mut mech_rng))
                .collect();
            let obfuscation_time = obf_start.elapsed();

            let mut matcher = if config.euclid_cells > 0 {
                EuclideanGreedy::with_cell_index(
                    reported_workers,
                    instance.region,
                    config.euclid_cells,
                )
            } else {
                EuclideanGreedy::new(reported_workers)
            };
            let assign_start = Instant::now();
            let mut matching = Matching::new();
            for (t_idx, t) in reported_tasks.iter().enumerate() {
                if let Some(w_idx) = matcher.assign(t) {
                    matching.pairs.push((t_idx, w_idx));
                }
            }
            let assign_time = assign_start.elapsed();
            finish(matching, instance, assign_time, obfuscation_time)
        }
        Algorithm::LapHg => {
            let server = server.expect("Lap-HG needs a server (HST)");
            let laplace = PlanarLaplace::new(epsilon);
            let obf_start = Instant::now();
            // Noise in the plane, then snap onto the published tree.
            let reported_workers: Vec<LeafCode> = instance
                .workers
                .iter()
                .map(|w| server.snap(&laplace.obfuscate(w, &mut mech_rng)))
                .collect();
            let reported_tasks: Vec<LeafCode> = instance
                .tasks
                .iter()
                .map(|t| server.snap(&laplace.obfuscate(t, &mut mech_rng)))
                .collect();
            let obfuscation_time = obf_start.elapsed();
            run_hst_greedy(
                instance,
                server,
                config,
                reported_workers,
                reported_tasks,
                obfuscation_time,
            )
        }
        Algorithm::Tbf => {
            let server = server.expect("TBF needs a server (HST)");
            let mechanism = HstMechanism::new(server.hst(), epsilon);
            let obf_start = Instant::now();
            let reported_workers: Vec<LeafCode> = instance
                .workers
                .iter()
                .map(|w| mechanism.obfuscate(server.hst(), server.snap(w), &mut mech_rng))
                .collect();
            let reported_tasks: Vec<LeafCode> = instance
                .tasks
                .iter()
                .map(|t| mechanism.obfuscate(server.hst(), server.snap(t), &mut mech_rng))
                .collect();
            let obfuscation_time = obf_start.elapsed();
            run_hst_greedy(
                instance,
                server,
                config,
                reported_workers,
                reported_tasks,
                obfuscation_time,
            )
        }
        Algorithm::ExpHg => {
            let server = server.expect("Exp-HG needs a server (HST + grid)");
            let mut mechanism = ExponentialMechanism::new(server.hst().points().clone(), epsilon);
            let obf_start = Instant::now();
            // Snap to the nearest predefined point, obfuscate among the
            // predefined points, then take that point's leaf on the tree.
            let grid = server.grid();
            let hst = server.hst();
            let reported_workers: Vec<LeafCode> = instance
                .workers
                .iter()
                .map(|w| hst.leaf_of(mechanism.obfuscate(grid.nearest(w), &mut mech_rng)))
                .collect();
            let reported_tasks: Vec<LeafCode> = instance
                .tasks
                .iter()
                .map(|t| hst.leaf_of(mechanism.obfuscate(grid.nearest(t), &mut mech_rng)))
                .collect();
            let obfuscation_time = obf_start.elapsed();
            run_hst_greedy(
                instance,
                server,
                config,
                reported_workers,
                reported_tasks,
                obfuscation_time,
            )
        }
        Algorithm::TbfRand | Algorithm::TbfChain => {
            let server = server.expect("TBF variants need a server (HST)");
            let mechanism = HstMechanism::new(server.hst(), epsilon);
            let obf_start = Instant::now();
            let reported_workers: Vec<LeafCode> = instance
                .workers
                .iter()
                .map(|w| mechanism.obfuscate(server.hst(), server.snap(w), &mut mech_rng))
                .collect();
            let reported_tasks: Vec<LeafCode> = instance
                .tasks
                .iter()
                .map(|t| mechanism.obfuscate(server.hst(), server.snap(t), &mut mech_rng))
                .collect();
            let obfuscation_time = obf_start.elapsed();

            let ctx = server.hst().ctx();
            let assign_start = Instant::now();
            let mut matching = Matching::new();
            match algorithm {
                Algorithm::TbfRand => {
                    let mut matcher = RandomizedGreedy::new(ctx, reported_workers);
                    let mut tie_rng = seeded_rng(config.seed.wrapping_add(repetition), 0x7A9D);
                    for (t_idx, &t) in reported_tasks.iter().enumerate() {
                        if let Some(w_idx) = matcher.assign(t, &mut tie_rng) {
                            matching.pairs.push((t_idx, w_idx));
                        }
                    }
                }
                Algorithm::TbfChain => {
                    let mut matcher = ChainMatcher::new(ctx, reported_workers);
                    for (t_idx, &t) in reported_tasks.iter().enumerate() {
                        if let Some(out) = matcher.assign(t) {
                            matching.pairs.push((t_idx, out.worker));
                        }
                    }
                }
                _ => unreachable!(),
            }
            let assign_time = assign_start.elapsed();
            finish(matching, instance, assign_time, obfuscation_time)
        }
        Algorithm::RandomFloor => {
            // Nothing location-dependent is reported, so there is nothing
            // to obfuscate; the floor is what assignment quality looks like
            // with zero location signal.
            let mut matcher = RandomAssign::new(instance.num_workers());
            let assign_start = Instant::now();
            let mut matching = Matching::new();
            for t_idx in 0..instance.num_tasks() {
                if let Some(w_idx) = matcher.assign(&mut mech_rng) {
                    matching.pairs.push((t_idx, w_idx));
                }
            }
            let assign_time = assign_start.elapsed();
            finish(matching, instance, assign_time, Duration::ZERO)
        }
    }
}

fn run_hst_greedy(
    instance: &Instance,
    server: &Server,
    config: &PipelineConfig,
    reported_workers: Vec<LeafCode>,
    reported_tasks: Vec<LeafCode>,
    obfuscation_time: Duration,
) -> RunResult {
    let mut matcher = HstGreedy::new(server.hst().ctx(), reported_workers, config.engine);
    let assign_start = Instant::now();
    let mut matching = Matching::new();
    for (t_idx, &t) in reported_tasks.iter().enumerate() {
        if let Some(w_idx) = matcher.assign(t) {
            matching.pairs.push((t_idx, w_idx));
        }
    }
    let assign_time = assign_start.elapsed();
    finish(matching, instance, assign_time, obfuscation_time)
}

fn finish(
    matching: Matching,
    instance: &Instance,
    assign_time: Duration,
    obfuscation_time: Duration,
) -> RunResult {
    debug_assert!(matching.is_valid());
    let total_distance = matching.total_distance(&instance.tasks, &instance.workers);
    let matching_size = matching.size();
    RunResult {
        matching,
        metrics: RunMetrics {
            total_distance,
            matching_size,
            assign_time,
            obfuscation_time,
            setup_time: Duration::ZERO,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pombm_workload::{synthetic, SyntheticParams};

    fn small_instance(seed: u64) -> Instance {
        let params = SyntheticParams {
            num_tasks: 60,
            num_workers: 100,
            ..SyntheticParams::default()
        };
        synthetic::generate(&params, &mut seeded_rng(seed, 0))
    }

    #[test]
    fn all_algorithms_match_every_task() {
        let instance = small_instance(1);
        let config = PipelineConfig::default();
        for algo in Algorithm::ALL {
            let r = run(algo, &instance, &config, 0);
            assert_eq!(r.matching.size(), 60, "{algo} must match all tasks");
            assert!(r.matching.is_valid());
            assert!(r.metrics.total_distance > 0.0);
        }
    }

    #[test]
    fn runs_are_reproducible() {
        let instance = small_instance(2);
        let config = PipelineConfig::default();
        for algo in Algorithm::ALL {
            let a = run(algo, &instance, &config, 3);
            let b = run(algo, &instance, &config, 3);
            assert_eq!(a.matching.pairs, b.matching.pairs, "{algo}");
            assert_eq!(a.metrics.total_distance, b.metrics.total_distance, "{algo}");
        }
    }

    #[test]
    fn repetitions_decorrelate() {
        let instance = small_instance(3);
        let config = PipelineConfig::default();
        let a = run(Algorithm::Tbf, &instance, &config, 0);
        let b = run(Algorithm::Tbf, &instance, &config, 1);
        assert_ne!(
            a.matching.pairs, b.matching.pairs,
            "different repetitions should use different randomness"
        );
    }

    #[test]
    fn indexed_and_scan_engines_agree() {
        let instance = small_instance(4);
        let scan = PipelineConfig {
            engine: HstGreedyEngine::Scan,
            ..PipelineConfig::default()
        };
        let indexed = PipelineConfig {
            engine: HstGreedyEngine::Indexed,
            ..PipelineConfig::default()
        };
        for algo in [Algorithm::LapHg, Algorithm::Tbf] {
            let a = run(algo, &instance, &scan, 5);
            let b = run(algo, &instance, &indexed, 5);
            assert_eq!(a.matching.pairs, b.matching.pairs, "{algo}");
        }
    }

    #[test]
    fn cell_index_matches_plain_scan_for_lapgr() {
        let instance = small_instance(5);
        let plain = PipelineConfig::default();
        let indexed = PipelineConfig {
            euclid_cells: 8,
            ..PipelineConfig::default()
        };
        let a = run(Algorithm::LapGr, &instance, &plain, 6);
        let b = run(Algorithm::LapGr, &instance, &indexed, 6);
        assert_eq!(a.matching.pairs, b.matching.pairs);
    }

    #[test]
    fn more_tasks_than_workers_matches_all_workers() {
        let params = SyntheticParams {
            num_tasks: 50,
            num_workers: 20,
            ..SyntheticParams::default()
        };
        let instance = synthetic::generate(&params, &mut seeded_rng(7, 0));
        for algo in Algorithm::ALL {
            let r = run(algo, &instance, &PipelineConfig::default(), 0);
            assert_eq!(r.matching.size(), 20, "{algo}: k = min(n, m)");
        }
    }

    #[test]
    fn tighter_privacy_budget_worsens_distance_on_average() {
        // ε = 0.05 vs ε = 5.0 over several repetitions: the loose budget
        // must win by a wide margin for every algorithm.
        let instance = small_instance(8);
        for algo in Algorithm::ALL {
            let total = |eps: f64| -> f64 {
                (0..5)
                    .map(|rep| {
                        let config = PipelineConfig {
                            epsilon: eps,
                            ..PipelineConfig::default()
                        };
                        run(algo, &instance, &config, rep).metrics.total_distance
                    })
                    .sum::<f64>()
                    / 5.0
            };
            let strict = total(0.05);
            let loose = total(5.0);
            assert!(
                loose < strict,
                "{algo}: ε=5 distance {loose} should beat ε=0.05 {strict}"
            );
        }
    }

    #[test]
    fn extended_algorithms_match_every_task() {
        let instance = small_instance(10);
        let config = PipelineConfig::default();
        for algo in Algorithm::EXTENDED {
            let r = run(algo, &instance, &config, 0);
            assert_eq!(r.matching.size(), 60, "{algo} must match all tasks");
            assert!(r.matching.is_valid(), "{algo}");
            assert!(r.metrics.total_distance > 0.0, "{algo}");
        }
    }

    #[test]
    fn extended_runs_are_reproducible() {
        let instance = small_instance(11);
        let config = PipelineConfig::default();
        for algo in Algorithm::EXTENDED {
            let a = run(algo, &instance, &config, 2);
            let b = run(algo, &instance, &config, 2);
            assert_eq!(a.matching.pairs, b.matching.pairs, "{algo}");
        }
    }

    #[test]
    fn random_floor_loses_to_every_location_aware_algorithm() {
        let instance = small_instance(12);
        let config = PipelineConfig::default();
        let avg = |algo: Algorithm| -> f64 {
            (0..5)
                .map(|rep| run(algo, &instance, &config, rep).metrics.total_distance)
                .sum::<f64>()
                / 5.0
        };
        let floor = avg(Algorithm::RandomFloor);
        for algo in [
            Algorithm::LapGr,
            Algorithm::LapHg,
            Algorithm::Tbf,
            Algorithm::ExpHg,
            Algorithm::TbfRand,
            Algorithm::TbfChain,
        ] {
            let d = avg(algo);
            assert!(
                d < floor,
                "{algo} ({d}) should beat the random floor ({floor})"
            );
        }
    }

    #[test]
    fn tbf_variants_stay_close_to_plain_tbf() {
        // Randomized tie-breaking and chain hops change individual pairs
        // but the total distance must stay in the same ballpark (within 2×
        // on average) — they optimize the same tree-distance objective.
        let instance = small_instance(13);
        let config = PipelineConfig::default();
        let avg = |algo: Algorithm| -> f64 {
            (0..5)
                .map(|rep| run(algo, &instance, &config, rep).metrics.total_distance)
                .sum::<f64>()
                / 5.0
        };
        let tbf = avg(Algorithm::Tbf);
        for algo in [Algorithm::TbfRand, Algorithm::TbfChain] {
            let d = avg(algo);
            assert!(
                d < 2.0 * tbf && d > 0.3 * tbf,
                "{algo} ({d}) drifted far from TBF ({tbf})"
            );
        }
    }

    #[test]
    fn avg_task_latency_is_consistent() {
        let instance = small_instance(9);
        let r = run(Algorithm::Tbf, &instance, &PipelineConfig::default(), 0);
        let avg = r.metrics.avg_task_latency();
        assert!(avg <= r.metrics.assign_time);
        // Duration division truncates, so allow up to 60 lost nanoseconds.
        assert!(avg.as_nanos() * 60 + 60 >= r.metrics.assign_time.as_nanos());
    }
}
