#![warn(missing_docs)]

//! # pombm — Privacy-preserving Online Minimum Bipartite Matching
//!
//! A full reproduction of *"Differentially Private Online Task Assignment in
//! Spatial Crowdsourcing: A Tree-based Approach"* (Tao, Tong, Zhou, Shi,
//! Chen, Xu — ICDE 2020).
//!
//! The paper's setting: workers and tasks in the plane must report their
//! locations to an **untrusted** crowdsourcing server for task assignment.
//! A privacy mechanism obfuscates every location before it is reported; the
//! server then runs online minimum bipartite matching on the obfuscated
//! data. The paper's contribution (**TBF**) obfuscates over a
//! Hierarchically Well-Separated Tree, which is ε-Geo-Indistinguishable
//! *and* admits a matching algorithm with a provable competitive ratio.
//!
//! # Architecture: mechanisms × matchers
//!
//! Every algorithm is a pairing of two open, object-safe traits:
//!
//! * a [`ReportMechanism`](algorithm::ReportMechanism) turns true locations
//!   into obfuscated reports (planar points or HST leaves),
//! * an [`AssignStrategy`](algorithm::AssignStrategy) consumes the reports
//!   and produces a [`pombm_matching::Matching`].
//!
//! Named pairings — the paper's seven algorithms plus previously impossible
//! combinations like `exp-chain` — live in the global [`registry()`], and a
//! single generic driver ([`run_spec`]) executes any of them with uniform
//! setup/obfuscation/assignment timing. The [`Algorithm`] enum survives as
//! thin aliases into the registry.
//!
//! The event-driven half mirrors this: shifting fleets pair any mechanism
//! with any registered [`DynamicAssignStrategy`](algorithm::DynamicAssignStrategy)
//! (`hst-greedy`, `kd-rebuild`, `random`) through [`run_dynamic_spec`], and
//! [`sweep::run_dynamic_sweep`] measures the whole product under named
//! shift plans — see the [`dynamic`] module docs for a worked example of
//! adding a custom dynamic matcher.
//!
//! Where the workload *comes from* is a third registry axis: a named
//! [`Scenario`] bundles worker placement, task placement and the demand
//! curve (`uniform` — bit-identical to the legacy workload — `normal`,
//! `hotspot`, `poisson-disk`, `adversarial-cell`), threads through every
//! surface from [`run_spec`] inputs to the [`serve`] load generator, and
//! enters the sweep's config fingerprint — see the [`scenario`] module
//! docs.
//!
//! How the service *misbehaves* is a fourth: a named [`FaultPlan`]
//! (`none`, `flaky-wire`, `dup-storm`, `burst`) deterministically rewrites
//! the serve frame script off its own RNG stream, and a bounded admission
//! queue sheds overload under a pluggable [`ShedPolicy`] with
//! virtual-time retry backoff — chaos with the same golden-fingerprint
//! contract as the clean path. See the [`fault`] and [`serve`] module
//! docs.
//!
//! # Quick start
//!
//! ```
//! use pombm::{registry, run_spec, PipelineConfig};
//! use pombm_workload::{synthetic, SyntheticParams};
//! use pombm_geom::seeded_rng;
//!
//! let params = SyntheticParams { num_tasks: 50, num_workers: 80, ..Default::default() };
//! let instance = synthetic::generate(&params, &mut seeded_rng(1, 0));
//! let config = PipelineConfig { epsilon: 0.6, ..Default::default() };
//!
//! // Run a registered algorithm by name...
//! let result = run_spec(registry().spec("tbf").unwrap(), &instance, &config, 1).unwrap();
//! assert_eq!(result.matching.size(), 50);
//!
//! // ...or compose a pairing the paper never evaluated.
//! let exp_chain = registry().compose("exp", "chain").unwrap();
//! let novel = run_spec(&exp_chain, &instance, &config, 1).unwrap();
//! assert_eq!(novel.matching.size(), 50);
//! println!("total travel distance: {:.1}", result.metrics.total_distance);
//! ```
//!
//! Adding your own mechanism or matcher is one trait impl plus
//! [`AlgorithmSpec::compose`] — see the [`algorithm`] module docs for a
//! complete ≤20-line example.
//!
//! # Measuring competitive ratios
//!
//! The exact offline optimum is itself a registered matcher
//! (`offline-opt`), so Definition 8's competitive ratio is measurable for
//! *any* pairing: [`empirical_competitive_ratio`] returns a structured
//! [`RatioReport`], and the [`sweep`] module fans the full
//! `mechanism × matcher × size × ε` product out across cores
//! deterministically (`pombm sweep` on the CLI):
//!
//! ```
//! use pombm::sweep::{run_sweep, SweepConfig};
//!
//! let config = SweepConfig {
//!     mechanisms: vec!["identity".into()],
//!     matchers: vec!["offline-opt".into(), "greedy".into()],
//!     sizes: vec![24],
//!     repetitions: 2,
//!     ..SweepConfig::default()
//! };
//! let report = run_sweep(&config).unwrap();
//! let (_, oracle) = report.measured()
//!     .find(|(c, _)| c.matcher == "offline-opt").unwrap();
//! assert_eq!(oracle.ratio, 1.0); // identity × offline-opt reproduces OPT
//! ```
//!
//! The dynamic timeline has the same shape of oracle: `dynamic-opt`
//! ([`dynamic_offline_optimum`]) is a clairvoyant solver that sees every
//! arrival time and shift window up front and computes the exact offline
//! optimum over the time-expanded feasibility graph — Definition 8's
//! denominator under churn. It is catalogued with the dynamic matchers
//! but carries the [`Role::OracleOnly`] role (it can price a timeline,
//! never drive the fleet), [`dynamic_competitive_ratio`] returns a
//! [`DynamicRatioReport`] whose statistics fields mirror [`RatioReport`]
//! name-for-name, and the dynamic sweep's `ratio` switch adds per-cell
//! `competitive_ratio` and drop-latency percentile columns
//! (`pombm dynamic --ratio` / `pombm sweep --dynamic --ratio` on the
//! CLI; plain reports stay byte-identical).
//!
//! Sweeps also scale past one process: [`sweep::run_sweep_partition`]
//! computes an `i/N` slice of the job-index space into a self-describing
//! [`PartialSweepReport`] (optionally checkpointed so an interrupted run
//! resumes instead of recomputing), and [`merge::merge_static`] /
//! [`merge::merge_dynamic`] validate a partial set (identical config
//! fingerprints, disjoint full coverage) and reassemble JSON
//! byte-identical to a single-process run — `pombm sweep --partition i/N
//! [--checkpoint DIR]` and `pombm merge <partials..>` on the CLI.

pub mod algorithm;
pub mod arrivals;
pub mod case_study;
pub mod dynamic;
pub mod epochs;
pub mod fault;
pub mod merge;
pub mod pipeline;
pub mod ratio;
pub mod registry;
pub mod scenario;
pub mod serve;
pub mod server;
pub mod sweep;

pub use algorithm::{
    AssignStrategy, DynamicAssignStrategy, DynamicWorkerPool, PipelineError, PointReporter, Report,
    ReportMechanism,
};
pub use arrivals::{simulate_stream, ArrivalProcess, StreamReport};
pub use case_study::{run_case_study, CaseStudyAlgorithm, CaseStudyResult};
pub use dynamic::{run_dynamic, run_dynamic_spec, run_dynamic_with, DynamicConfig, DynamicOutcome};
pub use epochs::{run_epochs, run_epochs_with, EpochConfig, EpochMetrics, EpochReport};
pub use fault::{FaultPlan, ShedPolicy};
pub use merge::{merge_dynamic, merge_static, MergeError};
pub use pipeline::{
    run, run_spec, run_spec_with_server, run_with_server, Algorithm, CommonConfig, PipelineConfig,
    RunMetrics, RunResult,
};
pub use ratio::{
    dynamic_competitive_ratio, dynamic_offline_optimum, dynamic_offline_optimum_with_threads,
    empirical_competitive_ratio, offline_optimum, scenario_competitive_ratio, DynamicRatioReport,
    RatioError, RatioReport, RatioStats,
};
pub use registry::{registry, AlgorithmSpec, Catalog, Registry, Role, DEFAULT_DYNAMIC_ORACLE};
pub use scenario::{Scenario, DEFAULT_SCENARIO};
pub use serve::{
    run_serve, serve_frames, FaultReport, ServeConfig, ServeLatency, ServeOutcome, ServeReport,
    ServeRequest,
};
pub use server::{Server, TreeConstruction};
pub use sweep::{
    run_dynamic_sweep, run_dynamic_sweep_partition, run_sweep, run_sweep_partition,
    DynamicMeasurement, DynamicPartialSweepReport, DynamicSweepCell, DynamicSweepConfig,
    DynamicSweepReport, PartialRunStats, PartialSweepReport, PartitionPlan, PartitionRun,
    SweepCell, SweepConfig, SweepReport,
};
