#![warn(missing_docs)]

//! # pombm — Privacy-preserving Online Minimum Bipartite Matching
//!
//! A full reproduction of *"Differentially Private Online Task Assignment in
//! Spatial Crowdsourcing: A Tree-based Approach"* (Tao, Tong, Zhou, Shi,
//! Chen, Xu — ICDE 2020).
//!
//! The paper's setting: workers and tasks in the plane must report their
//! locations to an **untrusted** crowdsourcing server for task assignment.
//! A privacy mechanism obfuscates every location before it is reported; the
//! server then runs online minimum bipartite matching on the obfuscated
//! data. The paper's contribution (**TBF**) obfuscates over a
//! Hierarchically Well-Separated Tree, which is ε-Geo-Indistinguishable
//! *and* admits a matching algorithm with a provable competitive ratio.
//!
//! This crate wires the substrates ([`pombm_hst`], [`pombm_privacy`],
//! [`pombm_matching`], [`pombm_workload`]) into the paper's four-step
//! workflow (Fig. 1):
//!
//! 1. the server builds and publishes an HST over predefined points
//!    ([`Server`]);
//! 2. workers obfuscate their mapped tree nodes and register;
//! 3. each arriving task obfuscates its node and submits;
//! 4. the server assigns a worker by greedy matching on the tree.
//!
//! # Quick start
//!
//! ```
//! use pombm::{run, Algorithm, PipelineConfig};
//! use pombm_workload::{synthetic, SyntheticParams};
//! use pombm_geom::seeded_rng;
//!
//! let params = SyntheticParams { num_tasks: 50, num_workers: 80, ..Default::default() };
//! let instance = synthetic::generate(&params, &mut seeded_rng(1, 0));
//! let config = PipelineConfig { epsilon: 0.6, ..Default::default() };
//!
//! let result = run(Algorithm::Tbf, &instance, &config, 1);
//! assert_eq!(result.matching.size(), 50);
//! println!("total travel distance: {:.1}", result.metrics.total_distance);
//! ```

pub mod arrivals;
pub mod case_study;
pub mod dynamic;
pub mod epochs;
pub mod pipeline;
pub mod ratio;
pub mod server;

pub use arrivals::{simulate_stream, ArrivalProcess, StreamReport};
pub use case_study::{run_case_study, CaseStudyAlgorithm, CaseStudyResult};
pub use dynamic::{run_dynamic, DynamicConfig, DynamicOutcome};
pub use epochs::{run_epochs, EpochConfig, EpochMetrics, EpochReport};
pub use pipeline::{run, run_with_server, Algorithm, PipelineConfig, RunMetrics, RunResult};
pub use ratio::empirical_competitive_ratio;
pub use server::{Server, TreeConstruction};
