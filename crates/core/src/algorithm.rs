//! The composable algorithm API: privacy **mechanisms** × online
//! **matchers**.
//!
//! The paper's framework is explicitly two-stage: a *mechanism* turns true
//! worker/task locations into obfuscated reports (planar points for the
//! Laplace baselines, HST leaf codes for the tree-based mechanisms), and a
//! *matcher* consumes those reports to build an online assignment. This
//! module encodes each stage as an object-safe trait so any mechanism can
//! be paired with any matcher — the seven algorithms of
//! [`crate::Algorithm`] become ordinary entries in the
//! [`registry`](crate::registry::registry), and new pairings
//! (e.g. exponential mechanism + chain matcher) need no changes to the
//! pipeline driver.
//!
//! Report kinds are bridged automatically when a [`Server`] is available:
//! planar reports snap to tree leaves (this is exactly how the paper's
//! Lap-HG baseline is defined) and leaf reports project to their
//! representative predefined points, so even "impossible" pairings like
//! tree mechanism × Euclidean matcher are well-defined.
//!
//! # Adding a custom mechanism or matcher
//!
//! Implement one trait and compose a spec — no core code changes:
//!
//! ```
//! use pombm::algorithm::{
//!     AssignCtx, AssignStrategy, PipelineError, ReportSet,
//! };
//! use pombm::registry::{registry, AlgorithmSpec};
//! use pombm_matching::Matching;
//! use std::sync::Arc;
//!
//! /// Assigns every task to the lowest-indexed still-free worker.
//! struct FirstFree;
//!
//! impl AssignStrategy for FirstFree {
//!     fn name(&self) -> &'static str { "first-free" }
//!     fn summary(&self) -> &'static str { "lowest-index free worker" }
//!     fn needs_server(&self) -> bool { false }
//!     fn assign(&self, reports: ReportSet, _ctx: &mut AssignCtx<'_>)
//!         -> Result<Matching, PipelineError>
//!     {
//!         let mut matching = Matching::new();
//!         for t in 0..reports.tasks.len().min(reports.workers.len()) {
//!             matching.pairs.push((t, t));
//!         }
//!         Ok(matching)
//!     }
//! }
//!
//! let mech = registry().mechanism("laplace").unwrap();
//! let spec = AlgorithmSpec::compose(mech, Arc::new(FirstFree));
//! let instance = pombm_workload::synthetic::generate(
//!     &pombm_workload::SyntheticParams { num_tasks: 5, num_workers: 9,
//!         ..Default::default() },
//!     &mut pombm_geom::seeded_rng(1, 0));
//! let result = pombm::run_spec(&spec, &instance, &Default::default(), 0).unwrap();
//! assert_eq!(result.matching.size(), 5);
//! ```

use crate::pipeline::PipelineConfig;
use crate::server::Server;
use pombm_geom::Point;
use pombm_hst::LeafCode;
use pombm_matching::offline::OfflineOptimal;
use pombm_matching::{
    CapacitatedGreedy, ChainMatcher, EuclideanGreedy, HstGreedy, Matching, RandomAssign,
    RandomizedGreedy,
};
use pombm_privacy::{Epsilon, ExponentialMechanism, HstMechanism, PlanarLaplace};
use pombm_workload::Instance;
use rand::rngs::StdRng;

/// Errors surfaced by the composable pipeline API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// A component required the server's published artifacts (HST + grid)
    /// but none were supplied.
    MissingServer(&'static str),
    /// A matcher received reports it cannot interpret (e.g. location-blind
    /// reports fed to a location-aware matcher).
    IncompatibleReports {
        /// The component that rejected the reports.
        component: &'static str,
        /// What it needed.
        needed: &'static str,
    },
    /// A mechanism produced a mix of report kinds within one batch.
    MixedReports(&'static str),
    /// A configuration value is invalid for the selected component.
    InvalidConfig {
        /// The offending configuration field.
        field: &'static str,
        /// Why the value is rejected.
        why: &'static str,
    },
    /// A registry catalog lookup failed: no entry under that name on the
    /// named axis.
    UnknownEntry {
        /// The catalog axis looked up (`algorithm`, `mechanism`, ...).
        kind: &'static str,
        /// The name that failed to resolve.
        name: String,
        /// The valid names (sorted), for the error message.
        known: Vec<String>,
    },
    /// A registry catalog entry exists but holds the wrong
    /// [`crate::registry::Role`] for the requesting position (e.g. the
    /// oracle-only `dynamic-opt` asked to pair like an online matcher).
    RoleMismatch {
        /// The catalog axis involved.
        kind: &'static str,
        /// The (canonical) entry name.
        name: String,
        /// The role the entry is registered with.
        role: &'static str,
        /// The role the requesting position needs.
        wanted: &'static str,
    },
    /// A serve-transport frame could not be decoded
    /// ([`crate::serve::ServeRequest::decode`]).
    Transport {
        /// What was wrong with the frame.
        why: &'static str,
    },
    /// The sweep checkpoint store could not be opened or written.
    Checkpoint {
        /// The checkpoint file involved.
        path: String,
        /// The underlying I/O or encoding failure.
        why: String,
    },
    /// A checkpointed sweep stopped early because it reached its
    /// `--max-cells` cap; the completed cells survive in the checkpoint
    /// and a re-run with the same `--checkpoint` directory resumes.
    CellCap {
        /// Cells freshly computed (and persisted) before stopping.
        computed: usize,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::MissingServer(who) => {
                write!(f, "`{who}` needs a server (published HST), none supplied")
            }
            PipelineError::IncompatibleReports { component, needed } => {
                write!(
                    f,
                    "`{component}` cannot consume these reports: needs {needed}"
                )
            }
            PipelineError::MixedReports(who) => {
                write!(f, "mechanism `{who}` produced mixed report kinds")
            }
            PipelineError::InvalidConfig { field, why } => {
                write!(f, "invalid config `{field}`: {why}")
            }
            PipelineError::UnknownEntry { kind, name, known } => {
                write!(
                    f,
                    "unknown {kind} `{name}`; expected one of: {}",
                    known.join(" ")
                )
            }
            PipelineError::RoleMismatch {
                kind,
                name,
                role,
                wanted,
            } => {
                write!(
                    f,
                    "{kind} `{name}` is registered as `{role}`; this position requires `{wanted}`"
                )
            }
            PipelineError::Transport { why } => {
                write!(f, "serve transport: {why}")
            }
            PipelineError::Checkpoint { path, why } => {
                write!(f, "checkpoint `{path}`: {why}")
            }
            PipelineError::CellCap { computed } => {
                write!(
                    f,
                    "stopped after {computed} freshly computed cells (--max-cells cap); \
                     re-run with the same --checkpoint directory to resume"
                )
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// One obfuscated location report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Report {
    /// A noisy point in the plane (planar Laplace, identity).
    Planar(Point),
    /// A leaf of the published HST (tree walk, exponential, snapping).
    Leaf(LeafCode),
    /// Nothing location-dependent is reported (the blind floor).
    Blind,
}

/// A homogeneous batch of reports for one side (workers or tasks).
#[derive(Debug, Clone, PartialEq)]
pub enum Reports {
    /// Planar reports.
    Planar(Vec<Point>),
    /// Tree-leaf reports.
    Leaves(Vec<LeafCode>),
    /// `n` participants reported nothing location-dependent.
    Blind(usize),
}

impl Reports {
    /// Number of participants behind this batch.
    pub fn len(&self) -> usize {
        match self {
            Reports::Planar(v) => v.len(),
            Reports::Leaves(v) => v.len(),
            Reports::Blind(n) => *n,
        }
    }

    /// True when no participants reported.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Collects per-point reports into a homogeneous batch.
    pub fn collect(reports: Vec<Report>, mechanism: &'static str) -> Result<Self, PipelineError> {
        match reports.first() {
            None => Ok(Reports::Blind(0)),
            Some(Report::Planar(_)) => {
                let mut points = Vec::with_capacity(reports.len());
                for r in &reports {
                    match r {
                        Report::Planar(p) => points.push(*p),
                        _ => return Err(PipelineError::MixedReports(mechanism)),
                    }
                }
                Ok(Reports::Planar(points))
            }
            Some(Report::Leaf(_)) => {
                let mut leaves = Vec::with_capacity(reports.len());
                for r in &reports {
                    match r {
                        Report::Leaf(l) => leaves.push(*l),
                        _ => return Err(PipelineError::MixedReports(mechanism)),
                    }
                }
                Ok(Reports::Leaves(leaves))
            }
            Some(Report::Blind) => {
                if reports.iter().all(|r| matches!(r, Report::Blind)) {
                    Ok(Reports::Blind(reports.len()))
                } else {
                    Err(PipelineError::MixedReports(mechanism))
                }
            }
        }
    }

    /// Converts the batch into tree leaves, snapping planar reports onto
    /// the published tree (exactly the Lap-HG construction of the paper).
    /// Consumes the batch so the leaf case is a move, not a clone. An
    /// empty batch converts to an empty vector regardless of kind — a
    /// zero-participant side carries no location information to reject.
    pub fn into_leaves(
        self,
        server: Option<&Server>,
        component: &'static str,
    ) -> Result<Vec<LeafCode>, PipelineError> {
        match self {
            Reports::Leaves(v) => Ok(v),
            Reports::Planar(v) => {
                let server = server.ok_or(PipelineError::MissingServer(component))?;
                Ok(v.iter().map(|p| server.snap(p)).collect())
            }
            Reports::Blind(0) => Ok(Vec::new()),
            Reports::Blind(_) => Err(PipelineError::IncompatibleReports {
                component,
                needed: "location reports (got location-blind reports)",
            }),
        }
    }

    /// Converts the batch into planar points, projecting tree leaves to
    /// their representative predefined points (see [`Reports::into_leaves`]
    /// for the move/empty-batch semantics).
    pub fn into_points(
        self,
        server: Option<&Server>,
        component: &'static str,
    ) -> Result<Vec<Point>, PipelineError> {
        match self {
            Reports::Planar(v) => Ok(v),
            Reports::Leaves(v) => {
                let server = server.ok_or(PipelineError::MissingServer(component))?;
                Ok(v.iter()
                    .map(|&l| server.hst().representative_point(l))
                    .collect())
            }
            Reports::Blind(0) => Ok(Vec::new()),
            Reports::Blind(_) => Err(PipelineError::IncompatibleReports {
                component,
                needed: "location reports (got location-blind reports)",
            }),
        }
    }
}

impl Report {
    /// Views one report as a planar point (see [`Reports::to_points`]).
    pub fn into_point(
        self,
        server: Option<&Server>,
        component: &'static str,
    ) -> Result<Point, PipelineError> {
        match self {
            Report::Planar(p) => Ok(p),
            Report::Leaf(l) => {
                let server = server.ok_or(PipelineError::MissingServer(component))?;
                Ok(server.hst().representative_point(l))
            }
            Report::Blind => Err(PipelineError::IncompatibleReports {
                component,
                needed: "a location report (got a location-blind report)",
            }),
        }
    }

    /// Views one report as a tree leaf (see [`Reports::to_leaves`]).
    pub fn into_leaf(
        self,
        server: Option<&Server>,
        component: &'static str,
    ) -> Result<LeafCode, PipelineError> {
        match self {
            Report::Leaf(l) => Ok(l),
            Report::Planar(p) => {
                let server = server.ok_or(PipelineError::MissingServer(component))?;
                Ok(server.snap(&p))
            }
            Report::Blind => Err(PipelineError::IncompatibleReports {
                component,
                needed: "a location report (got a location-blind report)",
            }),
        }
    }
}

/// The obfuscated view the server matches on: worker reports (step 2 of
/// the paper's workflow) and task reports (step 3).
#[derive(Debug, Clone, PartialEq)]
pub struct ReportSet {
    /// Registered worker reports.
    pub workers: Reports,
    /// Arriving task reports, in arrival order.
    pub tasks: Reports,
}

/// A per-run obfuscator produced by [`ReportMechanism::reporter`]; holds
/// whatever per-run state the mechanism needs (weight tables, alias-table
/// caches).
pub trait PointReporter {
    /// Obfuscates one true location into a report.
    fn report(&mut self, location: &Point, rng: &mut StdRng) -> Report;
}

/// Stage 1 of the framework: turns true locations into obfuscated reports.
///
/// Implementations are stateless descriptors (safe to keep in a global
/// registry); per-run state lives in the [`PointReporter`] they build.
pub trait ReportMechanism: Send + Sync {
    /// Registry name (kebab-case).
    fn name(&self) -> &'static str;

    /// One-line description for `--list-algorithms`.
    fn summary(&self) -> &'static str;

    /// True when the mechanism needs the server's published artifacts.
    fn needs_server(&self) -> bool;

    /// Builds the per-run obfuscator.
    fn reporter<'a>(
        &self,
        epsilon: Epsilon,
        server: Option<&'a Server>,
    ) -> Result<Box<dyn PointReporter + 'a>, PipelineError>;

    /// Obfuscates a whole batch, continuing `rng` exactly as the scalar
    /// loop `locations.iter().map(|p| reporter.report(p, rng))` would.
    ///
    /// **Contract:** output and final `rng` state are bit-identical to
    /// that scalar loop for every `threads` value (`0` = auto-size from
    /// the batch, `1` = scalar) — `threads` trades wall-clock for cores,
    /// never results. The generic driver ([`crate::run_spec`]) dispatches
    /// every mechanism through this entry point, which is why golden
    /// fingerprints recorded against the scalar driver stay valid.
    ///
    /// The default implementation is the scalar loop itself (correct for
    /// any mechanism, including custom ones with cross-report reporter
    /// state). The planar-Laplace and HST mechanisms override it to
    /// dispatch into [`pombm_privacy::batch`], whose snapshot pass gives
    /// each item its own RNG stream so the expensive sampling parallelizes
    /// without perturbing the shared stream.
    fn report_batch(
        &self,
        epsilon: Epsilon,
        server: Option<&Server>,
        locations: &[Point],
        rng: &mut StdRng,
        threads: usize,
    ) -> Result<Vec<Report>, PipelineError> {
        // The scalar loop is what every thread count must reproduce, so
        // the default implementation is thread-count independent.
        let _ = threads;
        let mut reporter = self.reporter(epsilon, server)?;
        Ok(locations.iter().map(|p| reporter.report(p, rng)).collect())
    }
}

/// Resolves a [`ReportMechanism::report_batch`] thread request: `0` sizes
/// the pool from the batch (one thread per ~4096 items, capped by cores).
fn batch_threads(threads: usize, batch_len: usize) -> usize {
    if threads == 0 {
        pombm_privacy::batch::default_threads(batch_len)
    } else {
        threads
    }
}

/// Mutable context handed to [`AssignStrategy::assign`].
pub struct AssignCtx<'a> {
    /// The problem instance (true locations; used only for sizing and the
    /// region of auxiliary indexes — matchers never see true coordinates).
    pub instance: &'a Instance,
    /// The pipeline configuration (engine, cell index, capacity, ...).
    pub config: &'a PipelineConfig,
    /// The server's published artifacts, when available.
    pub server: Option<&'a Server>,
    /// Continuation of the mechanism's RNG stream; location-blind matchers
    /// draw from it (matching the historical `Random` floor exactly).
    pub mech_rng: &'a mut StdRng,
    /// Dedicated tie-breaking stream for randomized matchers.
    pub tie_rng: &'a mut StdRng,
}

/// Stage 2 of the framework: consumes reports, produces a [`Matching`].
pub trait AssignStrategy: Send + Sync {
    /// Registry name (kebab-case).
    fn name(&self) -> &'static str;

    /// One-line description for `--list-algorithms`.
    fn summary(&self) -> &'static str;

    /// True when the matcher needs the server's published artifacts.
    fn needs_server(&self) -> bool;

    /// True when one worker may serve several tasks (capacitated
    /// matchers); relaxes the driver's worker-uniqueness validation.
    fn reuses_workers(&self) -> bool {
        false
    }

    /// Runs the online assignment over the reports (consumed: matchers
    /// take ownership so leaf/point batches register without copying).
    fn assign(
        &self,
        reports: ReportSet,
        ctx: &mut AssignCtx<'_>,
    ) -> Result<Matching, PipelineError>;
}

/// A live worker pool driven by the dynamic event loop
/// ([`crate::dynamic::run_dynamic_spec`]): stage 2 of the framework for
/// *shifting* fleets, produced per run by a [`DynamicAssignStrategy`].
///
/// The driver feeds it one event at a time — insert on shift start,
/// withdraw on shift end, assign on task arrival — in deterministic
/// timeline order. Reports arrive in whatever kind the mechanism emits;
/// pools convert via [`Report::into_leaf`] / [`Report::into_point`] and
/// surface incompatibilities (e.g. blind reports into a location-aware
/// pool) as typed errors.
pub trait DynamicWorkerPool {
    /// Registers a worker with its obfuscated report (shift start).
    ///
    /// `id`s are unique among live workers; a departed or assigned id may
    /// be reused.
    fn insert(&mut self, id: u64, report: Report) -> Result<(), PipelineError>;

    /// Registers a batch of workers at once — a whole micro-batch window
    /// of shift starts ([`crate::serve`]). Must be observation-equivalent
    /// to calling [`Self::insert`] for each pair in order (assignments,
    /// availability, tie-stream draws), which is exactly what the default
    /// does; pools override it to amortize index maintenance. On error
    /// nothing may have been inserted (validate-then-mutate), so a failed
    /// batch leaves the pool resumable.
    fn insert_batch(&mut self, batch: Vec<(u64, Report)>) -> Result<(), PipelineError> {
        for (id, report) in batch {
            self.insert(id, report)?;
        }
        Ok(())
    }

    /// Removes an unassigned worker (shift end). Returns `false` when the
    /// worker is not present (already assigned or never inserted) — a
    /// no-op, matching the departure semantics of the simulation.
    fn withdraw(&mut self, id: u64) -> bool;

    /// Assigns a worker to the arriving task's report and removes it from
    /// the pool; `Ok(None)` when the pool is momentarily empty (the task is
    /// dropped). `tie_rng` is a dedicated stream for randomized pools —
    /// deterministic pools must not touch it.
    fn assign(
        &mut self,
        report: Report,
        tie_rng: &mut StdRng,
    ) -> Result<Option<u64>, PipelineError>;

    /// Drains a micro-batch window of task arrivals: assigns each report
    /// in order, returning one slot per task. Semantically this *is* the
    /// sequential loop — online assignment is order-sensitive, so the
    /// default is also the contract: `assign_batch(reports)` must equal
    /// mapping [`Self::assign`] over `reports`, including every tie-stream
    /// draw. The batched entry point exists so the serve loop drains one
    /// window in one virtual call and pools can keep their index warm
    /// across the run of assignments.
    fn assign_batch(
        &mut self,
        reports: Vec<Report>,
        tie_rng: &mut StdRng,
    ) -> Result<Vec<Option<u64>>, PipelineError> {
        reports
            .into_iter()
            .map(|report| self.assign(report, tie_rng))
            .collect()
    }

    /// Number of present, unassigned workers.
    fn available(&self) -> usize;
}

/// Stage 2 of the framework for dynamic fleets: a named, stateless
/// descriptor that builds one [`DynamicWorkerPool`] per simulation run.
///
/// The dynamic mirror of [`AssignStrategy`]: object-safe, registered by
/// name in [`crate::registry::registry`], and freely composable with any
/// [`ReportMechanism`] through [`crate::dynamic::run_dynamic_spec`]. See
/// the [`crate::dynamic`] module docs for a complete worked example of
/// adding a custom dynamic matcher.
pub trait DynamicAssignStrategy: Send + Sync {
    /// Registry name (kebab-case).
    fn name(&self) -> &'static str;

    /// One-line description for `pombm algorithms`.
    fn summary(&self) -> &'static str;

    /// True when the matcher needs the server's published artifacts.
    fn needs_server(&self) -> bool;

    /// Builds an empty pool for one run.
    fn pool<'a>(
        &self,
        server: Option<&'a Server>,
    ) -> Result<Box<dyn DynamicWorkerPool + 'a>, PipelineError>;
}

// ---------------------------------------------------------------------------
// Mechanism implementations
// ---------------------------------------------------------------------------

/// Planar Laplace (Andrés et al., CCS'13): noisy points in the plane.
pub struct LaplaceMechanism;

impl ReportMechanism for LaplaceMechanism {
    fn name(&self) -> &'static str {
        "laplace"
    }

    fn summary(&self) -> &'static str {
        "planar Laplace noise in the plane (Geo-I baseline)"
    }

    fn needs_server(&self) -> bool {
        false
    }

    fn reporter<'a>(
        &self,
        epsilon: Epsilon,
        _server: Option<&'a Server>,
    ) -> Result<Box<dyn PointReporter + 'a>, PipelineError> {
        struct R(PlanarLaplace);
        impl PointReporter for R {
            fn report(&mut self, location: &Point, rng: &mut StdRng) -> Report {
                Report::Planar(self.0.obfuscate(location, rng))
            }
        }
        Ok(Box::new(R(PlanarLaplace::new(epsilon))))
    }

    fn report_batch(
        &self,
        epsilon: Epsilon,
        _server: Option<&Server>,
        locations: &[Point],
        rng: &mut StdRng,
        threads: usize,
    ) -> Result<Vec<Report>, PipelineError> {
        let mechanism = PlanarLaplace::new(epsilon);
        let threads = batch_threads(threads, locations.len());
        Ok(
            pombm_privacy::batch::obfuscate_points_batch(&mechanism, locations, rng, threads)
                .into_iter()
                .map(Report::Planar)
                .collect(),
        )
    }
}

/// The paper's mechanism (Alg. 3): snap to the tree, random-walk the leaf.
pub struct HstWalkMechanism;

impl ReportMechanism for HstWalkMechanism {
    fn name(&self) -> &'static str {
        "hst"
    }

    fn summary(&self) -> &'static str {
        "the paper's HST random-walk mechanism (Alg. 3)"
    }

    fn needs_server(&self) -> bool {
        true
    }

    fn reporter<'a>(
        &self,
        epsilon: Epsilon,
        server: Option<&'a Server>,
    ) -> Result<Box<dyn PointReporter + 'a>, PipelineError> {
        let server = server.ok_or(PipelineError::MissingServer("hst mechanism"))?;
        struct R<'a> {
            mechanism: HstMechanism,
            server: &'a Server,
        }
        impl PointReporter for R<'_> {
            fn report(&mut self, location: &Point, rng: &mut StdRng) -> Report {
                let leaf = self.server.snap(location);
                Report::Leaf(self.mechanism.obfuscate(self.server.hst(), leaf, rng))
            }
        }
        Ok(Box::new(R {
            mechanism: HstMechanism::new(server.hst(), epsilon),
            server,
        }))
    }

    fn report_batch(
        &self,
        epsilon: Epsilon,
        server: Option<&Server>,
        locations: &[Point],
        rng: &mut StdRng,
        threads: usize,
    ) -> Result<Vec<Report>, PipelineError> {
        let server = server.ok_or(PipelineError::MissingServer("hst mechanism"))?;
        let mechanism = HstMechanism::new(server.hst(), epsilon);
        // Snapping draws no randomness, so it commutes with the walk's
        // stream; the walks themselves go through the snapshot batch.
        let exact: Vec<_> = locations.iter().map(|p| server.snap(p)).collect();
        let threads = batch_threads(threads, locations.len());
        Ok(pombm_privacy::batch::obfuscate_leaves_batch(
            &mechanism,
            server.hst(),
            &exact,
            rng,
            threads,
        )
        .into_iter()
        .map(Report::Leaf)
        .collect())
    }
}

/// Exponential mechanism over the predefined points (the ablation
/// separating "discretize to the grid" from "use the tree").
pub struct ExponentialReportMechanism;

impl ReportMechanism for ExponentialReportMechanism {
    fn name(&self) -> &'static str {
        "exp"
    }

    fn summary(&self) -> &'static str {
        "exponential mechanism over the predefined points"
    }

    fn needs_server(&self) -> bool {
        true
    }

    fn reporter<'a>(
        &self,
        epsilon: Epsilon,
        server: Option<&'a Server>,
    ) -> Result<Box<dyn PointReporter + 'a>, PipelineError> {
        let server = server.ok_or(PipelineError::MissingServer("exp mechanism"))?;
        struct R<'a> {
            mechanism: ExponentialMechanism,
            server: &'a Server,
        }
        impl PointReporter for R<'_> {
            fn report(&mut self, location: &Point, rng: &mut StdRng) -> Report {
                let nearest = self.server.grid().nearest(location);
                let noisy = self.mechanism.obfuscate(nearest, rng);
                Report::Leaf(self.server.hst().leaf_of(noisy))
            }
        }
        Ok(Box::new(R {
            mechanism: ExponentialMechanism::new(server.hst().points().clone(), epsilon),
            server,
        }))
    }
}

/// No privacy: reports true locations verbatim (the non-private ceiling;
/// useful for quantifying the privacy/utility gap of any matcher).
pub struct IdentityMechanism;

impl ReportMechanism for IdentityMechanism {
    fn name(&self) -> &'static str {
        "identity"
    }

    fn summary(&self) -> &'static str {
        "no obfuscation: true locations (non-private ceiling)"
    }

    fn needs_server(&self) -> bool {
        false
    }

    fn reporter<'a>(
        &self,
        _epsilon: Epsilon,
        _server: Option<&'a Server>,
    ) -> Result<Box<dyn PointReporter + 'a>, PipelineError> {
        struct R;
        impl PointReporter for R {
            fn report(&mut self, location: &Point, _rng: &mut StdRng) -> Report {
                Report::Planar(*location)
            }
        }
        Ok(Box::new(R))
    }
}

/// Perfect privacy: reports nothing location-dependent (the floor).
pub struct BlindMechanism;

impl ReportMechanism for BlindMechanism {
    fn name(&self) -> &'static str {
        "blind"
    }

    fn summary(&self) -> &'static str {
        "nothing location-dependent is reported (sanity floor)"
    }

    fn needs_server(&self) -> bool {
        false
    }

    fn reporter<'a>(
        &self,
        _epsilon: Epsilon,
        _server: Option<&'a Server>,
    ) -> Result<Box<dyn PointReporter + 'a>, PipelineError> {
        struct R;
        impl PointReporter for R {
            fn report(&mut self, _location: &Point, _rng: &mut StdRng) -> Report {
                Report::Blind
            }
        }
        Ok(Box::new(R))
    }
}

// ---------------------------------------------------------------------------
// Matcher implementations
// ---------------------------------------------------------------------------

/// Euclidean greedy (Tong et al., PVLDB'16): nearest available worker in
/// the plane, linear scan or cell index per `config.euclid_cells`.
pub struct EuclideanGreedyStrategy;

impl AssignStrategy for EuclideanGreedyStrategy {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn summary(&self) -> &'static str {
        "nearest available worker in the plane"
    }

    fn needs_server(&self) -> bool {
        false
    }

    fn assign(
        &self,
        reports: ReportSet,
        ctx: &mut AssignCtx<'_>,
    ) -> Result<Matching, PipelineError> {
        let workers = reports.workers.into_points(ctx.server, "greedy matcher")?;
        let tasks = reports.tasks.into_points(ctx.server, "greedy matcher")?;
        let mut matcher = if ctx.config.euclid_cells > 0 {
            EuclideanGreedy::with_cell_index(workers, ctx.instance.region, ctx.config.euclid_cells)
        } else {
            EuclideanGreedy::new(workers)
        };
        let mut matching = Matching::new();
        for (t_idx, t) in tasks.iter().enumerate() {
            if let Some(w_idx) = matcher.assign(t) {
                matching.pairs.push((t_idx, w_idx));
            }
        }
        Ok(matching)
    }
}

/// Euclidean greedy over a k-d tree with logical deletion; identical
/// matchings to [`EuclideanGreedyStrategy`], different asymptotics.
pub struct KdGreedyStrategy;

impl AssignStrategy for KdGreedyStrategy {
    fn name(&self) -> &'static str {
        "kd-greedy"
    }

    fn summary(&self) -> &'static str {
        "nearest available worker via k-d tree"
    }

    fn needs_server(&self) -> bool {
        false
    }

    fn assign(
        &self,
        reports: ReportSet,
        ctx: &mut AssignCtx<'_>,
    ) -> Result<Matching, PipelineError> {
        let workers = reports
            .workers
            .into_points(ctx.server, "kd-greedy matcher")?;
        let tasks = reports.tasks.into_points(ctx.server, "kd-greedy matcher")?;
        let mut tree = pombm_matching::kdtree::KdTree::build(workers);
        let mut matching = Matching::new();
        for (t_idx, t) in tasks.iter().enumerate() {
            if let Some(w_idx) = tree.take_nearest(t) {
                matching.pairs.push((t_idx, w_idx));
            }
        }
        Ok(matching)
    }
}

/// The paper's Alg. 4: nearest available worker on the HST.
pub struct HstGreedyStrategy;

impl AssignStrategy for HstGreedyStrategy {
    fn name(&self) -> &'static str {
        "hst-greedy"
    }

    fn summary(&self) -> &'static str {
        "tree-nearest available worker (Alg. 4)"
    }

    fn needs_server(&self) -> bool {
        true
    }

    fn assign(
        &self,
        reports: ReportSet,
        ctx: &mut AssignCtx<'_>,
    ) -> Result<Matching, PipelineError> {
        let server = ctx
            .server
            .ok_or(PipelineError::MissingServer("hst-greedy matcher"))?;
        let workers = reports
            .workers
            .into_leaves(ctx.server, "hst-greedy matcher")?;
        let tasks = reports
            .tasks
            .into_leaves(ctx.server, "hst-greedy matcher")?;
        let mut matcher = HstGreedy::new(server.hst().ctx(), workers, ctx.config.engine);
        let mut matching = Matching::new();
        for (t_idx, &t) in tasks.iter().enumerate() {
            if let Some(w_idx) = matcher.assign(t) {
                matching.pairs.push((t_idx, w_idx));
            }
        }
        Ok(matching)
    }
}

/// Alg. 4 with uniform tie-break randomization (Meyerson et al.).
pub struct RandomizedGreedyStrategy;

impl AssignStrategy for RandomizedGreedyStrategy {
    fn name(&self) -> &'static str {
        "hst-rand"
    }

    fn summary(&self) -> &'static str {
        "tree-nearest worker with randomized tie-breaking"
    }

    fn needs_server(&self) -> bool {
        true
    }

    fn assign(
        &self,
        reports: ReportSet,
        ctx: &mut AssignCtx<'_>,
    ) -> Result<Matching, PipelineError> {
        let server = ctx
            .server
            .ok_or(PipelineError::MissingServer("hst-rand matcher"))?;
        let workers = reports
            .workers
            .into_leaves(ctx.server, "hst-rand matcher")?;
        let tasks = reports.tasks.into_leaves(ctx.server, "hst-rand matcher")?;
        let mut matcher = RandomizedGreedy::new(server.hst().ctx(), workers);
        let mut matching = Matching::new();
        for (t_idx, &t) in tasks.iter().enumerate() {
            if let Some(w_idx) = matcher.assign(t, ctx.tie_rng) {
                matching.pairs.push((t_idx, w_idx));
            }
        }
        Ok(matching)
    }
}

/// Chain reassignment (Bansal et al., Algorithmica 2014) on the HST.
pub struct ChainStrategy;

impl AssignStrategy for ChainStrategy {
    fn name(&self) -> &'static str {
        "chain"
    }

    fn summary(&self) -> &'static str {
        "chain-reassignment rule on the tree"
    }

    fn needs_server(&self) -> bool {
        true
    }

    fn assign(
        &self,
        reports: ReportSet,
        ctx: &mut AssignCtx<'_>,
    ) -> Result<Matching, PipelineError> {
        let server = ctx
            .server
            .ok_or(PipelineError::MissingServer("chain matcher"))?;
        let workers = reports.workers.into_leaves(ctx.server, "chain matcher")?;
        let tasks = reports.tasks.into_leaves(ctx.server, "chain matcher")?;
        let mut matcher = ChainMatcher::new(server.hst().ctx(), workers);
        let mut matching = Matching::new();
        for (t_idx, &t) in tasks.iter().enumerate() {
            if let Some(out) = matcher.assign(t) {
                matching.pairs.push((t_idx, out.worker));
            }
        }
        Ok(matching)
    }
}

/// Capacitated HST greedy: each worker serves up to
/// [`PipelineConfig::capacity`] tasks.
pub struct CapacitatedStrategy;

impl AssignStrategy for CapacitatedStrategy {
    fn name(&self) -> &'static str {
        "capacity"
    }

    fn summary(&self) -> &'static str {
        "tree-nearest worker with residual capacity (config.capacity per worker)"
    }

    fn needs_server(&self) -> bool {
        true
    }

    fn reuses_workers(&self) -> bool {
        true
    }

    fn assign(
        &self,
        reports: ReportSet,
        ctx: &mut AssignCtx<'_>,
    ) -> Result<Matching, PipelineError> {
        let server = ctx
            .server
            .ok_or(PipelineError::MissingServer("capacity matcher"))?;
        let workers = reports
            .workers
            .into_leaves(ctx.server, "capacity matcher")?;
        let tasks = reports.tasks.into_leaves(ctx.server, "capacity matcher")?;
        if ctx.config.capacity == 0 {
            return Err(PipelineError::InvalidConfig {
                field: "capacity",
                why: "the capacity matcher needs at least one slot per worker",
            });
        }
        let q = ctx.config.capacity;
        let mut matcher = CapacitatedGreedy::uniform(server.hst().ctx(), workers, q);
        let mut matching = Matching::new();
        for (t_idx, &t) in tasks.iter().enumerate() {
            if let Some(w_idx) = matcher.assign(t) {
                matching.pairs.push((t_idx, w_idx));
            }
        }
        Ok(matching)
    }
}

/// Exact offline optimum (Hungarian) over the *reported* locations.
///
/// This is `OPT` of Definition 8 run on the obfuscated view: it sees every
/// task before assigning any of them, so it lower-bounds what any online
/// matcher can achieve on the same reports. Composed with the `identity`
/// mechanism it reproduces the true offline optimum exactly — the built-in
/// sanity oracle of the competitive-ratio sweep (ratio = 1.0).
pub struct OfflineOptimalStrategy;

impl AssignStrategy for OfflineOptimalStrategy {
    fn name(&self) -> &'static str {
        "offline-opt"
    }

    fn summary(&self) -> &'static str {
        "exact offline optimum on the reports (Hungarian; not online)"
    }

    fn needs_server(&self) -> bool {
        false
    }

    fn assign(
        &self,
        reports: ReportSet,
        ctx: &mut AssignCtx<'_>,
    ) -> Result<Matching, PipelineError> {
        let workers = reports
            .workers
            .into_points(ctx.server, "offline-opt matcher")?;
        let tasks = reports
            .tasks
            .into_points(ctx.server, "offline-opt matcher")?;
        // Bit-identical for every thread count (see `pombm_matching::offline`),
        // so `config.threads` only trades wall-clock for cores.
        let mut matching =
            OfflineOptimal::solve_euclidean_with_threads(&tasks, &workers, ctx.config.threads);
        // Canonical worker-index order: worker indices never change when the
        // task arrival order is reshuffled, so the float summation order of
        // `total_distance` — and hence the identity × offline-opt ratio of
        // exactly 1.0 — is independent of the arrival permutation.
        matching.pairs.sort_unstable_by_key(|&(_, w)| w);
        Ok(matching)
    }
}

/// Location-blind uniform assignment: the sanity floor.
pub struct RandomAssignStrategy;

impl AssignStrategy for RandomAssignStrategy {
    fn name(&self) -> &'static str {
        "random"
    }

    fn summary(&self) -> &'static str {
        "uniformly random available worker (location-blind)"
    }

    fn needs_server(&self) -> bool {
        false
    }

    fn assign(
        &self,
        reports: ReportSet,
        ctx: &mut AssignCtx<'_>,
    ) -> Result<Matching, PipelineError> {
        let mut matcher = RandomAssign::new(reports.workers.len());
        let mut matching = Matching::new();
        for t_idx in 0..reports.tasks.len() {
            if let Some(w_idx) = matcher.assign(ctx.mech_rng) {
                matching.pairs.push((t_idx, w_idx));
            }
        }
        Ok(matching)
    }
}

// ---------------------------------------------------------------------------
// Dynamic matcher implementations
// ---------------------------------------------------------------------------

/// The paper's Alg. 4 over a shifting fleet: tree-nearest available worker
/// via [`pombm_matching::DynamicHstGreedy`] (the `O(c·D)` mutable index).
pub struct DynamicHstGreedyStrategy;

impl DynamicAssignStrategy for DynamicHstGreedyStrategy {
    fn name(&self) -> &'static str {
        "hst-greedy"
    }

    fn summary(&self) -> &'static str {
        "tree-nearest available worker over a shifting fleet (Alg. 4)"
    }

    fn needs_server(&self) -> bool {
        true
    }

    fn pool<'a>(
        &self,
        server: Option<&'a Server>,
    ) -> Result<Box<dyn DynamicWorkerPool + 'a>, PipelineError> {
        let server = server.ok_or(PipelineError::MissingServer("hst-greedy dynamic matcher"))?;
        struct P<'a> {
            pool: pombm_matching::DynamicHstGreedy,
            server: &'a Server,
        }
        impl DynamicWorkerPool for P<'_> {
            fn insert(&mut self, id: u64, report: Report) -> Result<(), PipelineError> {
                let leaf = report.into_leaf(Some(self.server), "dynamic pool")?;
                self.pool.add(id, leaf);
                Ok(())
            }
            fn insert_batch(&mut self, batch: Vec<(u64, Report)>) -> Result<(), PipelineError> {
                // Convert every report before the first add: an
                // incompatible report mid-batch must not leave a
                // half-inserted window behind.
                let leaves = batch
                    .into_iter()
                    .map(|(id, report)| {
                        Ok((id, report.into_leaf(Some(self.server), "dynamic pool")?))
                    })
                    .collect::<Result<Vec<_>, PipelineError>>()?;
                self.pool.add_batch(leaves);
                Ok(())
            }
            fn withdraw(&mut self, id: u64) -> bool {
                self.pool.withdraw(id)
            }
            fn assign(
                &mut self,
                report: Report,
                _tie_rng: &mut StdRng,
            ) -> Result<Option<u64>, PipelineError> {
                let leaf = report.into_leaf(Some(self.server), "dynamic pool")?;
                Ok(self.pool.assign(leaf))
            }
            fn available(&self) -> usize {
                self.pool.available()
            }
        }
        Ok(Box::new(P {
            pool: pombm_matching::DynamicHstGreedy::new(server.hst().ctx()),
            server,
        }))
    }
}

/// Euclidean nearest over planar reports via a k-d tree rebuilt lazily on
/// pool mutation ([`pombm_matching::DynamicKdRebuild`]). Leaf reports are
/// projected to their representative predefined points, so tree mechanisms
/// compose too.
pub struct DynamicKdRebuildStrategy;

impl DynamicAssignStrategy for DynamicKdRebuildStrategy {
    fn name(&self) -> &'static str {
        "kd-rebuild"
    }

    fn summary(&self) -> &'static str {
        "Euclidean-nearest worker via a k-d tree rebuilt on pool mutation"
    }

    fn needs_server(&self) -> bool {
        false
    }

    fn pool<'a>(
        &self,
        server: Option<&'a Server>,
    ) -> Result<Box<dyn DynamicWorkerPool + 'a>, PipelineError> {
        struct P<'a> {
            pool: pombm_matching::DynamicKdRebuild,
            server: Option<&'a Server>,
        }
        impl DynamicWorkerPool for P<'_> {
            fn insert(&mut self, id: u64, report: Report) -> Result<(), PipelineError> {
                let point = report.into_point(self.server, "kd-rebuild dynamic matcher")?;
                self.pool.add(id, point);
                Ok(())
            }
            fn insert_batch(&mut self, batch: Vec<(u64, Report)>) -> Result<(), PipelineError> {
                // Convert first (atomic on incompatible reports), then one
                // append + re-sort instead of k sorted insertions.
                let points = batch
                    .into_iter()
                    .map(|(id, report)| {
                        Ok((
                            id,
                            report.into_point(self.server, "kd-rebuild dynamic matcher")?,
                        ))
                    })
                    .collect::<Result<Vec<_>, PipelineError>>()?;
                self.pool.add_batch(points);
                Ok(())
            }
            fn withdraw(&mut self, id: u64) -> bool {
                self.pool.withdraw(id)
            }
            fn assign(
                &mut self,
                report: Report,
                _tie_rng: &mut StdRng,
            ) -> Result<Option<u64>, PipelineError> {
                let point = report.into_point(self.server, "kd-rebuild dynamic matcher")?;
                Ok(self.pool.assign(&point))
            }
            fn available(&self) -> usize {
                self.pool.available()
            }
        }
        Ok(Box::new(P {
            pool: pombm_matching::DynamicKdRebuild::new(),
            server,
        }))
    }
}

/// Uniform draw from the live pool ([`pombm_matching::DynamicRandomPool`]):
/// the location-blind sanity floor under fleet churn. Composes with every
/// mechanism, including `blind`.
pub struct DynamicRandomStrategy;

impl DynamicAssignStrategy for DynamicRandomStrategy {
    fn name(&self) -> &'static str {
        "random"
    }

    fn summary(&self) -> &'static str {
        "uniformly random live worker (location-blind floor)"
    }

    fn needs_server(&self) -> bool {
        false
    }

    fn pool<'a>(
        &self,
        _server: Option<&'a Server>,
    ) -> Result<Box<dyn DynamicWorkerPool + 'a>, PipelineError> {
        struct P(pombm_matching::DynamicRandomPool);
        impl DynamicWorkerPool for P {
            fn insert(&mut self, id: u64, _report: Report) -> Result<(), PipelineError> {
                self.0.add(id);
                Ok(())
            }
            fn insert_batch(&mut self, batch: Vec<(u64, Report)>) -> Result<(), PipelineError> {
                let ids: Vec<u64> = batch.into_iter().map(|(id, _)| id).collect();
                self.0.add_batch(&ids);
                Ok(())
            }
            fn withdraw(&mut self, id: u64) -> bool {
                self.0.withdraw(id)
            }
            fn assign(
                &mut self,
                _report: Report,
                tie_rng: &mut StdRng,
            ) -> Result<Option<u64>, PipelineError> {
                Ok(self.0.assign(tie_rng))
            }
            fn available(&self) -> usize {
                self.0.available()
            }
        }
        Ok(Box::new(P(pombm_matching::DynamicRandomPool::new())))
    }
}

/// The clairvoyant offline optimum over the revealed shift/task timeline
/// ([`pombm_matching::ClairvoyantOptimal`]): the ratio-under-churn
/// denominator of [`crate::ratio::dynamic_competitive_ratio`].
///
/// Registered [`crate::registry::Role::OracleOnly`]: it is not an online
/// rule — it sees the whole schedule at once — so the event-sequential
/// [`DynamicWorkerPool`] position is a typed
/// [`PipelineError::RoleMismatch`], enforced both at registry resolution
/// and here as defense in depth.
pub struct DynamicOptStrategy;

impl DynamicAssignStrategy for DynamicOptStrategy {
    fn name(&self) -> &'static str {
        "dynamic-opt"
    }

    fn summary(&self) -> &'static str {
        "clairvoyant offline optimum over the revealed timeline (ratio denominator)"
    }

    fn needs_server(&self) -> bool {
        false
    }

    fn pool<'a>(
        &self,
        _server: Option<&'a Server>,
    ) -> Result<Box<dyn DynamicWorkerPool + 'a>, PipelineError> {
        Err(PipelineError::RoleMismatch {
            kind: "dynamic matcher",
            name: self.name().to_string(),
            role: "oracle-only",
            wanted: "pairing",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_rejects_mixed_batches() {
        let mixed = vec![
            Report::Planar(Point::new(0.0, 0.0)),
            Report::Leaf(LeafCode(3)),
        ];
        assert!(matches!(
            Reports::collect(mixed, "test"),
            Err(PipelineError::MixedReports("test"))
        ));
        let blind = vec![Report::Blind, Report::Blind];
        assert_eq!(Reports::collect(blind, "test").unwrap(), Reports::Blind(2));
        assert_eq!(Reports::collect(vec![], "test").unwrap(), Reports::Blind(0));
    }

    #[test]
    fn blind_reports_cannot_become_locations() {
        assert!(Reports::Blind(4).into_points(None, "x").is_err());
        assert!(Reports::Blind(4).into_leaves(None, "x").is_err());
        assert!(Report::Blind.into_leaf(None, "x").is_err());
        // ...but an empty side carries nothing to reject.
        assert_eq!(Reports::Blind(0).into_points(None, "x").unwrap(), vec![]);
        assert_eq!(Reports::Blind(0).into_leaves(None, "x").unwrap(), vec![]);
    }

    #[test]
    fn planar_to_leaves_requires_server() {
        let planar = Reports::Planar(vec![Point::new(1.0, 2.0)]);
        assert_eq!(
            planar.into_leaves(None, "hst-greedy matcher"),
            Err(PipelineError::MissingServer("hst-greedy matcher"))
        );
    }

    #[test]
    fn errors_display_helpfully() {
        let e = PipelineError::UnknownEntry {
            kind: "algorithm",
            name: "nope".into(),
            known: vec!["tbf".into(), "lap-gr".into()],
        };
        let msg = e.to_string();
        assert!(msg.contains("nope") && msg.contains("tbf") && msg.contains("lap-gr"));
    }
}
