//! Multi-epoch deployment: repeated reporting under a finite budget.
//!
//! The paper analyzes a single assignment round; a deployed platform runs
//! every day. Each fresh obfuscated report leaks privacy, and by sequential
//! composition a worker who reports `r` times at budget ε per report has
//! spent `r·ε` in total. This module simulates that lifecycle on top of
//! the TBF pipeline:
//!
//! * Workers drift between epochs (Gaussian step, clamped to the region).
//! * At the start of each epoch a worker *re-reports* — obfuscating its
//!   current leaf with the per-epoch ε — **iff** its lifetime budget ledger
//!   still has ε available ([`pombm_privacy::budget::BudgetLedger`]).
//!   Once exhausted, the worker keeps serving from its **stale** last
//!   report: no further leakage, but the report decays as the worker moves.
//! * Tasks are one-shot participants and always pay the per-epoch ε.
//! * The server matches each epoch's tasks against that epoch's reports
//!   with HST-greedy (Alg. 4).
//!
//! The interesting output is the per-epoch total distance: it degrades as
//! the fleet's reports go stale, quantifying the deployment concern the
//! paper scopes out (its mechanism is single-shot by design).

use crate::algorithm::{PipelineError, ReportMechanism};
use crate::registry::registry;
use crate::server::Server;
use pombm_geom::{seeded_rng, Point, Rect};
use pombm_hst::LeafCode;
use pombm_matching::{HstGreedy, HstGreedyEngine, Matching};
use pombm_privacy::budget::BudgetLedger;
use pombm_privacy::Epsilon;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// Configuration of a multi-epoch simulation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EpochConfig {
    /// Number of epochs ("days") to simulate.
    pub num_epochs: usize,
    /// Lifetime privacy budget per worker; re-reporting stops when the next
    /// report would exceed it.
    pub lifetime_epsilon: f64,
    /// Budget spent per fresh report (workers and tasks alike).
    pub epoch_epsilon: f64,
    /// Standard deviation of the per-epoch Gaussian drift of each worker,
    /// in workspace units.
    pub worker_drift: f64,
    /// Tasks arriving per epoch, drawn from the same Normal hotspot as the
    /// synthetic workloads.
    pub tasks_per_epoch: usize,
    /// Mean of the task/initial-worker location distribution.
    pub mu: f64,
    /// Standard deviation of the task/initial-worker location distribution.
    pub sigma: f64,
    /// Predefined-point grid side.
    pub grid_side: usize,
    /// Nearest-worker engine.
    pub engine: HstGreedyEngine,
    /// Base seed.
    pub seed: u64,
}

impl Default for EpochConfig {
    fn default() -> Self {
        EpochConfig {
            num_epochs: 10,
            lifetime_epsilon: 3.0,
            epoch_epsilon: 0.6,
            worker_drift: 10.0,
            tasks_per_epoch: 500,
            mu: 100.0,
            sigma: 20.0,
            grid_side: 32,
            engine: HstGreedyEngine::Indexed,
            seed: 0,
        }
    }
}

/// Per-epoch measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochMetrics {
    /// Epoch index, starting at 0.
    pub epoch: usize,
    /// Workers that re-reported this epoch (budget permitting).
    pub fresh_reports: usize,
    /// Workers serving from a stale report (budget exhausted).
    pub stale_reports: usize,
    /// Mean Euclidean distance between a worker's true position and the
    /// position its current report was based on.
    pub avg_report_staleness: f64,
    /// Total true-location travel distance of this epoch's matching.
    pub total_distance: f64,
    /// Pairs assigned this epoch.
    pub matching_size: usize,
}

/// The full simulation output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochReport {
    /// One entry per simulated epoch, in order.
    pub per_epoch: Vec<EpochMetrics>,
    /// Sum of ε charged across all workers over the whole run.
    pub worker_budget_spent: f64,
}

impl EpochReport {
    /// Ratio of the last epoch's total distance to the first's — the
    /// headline degradation number (> 1 means staleness hurt).
    pub fn degradation(&self) -> f64 {
        match (self.per_epoch.first(), self.per_epoch.last()) {
            (Some(a), Some(b)) if a.total_distance > 0.0 => b.total_distance / a.total_distance,
            _ => 1.0,
        }
    }
}

/// Runs the multi-epoch simulation described in the module docs.
///
/// `num_workers` workers are spawned from the Normal hotspot at epoch 0;
/// every epoch they drift, (maybe) re-report, and serve that epoch's
/// `tasks_per_epoch` arrivals.
pub fn run_epochs(num_workers: usize, config: &EpochConfig) -> EpochReport {
    let mechanism = registry().mechanism("hst").expect("hst is registered");
    run_epochs_with(num_workers, config, mechanism.as_ref())
        .expect("the hst mechanism always produces tree reports")
}

/// [`run_epochs`] with an explicit reporting mechanism (planar reports are
/// snapped onto the published tree, like the paper's Lap-HG).
pub fn run_epochs_with(
    num_workers: usize,
    config: &EpochConfig,
    mechanism: &dyn ReportMechanism,
) -> Result<EpochReport, PipelineError> {
    assert!(config.num_epochs > 0, "need at least one epoch");
    assert!(
        config.epoch_epsilon > 0.0 && config.lifetime_epsilon > 0.0,
        "budgets must be positive"
    );
    let region = Rect::square(2.0 * config.mu.max(100.0));
    let server = Server::new(region, config.grid_side, config.seed ^ 0xE70C);
    let epsilon = Epsilon::new(config.epoch_epsilon);
    let mut reporter = mechanism.reporter(epsilon, Some(&server))?;
    let ledger = BudgetLedger::new(config.lifetime_epsilon);

    let mut rng = seeded_rng(config.seed, 0xE70C_0001);
    let normal = Normal::new(config.mu, config.sigma).expect("sigma > 0");
    let sample_point = |rng: &mut rand::rngs::StdRng| -> Point {
        region.clamp(&Point::new(normal.sample(rng), normal.sample(rng)))
    };

    // Worker state: true position, current report, and the true position
    // the report was based on.
    let mut positions: Vec<Point> = (0..num_workers).map(|_| sample_point(&mut rng)).collect();
    let mut reports: Vec<LeafCode> = Vec::with_capacity(num_workers);
    let mut report_basis: Vec<Point> = positions.clone();
    for (i, w) in positions.iter().enumerate() {
        // The registration report; every worker can afford the first one.
        ledger
            .charge(i as u64, config.epoch_epsilon)
            .expect("lifetime must cover at least one report");
        reports.push(
            reporter
                .report(w, &mut rng)
                .into_leaf(Some(&server), "epoch reports")?,
        );
    }

    let drift = Normal::new(0.0, config.worker_drift.max(1e-9)).expect("drift >= 0");
    let mut per_epoch = Vec::with_capacity(config.num_epochs);

    for epoch in 0..config.num_epochs {
        if epoch > 0 {
            // Drift, then re-report where the ledger allows.
            for i in 0..num_workers {
                let p = positions[i];
                positions[i] = region.clamp(&Point::new(
                    p.x + drift.sample(&mut rng),
                    p.y + drift.sample(&mut rng),
                ));
                if ledger.charge(i as u64, config.epoch_epsilon).is_ok() {
                    reports[i] = reporter
                        .report(&positions[i], &mut rng)
                        .into_leaf(Some(&server), "epoch reports")?;
                    report_basis[i] = positions[i];
                }
            }
        }
        let fresh_reports = (0..num_workers)
            .filter(|&i| report_basis[i] == positions[i])
            .count();
        let avg_report_staleness = positions
            .iter()
            .zip(&report_basis)
            .map(|(p, b)| p.dist(b))
            .sum::<f64>()
            / num_workers.max(1) as f64;

        // This epoch's tasks: fresh arrivals, always able to pay.
        let tasks: Vec<Point> = (0..config.tasks_per_epoch)
            .map(|_| sample_point(&mut rng))
            .collect();
        let mut reported_tasks: Vec<LeafCode> = Vec::with_capacity(tasks.len());
        for t in &tasks {
            reported_tasks.push(
                reporter
                    .report(t, &mut rng)
                    .into_leaf(Some(&server), "epoch reports")?,
            );
        }

        // Fresh matcher per epoch: workers come back on shift every day.
        let mut matcher = HstGreedy::new(server.hst().ctx(), reports.clone(), config.engine);
        let mut matching = Matching::new();
        for (t_idx, &t) in reported_tasks.iter().enumerate() {
            if let Some(w_idx) = matcher.assign(t) {
                matching.pairs.push((t_idx, w_idx));
            }
        }
        let total_distance = matching.total_distance(&tasks, &positions);

        per_epoch.push(EpochMetrics {
            epoch,
            fresh_reports,
            stale_reports: num_workers - fresh_reports,
            avg_report_staleness,
            total_distance,
            matching_size: matching.size(),
        });
    }

    Ok(EpochReport {
        per_epoch,
        worker_budget_spent: ledger.total_spent(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> EpochConfig {
        EpochConfig {
            num_epochs: 6,
            lifetime_epsilon: 1.8, // 3 fresh reports at ε = 0.6
            tasks_per_epoch: 80,
            grid_side: 16,
            ..EpochConfig::default()
        }
    }

    #[test]
    fn budget_caps_fresh_reports() {
        let report = run_epochs(100, &quick_config());
        assert_eq!(report.per_epoch.len(), 6);
        // Epochs 0-2 are fully fresh (3 reports × ε0.6 = 1.8 = lifetime);
        // from epoch 3 on, everyone is stale.
        assert_eq!(report.per_epoch[0].stale_reports, 0);
        assert_eq!(report.per_epoch[1].stale_reports, 0);
        assert_eq!(report.per_epoch[2].stale_reports, 0);
        assert_eq!(report.per_epoch[3].fresh_reports, 0);
        assert_eq!(report.per_epoch[5].fresh_reports, 0);
    }

    #[test]
    fn ledger_never_exceeds_lifetime() {
        let config = quick_config();
        let report = run_epochs(50, &config);
        assert!(report.worker_budget_spent <= 50.0 * config.lifetime_epsilon + 1e-9);
        // Exactly 3 charges per worker in this configuration.
        assert!((report.worker_budget_spent - 50.0 * 1.8).abs() < 1e-9);
    }

    #[test]
    fn staleness_grows_once_budget_exhausts() {
        let report = run_epochs(150, &quick_config());
        let early = report.per_epoch[2].avg_report_staleness;
        let late = report.per_epoch[5].avg_report_staleness;
        assert!(
            late > early,
            "staleness should grow after exhaustion: early {early}, late {late}"
        );
        assert_eq!(report.per_epoch[2].avg_report_staleness, 0.0);
    }

    #[test]
    fn every_epoch_matches_all_tasks_when_workers_abound() {
        let report = run_epochs(200, &quick_config());
        for m in &report.per_epoch {
            assert_eq!(m.matching_size, 80, "epoch {}", m.epoch);
            assert!(m.total_distance > 0.0);
        }
    }

    #[test]
    fn simulation_is_reproducible() {
        let a = run_epochs(60, &quick_config());
        let b = run_epochs(60, &quick_config());
        for (x, y) in a.per_epoch.iter().zip(&b.per_epoch) {
            assert_eq!(x.total_distance, y.total_distance);
            assert_eq!(x.fresh_reports, y.fresh_reports);
        }
    }

    #[test]
    fn degradation_reflects_distance_growth() {
        let report = run_epochs(150, &quick_config());
        let deg = report.degradation();
        assert!(deg.is_finite() && deg > 0.0);
    }

    #[test]
    fn alternative_mechanisms_plug_in() {
        // Epoch reporting goes through the ReportMechanism trait: the
        // planar Laplace mechanism (snapped onto the tree) and the exact
        // identity mechanism both drive the same budget lifecycle.
        let config = quick_config();
        for name in ["laplace", "identity"] {
            let mechanism = registry().mechanism(name).unwrap();
            let report = run_epochs_with(80, &config, mechanism.as_ref()).unwrap();
            assert_eq!(report.per_epoch.len(), 6, "{name}");
            assert!(
                (report.worker_budget_spent - 80.0 * 1.8).abs() < 1e-9,
                "{name}"
            );
            for m in &report.per_epoch {
                assert_eq!(m.matching_size, 80, "{name} epoch {}", m.epoch);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one epoch")]
    fn zero_epochs_rejected() {
        let config = EpochConfig {
            num_epochs: 0,
            ..EpochConfig::default()
        };
        let _ = run_epochs(10, &config);
    }
}
