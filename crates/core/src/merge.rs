//! Byte-exact reassembly of partitioned sweep runs.
//!
//! [`crate::sweep::run_sweep_partition`] splits a sweep's job-index space
//! across processes; this module is the other half of that contract:
//! given the partials, [`merge_static`] / [`merge_dynamic`] validate that
//! they belong together and cover the space exactly, then reassemble the
//! cells in job-index order into a report whose JSON serialization is
//! **byte-identical** to what a single-process [`crate::sweep::run_sweep`]
//! / [`crate::sweep::run_dynamic_sweep`] of the same configuration would
//! have produced. Once partials merge byte-exactly, scheduling them on
//! different machines is just transport — the merge is the trust anchor
//! of the distributed harness, and CI re-proves it on every run.
//!
//! # Validation
//!
//! A partial set is merged only if:
//!
//! * it is non-empty and every partial carries the expected flavour tag,
//! * all config [fingerprints](crate::sweep::sweep_fingerprint) are
//!   identical (same resolved pairings, grids, seed and output-relevant
//!   pipeline settings — parallelism knobs are excluded since they never
//!   change cell content),
//! * the shared metadata (`total_jobs`, `seed`, `repetitions` /
//!   `horizon`) agrees,
//! * every covered range lies inside the job space, no job index is
//!   covered twice ([`MergeError::Overlap`]), and none is missed
//!   ([`MergeError::Gap`]) — silent cell loss is structurally impossible.
//!
//! # Timings
//!
//! Per-cell `wall_ms` columns (the `--timings` flag) are inherently
//! machine-dependent, so the merge strips them: merged output always
//! matches a single-process run *without* timings, keeping the byte-exact
//! contract meaningful across heterogeneous fleets.

use crate::sweep::{
    DynamicPartialSweepReport, DynamicSweepReport, PartialSweepReport, SweepReport, DYNAMIC_FLAVOR,
    STATIC_FLAVOR,
};

/// Why a partial set cannot be merged. Every variant names the offending
/// partial (by position in the input list) or job index, so a failed
/// fleet-scale merge is diagnosable without re-running anything.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeError {
    /// The input list was empty.
    NoPartials,
    /// A partial's flavour tag is not the one being merged (e.g. a
    /// dynamic partial handed to [`merge_static`], or mixed files).
    WrongFlavor {
        /// Position of the offending partial in the input list.
        partial: usize,
        /// The flavour expected by the merge being attempted.
        expected: &'static str,
        /// The flavour the partial carries.
        found: String,
    },
    /// A partial was produced by a different configuration.
    FingerprintMismatch {
        /// Position of the offending partial in the input list.
        partial: usize,
        /// Fingerprint of the first partial (the reference).
        expected: String,
        /// Fingerprint the offending partial carries.
        found: String,
    },
    /// Shared metadata disagrees despite matching fingerprints (a
    /// hand-edited or corrupted partial).
    MetadataMismatch {
        /// Position of the offending partial in the input list.
        partial: usize,
        /// Which field disagrees (`total_jobs`, `seed`, ...).
        field: &'static str,
    },
    /// A partial's covered range runs past the job space.
    OutOfBounds {
        /// Position of the offending partial in the input list.
        partial: usize,
        /// End of the partial's covered range.
        end: usize,
        /// Size of the job space.
        total: usize,
    },
    /// Two partials both cover this job index.
    Overlap {
        /// The doubly-covered global job index.
        job: usize,
    },
    /// No partial covers this job index.
    Gap {
        /// The uncovered global job index.
        job: usize,
    },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::NoPartials => write!(f, "nothing to merge: no partial reports given"),
            MergeError::WrongFlavor {
                partial,
                expected,
                found,
            } => write!(
                f,
                "partial #{partial} is a `{found}` report, expected `{expected}` \
                 (static and dynamic sweeps cannot be merged together)"
            ),
            MergeError::FingerprintMismatch {
                partial,
                expected,
                found,
            } => write!(
                f,
                "partial #{partial} was produced by a different configuration: \
                 fingerprint {found}, expected {expected}"
            ),
            MergeError::MetadataMismatch { partial, field } => write!(
                f,
                "partial #{partial} disagrees on `{field}` despite a matching fingerprint"
            ),
            MergeError::OutOfBounds {
                partial,
                end,
                total,
            } => write!(
                f,
                "partial #{partial} covers indices up to {end} but the job space has \
                 only {total} jobs"
            ),
            MergeError::Overlap { job } => {
                write!(f, "job index {job} is covered by more than one partial")
            }
            MergeError::Gap { job } => write!(
                f,
                "job index {job} is covered by no partial: the set is not a full partition"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// Validates flavour/fingerprint/metadata agreement and assembles the
/// cells of all partials into one job-index-ordered vector — the shared
/// skeleton of both merges. `meta_check` compares flavour-specific fields
/// of each partial against the first.
///
/// The accessor-per-field shape (rather than a trait) keeps the two
/// partial types plain serializable structs; the argument count is the
/// cost of that.
// One accessor argument per compared field — see the doc note above.
#[allow(clippy::too_many_arguments)]
fn assemble<'a, P, C>(
    partials: &'a [P],
    expected_flavor: &'static str,
    flavor: impl Fn(&P) -> &str,
    fingerprint: impl Fn(&P) -> &str,
    total_jobs: impl Fn(&P) -> usize,
    start: impl Fn(&P) -> usize,
    cells: impl Fn(&'a P) -> &'a [C],
    meta_check: impl Fn(&P, &P) -> Option<&'static str>,
) -> Result<Vec<&'a C>, MergeError> {
    let first = partials.first().ok_or(MergeError::NoPartials)?;
    let total = total_jobs(first);
    for (i, partial) in partials.iter().enumerate() {
        if flavor(partial) != expected_flavor {
            return Err(MergeError::WrongFlavor {
                partial: i,
                expected: expected_flavor,
                found: flavor(partial).to_string(),
            });
        }
        if fingerprint(partial) != fingerprint(first) {
            return Err(MergeError::FingerprintMismatch {
                partial: i,
                expected: fingerprint(first).to_string(),
                found: fingerprint(partial).to_string(),
            });
        }
        if total_jobs(partial) != total {
            return Err(MergeError::MetadataMismatch {
                partial: i,
                field: "total_jobs",
            });
        }
        if let Some(field) = meta_check(first, partial) {
            return Err(MergeError::MetadataMismatch { partial: i, field });
        }
        let end = start(partial) + cells(partial).len();
        if end > total {
            return Err(MergeError::OutOfBounds {
                partial: i,
                end,
                total,
            });
        }
    }
    let mut slots: Vec<Option<&C>> = vec![None; total];
    for partial in partials {
        for (offset, cell) in cells(partial).iter().enumerate() {
            let job = start(partial) + offset;
            if slots[job].is_some() {
                return Err(MergeError::Overlap { job });
            }
            slots[job] = Some(cell);
        }
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(job, slot)| slot.ok_or(MergeError::Gap { job }))
        .collect()
}

/// Merges a disjoint, fully covering set of static partials (in any
/// order) into the [`SweepReport`] a single-process run of the same
/// configuration would produce, stripping machine-dependent `wall_ms`
/// columns. Serializing the result yields byte-identical JSON to
/// `pombm sweep --json` without `--timings`.
pub fn merge_static(partials: &[PartialSweepReport]) -> Result<SweepReport, MergeError> {
    let cells = assemble(
        partials,
        STATIC_FLAVOR,
        |p| &p.flavor,
        |p| &p.fingerprint,
        |p| p.total_jobs,
        |p| p.start,
        |p| &p.cells,
        |first, p| {
            if p.seed != first.seed {
                Some("seed")
            } else if p.repetitions != first.repetitions {
                Some("repetitions")
            } else {
                None
            }
        },
    )?;
    let first = &partials[0];
    Ok(SweepReport {
        seed: first.seed,
        repetitions: first.repetitions,
        cells: cells
            .into_iter()
            .map(|cell| {
                let mut cell = cell.clone();
                cell.wall_ms = None;
                cell
            })
            .collect(),
    })
}

/// Merges a disjoint, fully covering set of dynamic partials into the
/// [`DynamicSweepReport`] of a single-process `pombm sweep --dynamic`;
/// the dynamic counterpart of [`merge_static`].
pub fn merge_dynamic(
    partials: &[DynamicPartialSweepReport],
) -> Result<DynamicSweepReport, MergeError> {
    let cells = assemble(
        partials,
        DYNAMIC_FLAVOR,
        |p| &p.flavor,
        |p| &p.fingerprint,
        |p| p.total_jobs,
        |p| p.start,
        |p| &p.cells,
        |first, p| {
            if p.seed != first.seed {
                Some("seed")
            } else if p.horizon.to_bits() != first.horizon.to_bits() {
                Some("horizon")
            } else {
                None
            }
        },
    )?;
    let first = &partials[0];
    Ok(DynamicSweepReport {
        seed: first.seed,
        horizon: first.horizon,
        cells: cells
            .into_iter()
            .map(|cell| {
                let mut cell = cell.clone();
                cell.wall_ms = None;
                cell
            })
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use crate::sweep::{run_sweep, run_sweep_range, sweep_job_count, PartitionPlan, SweepConfig};

    fn config() -> SweepConfig {
        SweepConfig {
            mechanisms: vec!["identity".into()],
            matchers: vec!["greedy".into(), "offline-opt".into()],
            scenarios: Vec::new(),
            sizes: vec![8, 10],
            epsilons: vec![0.6],
            repetitions: 1,
            shards: 2,
            timings: false,
            base: PipelineConfig {
                grid_side: 16,
                seed: 4,
                ..PipelineConfig::default()
            },
        }
    }

    #[test]
    fn balanced_partitions_reassemble_the_full_report() {
        let config = config();
        let full = serde_json::to_string(&run_sweep(&config).unwrap()).unwrap();
        let total = sweep_job_count(&config).unwrap();
        for n in [1usize, 2, 3, 4] {
            let partials: Vec<_> = (1..=n)
                .map(|i| {
                    let plan = PartitionPlan::new(i, n).unwrap();
                    run_sweep_range(&config, plan.slice(total)).unwrap()
                })
                .collect();
            let merged = serde_json::to_string(&merge_static(&partials).unwrap()).unwrap();
            assert_eq!(full, merged, "n = {n}");
        }
    }

    #[test]
    fn merge_accepts_partials_in_any_order() {
        let config = config();
        let total = sweep_job_count(&config).unwrap();
        let mut partials: Vec<_> = (1..=3usize)
            .map(|i| {
                let plan = PartitionPlan::new(i, 3).unwrap();
                run_sweep_range(&config, plan.slice(total)).unwrap()
            })
            .collect();
        partials.reverse();
        let merged = serde_json::to_string(&merge_static(&partials).unwrap()).unwrap();
        let full = serde_json::to_string(&run_sweep(&config).unwrap()).unwrap();
        assert_eq!(full, merged);
    }

    #[test]
    fn empty_overlapping_and_gappy_sets_are_typed_errors() {
        let config = config();
        let total = sweep_job_count(&config).unwrap();
        assert_eq!(merge_static(&[]).unwrap_err(), MergeError::NoPartials);

        let a = run_sweep_range(&config, 0..total).unwrap();
        let b = run_sweep_range(&config, 1..2).unwrap();
        assert_eq!(
            merge_static(&[a.clone(), b]).unwrap_err(),
            MergeError::Overlap { job: 1 }
        );

        let head = run_sweep_range(&config, 0..total - 1).unwrap();
        assert_eq!(
            merge_static(&[head]).unwrap_err(),
            MergeError::Gap { job: total - 1 }
        );

        let mut reseeded = config.clone();
        reseeded.base.seed = 5;
        let other = run_sweep_range(&reseeded, 0..1).unwrap();
        assert!(matches!(
            merge_static(&[a.clone(), other]),
            Err(MergeError::FingerprintMismatch { partial: 1, .. })
        ));

        let mut wrong = a.clone();
        wrong.flavor = "dynamic".into();
        assert!(matches!(
            merge_static(&[wrong]),
            Err(MergeError::WrongFlavor { partial: 0, .. })
        ));

        let head = run_sweep_range(&config, 0..2).unwrap();
        let mut tail = run_sweep_range(&config, 2..total).unwrap();
        tail.seed = 99; // hand-edited: fingerprint still matches
        assert_eq!(
            merge_static(&[head, tail]).unwrap_err(),
            MergeError::MetadataMismatch {
                partial: 1,
                field: "seed"
            }
        );

        let mut oob = a;
        oob.start = 1;
        assert!(matches!(
            merge_static(&[oob]),
            Err(MergeError::OutOfBounds { partial: 0, .. })
        ));
    }
}
