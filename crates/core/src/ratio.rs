//! Empirical competitive ratios against the offline optimum.
//!
//! Theorem 3 bounds Alg. 4's competitive ratio by `O(ε⁻⁴ log N log² k)`
//! against `OPT`, the minimum-total-distance matching computed with every
//! task known in advance (Definition 8). The paper does not plot the ratio
//! directly (its figures compare mechanisms' total distances), but
//! measuring it grounds the theory: this module runs any registered or
//! composed [`AlgorithmSpec`] repeatedly in the random order model —
//! Definition 8's expectation is over both the mechanism's coins and the
//! arrival order — and divides each run's total distance by `d(M_OPT)`
//! computed by the exact offline matcher on the true locations.
//!
//! The result is a structured [`RatioReport`] (mean/min/max ratio plus the
//! per-repetition distances) that serializes through the serde shim, so the
//! [`sweep`](crate::sweep) engine and the CLI's `--json` output share one
//! contract. Degenerate inputs (empty instances, zero-distance optima)
//! surface as a typed [`RatioError`] instead of a panic: the registry
//! admits arbitrary compositions, so the measurement layer must reject bad
//! denominators gracefully.
//!
//! # Ratio under churn
//!
//! The dynamic engine gets the same instrument. Definition 8's `OPT` knows
//! every task in advance; under a shifting fleet the honest analogue is the
//! *clairvoyant* optimum ([`dynamic_offline_optimum`]): with the full
//! shift/task schedule revealed, the max-cardinality min-total-distance
//! matching on the time-expanded feasibility graph — a task may only use a
//! worker whose shift covers its arrival instant, exactly the availability
//! rule the event-sequential driver enforces one event at a time. That is
//! the `dynamic-opt` oracle of the
//! [`registry`](crate::registry::Registry::dynamic_oracle), solved by
//! [`pombm_matching::ClairvoyantOptimal`], and
//! [`dynamic_competitive_ratio`] divides any online
//! `mechanism × dynamic-matcher` pairing's total distance by it. Static and
//! dynamic reports share one statistical core ([`RatioStats`]), so the two
//! report shapes serialize the measurement under identical field names.

use crate::algorithm::{DynamicAssignStrategy, PipelineError, ReportMechanism};
use crate::dynamic::{run_dynamic_spec, DynamicConfig};
use crate::pipeline::{run_spec, PipelineConfig};
use crate::registry::{registry, AlgorithmSpec, Role, DEFAULT_DYNAMIC_ORACLE};
use pombm_geom::seeded_rng;
use pombm_matching::offline::OfflineOptimal;
use pombm_matching::{ClairvoyantAssignment, ClairvoyantOptimal};
use pombm_workload::shifts::ShiftPlan;
use pombm_workload::Instance;
use serde::{Deserialize, Serialize};

/// Why a competitive ratio could not be measured.
#[derive(Debug, Clone, PartialEq)]
pub enum RatioError {
    /// `repetitions == 0`: the empirical mean is undefined.
    ZeroRepetitions,
    /// `k = min(n, m) = 0`: there is nothing to match, so the ratio's
    /// numerator and denominator are both empty sums.
    EmptyInstance {
        /// Number of tasks in the rejected instance.
        num_tasks: usize,
        /// Number of workers in the rejected instance.
        num_workers: usize,
    },
    /// The offline optimum has zero total distance (every matched task
    /// coincides with its worker), so the ratio would divide by zero.
    DegenerateOptimum {
        /// Size of the zero-distance optimal matching.
        matched: usize,
    },
    /// The clairvoyant optimum matched nothing: every task arrives outside
    /// every worker's shift, so even full foresight assigns zero tasks and
    /// the dynamic ratio has an empty denominator.
    InfeasibleTimeline {
        /// Number of tasks the oracle dropped (all of them).
        dropped: usize,
    },
    /// The pipeline rejected the composition (e.g. location-blind reports
    /// fed to a location-aware matcher).
    Pipeline(PipelineError),
}

impl std::fmt::Display for RatioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RatioError::ZeroRepetitions => {
                write!(f, "competitive ratio needs at least one repetition")
            }
            RatioError::EmptyInstance {
                num_tasks,
                num_workers,
            } => write!(
                f,
                "competitive ratio needs a non-empty instance \
                 ({num_tasks} tasks, {num_workers} workers)"
            ),
            RatioError::DegenerateOptimum { matched } => write!(
                f,
                "degenerate instance: OPT distance is zero over {matched} pairs"
            ),
            RatioError::InfeasibleTimeline { dropped } => write!(
                f,
                "infeasible timeline: the clairvoyant optimum assigns nothing \
                 ({dropped} tasks all arrive outside every shift)"
            ),
            RatioError::Pipeline(e) => write!(f, "pipeline error: {e}"),
        }
    }
}

impl std::error::Error for RatioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RatioError::Pipeline(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PipelineError> for RatioError {
    fn from(e: PipelineError) -> Self {
        RatioError::Pipeline(e)
    }
}

/// The statistical core shared by the static [`RatioReport`] and the
/// dynamic [`DynamicRatioReport`]: one optimum denominator, the
/// per-repetition numerators, and the derived ratio summary.
///
/// Both report shapes inline these six fields under these exact names (the
/// serde shim has no `#[serde(flatten)]`, so the sharing is by
/// construction + a field-name pinning test rather than by nesting):
/// static and dynamic ratio JSON stay drop-in comparable.
#[derive(Debug, Clone, PartialEq)]
pub struct RatioStats {
    /// The offline-optimum denominator.
    pub opt_distance: f64,
    /// Mean of the per-repetition total distances.
    pub mean_distance: f64,
    /// Mean of the per-repetition ratios `d_i / opt` — exactly 1.0 when
    /// every repetition reproduces the optimum bit-for-bit.
    pub ratio: f64,
    /// Smallest per-repetition ratio.
    pub min_ratio: f64,
    /// Largest per-repetition ratio.
    pub max_ratio: f64,
    /// Per-repetition total distances, in repetition order.
    pub distances: Vec<f64>,
}

/// The six shared field names, in serialization order — what the
/// field-name pinning tests (and external consumers diffing static vs
/// dynamic ratio JSON) key on.
pub const RATIO_STAT_FIELDS: [&str; 6] = [
    "opt_distance",
    "mean_distance",
    "ratio",
    "min_ratio",
    "max_ratio",
    "distances",
];

impl RatioStats {
    /// Derives the summary from one positive denominator and at least one
    /// per-repetition distance. Callers are responsible for the typed
    /// guards ([`RatioError::ZeroRepetitions`] and friends); this is the
    /// one place the ratio arithmetic lives.
    ///
    /// The headline `ratio` is the mean of per-repetition ratios, not mean
    /// distance over the optimum: when every repetition reproduces the
    /// optimum bit-for-bit each term divides to exactly 1.0, so oracle
    /// self-measurements report exactly 1.0 with no float residue.
    pub fn collect(opt_distance: f64, distances: Vec<f64>) -> Self {
        debug_assert!(opt_distance > 0.0, "denominator must be positive");
        debug_assert!(!distances.is_empty(), "need at least one repetition");
        let n = distances.len() as f64;
        let mean_distance = distances.iter().sum::<f64>() / n;
        let ratio = distances.iter().map(|d| d / opt_distance).sum::<f64>() / n;
        let min_ratio = distances
            .iter()
            .map(|d| d / opt_distance)
            .fold(f64::INFINITY, f64::min);
        let max_ratio = distances
            .iter()
            .map(|d| d / opt_distance)
            .fold(f64::NEG_INFINITY, f64::max);
        RatioStats {
            opt_distance,
            mean_distance,
            ratio,
            min_ratio,
            max_ratio,
            distances,
        }
    }
}

/// The measured competitive ratio of one `mechanism × matcher` pairing on
/// one instance at one ε — the unit of the sweep engine's output and of
/// the CLI's `--json` contract (field names are pinned by a golden test).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RatioReport {
    /// Spec name (`tbf`, `identity+offline-opt`, ...).
    pub algorithm: String,
    /// Stage-1 mechanism name.
    pub mechanism: String,
    /// Stage-2 matcher name.
    pub matcher: String,
    /// Privacy budget ε the runs used.
    pub epsilon: f64,
    /// Number of tasks `m = |T|`.
    pub num_tasks: usize,
    /// Number of workers `n = |W|`.
    pub num_workers: usize,
    /// Number of shuffled-arrival repetitions averaged over.
    pub repetitions: u64,
    /// `d(M_OPT)`: exact offline optimum on the true locations.
    pub opt_distance: f64,
    /// Mean of the per-repetition total distances.
    pub mean_distance: f64,
    /// Mean of the per-repetition ratios `d_i / d(M_OPT)` — exactly 1.0
    /// for `identity × offline-opt` (each term divides to exactly 1).
    pub ratio: f64,
    /// Smallest per-repetition ratio.
    pub min_ratio: f64,
    /// Largest per-repetition ratio.
    pub max_ratio: f64,
    /// Per-repetition total distances, in repetition order.
    pub distances: Vec<f64>,
}

/// Computes `d(M_OPT)` on the true locations, rejecting empty and
/// zero-distance instances.
///
/// Pairs are summed in worker-index order: worker indices are stable under
/// task-arrival reshuffling, so the float summation order (and therefore
/// bit-exact comparability with [`OfflineOptimalStrategy`]
/// (crate::algorithm::OfflineOptimalStrategy) runs) does not depend on the
/// arrival permutation.
pub fn offline_optimum(instance: &Instance) -> Result<f64, RatioError> {
    offline_optimum_with_threads(instance, 1)
}

/// [`offline_optimum`] with the Hungarian solve sharded over `threads`
/// scoped threads (`0` = auto). Bit-identical to the sequential path at
/// every thread count, so ratio denominators never depend on the machine.
pub fn offline_optimum_with_threads(
    instance: &Instance,
    threads: usize,
) -> Result<f64, RatioError> {
    if instance.k() == 0 {
        return Err(RatioError::EmptyInstance {
            num_tasks: instance.num_tasks(),
            num_workers: instance.num_workers(),
        });
    }
    let mut opt =
        OfflineOptimal::solve_euclidean_with_threads(&instance.tasks, &instance.workers, threads);
    opt.pairs.sort_unstable_by_key(|&(_, w)| w);
    let distance = opt.total_distance(&instance.tasks, &instance.workers);
    if distance <= 0.0 {
        return Err(RatioError::DegenerateOptimum {
            matched: opt.size(),
        });
    }
    Ok(distance)
}

/// Measures `E[d(M_A)] / d(M_OPT)` over `repetitions` runs with shuffled
/// arrival orders (Definition 8's expectation over mechanisms and orders)
/// for any registered or composed spec.
pub fn empirical_competitive_ratio(
    spec: &AlgorithmSpec,
    instance: &Instance,
    config: &PipelineConfig,
    repetitions: u64,
) -> Result<RatioReport, RatioError> {
    if repetitions == 0 {
        return Err(RatioError::ZeroRepetitions);
    }
    let opt = offline_optimum_with_threads(instance, config.threads)?;

    let mut distances = Vec::with_capacity(repetitions as usize);
    for rep in 0..repetitions {
        let mut shuffled = instance.clone();
        shuffled.shuffle_tasks(&mut seeded_rng(config.seed.wrapping_add(rep), 0x5EED));
        distances.push(
            run_spec(spec, &shuffled, config, rep)?
                .metrics
                .total_distance,
        );
    }

    let stats = RatioStats::collect(opt, distances);
    Ok(RatioReport {
        algorithm: spec.name().to_string(),
        mechanism: spec.mechanism.name().to_string(),
        matcher: spec.matcher.name().to_string(),
        epsilon: config.epsilon,
        num_tasks: instance.num_tasks(),
        num_workers: instance.num_workers(),
        repetitions,
        opt_distance: stats.opt_distance,
        mean_distance: stats.mean_distance,
        ratio: stats.ratio,
        min_ratio: stats.min_ratio,
        max_ratio: stats.max_ratio,
        distances: stats.distances,
    })
}

/// [`empirical_competitive_ratio`] on a named workload scenario's sweep
/// instance (`size` tasks and `size` workers generated by
/// [`crate::scenario::Scenario::instance`] from `config.seed`) instead of
/// a caller-supplied one — the `pombm run --scenario` / `--ratio` path,
/// and exactly what one sweep cell measures.
pub fn scenario_competitive_ratio(
    spec: &AlgorithmSpec,
    scenario: &dyn crate::scenario::Scenario,
    size: usize,
    config: &PipelineConfig,
    repetitions: u64,
) -> Result<RatioReport, RatioError> {
    let instance = scenario.instance(config.seed, size);
    empirical_competitive_ratio(spec, &instance, config, repetitions)
}

/// The measured ratio-under-churn of one `mechanism × dynamic-matcher`
/// pairing on one timeline — the dynamic sibling of [`RatioReport`]. The
/// six statistical fields of [`RatioStats`] appear under identical names
/// in both shapes (pinned by a field-name test), so static and dynamic
/// ratio JSON diff cleanly.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DynamicRatioReport {
    /// Stage-1 mechanism name.
    pub mechanism: String,
    /// Stage-2 dynamic matcher name.
    pub matcher: String,
    /// The oracle supplying the denominator (`dynamic-opt`).
    pub oracle: String,
    /// Privacy budget ε the runs used.
    pub epsilon: f64,
    /// Number of tasks in the timeline.
    pub num_tasks: usize,
    /// Number of workers (one shift each).
    pub num_workers: usize,
    /// Number of repetitions averaged over (seed-varied mechanism coins;
    /// the timeline itself is fixed).
    pub repetitions: u64,
    /// `d(M_OPT)` over the revealed timeline (shared stats field).
    pub opt_distance: f64,
    /// Mean per-repetition total distance (shared stats field).
    pub mean_distance: f64,
    /// Mean per-repetition ratio (shared stats field) — exactly 1.0 when
    /// the oracle measures itself.
    pub ratio: f64,
    /// Smallest per-repetition ratio (shared stats field).
    pub min_ratio: f64,
    /// Largest per-repetition ratio (shared stats field).
    pub max_ratio: f64,
    /// Per-repetition total distances (shared stats field).
    pub distances: Vec<f64>,
    /// Tasks the clairvoyant optimum assigns.
    pub opt_assigned: usize,
    /// Tasks even full foresight must drop (no covering shift).
    pub opt_dropped: usize,
}

/// Solves Definition 8's optimum transplanted to the dynamic timeline: the
/// clairvoyant max-cardinality min-total-distance matching where task `t`
/// may use worker `w` only if `w`'s shift covers `t`'s arrival instant
/// (`start <= at < end`, exactly the availability rule the
/// event-sequential driver enforces).
///
/// Distances are true-location Euclidean, matching the evaluation side of
/// every driver. Returns the full [`ClairvoyantAssignment`] so callers can
/// report the oracle's own assignment/drop split alongside the
/// denominator. Rejects empty instances, timelines where even full
/// foresight assigns nothing ([`RatioError::InfeasibleTimeline`]), and
/// zero-distance optima.
///
/// # Panics
///
/// Panics if `task_times` and the instance's task count differ, or the
/// plan's worker count does not match the instance — mirroring
/// [`run_dynamic_spec`].
pub fn dynamic_offline_optimum(
    instance: &Instance,
    task_times: &[f64],
    plan: &ShiftPlan,
) -> Result<ClairvoyantAssignment, RatioError> {
    dynamic_offline_optimum_with_threads(instance, task_times, plan, 1)
}

/// [`dynamic_offline_optimum`] with the padded Hungarian solve sharded
/// over `threads` scoped threads (`0` = auto). Bit-identical to the
/// sequential path at every thread count, so ratio denominators never
/// depend on the machine.
pub fn dynamic_offline_optimum_with_threads(
    instance: &Instance,
    task_times: &[f64],
    plan: &ShiftPlan,
    threads: usize,
) -> Result<ClairvoyantAssignment, RatioError> {
    assert_eq!(
        task_times.len(),
        instance.num_tasks(),
        "one arrival time per task"
    );
    assert_eq!(
        plan.shifts.len(),
        instance.num_workers(),
        "one shift per worker"
    );
    if instance.k() == 0 {
        return Err(RatioError::EmptyInstance {
            num_tasks: instance.num_tasks(),
            num_workers: instance.num_workers(),
        });
    }
    // Shifts may be listed in any order; index the windows by worker.
    let mut window = vec![(f64::INFINITY, f64::NEG_INFINITY); instance.num_workers()];
    for s in &plan.shifts {
        window[s.worker] = (s.start, s.end);
    }
    let feasible = |t: usize, w: usize| {
        let (start, end) = window[w];
        task_times[t] >= start && task_times[t] < end
    };
    let cost = |t: usize, w: usize| instance.tasks[t].dist(&instance.workers[w]);
    let opt = ClairvoyantOptimal::solve_with_threads(
        task_times.len(),
        window.len(),
        feasible,
        cost,
        threads,
    );
    if opt.size() == 0 {
        return Err(RatioError::InfeasibleTimeline {
            dropped: instance.num_tasks(),
        });
    }
    if opt.total_cost <= 0.0 {
        return Err(RatioError::DegenerateOptimum {
            matched: opt.size(),
        });
    }
    Ok(opt)
}

/// Measures the ratio-under-churn: replays the fixed shift/task timeline
/// `repetitions` times through `mechanism × matcher` (seed varied per
/// repetition, so the expectation is over the mechanism's coins) and
/// divides each run's total distance by the clairvoyant optimum's.
///
/// The oracle itself is admitted in matcher position — its "run" *is* the
/// clairvoyant solution, so its cell reports ratio exactly 1.0 — which is
/// how a ratio sweep shows the denominator as a row. Any other
/// [`crate::registry::Role::OracleOnly`] use of `dynamic-opt` stays a
/// typed registry error.
///
/// # Panics
///
/// Panics on mismatched `task_times`/plan lengths, like
/// [`run_dynamic_spec`].
pub fn dynamic_competitive_ratio(
    instance: &Instance,
    task_times: &[f64],
    plan: &ShiftPlan,
    config: &DynamicConfig,
    mechanism: &dyn ReportMechanism,
    matcher: &dyn DynamicAssignStrategy,
    repetitions: u64,
) -> Result<DynamicRatioReport, RatioError> {
    if repetitions == 0 {
        return Err(RatioError::ZeroRepetitions);
    }
    let opt = dynamic_offline_optimum(instance, task_times, plan)?;

    let is_oracle =
        registry().dynamic_matcher_catalog().role_of(matcher.name()) == Some(Role::OracleOnly);
    let mut distances = Vec::with_capacity(repetitions as usize);
    for rep in 0..repetitions {
        if is_oracle {
            // The oracle's run is the clairvoyant solution itself: the
            // numerator is the denominator, so each term divides to
            // exactly 1.0.
            distances.push(opt.total_cost);
            continue;
        }
        let rep_config = DynamicConfig {
            seed: config.seed.wrapping_add(rep),
            ..*config
        };
        let out = run_dynamic_spec(instance, task_times, plan, &rep_config, mechanism, matcher)?;
        distances.push(out.total_distance);
    }

    let stats = RatioStats::collect(opt.total_cost, distances);
    Ok(DynamicRatioReport {
        mechanism: mechanism.name().to_string(),
        matcher: matcher.name().to_string(),
        oracle: DEFAULT_DYNAMIC_ORACLE.to_string(),
        epsilon: config.epsilon,
        num_tasks: instance.num_tasks(),
        num_workers: instance.num_workers(),
        repetitions,
        opt_distance: stats.opt_distance,
        mean_distance: stats.mean_distance,
        ratio: stats.ratio,
        min_ratio: stats.min_ratio,
        max_ratio: stats.max_ratio,
        distances: stats.distances,
        opt_assigned: opt.size(),
        opt_dropped: opt.dropped.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Algorithm;
    use crate::registry::registry;
    use pombm_geom::{Point, Rect};
    use pombm_workload::{synthetic, SyntheticParams};

    fn instance(seed: u64) -> Instance {
        let params = SyntheticParams {
            num_tasks: 40,
            num_workers: 60,
            ..SyntheticParams::default()
        };
        synthetic::generate(&params, &mut seeded_rng(seed, 0))
    }

    #[test]
    fn ratio_is_at_least_one() {
        let inst = instance(1);
        let config = PipelineConfig::default();
        for algo in Algorithm::ALL {
            let r = empirical_competitive_ratio(algo.spec(), &inst, &config, 3).unwrap();
            assert!(
                r.ratio >= 1.0 - 1e-9,
                "{algo}: ratio {} (avg {}, opt {}) below 1",
                r.ratio,
                r.mean_distance,
                r.opt_distance
            );
            assert!(r.min_ratio <= r.ratio && r.ratio <= r.max_ratio, "{algo}");
            assert_eq!(r.distances.len(), 3, "{algo}");
        }
    }

    #[test]
    fn identity_offline_opt_is_exactly_one() {
        let inst = instance(4);
        let spec = registry().spec("opt").unwrap();
        let r = empirical_competitive_ratio(spec, &inst, &PipelineConfig::default(), 5).unwrap();
        assert_eq!(r.ratio, 1.0, "oracle pairing must reproduce OPT exactly");
        assert_eq!(r.min_ratio, 1.0);
        assert_eq!(r.max_ratio, 1.0);
    }

    #[test]
    fn loose_budget_shrinks_the_ratio() {
        let inst = instance(2);
        let strict = PipelineConfig {
            epsilon: 0.05,
            ..PipelineConfig::default()
        };
        let loose = PipelineConfig {
            epsilon: 5.0,
            ..PipelineConfig::default()
        };
        let tbf = registry().spec("tbf").unwrap();
        let r_strict = empirical_competitive_ratio(tbf, &inst, &strict, 4)
            .unwrap()
            .ratio;
        let r_loose = empirical_competitive_ratio(tbf, &inst, &loose, 4)
            .unwrap()
            .ratio;
        assert!(
            r_loose < r_strict,
            "ε=5 ratio {r_loose} should beat ε=0.05 ratio {r_strict}"
        );
    }

    #[test]
    fn zero_repetitions_is_a_typed_error() {
        let inst = instance(3);
        let spec = registry().spec("tbf").unwrap();
        assert_eq!(
            empirical_competitive_ratio(spec, &inst, &PipelineConfig::default(), 0).unwrap_err(),
            RatioError::ZeroRepetitions
        );
    }

    #[test]
    fn empty_instance_is_a_typed_error() {
        let empty = Instance::new(Rect::square(100.0), vec![], vec![Point::new(1.0, 1.0)]);
        let spec = registry().spec("tbf").unwrap();
        assert_eq!(
            empirical_competitive_ratio(spec, &empty, &PipelineConfig::default(), 2).unwrap_err(),
            RatioError::EmptyInstance {
                num_tasks: 0,
                num_workers: 1
            }
        );
    }

    #[test]
    fn zero_distance_opt_is_a_typed_error() {
        // Every task coincides with a worker: OPT = 0, ratio undefined.
        let p = Point::new(5.0, 5.0);
        let inst = Instance::new(Rect::square(100.0), vec![p, p], vec![p, p]);
        let spec = registry().spec("lap-gr").unwrap();
        assert_eq!(
            empirical_competitive_ratio(spec, &inst, &PipelineConfig::default(), 2).unwrap_err(),
            RatioError::DegenerateOptimum { matched: 2 }
        );
    }

    #[test]
    fn incompatible_pairings_surface_pipeline_errors() {
        let inst = instance(5);
        let blind_greedy = registry().compose("blind", "offline-opt").unwrap();
        let err = empirical_competitive_ratio(&blind_greedy, &inst, &PipelineConfig::default(), 2)
            .unwrap_err();
        assert!(matches!(err, RatioError::Pipeline(_)), "got {err}");
    }

    #[test]
    fn scenario_ratio_matches_the_sweep_cell_derivation() {
        let spec = registry().spec("tbf").unwrap();
        let config = PipelineConfig {
            seed: 3,
            ..PipelineConfig::default()
        };
        let uniform = registry().scenario("uniform").unwrap();
        let via_scenario =
            scenario_competitive_ratio(spec, uniform.as_ref(), 16, &config, 2).unwrap();
        let direct = empirical_competitive_ratio(
            spec,
            &crate::sweep::sweep_instance(config.seed, 16),
            &config,
            2,
        )
        .unwrap();
        assert_eq!(via_scenario.ratio, direct.ratio);
        assert_eq!(via_scenario.distances, direct.distances);
        // A different scenario changes the instance, hence the measurement.
        let hotspot = registry().scenario("hotspot").unwrap();
        let other = scenario_competitive_ratio(spec, hotspot.as_ref(), 16, &config, 2).unwrap();
        assert_ne!(other.distances, direct.distances);
    }

    #[test]
    fn report_round_trips_through_json() {
        let inst = instance(6);
        let spec = registry().spec("lap-gr").unwrap();
        let r = empirical_competitive_ratio(spec, &inst, &PipelineConfig::default(), 2).unwrap();
        let json = serde_json::to_string(&r).unwrap();
        let back: RatioReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.algorithm, r.algorithm);
        assert_eq!(back.ratio, r.ratio);
        assert_eq!(back.distances, r.distances);
    }

    fn dynamic_instance(tasks: usize, workers: usize, seed: u64) -> Instance {
        let params = SyntheticParams {
            num_tasks: tasks,
            num_workers: workers,
            ..SyntheticParams::default()
        };
        synthetic::generate(&params, &mut seeded_rng(seed, 0))
    }

    /// Evenly spaced arrivals strictly inside `[0, horizon)`.
    fn spread_times(n: usize, horizon: f64) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 + 0.5) * horizon / n as f64)
            .collect()
    }

    #[test]
    fn dynamic_ratio_is_at_least_one_under_full_coverage() {
        // Under an always-on fleet both the oracle and every online
        // matcher assign every task, so online totals dominate the
        // clairvoyant optimum and the ratio is well-ordered.
        let inst = dynamic_instance(30, 60, 11);
        let times = spread_times(30, 100.0);
        let plan = ShiftPlan::always_on(60, 101.0);
        let config = DynamicConfig::default();
        let mechanism = registry().mechanism("identity").unwrap();
        for matcher in registry().dynamic_matchers() {
            let r = dynamic_competitive_ratio(
                &inst,
                &times,
                &plan,
                &config,
                mechanism.as_ref(),
                matcher.as_ref(),
                3,
            )
            .unwrap_or_else(|e| panic!("{}: {e}", matcher.name()));
            assert!(
                r.ratio >= 1.0 - 1e-9,
                "{}: ratio {} below 1 (opt {})",
                matcher.name(),
                r.ratio,
                r.opt_distance
            );
            assert!(r.min_ratio <= r.ratio && r.ratio <= r.max_ratio);
            assert_eq!(r.distances.len(), 3);
            assert_eq!(r.opt_assigned, 30, "{}", matcher.name());
            assert_eq!(r.opt_dropped, 0, "{}", matcher.name());
            assert_eq!(r.oracle, DEFAULT_DYNAMIC_ORACLE);
        }
    }

    #[test]
    fn oracle_cell_reports_exactly_one() {
        let inst = dynamic_instance(20, 25, 12);
        let times = spread_times(20, 50.0);
        let plan = ShiftPlan::uniform(25, 50.0, 10.0, 30.0, &mut seeded_rng(13, 0));
        let oracle = registry().dynamic_oracle(DEFAULT_DYNAMIC_ORACLE).unwrap();
        let mechanism = registry().mechanism("identity").unwrap();
        let r = dynamic_competitive_ratio(
            &inst,
            &times,
            &plan,
            &DynamicConfig::default(),
            mechanism.as_ref(),
            oracle.as_ref(),
            4,
        )
        .unwrap();
        assert_eq!(r.ratio, 1.0, "oracle vs itself must divide to exactly 1");
        assert_eq!(r.min_ratio, 1.0);
        assert_eq!(r.max_ratio, 1.0);
        assert_eq!(r.mean_distance, r.opt_distance);
        assert_eq!(r.matcher, "dynamic-opt");
        assert_eq!(r.opt_assigned + r.opt_dropped, 20);
    }

    #[test]
    fn zero_overlap_timeline_is_a_typed_error() {
        // Every shift is over before the first task arrives: even full
        // foresight assigns nothing.
        let inst = dynamic_instance(10, 8, 14);
        let times: Vec<f64> = (0..10).map(|i| 50.0 + i as f64).collect();
        let plan = ShiftPlan::uniform(8, 40.0, 5.0, 10.0, &mut seeded_rng(15, 0));
        assert_eq!(
            dynamic_offline_optimum(&inst, &times, &plan).unwrap_err(),
            RatioError::InfeasibleTimeline { dropped: 10 }
        );
    }

    #[test]
    fn dynamic_oracle_is_thread_invariant() {
        let inst = dynamic_instance(40, 30, 16);
        let times = spread_times(40, 200.0);
        let plan = ShiftPlan::uniform(30, 200.0, 30.0, 120.0, &mut seeded_rng(17, 0));
        let base = dynamic_offline_optimum_with_threads(&inst, &times, &plan, 1).unwrap();
        for threads in [2, 7] {
            let t = dynamic_offline_optimum_with_threads(&inst, &times, &plan, threads).unwrap();
            assert_eq!(t.pairs, base.pairs, "threads={threads}");
            assert_eq!(t.dropped, base.dropped, "threads={threads}");
            assert!(
                t.total_cost == base.total_cost,
                "threads={threads}: {} vs {}",
                t.total_cost,
                base.total_cost
            );
        }
    }

    #[test]
    fn static_and_dynamic_ratio_fields_share_names() {
        let inst = instance(7);
        let spec = registry().spec("lap-gr").unwrap();
        let stat = empirical_competitive_ratio(spec, &inst, &PipelineConfig::default(), 2).unwrap();

        let dyn_inst = dynamic_instance(15, 20, 18);
        let times = spread_times(15, 60.0);
        let plan = ShiftPlan::always_on(20, 61.0);
        let mechanism = registry().mechanism("identity").unwrap();
        let matcher = registry().dynamic_matcher("kd-rebuild").unwrap();
        let dynamic = dynamic_competitive_ratio(
            &dyn_inst,
            &times,
            &plan,
            &DynamicConfig::default(),
            mechanism.as_ref(),
            matcher.as_ref(),
            2,
        )
        .unwrap();

        let keys = |json: String| -> Vec<String> {
            let v: serde_json::Value = serde_json::from_str(&json).unwrap();
            v.as_object()
                .expect("report serializes as an object")
                .iter()
                .map(|(k, _)| k.clone())
                .collect()
        };
        let stat_keys = keys(serde_json::to_string(&stat).unwrap());
        let dyn_keys = keys(serde_json::to_string(&dynamic).unwrap());
        // Both shapes carry the six shared stats fields, contiguously and
        // in the same order.
        let shared: Vec<&str> = RATIO_STAT_FIELDS.to_vec();
        let tail_of = |keys: &[String]| -> Vec<String> {
            let start = keys
                .iter()
                .position(|k| k == shared[0])
                .expect("opt_distance present");
            keys[start..start + shared.len()].to_vec()
        };
        assert_eq!(tail_of(&stat_keys), shared, "static report");
        assert_eq!(tail_of(&dyn_keys), shared, "dynamic report");
    }

    #[test]
    fn dynamic_report_round_trips_through_json() {
        let inst = dynamic_instance(12, 18, 19);
        let times = spread_times(12, 40.0);
        let plan = ShiftPlan::always_on(18, 41.0);
        let mechanism = registry().mechanism("hst").unwrap();
        let matcher = registry().dynamic_matcher("hst-greedy").unwrap();
        let r = dynamic_competitive_ratio(
            &inst,
            &times,
            &plan,
            &DynamicConfig::default(),
            mechanism.as_ref(),
            matcher.as_ref(),
            2,
        )
        .unwrap();
        let json = serde_json::to_string(&r).unwrap();
        let back: DynamicRatioReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.matcher, r.matcher);
        assert_eq!(back.oracle, r.oracle);
        assert_eq!(back.ratio, r.ratio);
        assert_eq!(back.distances, r.distances);
        assert_eq!(back.opt_assigned, r.opt_assigned);
    }
}
