//! Empirical competitive ratios against the offline optimum.
//!
//! Theorem 3 bounds Alg. 4's competitive ratio by `O(ε⁻⁴ log N log² k)`
//! against `OPT`, the minimum-total-distance matching computed with every
//! task known in advance (Definition 8). The paper does not plot the ratio
//! directly (its figures compare mechanisms' total distances), but
//! measuring it grounds the theory: this module runs any registered or
//! composed [`AlgorithmSpec`] repeatedly in the random order model —
//! Definition 8's expectation is over both the mechanism's coins and the
//! arrival order — and divides each run's total distance by `d(M_OPT)`
//! computed by the exact offline matcher on the true locations.
//!
//! The result is a structured [`RatioReport`] (mean/min/max ratio plus the
//! per-repetition distances) that serializes through the serde shim, so the
//! [`sweep`](crate::sweep) engine and the CLI's `--json` output share one
//! contract. Degenerate inputs (empty instances, zero-distance optima)
//! surface as a typed [`RatioError`] instead of a panic: the registry
//! admits arbitrary compositions, so the measurement layer must reject bad
//! denominators gracefully.

use crate::algorithm::PipelineError;
use crate::pipeline::{run_spec, PipelineConfig};
use crate::registry::AlgorithmSpec;
use pombm_geom::seeded_rng;
use pombm_matching::offline::OfflineOptimal;
use pombm_workload::Instance;
use serde::{Deserialize, Serialize};

/// Why a competitive ratio could not be measured.
#[derive(Debug, Clone, PartialEq)]
pub enum RatioError {
    /// `repetitions == 0`: the empirical mean is undefined.
    ZeroRepetitions,
    /// `k = min(n, m) = 0`: there is nothing to match, so the ratio's
    /// numerator and denominator are both empty sums.
    EmptyInstance {
        /// Number of tasks in the rejected instance.
        num_tasks: usize,
        /// Number of workers in the rejected instance.
        num_workers: usize,
    },
    /// The offline optimum has zero total distance (every matched task
    /// coincides with its worker), so the ratio would divide by zero.
    DegenerateOptimum {
        /// Size of the zero-distance optimal matching.
        matched: usize,
    },
    /// The pipeline rejected the composition (e.g. location-blind reports
    /// fed to a location-aware matcher).
    Pipeline(PipelineError),
}

impl std::fmt::Display for RatioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RatioError::ZeroRepetitions => {
                write!(f, "competitive ratio needs at least one repetition")
            }
            RatioError::EmptyInstance {
                num_tasks,
                num_workers,
            } => write!(
                f,
                "competitive ratio needs a non-empty instance \
                 ({num_tasks} tasks, {num_workers} workers)"
            ),
            RatioError::DegenerateOptimum { matched } => write!(
                f,
                "degenerate instance: OPT distance is zero over {matched} pairs"
            ),
            RatioError::Pipeline(e) => write!(f, "pipeline error: {e}"),
        }
    }
}

impl std::error::Error for RatioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RatioError::Pipeline(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PipelineError> for RatioError {
    fn from(e: PipelineError) -> Self {
        RatioError::Pipeline(e)
    }
}

/// The measured competitive ratio of one `mechanism × matcher` pairing on
/// one instance at one ε — the unit of the sweep engine's output and of
/// the CLI's `--json` contract (field names are pinned by a golden test).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RatioReport {
    /// Spec name (`tbf`, `identity+offline-opt`, ...).
    pub algorithm: String,
    /// Stage-1 mechanism name.
    pub mechanism: String,
    /// Stage-2 matcher name.
    pub matcher: String,
    /// Privacy budget ε the runs used.
    pub epsilon: f64,
    /// Number of tasks `m = |T|`.
    pub num_tasks: usize,
    /// Number of workers `n = |W|`.
    pub num_workers: usize,
    /// Number of shuffled-arrival repetitions averaged over.
    pub repetitions: u64,
    /// `d(M_OPT)`: exact offline optimum on the true locations.
    pub opt_distance: f64,
    /// Mean of the per-repetition total distances.
    pub mean_distance: f64,
    /// Mean of the per-repetition ratios `d_i / d(M_OPT)` — exactly 1.0
    /// for `identity × offline-opt` (each term divides to exactly 1).
    pub ratio: f64,
    /// Smallest per-repetition ratio.
    pub min_ratio: f64,
    /// Largest per-repetition ratio.
    pub max_ratio: f64,
    /// Per-repetition total distances, in repetition order.
    pub distances: Vec<f64>,
}

/// Computes `d(M_OPT)` on the true locations, rejecting empty and
/// zero-distance instances.
///
/// Pairs are summed in worker-index order: worker indices are stable under
/// task-arrival reshuffling, so the float summation order (and therefore
/// bit-exact comparability with [`OfflineOptimalStrategy`]
/// (crate::algorithm::OfflineOptimalStrategy) runs) does not depend on the
/// arrival permutation.
pub fn offline_optimum(instance: &Instance) -> Result<f64, RatioError> {
    offline_optimum_with_threads(instance, 1)
}

/// [`offline_optimum`] with the Hungarian solve sharded over `threads`
/// scoped threads (`0` = auto). Bit-identical to the sequential path at
/// every thread count, so ratio denominators never depend on the machine.
pub fn offline_optimum_with_threads(
    instance: &Instance,
    threads: usize,
) -> Result<f64, RatioError> {
    if instance.k() == 0 {
        return Err(RatioError::EmptyInstance {
            num_tasks: instance.num_tasks(),
            num_workers: instance.num_workers(),
        });
    }
    let mut opt =
        OfflineOptimal::solve_euclidean_with_threads(&instance.tasks, &instance.workers, threads);
    opt.pairs.sort_unstable_by_key(|&(_, w)| w);
    let distance = opt.total_distance(&instance.tasks, &instance.workers);
    if distance <= 0.0 {
        return Err(RatioError::DegenerateOptimum {
            matched: opt.size(),
        });
    }
    Ok(distance)
}

/// Measures `E[d(M_A)] / d(M_OPT)` over `repetitions` runs with shuffled
/// arrival orders (Definition 8's expectation over mechanisms and orders)
/// for any registered or composed spec.
pub fn empirical_competitive_ratio(
    spec: &AlgorithmSpec,
    instance: &Instance,
    config: &PipelineConfig,
    repetitions: u64,
) -> Result<RatioReport, RatioError> {
    if repetitions == 0 {
        return Err(RatioError::ZeroRepetitions);
    }
    let opt = offline_optimum_with_threads(instance, config.threads)?;

    let mut distances = Vec::with_capacity(repetitions as usize);
    for rep in 0..repetitions {
        let mut shuffled = instance.clone();
        shuffled.shuffle_tasks(&mut seeded_rng(config.seed.wrapping_add(rep), 0x5EED));
        distances.push(
            run_spec(spec, &shuffled, config, rep)?
                .metrics
                .total_distance,
        );
    }

    let mean_distance = distances.iter().sum::<f64>() / repetitions as f64;
    // Mean of per-repetition ratios, not mean distance over OPT: when every
    // repetition reproduces OPT bit-for-bit (identity × offline-opt), each
    // term is exactly 1.0 and their mean is exactly 1.0.
    let ratio = distances.iter().map(|d| d / opt).sum::<f64>() / repetitions as f64;
    let min_ratio = distances
        .iter()
        .map(|d| d / opt)
        .fold(f64::INFINITY, f64::min);
    let max_ratio = distances
        .iter()
        .map(|d| d / opt)
        .fold(f64::NEG_INFINITY, f64::max);

    Ok(RatioReport {
        algorithm: spec.name().to_string(),
        mechanism: spec.mechanism.name().to_string(),
        matcher: spec.matcher.name().to_string(),
        epsilon: config.epsilon,
        num_tasks: instance.num_tasks(),
        num_workers: instance.num_workers(),
        repetitions,
        opt_distance: opt,
        mean_distance,
        ratio,
        min_ratio,
        max_ratio,
        distances,
    })
}

/// [`empirical_competitive_ratio`] on a named workload scenario's sweep
/// instance (`size` tasks and `size` workers generated by
/// [`crate::scenario::Scenario::instance`] from `config.seed`) instead of
/// a caller-supplied one — the `pombm run --scenario` / `--ratio` path,
/// and exactly what one sweep cell measures.
pub fn scenario_competitive_ratio(
    spec: &AlgorithmSpec,
    scenario: &dyn crate::scenario::Scenario,
    size: usize,
    config: &PipelineConfig,
    repetitions: u64,
) -> Result<RatioReport, RatioError> {
    let instance = scenario.instance(config.seed, size);
    empirical_competitive_ratio(spec, &instance, config, repetitions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Algorithm;
    use crate::registry::registry;
    use pombm_geom::{Point, Rect};
    use pombm_workload::{synthetic, SyntheticParams};

    fn instance(seed: u64) -> Instance {
        let params = SyntheticParams {
            num_tasks: 40,
            num_workers: 60,
            ..SyntheticParams::default()
        };
        synthetic::generate(&params, &mut seeded_rng(seed, 0))
    }

    #[test]
    fn ratio_is_at_least_one() {
        let inst = instance(1);
        let config = PipelineConfig::default();
        for algo in Algorithm::ALL {
            let r = empirical_competitive_ratio(algo.spec(), &inst, &config, 3).unwrap();
            assert!(
                r.ratio >= 1.0 - 1e-9,
                "{algo}: ratio {} (avg {}, opt {}) below 1",
                r.ratio,
                r.mean_distance,
                r.opt_distance
            );
            assert!(r.min_ratio <= r.ratio && r.ratio <= r.max_ratio, "{algo}");
            assert_eq!(r.distances.len(), 3, "{algo}");
        }
    }

    #[test]
    fn identity_offline_opt_is_exactly_one() {
        let inst = instance(4);
        let spec = registry().spec("opt").unwrap();
        let r = empirical_competitive_ratio(spec, &inst, &PipelineConfig::default(), 5).unwrap();
        assert_eq!(r.ratio, 1.0, "oracle pairing must reproduce OPT exactly");
        assert_eq!(r.min_ratio, 1.0);
        assert_eq!(r.max_ratio, 1.0);
    }

    #[test]
    fn loose_budget_shrinks_the_ratio() {
        let inst = instance(2);
        let strict = PipelineConfig {
            epsilon: 0.05,
            ..PipelineConfig::default()
        };
        let loose = PipelineConfig {
            epsilon: 5.0,
            ..PipelineConfig::default()
        };
        let tbf = registry().spec("tbf").unwrap();
        let r_strict = empirical_competitive_ratio(tbf, &inst, &strict, 4)
            .unwrap()
            .ratio;
        let r_loose = empirical_competitive_ratio(tbf, &inst, &loose, 4)
            .unwrap()
            .ratio;
        assert!(
            r_loose < r_strict,
            "ε=5 ratio {r_loose} should beat ε=0.05 ratio {r_strict}"
        );
    }

    #[test]
    fn zero_repetitions_is_a_typed_error() {
        let inst = instance(3);
        let spec = registry().spec("tbf").unwrap();
        assert_eq!(
            empirical_competitive_ratio(spec, &inst, &PipelineConfig::default(), 0).unwrap_err(),
            RatioError::ZeroRepetitions
        );
    }

    #[test]
    fn empty_instance_is_a_typed_error() {
        let empty = Instance::new(Rect::square(100.0), vec![], vec![Point::new(1.0, 1.0)]);
        let spec = registry().spec("tbf").unwrap();
        assert_eq!(
            empirical_competitive_ratio(spec, &empty, &PipelineConfig::default(), 2).unwrap_err(),
            RatioError::EmptyInstance {
                num_tasks: 0,
                num_workers: 1
            }
        );
    }

    #[test]
    fn zero_distance_opt_is_a_typed_error() {
        // Every task coincides with a worker: OPT = 0, ratio undefined.
        let p = Point::new(5.0, 5.0);
        let inst = Instance::new(Rect::square(100.0), vec![p, p], vec![p, p]);
        let spec = registry().spec("lap-gr").unwrap();
        assert_eq!(
            empirical_competitive_ratio(spec, &inst, &PipelineConfig::default(), 2).unwrap_err(),
            RatioError::DegenerateOptimum { matched: 2 }
        );
    }

    #[test]
    fn incompatible_pairings_surface_pipeline_errors() {
        let inst = instance(5);
        let blind_greedy = registry().compose("blind", "offline-opt").unwrap();
        let err = empirical_competitive_ratio(&blind_greedy, &inst, &PipelineConfig::default(), 2)
            .unwrap_err();
        assert!(matches!(err, RatioError::Pipeline(_)), "got {err}");
    }

    #[test]
    fn scenario_ratio_matches_the_sweep_cell_derivation() {
        let spec = registry().spec("tbf").unwrap();
        let config = PipelineConfig {
            seed: 3,
            ..PipelineConfig::default()
        };
        let uniform = registry().scenario("uniform").unwrap();
        let via_scenario =
            scenario_competitive_ratio(spec, uniform.as_ref(), 16, &config, 2).unwrap();
        let direct = empirical_competitive_ratio(
            spec,
            &crate::sweep::sweep_instance(config.seed, 16),
            &config,
            2,
        )
        .unwrap();
        assert_eq!(via_scenario.ratio, direct.ratio);
        assert_eq!(via_scenario.distances, direct.distances);
        // A different scenario changes the instance, hence the measurement.
        let hotspot = registry().scenario("hotspot").unwrap();
        let other = scenario_competitive_ratio(spec, hotspot.as_ref(), 16, &config, 2).unwrap();
        assert_ne!(other.distances, direct.distances);
    }

    #[test]
    fn report_round_trips_through_json() {
        let inst = instance(6);
        let spec = registry().spec("lap-gr").unwrap();
        let r = empirical_competitive_ratio(spec, &inst, &PipelineConfig::default(), 2).unwrap();
        let json = serde_json::to_string(&r).unwrap();
        let back: RatioReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.algorithm, r.algorithm);
        assert_eq!(back.ratio, r.ratio);
        assert_eq!(back.distances, r.distances);
    }
}
