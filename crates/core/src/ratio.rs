//! Empirical competitive ratios against the offline optimum.
//!
//! Theorem 3 bounds Alg. 4's competitive ratio by `O(ε⁻⁴ log N log² k)`.
//! The paper does not plot the ratio directly (its figures compare
//! mechanisms' total distances), but measuring it grounds the theory: this
//! module runs a pipeline repeatedly in the random order model and divides
//! the average total distance by `d(M_OPT)` computed by the exact offline
//! matcher on the true locations.

use crate::pipeline::{run, Algorithm, PipelineConfig};
use pombm_geom::seeded_rng;
use pombm_matching::offline::OfflineOptimal;
use pombm_workload::Instance;

/// Measures `E[d(M_A)] / d(M_OPT)` over `repetitions` runs with shuffled
/// arrival orders (Definition 8's expectation over mechanisms and orders).
///
/// Returns `(ratio, avg_algorithm_distance, opt_distance)`.
///
/// # Panics
///
/// Panics if the instance is empty or OPT is degenerate (zero distance).
pub fn empirical_competitive_ratio(
    algorithm: Algorithm,
    instance: &Instance,
    config: &PipelineConfig,
    repetitions: u64,
) -> (f64, f64, f64) {
    assert!(repetitions > 0, "need at least one repetition");
    assert!(
        instance.k() > 0,
        "competitive ratio needs a non-empty instance"
    );
    let opt = OfflineOptimal::solve_euclidean(&instance.tasks, &instance.workers)
        .total_distance(&instance.tasks, &instance.workers);
    assert!(opt > 0.0, "degenerate instance: OPT distance is zero");

    let mut total = 0.0;
    for rep in 0..repetitions {
        let mut shuffled = instance.clone();
        shuffled.shuffle_tasks(&mut seeded_rng(config.seed.wrapping_add(rep), 0x5EED));
        total += run(algorithm, &shuffled, config, rep)
            .metrics
            .total_distance;
    }
    let avg = total / repetitions as f64;
    (avg / opt, avg, opt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pombm_workload::{synthetic, SyntheticParams};

    fn instance(seed: u64) -> Instance {
        let params = SyntheticParams {
            num_tasks: 40,
            num_workers: 60,
            ..SyntheticParams::default()
        };
        synthetic::generate(&params, &mut seeded_rng(seed, 0))
    }

    #[test]
    fn ratio_is_at_least_one() {
        let inst = instance(1);
        let config = PipelineConfig::default();
        for algo in Algorithm::ALL {
            let (ratio, avg, opt) = empirical_competitive_ratio(algo, &inst, &config, 3);
            assert!(
                ratio >= 1.0 - 1e-9,
                "{algo}: ratio {ratio} (avg {avg}, opt {opt}) below 1"
            );
        }
    }

    #[test]
    fn loose_budget_shrinks_the_ratio() {
        let inst = instance(2);
        let strict = PipelineConfig {
            epsilon: 0.05,
            ..PipelineConfig::default()
        };
        let loose = PipelineConfig {
            epsilon: 5.0,
            ..PipelineConfig::default()
        };
        let (r_strict, _, _) = empirical_competitive_ratio(Algorithm::Tbf, &inst, &strict, 4);
        let (r_loose, _, _) = empirical_competitive_ratio(Algorithm::Tbf, &inst, &loose, 4);
        assert!(
            r_loose < r_strict,
            "ε=5 ratio {r_loose} should beat ε=0.05 ratio {r_strict}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn zero_repetitions_rejected() {
        let inst = instance(3);
        let _ = empirical_competitive_ratio(Algorithm::Tbf, &inst, &PipelineConfig::default(), 0);
    }
}
