//! `pombm serve` — a resident micro-batched matching service.
//!
//! The paper's setting is inherently a *service*: workers and tasks report
//! obfuscated locations to an untrusted server which matches online. Every
//! other entry point in this repo is batch; this module is the resident
//! counterpart. A serve session is a long-running loop on its own thread:
//! requests arrive over a local framed transport (length-prefixed frames
//! on the in-repo `bytes` shim — no network crates), are buffered, and are
//! executed in **Δt micro-batches**: all activity whose *virtual*
//! timestamp falls into the same `batch_interval` window is applied in one
//! shot through the pool's batched entry points
//! ([`DynamicWorkerPool::insert_batch`] / `assign_batch`).
//!
//! # Frame layout
//!
//! Big-endian, length-prefixed (the length covers the payload only):
//!
//! ```text
//! frame     := u32 payload_len | payload
//! payload   := u8 opcode | body
//! 0x01 CHECK_IN  worker:u64  at:f64  x:f64  y:f64     (shift start)
//! 0x02 CHECK_OUT worker:u64  at:f64                   (shift end)
//! 0x03 TASK      task:u64    at:f64  x:f64  y:f64     (task arrival)
//! 0x04 SHUTDOWN                                       (drain and exit)
//! ```
//!
//! # Δt semantics
//!
//! `at` timestamps are *virtual* seconds on the workload timeline; frame
//! `at` belongs to window `⌊at / batch_interval⌋`. When a frame for a
//! later window arrives (or on shutdown), the current window flushes in
//! three phases:
//!
//! 1. **check-ins** — all buffered worker locations are obfuscated in one
//!    [`ReportMechanism::report_batch`] call (bit-identical to the scalar
//!    loop at any thread count) and registered via `insert_batch`;
//! 2. **check-outs** — buffered withdrawals are applied (no-ops for
//!    workers already assigned);
//! 3. **tasks** — the queue depth is recorded, task locations are
//!    batch-obfuscated, and the window drains through `assign_batch` in
//!    arrival order.
//!
//! # Determinism contract
//!
//! The assignment sequence is a pure function of
//! `(seed, plan, batch_interval)`. Wall-clock enters only through the
//! load generator's *pacing* (QPS throttling slows delivery, never
//! reorders it) and the optional, `timings`-gated latency percentiles —
//! which are [`None`]-skipped from the JSON exactly like the sweep's
//! `wall_ms` precedent, so a timings-off [`ServeReport`] is a
//! byte-checkable artifact. Two runs at different QPS, or at `--threads 1`
//! vs auto, produce identical assignments; `tests/serve.rs` pins this with
//! golden fingerprints and replay tests, and CI's `serve-smoke` job
//! byte-compares live runs. The schedule deliberately differs from the
//! event-sequential dynamic driver ([`crate::dynamic::run_dynamic_spec`]):
//! obfuscation draws are grouped per window, so outcomes depend on Δt —
//! that dependence is part of the artifact's identity, like a seed.

use crate::algorithm::{
    DynamicAssignStrategy, DynamicWorkerPool, PipelineError, Report, ReportMechanism,
};
use crate::dynamic::EventKind;
use crate::registry::registry;
use crate::scenario::DEFAULT_SCENARIO;
use crate::server::Server;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use pombm_geom::{seeded_rng, Point};
use pombm_privacy::Epsilon;
use pombm_workload::shifts::ShiftPlan;
use pombm_workload::Instance;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::sync::mpsc;
use std::time::Duration;

/// Configuration of one serve session (service + load generator).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Workload scenario generating the fleet/timeline ([`crate::scenario`]
    /// registry lookup); `None` means the legacy `uniform` default and
    /// keeps the field absent from serialized configs, so pre-scenario
    /// JSON round-trips unchanged.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub scenario: Option<String>,
    /// Stage-1 mechanism name (registry lookup).
    pub mechanism: String,
    /// Dynamic matcher name (registry lookup).
    pub matcher: String,
    /// Shift-plan kind for the generated fleet (`always-on`, `short`,
    /// `long`).
    pub plan: String,
    /// Tasks in the generated timeline.
    pub num_tasks: usize,
    /// Workers in the generated fleet.
    pub num_workers: usize,
    /// Privacy budget per report.
    pub epsilon: f64,
    /// Predefined-point grid side.
    pub grid_side: usize,
    /// Base seed; with `plan` and `batch_interval` it fully determines the
    /// assignment sequence.
    pub seed: u64,
    /// Δt — the micro-batch window in virtual seconds.
    pub batch_interval: f64,
    /// Load-generator target rate in requests per wall-clock second;
    /// `0.0` = unthrottled. Pacing only — never affects assignments.
    pub qps: f64,
    /// Stop the load generator after this many requests (the service
    /// drains what arrived); `None` replays the whole timeline.
    pub max_requests: Option<usize>,
    /// Obfuscation threads per window (`0` = auto, `1` = scalar); output
    /// is bit-identical for every value.
    pub threads: usize,
    /// Record wall-clock assignment-latency percentiles. Off by default:
    /// the percentiles are machine-dependent and are skipped — absent, not
    /// `null` — from the JSON so byte comparisons stay exact.
    pub timings: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            scenario: None,
            mechanism: "hst".into(),
            matcher: "hst-greedy".into(),
            plan: "short".into(),
            num_tasks: 200,
            num_workers: 100,
            epsilon: 0.6,
            grid_side: 32,
            seed: 0,
            batch_interval: 5.0,
            qps: 0.0,
            max_requests: None,
            threads: 1,
            timings: false,
        }
    }
}

impl crate::pipeline::CommonConfig for ServeConfig {
    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn grid_side(&self) -> usize {
        self.grid_side
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn threads(&self) -> usize {
        self.threads
    }
}

/// Wall-clock assignment-latency percentiles over one session (frame
/// ingest of a task to the drain of its window), in milliseconds.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ServeLatency {
    /// Median.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Worst observed.
    pub max_ms: f64,
}

/// Serializable outcome of one serve session. Every field except
/// `latency` is a pure function of `(seed, plan, batch_interval)` — QPS,
/// thread count and wall-clock never reach them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeReport {
    /// Workload scenario replayed; absent — not `null` — for the legacy
    /// `uniform` default, so pre-scenario golden JSON byte-compares
    /// exactly (the same contract as the sweep cells).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub scenario: Option<String>,
    /// Mechanism driven.
    pub mechanism: String,
    /// Dynamic matcher driven.
    pub matcher: String,
    /// Shift-plan kind replayed.
    pub plan: String,
    /// Tasks in the configured timeline.
    pub num_tasks: usize,
    /// Workers in the configured fleet.
    pub num_workers: usize,
    /// Privacy budget per report.
    pub epsilon: f64,
    /// Base seed.
    pub seed: u64,
    /// Δt window in virtual seconds.
    pub batch_interval: f64,
    /// Frames ingested (shutdown excluded).
    pub requests: usize,
    /// Non-empty windows flushed.
    pub batches: usize,
    /// Tasks assigned a worker.
    pub assigned: usize,
    /// Tasks that drained against an empty pool.
    pub dropped: usize,
    /// `assigned / (assigned + dropped)` (`1.0` when no tasks arrived).
    pub assignment_rate: f64,
    /// `dropped / (assigned + dropped)` (`0.0` when no tasks arrived).
    pub drop_rate: f64,
    /// Total true-location travel distance of the assigned pairs.
    pub total_distance: f64,
    /// Largest task-queue depth observed at a flush.
    pub peak_queue_depth: usize,
    /// Mean task-queue depth over flushed windows.
    pub mean_queue_depth: f64,
    /// FNV-1a fingerprint of the assignment sequence — the byte-checkable
    /// identity of the run (see [`assignment_fingerprint`]).
    pub assignment_fingerprint: String,
    /// Latency percentiles; present only with [`ServeConfig::timings`]
    /// (and absent — not `null` — from the JSON otherwise, mirroring the
    /// sweep's `wall_ms`).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub latency: Option<ServeLatency>,
}

/// A completed serve session: the report plus the raw assignment sequence
/// (`(task id, assigned worker)` in drain order) for replay comparisons.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// The serializable session report.
    pub report: ServeReport,
    /// `(task, Some(worker) | None)` in drain order — what the
    /// fingerprint digests.
    pub assignments: Vec<(u64, Option<u64>)>,
}

const OP_CHECK_IN: u8 = 0x01;
const OP_CHECK_OUT: u8 = 0x02;
const OP_TASK: u8 = 0x03;
const OP_SHUTDOWN: u8 = 0x04;

/// One request on the serve transport (see the module docs for the wire
/// layout).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServeRequest {
    /// Shift start: a worker checks in at its true location (obfuscated
    /// server-side by the session's mechanism, like the batch drivers).
    CheckIn {
        /// Worker id (unique among live workers).
        worker: u64,
        /// Virtual timestamp.
        at: f64,
        /// True x coordinate.
        x: f64,
        /// True y coordinate.
        y: f64,
    },
    /// Shift end: an unassigned worker withdraws.
    CheckOut {
        /// Worker id.
        worker: u64,
        /// Virtual timestamp.
        at: f64,
    },
    /// Task arrival.
    Task {
        /// Task id.
        task: u64,
        /// Virtual timestamp.
        at: f64,
        /// True x coordinate.
        x: f64,
        /// True y coordinate.
        y: f64,
    },
    /// Drain every buffered window and end the session.
    Shutdown,
}

impl ServeRequest {
    /// Encodes the request as one length-prefixed frame.
    pub fn encode(&self) -> Bytes {
        let mut payload = BytesMut::with_capacity(33);
        match *self {
            ServeRequest::CheckIn { worker, at, x, y } => {
                payload.put_u8(OP_CHECK_IN);
                payload.put_u64(worker);
                payload.put_f64(at);
                payload.put_f64(x);
                payload.put_f64(y);
            }
            ServeRequest::CheckOut { worker, at } => {
                payload.put_u8(OP_CHECK_OUT);
                payload.put_u64(worker);
                payload.put_f64(at);
            }
            ServeRequest::Task { task, at, x, y } => {
                payload.put_u8(OP_TASK);
                payload.put_u64(task);
                payload.put_f64(at);
                payload.put_f64(x);
                payload.put_f64(y);
            }
            ServeRequest::Shutdown => payload.put_u8(OP_SHUTDOWN),
        }
        let mut frame = BytesMut::with_capacity(4 + payload.len());
        frame.put_u32(payload.len() as u32);
        frame.put_slice(&payload);
        frame.freeze()
    }

    /// Decodes one frame, consuming it from `buf`. Truncated frames,
    /// unknown opcodes and length/opcode mismatches are typed
    /// [`PipelineError::Transport`] errors, never panics.
    pub fn decode(buf: &mut Bytes) -> Result<Self, PipelineError> {
        let transport = |why| Err(PipelineError::Transport { why });
        if buf.remaining() < 4 {
            return transport("truncated frame: missing length prefix");
        }
        let len = buf.get_u32() as usize;
        if buf.remaining() < len {
            return transport("truncated frame: payload shorter than its length prefix");
        }
        if len == 0 {
            return transport("empty payload: a frame needs at least an opcode");
        }
        let opcode = buf.get_u8();
        let body = len - 1;
        match opcode {
            OP_CHECK_IN if body == 32 => Ok(ServeRequest::CheckIn {
                worker: buf.get_u64(),
                at: buf.get_f64(),
                x: buf.get_f64(),
                y: buf.get_f64(),
            }),
            OP_CHECK_OUT if body == 16 => Ok(ServeRequest::CheckOut {
                worker: buf.get_u64(),
                at: buf.get_f64(),
            }),
            OP_TASK if body == 32 => Ok(ServeRequest::Task {
                task: buf.get_u64(),
                at: buf.get_f64(),
                x: buf.get_f64(),
                y: buf.get_f64(),
            }),
            OP_SHUTDOWN if body == 0 => Ok(ServeRequest::Shutdown),
            OP_CHECK_IN | OP_CHECK_OUT | OP_TASK | OP_SHUTDOWN => {
                transport("length prefix does not match the opcode's body size")
            }
            _ => transport("unknown opcode"),
        }
    }

    fn timestamp(&self) -> f64 {
        match *self {
            ServeRequest::CheckIn { at, .. }
            | ServeRequest::CheckOut { at, .. }
            | ServeRequest::Task { at, .. } => at,
            ServeRequest::Shutdown => f64::INFINITY,
        }
    }
}

/// FNV-1a over the assignment sequence: each `(task, worker)` pair
/// digests as two little-endian u64s, with `None` (dropped) encoded as
/// `0` and `Some(w)` as `w + 1`. The serve counterpart of the sweep's
/// config fingerprint — two runs match iff their assignment sequences do.
pub fn assignment_fingerprint(assignments: &[(u64, Option<u64>)]) -> String {
    fn eat(hash: u64, value: u64) -> u64 {
        value.to_le_bytes().iter().fold(hash, |h, &b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
        })
    }
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &(task, worker) in assignments {
        hash = eat(hash, task);
        hash = eat(hash, worker.map_or(0, |w| w + 1));
    }
    format!("{hash:016x}")
}

/// A task buffered in the current window.
struct PendingTask {
    id: u64,
    location: Point,
    /// Frame-ingest instant; `Some` only with `timings`.
    ingested: Option<std::time::Instant>,
}

/// Aggregates the resident half of a session: the pool, the two RNG
/// streams, the window buffers and the running counters.
struct Engine<'a> {
    mechanism: &'a dyn ReportMechanism,
    server: &'a Server,
    pool: Box<dyn DynamicWorkerPool + 'a>,
    epsilon: Epsilon,
    threads: usize,
    batch_interval: f64,
    timings: bool,
    mech_rng: StdRng,
    tie_rng: StdRng,
    window: Option<u64>,
    pending_checkins: Vec<(u64, Point)>,
    pending_checkouts: Vec<u64>,
    pending_tasks: Vec<PendingTask>,
    assignments: Vec<(u64, Option<u64>)>,
    requests: usize,
    batches: usize,
    peak_queue: usize,
    queue_sum: usize,
    latencies_ms: Vec<f64>,
}

/// What the serve thread hands back when the session ends.
struct SessionStats {
    assignments: Vec<(u64, Option<u64>)>,
    requests: usize,
    batches: usize,
    peak_queue: usize,
    queue_sum: usize,
    latencies_ms: Vec<f64>,
}

impl<'a> Engine<'a> {
    fn new(
        mechanism: &'a dyn ReportMechanism,
        matcher: &dyn DynamicAssignStrategy,
        server: &'a Server,
        config: &ServeConfig,
    ) -> Result<Self, PipelineError> {
        Ok(Engine {
            mechanism,
            server,
            pool: matcher.pool(Some(server))?,
            epsilon: Epsilon::new(config.epsilon),
            threads: config.threads,
            batch_interval: config.batch_interval,
            timings: config.timings,
            // The same stream ids as the event-sequential dynamic driver;
            // the *schedule* of draws differs (grouped per Δt window) and
            // is pinned by the serve goldens.
            mech_rng: seeded_rng(config.seed, 0xD1CE_0001),
            tie_rng: seeded_rng(config.seed, 0xD1CE_0002),
            window: None,
            pending_checkins: Vec::new(),
            pending_checkouts: Vec::new(),
            pending_tasks: Vec::new(),
            assignments: Vec::new(),
            requests: 0,
            batches: 0,
            peak_queue: 0,
            queue_sum: 0,
            latencies_ms: Vec::new(),
        })
    }

    /// Buffers one request, flushing first when it opens a new window.
    /// Returns `false` when the session should end (shutdown received).
    fn ingest(&mut self, request: ServeRequest) -> Result<bool, PipelineError> {
        if request == ServeRequest::Shutdown {
            self.flush()?;
            return Ok(false);
        }
        self.requests += 1;
        let window = (request.timestamp() / self.batch_interval).floor() as u64;
        if self.window != Some(window) {
            self.flush()?;
            self.window = Some(window);
        }
        match request {
            ServeRequest::CheckIn { worker, x, y, .. } => {
                self.pending_checkins.push((worker, Point::new(x, y)));
            }
            ServeRequest::CheckOut { worker, .. } => self.pending_checkouts.push(worker),
            ServeRequest::Task { task, x, y, .. } => {
                // lint: allow(DET-TIME) — timings-gated latency sampling
                // only; the wall_ms precedent. Never reaches assignments
                // or the deterministic report fields.
                let ingested = self.timings.then(std::time::Instant::now);
                self.pending_tasks.push(PendingTask {
                    id: task,
                    location: Point::new(x, y),
                    ingested,
                });
            }
            ServeRequest::Shutdown => unreachable!("handled above"),
        }
        Ok(true)
    }

    /// Flushes the current window through the three documented phases.
    fn flush(&mut self) -> Result<(), PipelineError> {
        if self.pending_checkins.is_empty()
            && self.pending_checkouts.is_empty()
            && self.pending_tasks.is_empty()
        {
            return Ok(());
        }
        self.batches += 1;
        // Phase 1: batch-obfuscate and register the window's check-ins.
        if !self.pending_checkins.is_empty() {
            let points: Vec<Point> = self.pending_checkins.iter().map(|&(_, p)| p).collect();
            let reports = self.mechanism.report_batch(
                self.epsilon,
                Some(self.server),
                &points,
                &mut self.mech_rng,
                self.threads,
            )?;
            let batch: Vec<(u64, Report)> = self
                .pending_checkins
                .drain(..)
                .zip(reports)
                .map(|((id, _), report)| (id, report))
                .collect();
            self.pool.insert_batch(batch)?;
        }
        // Phase 2: apply check-outs (no-ops for assigned workers).
        for id in self.pending_checkouts.drain(..) {
            let _ = self.pool.withdraw(id);
        }
        // Phase 3: record queue depth, then drain the task queue.
        let depth = self.pending_tasks.len();
        self.peak_queue = self.peak_queue.max(depth);
        self.queue_sum += depth;
        if depth > 0 {
            let points: Vec<Point> = self.pending_tasks.iter().map(|t| t.location).collect();
            let reports = self.mechanism.report_batch(
                self.epsilon,
                Some(self.server),
                &points,
                &mut self.mech_rng,
                self.threads,
            )?;
            let tasks: Vec<PendingTask> = self.pending_tasks.drain(..).collect();
            let slots = self.pool.assign_batch(reports, &mut self.tie_rng)?;
            // lint: allow(DET-TIME) — timings-gated latency sampling only;
            // the wall_ms precedent. One drain stamp per window.
            let drained = self.timings.then(std::time::Instant::now);
            for (task, &slot) in tasks.iter().zip(&slots) {
                self.assignments.push((task.id, slot));
                if let (Some(end), Some(start)) = (drained, task.ingested) {
                    self.latencies_ms
                        .push(end.duration_since(start).as_secs_f64() * 1e3);
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> SessionStats {
        SessionStats {
            assignments: self.assignments,
            requests: self.requests,
            batches: self.batches,
            peak_queue: self.peak_queue,
            queue_sum: self.queue_sum,
            latencies_ms: self.latencies_ms,
        }
    }
}

/// The resident serve loop: decodes frames off the transport and drives
/// the engine until shutdown (or until the sender hangs up, which drains
/// the buffered tail — a generator truncated by `max_requests` must not
/// lose requests).
fn serve_session(
    rx: mpsc::Receiver<Bytes>,
    mechanism: &dyn ReportMechanism,
    matcher: &dyn DynamicAssignStrategy,
    server: &Server,
    config: &ServeConfig,
) -> Result<SessionStats, PipelineError> {
    let mut engine = Engine::new(mechanism, matcher, server, config)?;
    while let Ok(mut frame) = rx.recv() {
        if !engine.ingest(ServeRequest::decode(&mut frame)?)? {
            return Ok(engine.finish());
        }
    }
    engine.flush()?;
    Ok(engine.finish())
}

/// Encodes the seed-derived workload timeline as transport frames — the
/// load generator's replay script. Pure in `(instance, plan, task_times)`;
/// `max_requests` truncates the tail (the shutdown frame is appended
/// after the cut and does not count).
fn timeline_frames(
    instance: &Instance,
    plan: &ShiftPlan,
    task_times: &[f64],
    max_requests: Option<usize>,
) -> Vec<Bytes> {
    let events = crate::dynamic::build_timeline(plan, task_times);
    let mut frames: Vec<Bytes> = events
        .iter()
        .map(|&(at, _, _, kind)| {
            match kind {
                EventKind::ShiftStart(w) => ServeRequest::CheckIn {
                    worker: w as u64,
                    at,
                    x: instance.workers[w].x,
                    y: instance.workers[w].y,
                },
                EventKind::ShiftEnd(w) => ServeRequest::CheckOut {
                    worker: w as u64,
                    at,
                },
                EventKind::Task(t) => ServeRequest::Task {
                    task: t as u64,
                    at,
                    x: instance.tasks[t].x,
                    y: instance.tasks[t].y,
                },
            }
            .encode()
        })
        .collect();
    if let Some(cap) = max_requests {
        frames.truncate(cap);
    }
    frames.push(ServeRequest::Shutdown.encode());
    frames
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    let idx = ((p / 100.0) * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[idx]
}

/// Runs one complete serve session: spawns the resident service on a
/// scoped thread, replays the seed-derived request timeline through the
/// built-in load generator at [`ServeConfig::qps`], and joins cleanly
/// before returning — no thread outlives this call.
///
/// The returned assignments are a pure function of
/// `(seed, plan, batch_interval)` (see the module docs); QPS and
/// `threads` trade wall-clock for delivery pacing and cores, never
/// results.
pub fn run_serve(config: &ServeConfig) -> Result<ServeOutcome, PipelineError> {
    if !(config.batch_interval.is_finite() && config.batch_interval > 0.0) {
        return Err(PipelineError::InvalidConfig {
            field: "batch-interval",
            why: "Δt must be a positive, finite number of virtual seconds",
        });
    }
    if !(config.qps.is_finite() && config.qps >= 0.0) {
        return Err(PipelineError::InvalidConfig {
            field: "qps",
            why: "must be 0 (unthrottled) or a positive, finite rate",
        });
    }
    let mechanism =
        registry()
            .mechanism(&config.mechanism)
            .ok_or_else(|| PipelineError::UnknownName {
                kind: "mechanism",
                name: config.mechanism.clone(),
                known: registry()
                    .mechanisms()
                    .iter()
                    .map(|m| m.name().to_string())
                    .collect(),
            })?;
    let matcher = registry().require_dynamic_matcher(&config.matcher)?;
    let scenario =
        registry().require_scenario(config.scenario.as_deref().unwrap_or(DEFAULT_SCENARIO))?;

    // The same workload derivation as `pombm dynamic`: instance, arrival
    // times and shift plan are all pure functions of the seed (and, for
    // the `uniform` default, the exact pre-scenario streams).
    let instance = scenario.timeline_instance(config.seed, config.num_tasks, config.num_workers);
    let task_times = scenario.task_times(config.seed, config.num_tasks);
    let plan = scenario.shift_plan(&config.plan, config.num_workers, config.seed)?;
    let frames = timeline_frames(&instance, &plan, &task_times, config.max_requests);

    let server = Server::new(instance.region, config.grid_side, config.seed ^ 0xD1CE);
    let (tx, rx) = mpsc::channel::<Bytes>();
    let pause = (config.qps > 0.0).then(|| Duration::from_secs_f64(1.0 / config.qps));
    let result: parking_lot::Mutex<Option<Result<SessionStats, PipelineError>>> =
        parking_lot::Mutex::new(None);
    crossbeam::thread::scope(|scope| {
        let slot = &result;
        let server = &server;
        let mechanism = mechanism.as_ref();
        let matcher = matcher.as_ref();
        scope.spawn(move |_| {
            *slot.lock() = Some(serve_session(rx, mechanism, matcher, server, config));
        });
        for frame in frames {
            if tx.send(frame).is_err() {
                break; // The service ended early (error path): stop pacing.
            }
            if let Some(pause) = pause {
                std::thread::sleep(pause);
            }
        }
        drop(tx); // Hang up; the service drains its buffers and exits.
    })
    .expect("serve threads do not panic");
    // The scope joined the service thread above, so the session is over
    // and the slot is filled: clean shutdown is structural.
    let stats = result
        .into_inner()
        .expect("the serve loop always reports")?;

    let assigned = stats
        .assignments
        .iter()
        .filter(|(_, slot)| slot.is_some())
        .count();
    let dropped = stats.assignments.len() - assigned;
    let arrived = stats.assignments.len();
    let total_distance = stats
        .assignments
        .iter()
        .filter_map(|&(task, slot)| {
            slot.map(|worker| {
                instance.tasks[task as usize].dist(&instance.workers[worker as usize])
            })
        })
        .sum();
    let latency = if config.timings && !stats.latencies_ms.is_empty() {
        let mut sorted = stats.latencies_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        Some(ServeLatency {
            p50_ms: percentile(&sorted, 50.0),
            p95_ms: percentile(&sorted, 95.0),
            p99_ms: percentile(&sorted, 99.0),
            max_ms: sorted[sorted.len() - 1],
        })
    } else {
        None
    };
    let report = ServeReport {
        scenario: (scenario.name() != DEFAULT_SCENARIO).then(|| scenario.name().to_string()),
        mechanism: config.mechanism.clone(),
        matcher: config.matcher.clone(),
        plan: config.plan.clone(),
        num_tasks: config.num_tasks,
        num_workers: config.num_workers,
        epsilon: config.epsilon,
        seed: config.seed,
        batch_interval: config.batch_interval,
        requests: stats.requests,
        batches: stats.batches,
        assigned,
        dropped,
        assignment_rate: if arrived == 0 {
            1.0
        } else {
            assigned as f64 / arrived as f64
        },
        drop_rate: if arrived == 0 {
            0.0
        } else {
            dropped as f64 / arrived as f64
        },
        total_distance,
        peak_queue_depth: stats.peak_queue,
        mean_queue_depth: if stats.batches == 0 {
            0.0
        } else {
            stats.queue_sum as f64 / stats.batches as f64
        },
        assignment_fingerprint: assignment_fingerprint(&stats.assignments),
        latency,
    };
    Ok(ServeOutcome {
        report,
        assignments: stats.assignments,
    })
}
