//! `pombm serve` — a resident micro-batched matching service.
//!
//! The paper's setting is inherently a *service*: workers and tasks report
//! obfuscated locations to an untrusted server which matches online. Every
//! other entry point in this repo is batch; this module is the resident
//! counterpart. A serve session is a long-running loop on its own thread:
//! requests arrive over a local framed transport (length-prefixed frames
//! on the in-repo `bytes` shim — no network crates), are buffered, and are
//! executed in **Δt micro-batches**: all activity whose *virtual*
//! timestamp falls into the same `batch_interval` window is applied in one
//! shot through the pool's batched entry points
//! ([`DynamicWorkerPool::insert_batch`] / `assign_batch`).
//!
//! # Frame layout
//!
//! Big-endian, length-prefixed (the length covers the payload only):
//!
//! ```text
//! frame     := u32 payload_len | payload
//! payload   := u8 opcode | body
//! 0x01 CHECK_IN  worker:u64  at:f64  x:f64  y:f64     (shift start)
//! 0x02 CHECK_OUT worker:u64  at:f64                   (shift end)
//! 0x03 TASK      task:u64    at:f64  x:f64  y:f64     (task arrival)
//! 0x04 SHUTDOWN                                       (drain and exit)
//! ```
//!
//! # Δt semantics
//!
//! `at` timestamps are *virtual* seconds on the workload timeline; frame
//! `at` belongs to window `⌊at / batch_interval⌋`. When a frame for a
//! later window arrives (or on shutdown), the current window flushes in
//! three phases:
//!
//! 1. **check-ins** — all buffered worker locations are obfuscated in one
//!    [`ReportMechanism::report_batch`] call (bit-identical to the scalar
//!    loop at any thread count) and registered via `insert_batch`;
//! 2. **check-outs** — buffered withdrawals are applied (no-ops for
//!    workers already assigned);
//! 3. **tasks** — the queue depth is recorded, task locations are
//!    batch-obfuscated, and the window drains through `assign_batch` in
//!    arrival order.
//!
//! # Determinism contract
//!
//! The assignment sequence is a pure function of
//! `(seed, plan, batch_interval)`. Wall-clock enters only through the
//! load generator's *pacing* (QPS throttling slows delivery, never
//! reorders it) and the optional, `timings`-gated latency percentiles —
//! which are [`None`]-skipped from the JSON exactly like the sweep's
//! `wall_ms` precedent, so a timings-off [`ServeReport`] is a
//! byte-checkable artifact. Two runs at different QPS, or at `--threads 1`
//! vs auto, produce identical assignments; `tests/serve.rs` pins this with
//! golden fingerprints and replay tests, and CI's `serve-smoke` job
//! byte-compares live runs. The schedule deliberately differs from the
//! event-sequential dynamic driver ([`crate::dynamic::run_dynamic_spec`]):
//! obfuscation draws are grouped per window, so outcomes depend on Δt —
//! that dependence is part of the artifact's identity, like a seed.
//!
//! # Fault injection & degraded mode
//!
//! The unhappy paths are held to the same contract. A [`crate::fault`]
//! plan rewrites the generated frame script *before* delivery starts
//! (drawing from its own [`crate::fault::FAULT_STREAM`]), so every
//! injected fault is a pure function of `(seed, plan name, rate)` and is
//! invariant under QPS pacing and thread counts. The session never aborts
//! on a bad frame: each decode failure is counted per
//! [`PipelineError::Transport`] class (a stream that ends without a
//! shutdown frame counts as [`CHANNEL_CLOSED`]), duplicate deliveries are
//! absorbed by id, and the session keeps serving.
//!
//! With `queue_cap` set, the task backlog becomes a bounded admission
//! queue: an arriving task that would overflow it is shed per the
//! configured [`crate::fault::ShedPolicy`]. A shed submission retries
//! with deterministic *virtual-time* exponential backoff (`Δt·2^attempt`
//! past its current timestamp — the service-side stand-in for client
//! retry, which a wall-clock implementation could not keep
//! replay-identical), re-entering its retry window ahead of that window's
//! fresh arrivals. The retry budget is [`crate::fault::MAX_RETRIES`]
//! attempts under the counting policies, or a virtual deadline of
//! [`crate::fault::DEADLINE_WINDOWS`]`·Δt` past arrival under `deadline`
//! (exhaustion counts as `shed` / `expired` respectively). All of it
//! lands in the report's skip-if-`None` `faults` block, so clean-run
//! golden JSON stays byte-identical while faulted runs get their own
//! pinned fingerprints.

use crate::algorithm::{
    DynamicAssignStrategy, DynamicWorkerPool, PipelineError, Report, ReportMechanism,
};
use crate::dynamic::EventKind;
use crate::fault::{FaultPlan, ShedPolicy, DEADLINE_WINDOWS, DEFAULT_FAULT_RATE, FAULT_STREAM};
use crate::registry::registry;
use crate::scenario::{Scenario, DEFAULT_SCENARIO};
use crate::server::Server;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use pombm_geom::{seeded_rng, Point};
use pombm_privacy::Epsilon;
use pombm_workload::shifts::ShiftPlan;
use pombm_workload::Instance;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Configuration of one serve session (service + load generator).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Workload scenario generating the fleet/timeline ([`crate::scenario`]
    /// registry lookup); `None` means the legacy `uniform` default and
    /// keeps the field absent from serialized configs, so pre-scenario
    /// JSON round-trips unchanged.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub scenario: Option<String>,
    /// Stage-1 mechanism name (registry lookup).
    pub mechanism: String,
    /// Dynamic matcher name (registry lookup).
    pub matcher: String,
    /// Shift-plan kind for the generated fleet (`always-on`, `short`,
    /// `long`).
    pub plan: String,
    /// Tasks in the generated timeline.
    pub num_tasks: usize,
    /// Workers in the generated fleet.
    pub num_workers: usize,
    /// Privacy budget per report.
    pub epsilon: f64,
    /// Predefined-point grid side.
    pub grid_side: usize,
    /// Base seed; with `plan` and `batch_interval` it fully determines the
    /// assignment sequence.
    pub seed: u64,
    /// Δt — the micro-batch window in virtual seconds.
    pub batch_interval: f64,
    /// Load-generator target rate in requests per wall-clock second;
    /// `0.0` = unthrottled. Pacing only — never affects assignments.
    pub qps: f64,
    /// Stop the load generator after this many requests (the service
    /// drains what arrived); `None` replays the whole timeline.
    pub max_requests: Option<usize>,
    /// Obfuscation threads per window (`0` = auto, `1` = scalar); output
    /// is bit-identical for every value.
    pub threads: usize,
    /// Record wall-clock assignment-latency percentiles. Off by default:
    /// the percentiles are machine-dependent and are skipped — absent, not
    /// `null` — from the JSON so byte comparisons stay exact.
    pub timings: bool,
    /// Fault plan injected between the load generator and the engine
    /// ([`crate::fault`] registry lookup); `None` means no injection and
    /// keeps the field absent from serialized configs, so pre-fault JSON
    /// round-trips unchanged (the scenario-field precedent).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub fault_plan: Option<String>,
    /// Fault firing probability in `[0, 1]`; requires `fault_plan` and
    /// defaults to [`DEFAULT_FAULT_RATE`] when a plan is set.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub fault_rate: Option<f64>,
    /// Bound on the task admission queue; `None` keeps the legacy
    /// unbounded backlog.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub queue_cap: Option<usize>,
    /// Shedding policy for a bounded queue (`drop-newest`, `drop-oldest`,
    /// `deadline`); requires `queue_cap` and defaults to `drop-newest`.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub shed_policy: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            scenario: None,
            mechanism: "hst".into(),
            matcher: "hst-greedy".into(),
            plan: "short".into(),
            num_tasks: 200,
            num_workers: 100,
            epsilon: 0.6,
            grid_side: 32,
            seed: 0,
            batch_interval: 5.0,
            qps: 0.0,
            max_requests: None,
            threads: 1,
            timings: false,
            fault_plan: None,
            fault_rate: None,
            queue_cap: None,
            shed_policy: None,
        }
    }
}

impl crate::pipeline::CommonConfig for ServeConfig {
    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn grid_side(&self) -> usize {
        self.grid_side
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn threads(&self) -> usize {
        self.threads
    }
}

/// Wall-clock assignment-latency percentiles over one session (frame
/// ingest of a task to the drain of its window), in milliseconds.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ServeLatency {
    /// Median.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Worst observed.
    pub max_ms: f64,
}

/// The degraded-operation ledger of one serve session: what the fault
/// plan injected, what the transport rejected, and what the bounded
/// admission queue shed. Every counter is virtual-time-deterministic —
/// the block gets the same golden treatment as the clean fields.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultReport {
    /// Fault plan injected; absent when faults arose without one (e.g. a
    /// hand-built corrupt script or a bare `queue_cap`).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub plan: Option<String>,
    /// Firing probability the plan ran at; absent without a plan.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub rate: Option<f64>,
    /// Admission-queue bound; absent for the legacy unbounded backlog.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub queue_cap: Option<usize>,
    /// Shedding policy in force; absent without a `queue_cap`.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub shed_policy: Option<String>,
    /// Frames the fault plan touched (corrupted, duplicated, time-warped).
    pub injected: usize,
    /// Frames the transport rejected (sum of `corrupt_classes`).
    pub corrupt: usize,
    /// Rejected frames bucketed by [`PipelineError::Transport`] class.
    pub corrupt_classes: BTreeMap<String, usize>,
    /// Duplicate check-ins/tasks absorbed by the admission dedup.
    pub duplicates: usize,
    /// Distinct tasks submitted. Invariant, per policy:
    /// `submitted == assigned + dropped + shed + expired`.
    pub submitted: usize,
    /// Tasks terminally shed after exhausting their retry budget.
    pub shed: usize,
    /// Retry re-admissions performed (one task may retry several times).
    pub retried: usize,
    /// Tasks expired at their virtual deadline (`deadline` policy only).
    pub expired: usize,
}

/// Serializable outcome of one serve session. Every field except
/// `latency` is a pure function of `(seed, plan, batch_interval)` — and,
/// when chaos is configured, of the fault plan, rate, queue cap and shed
/// policy — QPS, thread count and wall-clock never reach them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeReport {
    /// Workload scenario replayed; absent — not `null` — for the legacy
    /// `uniform` default, so pre-scenario golden JSON byte-compares
    /// exactly (the same contract as the sweep cells).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub scenario: Option<String>,
    /// Mechanism driven.
    pub mechanism: String,
    /// Dynamic matcher driven.
    pub matcher: String,
    /// Shift-plan kind replayed.
    pub plan: String,
    /// Tasks in the configured timeline.
    pub num_tasks: usize,
    /// Workers in the configured fleet.
    pub num_workers: usize,
    /// Privacy budget per report.
    pub epsilon: f64,
    /// Base seed.
    pub seed: u64,
    /// Δt window in virtual seconds.
    pub batch_interval: f64,
    /// Frames ingested (shutdown excluded).
    pub requests: usize,
    /// Non-empty windows flushed.
    pub batches: usize,
    /// Tasks assigned a worker.
    pub assigned: usize,
    /// Tasks that drained against an empty pool.
    pub dropped: usize,
    /// `assigned / (assigned + dropped)` (`1.0` when no tasks arrived).
    pub assignment_rate: f64,
    /// `dropped / (assigned + dropped)` (`0.0` when no tasks arrived).
    pub drop_rate: f64,
    /// Total true-location travel distance of the assigned pairs.
    pub total_distance: f64,
    /// Largest task-queue depth observed at a flush.
    pub peak_queue_depth: usize,
    /// Mean task-queue depth over flushed windows.
    pub mean_queue_depth: f64,
    /// FNV-1a fingerprint of the assignment sequence — the byte-checkable
    /// identity of the run (see [`assignment_fingerprint`]).
    pub assignment_fingerprint: String,
    /// Latency percentiles; present only with [`ServeConfig::timings`]
    /// (and absent — not `null` — from the JSON otherwise, mirroring the
    /// sweep's `wall_ms`).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub latency: Option<ServeLatency>,
    /// Fault-and-shedding ledger; present only when chaos was configured
    /// or an anomaly actually occurred (and absent — not `null` — from
    /// the JSON otherwise), so every pre-fault golden byte-compares
    /// exactly.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub faults: Option<FaultReport>,
}

/// A completed serve session: the report plus the raw assignment sequence
/// (`(task id, assigned worker)` in drain order) for replay comparisons.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// The serializable session report.
    pub report: ServeReport,
    /// `(task, Some(worker) | None)` in drain order — what the
    /// fingerprint digests.
    pub assignments: Vec<(u64, Option<u64>)>,
}

/// The Transport class recorded when the request stream disconnects
/// before a shutdown frame (sender dropped, channel closed).
pub const CHANNEL_CLOSED: &str = "channel closed";

/// The typed error for a request channel that disconnects mid-session.
/// The serve loop absorbs it as a counted [`FaultReport`] anomaly rather
/// than aborting, so a truncated frame stream still yields a well-formed
/// [`ServeReport`].
pub fn channel_closed() -> PipelineError {
    PipelineError::Transport {
        why: CHANNEL_CLOSED,
    }
}

const OP_CHECK_IN: u8 = 0x01;
const OP_CHECK_OUT: u8 = 0x02;
const OP_TASK: u8 = 0x03;
const OP_SHUTDOWN: u8 = 0x04;

/// One request on the serve transport (see the module docs for the wire
/// layout).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServeRequest {
    /// Shift start: a worker checks in at its true location (obfuscated
    /// server-side by the session's mechanism, like the batch drivers).
    CheckIn {
        /// Worker id (unique among live workers).
        worker: u64,
        /// Virtual timestamp.
        at: f64,
        /// True x coordinate.
        x: f64,
        /// True y coordinate.
        y: f64,
    },
    /// Shift end: an unassigned worker withdraws.
    CheckOut {
        /// Worker id.
        worker: u64,
        /// Virtual timestamp.
        at: f64,
    },
    /// Task arrival.
    Task {
        /// Task id.
        task: u64,
        /// Virtual timestamp.
        at: f64,
        /// True x coordinate.
        x: f64,
        /// True y coordinate.
        y: f64,
    },
    /// Drain every buffered window and end the session.
    Shutdown,
}

impl ServeRequest {
    /// Encodes the request as one length-prefixed frame.
    pub fn encode(&self) -> Bytes {
        let mut payload = BytesMut::with_capacity(33);
        match *self {
            ServeRequest::CheckIn { worker, at, x, y } => {
                payload.put_u8(OP_CHECK_IN);
                payload.put_u64(worker);
                payload.put_f64(at);
                payload.put_f64(x);
                payload.put_f64(y);
            }
            ServeRequest::CheckOut { worker, at } => {
                payload.put_u8(OP_CHECK_OUT);
                payload.put_u64(worker);
                payload.put_f64(at);
            }
            ServeRequest::Task { task, at, x, y } => {
                payload.put_u8(OP_TASK);
                payload.put_u64(task);
                payload.put_f64(at);
                payload.put_f64(x);
                payload.put_f64(y);
            }
            ServeRequest::Shutdown => payload.put_u8(OP_SHUTDOWN),
        }
        let mut frame = BytesMut::with_capacity(4 + payload.len());
        frame.put_u32(payload.len() as u32);
        frame.put_slice(&payload);
        frame.freeze()
    }

    /// Decodes one frame, consuming it from `buf`. Truncated frames,
    /// unknown opcodes and length/opcode mismatches are typed
    /// [`PipelineError::Transport`] errors, never panics.
    pub fn decode(buf: &mut Bytes) -> Result<Self, PipelineError> {
        let transport = |why| Err(PipelineError::Transport { why });
        if buf.remaining() < 4 {
            return transport("truncated frame: missing length prefix");
        }
        let len = buf.get_u32() as usize;
        if buf.remaining() < len {
            return transport("truncated frame: payload shorter than its length prefix");
        }
        if len == 0 {
            return transport("empty payload: a frame needs at least an opcode");
        }
        let opcode = buf.get_u8();
        let body = len - 1;
        match opcode {
            OP_CHECK_IN if body == 32 => Ok(ServeRequest::CheckIn {
                worker: buf.get_u64(),
                at: buf.get_f64(),
                x: buf.get_f64(),
                y: buf.get_f64(),
            }),
            OP_CHECK_OUT if body == 16 => Ok(ServeRequest::CheckOut {
                worker: buf.get_u64(),
                at: buf.get_f64(),
            }),
            OP_TASK if body == 32 => Ok(ServeRequest::Task {
                task: buf.get_u64(),
                at: buf.get_f64(),
                x: buf.get_f64(),
                y: buf.get_f64(),
            }),
            OP_SHUTDOWN if body == 0 => Ok(ServeRequest::Shutdown),
            OP_CHECK_IN | OP_CHECK_OUT | OP_TASK | OP_SHUTDOWN => {
                transport("length prefix does not match the opcode's body size")
            }
            _ => transport("unknown opcode"),
        }
    }

    fn timestamp(&self) -> f64 {
        match *self {
            ServeRequest::CheckIn { at, .. }
            | ServeRequest::CheckOut { at, .. }
            | ServeRequest::Task { at, .. } => at,
            ServeRequest::Shutdown => f64::INFINITY,
        }
    }
}

/// FNV-1a over the assignment sequence: each `(task, worker)` pair
/// digests as two little-endian u64s, with `None` (dropped) encoded as
/// `0` and `Some(w)` as `w + 1`. The serve counterpart of the sweep's
/// config fingerprint — two runs match iff their assignment sequences do.
pub fn assignment_fingerprint(assignments: &[(u64, Option<u64>)]) -> String {
    fn eat(hash: u64, value: u64) -> u64 {
        value.to_le_bytes().iter().fold(hash, |h, &b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
        })
    }
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &(task, worker) in assignments {
        hash = eat(hash, task);
        hash = eat(hash, worker.map_or(0, |w| w + 1));
    }
    format!("{hash:016x}")
}

/// A task buffered in the current window (or parked for a retry window).
struct PendingTask {
    id: u64,
    location: Point,
    /// Virtual timestamp; a retry moves it forward by the backoff.
    at: f64,
    /// Virtual-time expiry under the `deadline` policy.
    deadline: f64,
    /// How many times this task has been shed and rescheduled.
    attempt: u32,
    /// Frame-ingest instant; `Some` only with `timings`.
    ingested: Option<std::time::Instant>,
}

/// Aggregates the resident half of a session: the pool, the two RNG
/// streams, the window buffers and the running counters.
struct Engine<'a> {
    mechanism: &'a dyn ReportMechanism,
    server: &'a Server,
    pool: Box<dyn DynamicWorkerPool + 'a>,
    epsilon: Epsilon,
    threads: usize,
    batch_interval: f64,
    timings: bool,
    mech_rng: StdRng,
    tie_rng: StdRng,
    window: Option<u64>,
    queue_cap: Option<usize>,
    shed_policy: ShedPolicy,
    pending_checkins: Vec<(u64, Point)>,
    pending_checkouts: Vec<u64>,
    pending_tasks: Vec<PendingTask>,
    /// Shed tasks parked for a later window, sorted by `(at, id)`.
    retry_queue: Vec<PendingTask>,
    /// Worker/task ids already accepted — the at-least-once dedup layer.
    seen_workers: BTreeSet<u64>,
    seen_tasks: BTreeSet<u64>,
    /// True check-in locations by worker id, for the distance tally (the
    /// frame carries the exact f64 bits the workload generated).
    worker_locations: BTreeMap<u64, Point>,
    assignments: Vec<(u64, Option<u64>)>,
    requests: usize,
    batches: usize,
    peak_queue: usize,
    queue_sum: usize,
    total_distance: f64,
    corrupt_classes: BTreeMap<String, usize>,
    duplicates: usize,
    submitted: usize,
    shed: usize,
    retried: usize,
    expired: usize,
    latencies_ms: Vec<f64>,
}

/// What the serve thread hands back when the session ends.
struct SessionStats {
    assignments: Vec<(u64, Option<u64>)>,
    requests: usize,
    batches: usize,
    peak_queue: usize,
    queue_sum: usize,
    total_distance: f64,
    corrupt_classes: BTreeMap<String, usize>,
    duplicates: usize,
    submitted: usize,
    shed: usize,
    retried: usize,
    expired: usize,
    latencies_ms: Vec<f64>,
}

impl<'a> Engine<'a> {
    fn new(
        mechanism: &'a dyn ReportMechanism,
        matcher: &dyn DynamicAssignStrategy,
        server: &'a Server,
        config: &ServeConfig,
    ) -> Result<Self, PipelineError> {
        Ok(Engine {
            mechanism,
            server,
            pool: matcher.pool(Some(server))?,
            epsilon: Epsilon::new(config.epsilon),
            threads: config.threads,
            batch_interval: config.batch_interval,
            timings: config.timings,
            // The same stream ids as the event-sequential dynamic driver;
            // the *schedule* of draws differs (grouped per Δt window) and
            // is pinned by the serve goldens.
            mech_rng: seeded_rng(config.seed, 0xD1CE_0001),
            tie_rng: seeded_rng(config.seed, 0xD1CE_0002),
            window: None,
            queue_cap: config.queue_cap,
            shed_policy: match config.shed_policy.as_deref() {
                Some(name) => ShedPolicy::parse(name)?,
                None => ShedPolicy::DropNewest,
            },
            pending_checkins: Vec::new(),
            pending_checkouts: Vec::new(),
            pending_tasks: Vec::new(),
            retry_queue: Vec::new(),
            seen_workers: BTreeSet::new(),
            seen_tasks: BTreeSet::new(),
            worker_locations: BTreeMap::new(),
            assignments: Vec::new(),
            requests: 0,
            batches: 0,
            peak_queue: 0,
            queue_sum: 0,
            total_distance: 0.0,
            corrupt_classes: BTreeMap::new(),
            duplicates: 0,
            submitted: 0,
            shed: 0,
            retried: 0,
            expired: 0,
            latencies_ms: Vec::new(),
        })
    }

    /// Δt window index of a virtual timestamp.
    fn window_of(&self, at: f64) -> u64 {
        (at / self.batch_interval).floor() as u64
    }

    /// Counts a Transport-class anomaly; the session keeps serving.
    fn note_corrupt(&mut self, why: &str) {
        *self.corrupt_classes.entry(why.to_string()).or_insert(0) += 1;
    }

    /// Earliest window holding a parked retry, if any (the retry queue is
    /// sorted by timestamp, so the head decides).
    fn next_retry_window(&self) -> Option<u64> {
        self.retry_queue.first().map(|t| self.window_of(t.at))
    }

    /// Re-admits every parked retry whose window has arrived, oldest
    /// first — retries enter a window ahead of its fresh frames.
    fn readmit_due(&mut self, window: u64) {
        let due = self
            .retry_queue
            .partition_point(|t| (t.at / self.batch_interval).floor() as u64 <= window);
        if due == 0 {
            return;
        }
        let due: Vec<PendingTask> = self.retry_queue.drain(..due).collect();
        for task in due {
            self.retried += 1;
            self.admit(task);
        }
    }

    /// Moves the engine to `target`, flushing the current window and
    /// draining every retry window that falls strictly before it (each as
    /// its own micro-batch, exactly as if the frames had arrived then).
    fn advance_to(&mut self, target: u64) -> Result<(), PipelineError> {
        if self.window == Some(target) {
            return Ok(());
        }
        self.flush()?;
        while let Some(rw) = self.next_retry_window().filter(|&rw| rw < target) {
            self.window = Some(rw);
            self.readmit_due(rw);
            self.flush()?;
        }
        self.window = Some(target);
        self.readmit_due(target);
        Ok(())
    }

    /// Admits a task to the window queue, shedding per policy when the
    /// bounded queue is full — the queue never exceeds the cap.
    fn admit(&mut self, task: PendingTask) {
        match self.queue_cap {
            Some(cap) if self.pending_tasks.len() >= cap => match self.shed_policy {
                ShedPolicy::DropOldest => {
                    let oldest = self.pending_tasks.remove(0);
                    self.shed_task(oldest);
                    self.pending_tasks.push(task);
                }
                ShedPolicy::DropNewest | ShedPolicy::Deadline => self.shed_task(task),
            },
            _ => self.pending_tasks.push(task),
        }
        self.peak_queue = self.peak_queue.max(self.pending_tasks.len());
    }

    /// Parks a shed task for retry at `at + Δt·2^attempt` of *virtual*
    /// time — the deterministic service-side stand-in for client backoff —
    /// or records it as terminally shed/expired once its budget is gone.
    fn shed_task(&mut self, mut task: PendingTask) {
        let backoff = self.batch_interval * (1u64 << task.attempt.min(62)) as f64;
        let next_at = task.at + backoff;
        let terminal = match self.shed_policy {
            ShedPolicy::Deadline => next_at > task.deadline,
            ShedPolicy::DropNewest | ShedPolicy::DropOldest => {
                task.attempt >= crate::fault::MAX_RETRIES
            }
        };
        if terminal {
            if self.shed_policy == ShedPolicy::Deadline {
                self.expired += 1;
            } else {
                self.shed += 1;
            }
            return;
        }
        task.attempt += 1;
        task.at = next_at;
        let pos = self
            .retry_queue
            .partition_point(|t| t.at < task.at || (t.at == task.at && t.id <= task.id));
        self.retry_queue.insert(pos, task);
    }

    /// Drains the current window and every outstanding retry window — the
    /// shutdown/hangup path. Terminates because every parked task's
    /// budget (attempt count or deadline) is finite.
    fn end_session(&mut self) -> Result<(), PipelineError> {
        self.flush()?;
        while let Some(rw) = self.next_retry_window() {
            self.window = Some(rw);
            self.readmit_due(rw);
            self.flush()?;
        }
        Ok(())
    }

    /// Buffers one request, flushing first when it opens a new window.
    /// Returns `false` when the session should end (shutdown received).
    fn ingest(&mut self, request: ServeRequest) -> Result<bool, PipelineError> {
        if request == ServeRequest::Shutdown {
            self.end_session()?;
            return Ok(false);
        }
        self.requests += 1;
        let window = self.window_of(request.timestamp());
        self.advance_to(window)?;
        match request {
            ServeRequest::CheckIn { worker, x, y, .. } => {
                if self.seen_workers.insert(worker) {
                    let location = Point::new(x, y);
                    self.worker_locations.insert(worker, location);
                    self.pending_checkins.push((worker, location));
                } else {
                    // At-least-once delivery: replays of a known check-in
                    // are absorbed, never double-inserted into the pool.
                    self.duplicates += 1;
                }
            }
            ServeRequest::CheckOut { worker, .. } => self.pending_checkouts.push(worker),
            ServeRequest::Task { task, at, x, y } => {
                if self.seen_tasks.insert(task) {
                    self.submitted += 1;
                    // lint: allow(DET-TIME) — timings-gated latency sampling
                    // only; the wall_ms precedent. Never reaches assignments
                    // or the deterministic report fields.
                    let ingested = self.timings.then(std::time::Instant::now);
                    self.admit(PendingTask {
                        id: task,
                        location: Point::new(x, y),
                        at,
                        deadline: at + DEADLINE_WINDOWS * self.batch_interval,
                        attempt: 0,
                        ingested,
                    });
                } else {
                    self.duplicates += 1;
                }
            }
            ServeRequest::Shutdown => unreachable!("handled above"),
        }
        Ok(true)
    }

    /// Flushes the current window through the three documented phases.
    fn flush(&mut self) -> Result<(), PipelineError> {
        if self.pending_checkins.is_empty()
            && self.pending_checkouts.is_empty()
            && self.pending_tasks.is_empty()
        {
            return Ok(());
        }
        self.batches += 1;
        // Phase 1: batch-obfuscate and register the window's check-ins.
        if !self.pending_checkins.is_empty() {
            let points: Vec<Point> = self.pending_checkins.iter().map(|&(_, p)| p).collect();
            let reports = self.mechanism.report_batch(
                self.epsilon,
                Some(self.server),
                &points,
                &mut self.mech_rng,
                self.threads,
            )?;
            let batch: Vec<(u64, Report)> = self
                .pending_checkins
                .drain(..)
                .zip(reports)
                .map(|((id, _), report)| (id, report))
                .collect();
            self.pool.insert_batch(batch)?;
        }
        // Phase 2: apply check-outs (no-ops for assigned workers).
        for id in self.pending_checkouts.drain(..) {
            let _ = self.pool.withdraw(id);
        }
        // Phase 3: record queue depth, then drain the task queue. (Peak
        // depth is tracked at admission, where a bounded queue binds.)
        let depth = self.pending_tasks.len();
        self.queue_sum += depth;
        if depth > 0 {
            let points: Vec<Point> = self.pending_tasks.iter().map(|t| t.location).collect();
            let reports = self.mechanism.report_batch(
                self.epsilon,
                Some(self.server),
                &points,
                &mut self.mech_rng,
                self.threads,
            )?;
            let tasks: Vec<PendingTask> = self.pending_tasks.drain(..).collect();
            let slots = self.pool.assign_batch(reports, &mut self.tie_rng)?;
            // lint: allow(DET-TIME) — timings-gated latency sampling only;
            // the wall_ms precedent. One drain stamp per window.
            let drained = self.timings.then(std::time::Instant::now);
            for (task, &slot) in tasks.iter().zip(&slots) {
                self.assignments.push((task.id, slot));
                if let Some(worker) = slot {
                    // True-location travel distance, from the exact f64
                    // bits the frames carried (bit-identical to summing
                    // over the instance arrays in assignment order).
                    let worker_location = self.worker_locations[&worker];
                    self.total_distance += task.location.dist(&worker_location);
                }
                if let (Some(end), Some(start)) = (drained, task.ingested) {
                    self.latencies_ms
                        .push(end.duration_since(start).as_secs_f64() * 1e3);
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> SessionStats {
        SessionStats {
            assignments: self.assignments,
            requests: self.requests,
            batches: self.batches,
            peak_queue: self.peak_queue,
            queue_sum: self.queue_sum,
            total_distance: self.total_distance,
            corrupt_classes: self.corrupt_classes,
            duplicates: self.duplicates,
            submitted: self.submitted,
            shed: self.shed,
            retried: self.retried,
            expired: self.expired,
            latencies_ms: self.latencies_ms,
        }
    }
}

/// The resident serve loop: decodes frames off any ingress and drives the
/// engine until shutdown. A frame the transport rejects is counted per
/// class and the session keeps serving; a stream that ends without a
/// shutdown frame (the sender hung up — see [`channel_closed`]) is
/// absorbed the same way before the buffered tail drains, so the session
/// always hands back well-formed stats.
fn serve_stream<I>(
    frames: I,
    mechanism: &dyn ReportMechanism,
    matcher: &dyn DynamicAssignStrategy,
    server: &Server,
    config: &ServeConfig,
) -> Result<SessionStats, PipelineError>
where
    I: IntoIterator<Item = Bytes>,
{
    let mut engine = Engine::new(mechanism, matcher, server, config)?;
    for mut frame in frames {
        match ServeRequest::decode(&mut frame) {
            Ok(request) => {
                if !engine.ingest(request)? {
                    return Ok(engine.finish());
                }
            }
            // Degraded mode: corrupt frames are counted, never fatal.
            Err(PipelineError::Transport { why }) => engine.note_corrupt(why),
            Err(other) => return Err(other),
        }
    }
    let PipelineError::Transport { why } = channel_closed() else {
        unreachable!("channel_closed is a Transport error by construction")
    };
    engine.note_corrupt(why);
    engine.end_session()?;
    Ok(engine.finish())
}

/// Encodes the seed-derived workload timeline as transport frames — the
/// load generator's replay script. Pure in `(instance, plan, task_times)`;
/// `max_requests` truncates the tail. The shutdown frame is *not*
/// included: the caller appends it after fault injection, so chaos may
/// mangle the workload but never the session's ability to end cleanly.
fn timeline_frames(
    instance: &Instance,
    plan: &ShiftPlan,
    task_times: &[f64],
    max_requests: Option<usize>,
) -> Vec<Bytes> {
    let events = crate::dynamic::build_timeline(plan, task_times);
    let mut frames: Vec<Bytes> = events
        .iter()
        .map(|&(at, _, _, kind)| {
            match kind {
                EventKind::ShiftStart(w) => ServeRequest::CheckIn {
                    worker: w as u64,
                    at,
                    x: instance.workers[w].x,
                    y: instance.workers[w].y,
                },
                EventKind::ShiftEnd(w) => ServeRequest::CheckOut {
                    worker: w as u64,
                    at,
                },
                EventKind::Task(t) => ServeRequest::Task {
                    task: t as u64,
                    at,
                    x: instance.tasks[t].x,
                    y: instance.tasks[t].y,
                },
            }
            .encode()
        })
        .collect();
    if let Some(cap) = max_requests {
        frames.truncate(cap);
    }
    frames
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    let idx = ((p / 100.0) * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[idx]
}

/// Everything a session resolves by name, plus the validated chaos knobs.
struct Resolved {
    mechanism: Arc<dyn ReportMechanism>,
    matcher: Arc<dyn DynamicAssignStrategy>,
    scenario: Arc<dyn Scenario>,
    fault_plan: Option<Arc<dyn FaultPlan>>,
    fault_rate: f64,
    shed_policy: ShedPolicy,
}

/// Validates the config and resolves every registry name — all typed
/// errors surface here, before any thread spawns.
fn resolve(config: &ServeConfig) -> Result<Resolved, PipelineError> {
    if !(config.batch_interval.is_finite() && config.batch_interval > 0.0) {
        return Err(PipelineError::InvalidConfig {
            field: "batch-interval",
            why: "Δt must be a positive, finite number of virtual seconds",
        });
    }
    if !(config.qps.is_finite() && config.qps >= 0.0) {
        return Err(PipelineError::InvalidConfig {
            field: "qps",
            why: "must be 0 (unthrottled) or a positive, finite rate",
        });
    }
    if config.fault_rate.is_some() && config.fault_plan.is_none() {
        return Err(PipelineError::InvalidConfig {
            field: "fault-rate",
            why: "needs --fault-plan: a rate without a plan injects nothing",
        });
    }
    let fault_rate = config.fault_rate.unwrap_or(DEFAULT_FAULT_RATE);
    if !(fault_rate.is_finite() && (0.0..=1.0).contains(&fault_rate)) {
        return Err(PipelineError::InvalidConfig {
            field: "fault-rate",
            why: "must be a probability in [0, 1]",
        });
    }
    if config.queue_cap == Some(0) {
        return Err(PipelineError::InvalidConfig {
            field: "queue-cap",
            why: "a bounded queue must admit at least one task",
        });
    }
    if config.shed_policy.is_some() && config.queue_cap.is_none() {
        return Err(PipelineError::InvalidConfig {
            field: "shed-policy",
            why: "needs --queue-cap: shedding only applies to a bounded queue",
        });
    }
    let shed_policy = match config.shed_policy.as_deref() {
        Some(name) => ShedPolicy::parse(name)?,
        None => ShedPolicy::DropNewest,
    };
    let mechanism =
        registry()
            .mechanism(&config.mechanism)
            .ok_or_else(|| PipelineError::UnknownEntry {
                kind: "mechanism",
                name: config.mechanism.clone(),
                known: registry()
                    .mechanisms()
                    .iter()
                    .map(|m| m.name().to_string())
                    .collect(),
            })?;
    let matcher = registry().require_dynamic_matcher(&config.matcher)?;
    let scenario =
        registry().require_scenario(config.scenario.as_deref().unwrap_or(DEFAULT_SCENARIO))?;
    let fault_plan = match config.fault_plan.as_deref() {
        Some(name) => Some(registry().require_fault_plan(name)?),
        None => None,
    };
    Ok(Resolved {
        mechanism,
        matcher,
        scenario,
        fault_plan,
        fault_rate,
        shed_policy,
    })
}

/// Assembles the report from session stats — shared by the paced driver
/// and the raw-script ingress, so both speak the identical artifact.
fn build_outcome(
    config: &ServeConfig,
    resolved: &Resolved,
    stats: SessionStats,
    injected: usize,
) -> ServeOutcome {
    let assigned = stats
        .assignments
        .iter()
        .filter(|(_, slot)| slot.is_some())
        .count();
    let dropped = stats.assignments.len() - assigned;
    let arrived = stats.assignments.len();
    let latency = if config.timings && !stats.latencies_ms.is_empty() {
        let mut sorted = stats.latencies_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        Some(ServeLatency {
            p50_ms: percentile(&sorted, 50.0),
            p95_ms: percentile(&sorted, 95.0),
            p99_ms: percentile(&sorted, 99.0),
            max_ms: sorted[sorted.len() - 1],
        })
    } else {
        None
    };
    let corrupt: usize = stats.corrupt_classes.values().sum();
    let anomalies =
        injected + corrupt + stats.duplicates + stats.shed + stats.retried + stats.expired;
    // The block appears when chaos was *configured* (even if nothing
    // fired — zeros are informative there) or when an anomaly actually
    // occurred; otherwise it is skipped so pre-fault goldens hold.
    let faults =
        (config.fault_plan.is_some() || config.queue_cap.is_some() || anomalies > 0).then(|| {
            FaultReport {
                plan: resolved.fault_plan.as_ref().map(|p| p.name().to_string()),
                rate: resolved.fault_plan.is_some().then_some(resolved.fault_rate),
                queue_cap: config.queue_cap,
                shed_policy: config
                    .queue_cap
                    .is_some()
                    .then(|| resolved.shed_policy.name().to_string()),
                injected,
                corrupt,
                corrupt_classes: stats.corrupt_classes.clone(),
                duplicates: stats.duplicates,
                submitted: stats.submitted,
                shed: stats.shed,
                retried: stats.retried,
                expired: stats.expired,
            }
        });
    let report = ServeReport {
        scenario: (resolved.scenario.name() != DEFAULT_SCENARIO)
            .then(|| resolved.scenario.name().to_string()),
        mechanism: config.mechanism.clone(),
        matcher: config.matcher.clone(),
        plan: config.plan.clone(),
        num_tasks: config.num_tasks,
        num_workers: config.num_workers,
        epsilon: config.epsilon,
        seed: config.seed,
        batch_interval: config.batch_interval,
        requests: stats.requests,
        batches: stats.batches,
        assigned,
        dropped,
        assignment_rate: if arrived == 0 {
            1.0
        } else {
            assigned as f64 / arrived as f64
        },
        drop_rate: if arrived == 0 {
            0.0
        } else {
            dropped as f64 / arrived as f64
        },
        total_distance: stats.total_distance,
        peak_queue_depth: stats.peak_queue,
        mean_queue_depth: if stats.batches == 0 {
            0.0
        } else {
            stats.queue_sum as f64 / stats.batches as f64
        },
        assignment_fingerprint: assignment_fingerprint(&stats.assignments),
        latency,
        faults,
    };
    ServeOutcome {
        report,
        assignments: stats.assignments,
    }
}

/// Runs one complete serve session: spawns the resident service on a
/// scoped thread, replays the seed-derived request timeline — rewritten
/// by the configured fault plan, if any — through the built-in load
/// generator at [`ServeConfig::qps`], and joins cleanly before returning;
/// no thread outlives this call.
///
/// The returned assignments are a pure function of
/// `(seed, plan, batch_interval)` plus the chaos knobs (see the module
/// docs); QPS and `threads` trade wall-clock for delivery pacing and
/// cores, never results.
pub fn run_serve(config: &ServeConfig) -> Result<ServeOutcome, PipelineError> {
    let resolved = resolve(config)?;

    // The same workload derivation as `pombm dynamic`: instance, arrival
    // times and shift plan are all pure functions of the seed (and, for
    // the `uniform` default, the exact pre-scenario streams).
    let scenario = &resolved.scenario;
    let instance = scenario.timeline_instance(config.seed, config.num_tasks, config.num_workers);
    let task_times = scenario.task_times(config.seed, config.num_tasks);
    let plan = scenario.shift_plan(&config.plan, config.num_workers, config.seed)?;
    let mut frames = timeline_frames(&instance, &plan, &task_times, config.max_requests);
    let injected = match resolved.fault_plan.as_deref() {
        Some(fault_plan) => {
            // Injection rewrites the script *before* delivery starts, off
            // its own stream: faults are invariant under pacing/threads
            // and never perturb the workload or obfuscation draws.
            let mut fault_rng = seeded_rng(config.seed, FAULT_STREAM);
            let (mutated, injected) = fault_plan.inject(
                std::mem::take(&mut frames),
                resolved.fault_rate,
                &mut fault_rng,
            );
            frames = mutated;
            injected
        }
        None => 0,
    };
    // Appended after injection: chaos may mangle the workload, never the
    // session's ability to end cleanly.
    frames.push(ServeRequest::Shutdown.encode());

    let server = Server::new(instance.region, config.grid_side, config.seed ^ 0xD1CE);
    let (tx, rx) = mpsc::channel::<Bytes>();
    let pause = (config.qps > 0.0).then(|| Duration::from_secs_f64(1.0 / config.qps));
    let result: parking_lot::Mutex<Option<Result<SessionStats, PipelineError>>> =
        parking_lot::Mutex::new(None);
    crossbeam::thread::scope(|scope| {
        let slot = &result;
        let server = &server;
        let mechanism = resolved.mechanism.as_ref();
        let matcher = resolved.matcher.as_ref();
        scope.spawn(move |_| {
            *slot.lock() = Some(serve_stream(rx, mechanism, matcher, server, config));
        });
        for frame in frames {
            if tx.send(frame).is_err() {
                break; // The service ended early (error path): stop pacing.
            }
            if let Some(pause) = pause {
                std::thread::sleep(pause);
            }
        }
        drop(tx); // Hang up; the service drains its buffers and exits.
    })
    .expect("serve threads do not panic");
    // The scope joined the service thread above, so the session is over
    // and the slot is filled: clean shutdown is structural.
    let stats = result
        .into_inner()
        .expect("the serve loop always reports")?;
    Ok(build_outcome(config, &resolved, stats, injected))
}

/// Drives one session over a raw frame script on the calling thread — no
/// load generator, no pacing, no fault injection: the replay-and-test
/// ingress. The server grid is derived from the configured scenario
/// exactly as in [`run_serve`], so a script captured from the generator
/// replays against the same published artifacts. A script that ends
/// without a shutdown frame is drained and counted as a
/// [`CHANNEL_CLOSED`] anomaly; the report is well-formed either way.
pub fn serve_frames(
    config: &ServeConfig,
    frames: Vec<Bytes>,
) -> Result<ServeOutcome, PipelineError> {
    let resolved = resolve(config)?;
    let instance =
        resolved
            .scenario
            .timeline_instance(config.seed, config.num_tasks, config.num_workers);
    let server = Server::new(instance.region, config.grid_side, config.seed ^ 0xD1CE);
    let stats = serve_stream(
        frames,
        resolved.mechanism.as_ref(),
        resolved.matcher.as_ref(),
        &server,
        config,
    )?;
    Ok(build_outcome(config, &resolved, stats, 0))
}
