//! Deterministic fault injection and overload-shedding policy for the
//! serve transport — chaos that is itself a seedable, replayable axis.
//!
//! PR 7 proved the serve happy path is a pure function of
//! `(seed, plan, batch_interval)`; this module makes the *unhappy* paths
//! equally pure. A [`FaultPlan`] rewrites the load generator's frame
//! script **between the generator and the engine**, drawing every
//! decision from one dedicated RNG stream ([`FAULT_STREAM`]), so each
//! injected fault is a pure function of `(seed, plan name, rate)` — the
//! same golden-fingerprint treatment the clean path gets, extended to
//! degraded operation. Plans are catalogued in the
//! [`crate::registry`] next to mechanisms, matchers and scenarios.
//!
//! # Registered fault plans
//!
//! * `none` — the identity plan: frames pass through untouched.
//! * `flaky-wire` — each frame is, with probability `rate`, corrupted on
//!   the wire: truncated at a random byte, stamped with an unknown
//!   opcode, or given a lying length prefix. Every corruption shape
//!   decodes to a typed [`PipelineError::Transport`] error, which the
//!   serve engine counts per class and survives.
//! * `dup-storm` — each frame is, with probability `rate`, delivered
//!   twice (at-least-once delivery). The engine's admission layer
//!   deduplicates by id, so a duplicate storm must leave the assignment
//!   fingerprint byte-identical to the clean run — pinned by test.
//! * `burst` — arrival-time compression: every timestamp is pulled
//!   toward the start of its [`BURST_WINDOW`]-second bucket with
//!   strength `rate` (`rate = 1` collapses whole buckets onto one
//!   instant). No frame is lost or reordered; the warp regroups the Δt
//!   windows and piles tasks up, which is what makes a bounded admission
//!   queue shed.
//!
//! # Shedding policies
//!
//! Independently of injection, `--queue-cap` bounds the engine's task
//! admission queue and a [`ShedPolicy`] decides what gives way when it
//! overflows — see the policy docs and the serve module's degraded-mode
//! section for the retry/expiry semantics.

use crate::algorithm::PipelineError;
use crate::serve::ServeRequest;
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::Rng;

/// The RNG stream id every fault plan draws from — disjoint from the
/// workload (`0xD1CE_*`) and sweep streams, so injecting faults never
/// perturbs the clean-path noise schedule.
pub const FAULT_STREAM: u64 = 0xFA17_0001;

/// The bucket width, in virtual seconds, the `burst` plan compresses
/// arrival times within.
pub const BURST_WINDOW: f64 = 50.0;

/// Firing probability used when a fault plan is configured without an
/// explicit rate.
pub const DEFAULT_FAULT_RATE: f64 = 0.25;

/// Retry budget for shed submissions under the counting policies
/// (`drop-newest`, `drop-oldest`); the `deadline` policy bounds retries
/// by virtual time instead.
pub const MAX_RETRIES: u32 = 3;

/// Deadline horizon, in Δt windows, granted to every task under the
/// `deadline` policy: a task expires once its next retry would land
/// after `arrival + DEADLINE_WINDOWS * batch_interval`.
pub const DEADLINE_WINDOWS: f64 = 4.0;

/// A named, seedable frame-stream fault model.
///
/// Object-safe, like the mechanism/matcher/scenario traits: registered
/// instances live behind `Arc<dyn FaultPlan>` in the
/// [`crate::registry`]. A plan rewrites the whole frame script before
/// delivery starts, which is what keeps injection invariant under
/// `--qps` pacing and thread counts: the wire already carries the
/// faults, however slowly it is replayed.
pub trait FaultPlan: Send + Sync {
    /// Registry name (lower-case; lookup is case-insensitive).
    fn name(&self) -> &'static str;

    /// One-line description for the CLI catalogue.
    fn summary(&self) -> &'static str;

    /// Rewrites the frame script, returning the delivered frames and the
    /// number of frames the plan touched (corrupted, duplicated or
    /// time-warped). Must be a pure function of `(frames, rate, rng)`
    /// and total: a frame the plan cannot parse passes through verbatim.
    fn inject(&self, frames: Vec<Bytes>, rate: f64, rng: &mut StdRng) -> (Vec<Bytes>, usize);
}

/// `none`: the identity plan (the default when no `--fault-plan` is
/// given); `rate` is ignored and the RNG is never drawn from.
pub struct NoFault;

impl FaultPlan for NoFault {
    fn name(&self) -> &'static str {
        "none"
    }

    fn summary(&self) -> &'static str {
        "identity plan: every frame is delivered exactly as generated"
    }

    fn inject(&self, frames: Vec<Bytes>, _rate: f64, _rng: &mut StdRng) -> (Vec<Bytes>, usize) {
        (frames, 0)
    }
}

/// `flaky-wire`: per-frame corruption. Exactly one gate draw per frame
/// keeps the decision schedule stable; the corruption shape and cut
/// point draw only when a fault fires.
pub struct FlakyWire;

impl FaultPlan for FlakyWire {
    fn name(&self) -> &'static str {
        "flaky-wire"
    }

    fn summary(&self) -> &'static str {
        "corrupts frames in flight: truncation, unknown opcode, lying length prefix"
    }

    fn inject(&self, frames: Vec<Bytes>, rate: f64, rng: &mut StdRng) -> (Vec<Bytes>, usize) {
        let mut injected = 0usize;
        let frames = frames
            .into_iter()
            .map(|frame| {
                if rng.gen::<f64>() >= rate {
                    return frame;
                }
                injected += 1;
                let mut raw = frame.to_vec();
                match rng.gen_range(0..3usize) {
                    // Truncate at a random byte (possibly to nothing):
                    // decodes to a typed "truncated frame" error.
                    0 if !raw.is_empty() => {
                        let cut = rng.gen_range(0..raw.len());
                        raw.truncate(cut);
                    }
                    // Stamp an opcode no decoder knows.
                    1 if raw.len() >= 5 => raw[4] = 0xEE,
                    // Lie in the length prefix: one byte longer than the
                    // payload that actually follows.
                    2 if raw.len() >= 5 => {
                        let lie = (raw.len() as u32 - 4) + 1;
                        raw[..4].copy_from_slice(&lie.to_be_bytes());
                    }
                    // Frames too short to carry an opcode or prefix just
                    // vanish entirely — the plan stays total.
                    _ => raw.clear(),
                }
                Bytes::from(raw)
            })
            .collect();
        (frames, injected)
    }
}

/// `dup-storm`: at-least-once delivery — each frame is, with probability
/// `rate`, delivered twice back to back.
pub struct DupStorm;

impl FaultPlan for DupStorm {
    fn name(&self) -> &'static str {
        "dup-storm"
    }

    fn summary(&self) -> &'static str {
        "delivers frames twice at random: at-least-once semantics on the wire"
    }

    fn inject(&self, frames: Vec<Bytes>, rate: f64, rng: &mut StdRng) -> (Vec<Bytes>, usize) {
        let mut injected = 0usize;
        let mut out = Vec::with_capacity(frames.len());
        for frame in frames {
            let duplicate = rng.gen::<f64>() < rate;
            if duplicate {
                injected += 1;
                out.push(frame.clone());
            }
            out.push(frame);
        }
        (out, injected)
    }
}

/// `burst`: arrival-time compression. Every decodable frame's timestamp
/// is pulled toward the start of its [`BURST_WINDOW`] bucket with
/// strength `rate`; relative order within and across buckets is
/// preserved, so a time-sorted script stays time-sorted. Draws nothing
/// from the RNG: the warp is a pure function of `(at, rate)`.
pub struct Burst;

impl FaultPlan for Burst {
    fn name(&self) -> &'static str {
        "burst"
    }

    fn summary(&self) -> &'static str {
        "compresses arrival times into bursts at bucket starts (overload pressure)"
    }

    fn inject(&self, frames: Vec<Bytes>, rate: f64, _rng: &mut StdRng) -> (Vec<Bytes>, usize) {
        if rate <= 0.0 {
            // Identity strength: skip the decode/re-encode pass outright
            // (f64 `bucket + (at - bucket)` does not round-trip exactly).
            return (frames, 0);
        }
        let warp = |at: f64| {
            let bucket = (at / BURST_WINDOW).floor() * BURST_WINDOW;
            bucket + (at - bucket) * (1.0 - rate)
        };
        let mut injected = 0usize;
        let frames = frames
            .into_iter()
            .map(|frame| {
                let mut cursor = frame.clone();
                let Ok(request) = ServeRequest::decode(&mut cursor) else {
                    return frame; // total: unparseable frames pass through
                };
                let warped = match request {
                    ServeRequest::CheckIn { worker, at, x, y } => ServeRequest::CheckIn {
                        worker,
                        at: warp(at),
                        x,
                        y,
                    },
                    ServeRequest::CheckOut { worker, at } => ServeRequest::CheckOut {
                        worker,
                        at: warp(at),
                    },
                    ServeRequest::Task { task, at, x, y } => ServeRequest::Task {
                        task,
                        at: warp(at),
                        x,
                        y,
                    },
                    ServeRequest::Shutdown => ServeRequest::Shutdown,
                };
                if warped == request {
                    frame
                } else {
                    injected += 1;
                    warped.encode()
                }
            })
            .collect();
        (frames, injected)
    }
}

/// What gives way when the bounded admission queue overflows.
///
/// All three policies shed at *admission* time (the queue itself never
/// exceeds `--queue-cap`); they differ in which task is shed and what
/// bounds its retries — see [`crate::serve`] for the virtual-time
/// backoff schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// The arriving task is shed; queued work is never disturbed.
    DropNewest,
    /// The oldest queued task is shed to make room for the newcomer.
    DropOldest,
    /// Like `drop-newest` at admission, but a shed task's retries are
    /// bounded by a virtual-time deadline
    /// ([`DEADLINE_WINDOWS`]` × Δt` past its arrival) instead of a
    /// retry count; a task whose next retry would miss the deadline
    /// *expires* — a terminal state the report counts separately from
    /// `shed`.
    Deadline,
}

impl ShedPolicy {
    /// Every registered policy name, in listing order.
    pub const NAMES: [&'static str; 3] = ["drop-newest", "drop-oldest", "deadline"];

    /// Case-insensitive lookup with a listing-rich typed error.
    pub fn parse(name: &str) -> Result<Self, PipelineError> {
        match name.to_ascii_lowercase().as_str() {
            "drop-newest" => Ok(ShedPolicy::DropNewest),
            "drop-oldest" => Ok(ShedPolicy::DropOldest),
            "deadline" => Ok(ShedPolicy::Deadline),
            _ => Err(PipelineError::UnknownEntry {
                kind: "shed policy",
                name: name.to_string(),
                known: Self::NAMES.iter().map(|n| n.to_string()).collect(),
            }),
        }
    }

    /// Registry name.
    pub fn name(self) -> &'static str {
        match self {
            ShedPolicy::DropNewest => "drop-newest",
            ShedPolicy::DropOldest => "drop-oldest",
            ShedPolicy::Deadline => "deadline",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pombm_geom::seeded_rng;

    fn script() -> Vec<Bytes> {
        (0..64)
            .map(|i| {
                ServeRequest::Task {
                    task: i,
                    at: i as f64 * 3.0,
                    x: 1.0,
                    y: 2.0,
                }
                .encode()
            })
            .collect()
    }

    #[test]
    fn none_is_the_identity() {
        let frames = script();
        let mut rng = seeded_rng(1, FAULT_STREAM);
        let (out, injected) = NoFault.inject(frames.clone(), 1.0, &mut rng);
        assert_eq!(out, frames);
        assert_eq!(injected, 0);
    }

    #[test]
    fn injection_is_a_pure_function_of_seed_plan_rate() {
        for plan in [
            &FlakyWire as &dyn FaultPlan,
            &DupStorm as &dyn FaultPlan,
            &Burst as &dyn FaultPlan,
        ] {
            let (a, na) = plan.inject(script(), 0.4, &mut seeded_rng(9, FAULT_STREAM));
            let (b, nb) = plan.inject(script(), 0.4, &mut seeded_rng(9, FAULT_STREAM));
            assert_eq!(a, b, "{} must replay byte-identically", plan.name());
            assert_eq!(na, nb);
            assert!(na > 0, "{} at rate 0.4 must fire on 64 frames", plan.name());
            let (_, zero) = plan.inject(script(), 0.0, &mut seeded_rng(9, FAULT_STREAM));
            assert_eq!(zero, 0, "{} at rate 0 must be silent", plan.name());
        }
    }

    #[test]
    fn flaky_wire_corruptions_decode_to_typed_transport_errors() {
        let mut rng = seeded_rng(3, FAULT_STREAM);
        let (frames, injected) = FlakyWire.inject(script(), 1.0, &mut rng);
        assert_eq!(injected, 64, "rate 1.0 corrupts every frame");
        for mut frame in frames {
            assert!(
                matches!(
                    ServeRequest::decode(&mut frame),
                    Err(PipelineError::Transport { .. })
                ),
                "every flaky-wire shape must be a typed decode error"
            );
        }
    }

    #[test]
    fn dup_storm_preserves_order_and_only_duplicates() {
        let mut rng = seeded_rng(5, FAULT_STREAM);
        let (frames, injected) = DupStorm.inject(script(), 0.5, &mut rng);
        assert_eq!(frames.len(), 64 + injected);
        // Every frame decodes, and task ids are non-decreasing (order
        // preserved; duplicates adjacent).
        let mut last = 0u64;
        for mut frame in frames {
            let ServeRequest::Task { task, .. } = ServeRequest::decode(&mut frame).unwrap() else {
                panic!("dup-storm never changes frame kinds");
            };
            assert!(task == last || task == last + 1);
            last = task;
        }
    }

    #[test]
    fn burst_compresses_but_never_reorders() {
        let mut rng = seeded_rng(7, FAULT_STREAM);
        let (frames, injected) = Burst.inject(script(), 1.0, &mut rng);
        assert!(injected > 0);
        let mut previous = f64::NEG_INFINITY;
        for mut frame in frames {
            let ServeRequest::Task { at, .. } = ServeRequest::decode(&mut frame).unwrap() else {
                panic!("burst never changes frame kinds");
            };
            assert!(at >= previous, "time-sorted scripts stay time-sorted");
            assert_eq!(
                at % BURST_WINDOW,
                0.0,
                "rate 1.0 collapses onto bucket starts"
            );
            previous = at;
        }
    }

    #[test]
    fn burst_is_total_over_garbage() {
        let garbage = vec![Bytes::from(vec![0xFFu8; 3])];
        let mut rng = seeded_rng(1, FAULT_STREAM);
        let (out, injected) = Burst.inject(garbage.clone(), 1.0, &mut rng);
        assert_eq!(out, garbage, "unparseable frames pass through verbatim");
        assert_eq!(injected, 0);
    }

    #[test]
    fn shed_policies_parse_case_insensitively() {
        assert_eq!(
            ShedPolicy::parse("Drop-Newest").unwrap(),
            ShedPolicy::DropNewest
        );
        assert_eq!(
            ShedPolicy::parse("drop-oldest").unwrap(),
            ShedPolicy::DropOldest
        );
        assert_eq!(ShedPolicy::parse("DEADLINE").unwrap(), ShedPolicy::Deadline);
        let err = ShedPolicy::parse("bogus").unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("unknown shed policy `bogus`") && msg.contains("drop-oldest"),
            "{msg}"
        );
        for name in ShedPolicy::NAMES {
            assert_eq!(ShedPolicy::parse(name).unwrap().name(), name);
        }
    }
}
