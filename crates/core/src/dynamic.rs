//! Event-driven simulation: task assignment over a shifting worker fleet.
//!
//! Extends the paper's static model (all workers registered upfront) to a
//! timeline where workers start and end shifts while tasks stream in:
//!
//! * **shift start** — the worker obfuscates its current location with the
//!   run's [`ReportMechanism`] and registers; one ε charge per shift;
//! * **shift end** — an unassigned worker withdraws from the pool;
//!   a worker already assigned keeps its task (departure is a no-op);
//! * **task arrival** — the pool's [`DynamicAssignStrategy`] assigns an
//!   available worker (Alg. 4's tree walk for `hst-greedy`), or *drops* the
//!   task if the pool is momentarily empty — the paper's matching-size
//!   objective shows up here as the drop rate.
//!
//! Events are replayed in time order with a deterministic tie order
//! (arrivals before departures before tasks at equal timestamps, then by
//! id) so runs are reproducible.
//!
//! Unlike the static driver, the dynamic driver does **not** use the
//! batched obfuscation path
//! ([`ReportMechanism::report_batch`](crate::algorithm::ReportMechanism::report_batch)):
//! reports are interleaved with pool mutations on one event-ordered RNG
//! stream, and that schedule is frozen by the golden fingerprints in
//! `tests/dynamic.rs` — batching across events would reorder draws and
//! change every pinned outcome. Dynamic cells therefore stay
//! event-sequential by contract; dynamic *sweeps* parallelize across
//! cells (`--shards`) instead. The micro-batched service mode
//! ([`crate::serve`]) replays the *same* timeline (via the shared
//! builder) under a deliberately different, Δt-windowed RNG schedule —
//! its own golden fingerprints pin that schedule separately. Serve adds
//! one more seedable axis on top of the shared timeline: a
//! [`crate::fault`] plan may rewrite the encoded frame script (corrupt,
//! duplicate or time-compress it) off a dedicated RNG stream before
//! delivery, without ever touching the timeline builder or the workload
//! streams this driver replays — faulted serve runs are pinned by their
//! own goldens while every dynamic fingerprint here stays frozen.
//!
//! Like the static pipeline, the dynamic pipeline is a free
//! `mechanism × matcher` product: [`run_dynamic_spec`] drives any
//! registered (or custom) [`ReportMechanism`] against any registered (or
//! custom) [`DynamicAssignStrategy`] — `hst-greedy`, `kd-rebuild` and
//! `random` ship in the [`registry`](crate::registry::registry).
//!
//! # The clairvoyant benchmark
//!
//! Every online matcher above decides under uncertainty: it commits a
//! worker the moment a task arrives, never knowing what arrives next.
//! The natural yardstick is the same one Definition 8 uses for the
//! static model — the exact offline optimum — transplanted to the
//! timeline: a clairvoyant solver that sees every arrival time and shift
//! window up front and picks the assignment maximizing matched tasks,
//! then minimizing total distance. That solver is registered in the same
//! dynamic-matcher catalog as `dynamic-opt`, but with the
//! [`Role::OracleOnly`](crate::registry::Role) role: it can never be
//! asked to drive this event loop (its `pool()` is a typed
//! `RoleMismatch`), only to price a revealed timeline via
//! [`crate::ratio::dynamic_offline_optimum`], which is what
//! [`crate::ratio::dynamic_competitive_ratio`] and the dynamic sweep's
//! `ratio` columns divide by.
//!
//! # Adding a custom dynamic matcher
//!
//! Implement one trait; the strategy builds a fresh pool per run:
//!
//! ```
//! use pombm::algorithm::{
//!     DynamicAssignStrategy, DynamicWorkerPool, PipelineError, Report,
//! };
//! use pombm::Server;
//! use rand::rngs::StdRng;
//!
//! /// Last-in-first-out assignment: always take the newest live worker.
//! struct Lifo;
//! impl DynamicAssignStrategy for Lifo {
//!     fn name(&self) -> &'static str { "lifo" }
//!     fn summary(&self) -> &'static str { "newest live worker wins" }
//!     fn needs_server(&self) -> bool { false }
//!     fn pool<'a>(&self, _server: Option<&'a Server>)
//!         -> Result<Box<dyn DynamicWorkerPool + 'a>, PipelineError>
//!     {
//!         struct P(Vec<u64>);
//!         impl DynamicWorkerPool for P {
//!             fn insert(&mut self, id: u64, _r: Report) -> Result<(), PipelineError> {
//!                 self.0.push(id);
//!                 Ok(())
//!             }
//!             fn withdraw(&mut self, id: u64) -> bool {
//!                 let n = self.0.len();
//!                 self.0.retain(|&w| w != id);
//!                 self.0.len() < n
//!             }
//!             fn assign(&mut self, _r: Report, _rng: &mut StdRng)
//!                 -> Result<Option<u64>, PipelineError> { Ok(self.0.pop()) }
//!             fn available(&self) -> usize { self.0.len() }
//!         }
//!         Ok(Box::new(P(Vec::new())))
//!     }
//! }
//! ```

use crate::algorithm::{DynamicAssignStrategy, PipelineError, ReportMechanism};
use crate::registry::registry;
use crate::server::Server;
use pombm_geom::seeded_rng;
use pombm_privacy::Epsilon;
use pombm_workload::shifts::ShiftPlan;
use pombm_workload::Instance;
use serde::{Deserialize, Serialize};

/// Configuration of a dynamic-fleet simulation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DynamicConfig {
    /// Privacy budget per report.
    pub epsilon: f64,
    /// Predefined-point grid side.
    pub grid_side: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        DynamicConfig {
            epsilon: 0.6,
            grid_side: 32,
            seed: 0,
        }
    }
}

impl crate::pipeline::CommonConfig for DynamicConfig {
    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn grid_side(&self) -> usize {
        self.grid_side
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    // `threads` stays at the trait's sequential default: the event loop
    // processes one timeline event at a time and has no parallel path.
}

/// Outcome of a dynamic simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DynamicOutcome {
    /// Assigned `(task index, worker index)` pairs in assignment order.
    pub pairs: Vec<(usize, usize)>,
    /// Tasks that arrived while no worker was available.
    pub dropped_tasks: usize,
    /// Total true-location travel distance of the assigned pairs.
    pub total_distance: f64,
    /// Largest number of simultaneously available workers observed.
    pub peak_available: usize,
}

impl DynamicOutcome {
    /// Assigned fraction of all arrived tasks.
    pub fn assignment_rate(&self) -> f64 {
        let total = self.pairs.len() + self.dropped_tasks;
        if total == 0 {
            return 1.0;
        }
        self.pairs.len() as f64 / total as f64
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum EventKind {
    // Variant order is the tie order at equal timestamps.
    ShiftStart(usize),
    ShiftEnd(usize),
    Task(usize),
}

/// One timeline entry: `(timestamp, tie class, id, event)`. The tie class
/// mirrors the [`EventKind`] variant order so equal-timestamp events sort
/// ShiftStart < ShiftEnd < Task, then by id.
pub(crate) type TimelineEvent = (f64, u8, usize, EventKind);

/// Builds the unified, deterministically ordered shift/task timeline that
/// both the event-sequential driver ([`run_dynamic_spec`]) and the
/// micro-batched serve loop ([`crate::serve`]) replay — a pure function
/// of `(plan, task_times)`, which is what makes a serve run a
/// byte-checkable artifact.
///
/// # Panics
///
/// Panics on a non-finite timestamp.
pub(crate) fn build_timeline(plan: &ShiftPlan, task_times: &[f64]) -> Vec<TimelineEvent> {
    let mut events: Vec<TimelineEvent> = Vec::new();
    for s in &plan.shifts {
        events.push((s.start, 0, s.worker, EventKind::ShiftStart(s.worker)));
        events.push((s.end, 1, s.worker, EventKind::ShiftEnd(s.worker)));
    }
    for (t, &at) in task_times.iter().enumerate() {
        events.push((at, 2, t, EventKind::Task(t)));
    }
    events.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .expect("finite timestamps")
            .then(a.1.cmp(&b.1))
            .then(a.2.cmp(&b.2))
    });
    events
}

/// Replays `plan` against the tasks of `instance` (task `i` arrives at
/// `task_times[i]`) and returns the assignment outcome.
///
/// # Panics
///
/// Panics if `task_times` and the instance's task count differ, or the
/// plan's worker count does not match the instance.
pub fn run_dynamic(
    instance: &Instance,
    task_times: &[f64],
    plan: &ShiftPlan,
    config: &DynamicConfig,
) -> DynamicOutcome {
    let mechanism = registry().mechanism("hst").expect("hst is registered");
    run_dynamic_with(instance, task_times, plan, config, mechanism.as_ref())
        .expect("the hst mechanism always produces tree reports")
}

/// [`run_dynamic`] with an explicit reporting mechanism: any registered
/// (or custom) [`ReportMechanism`] whose reports can be interpreted on the
/// published tree — planar reports are snapped, like the paper's Lap-HG.
/// Stage 2 stays the paper's tree-greedy pool (`hst-greedy`).
pub fn run_dynamic_with(
    instance: &Instance,
    task_times: &[f64],
    plan: &ShiftPlan,
    config: &DynamicConfig,
    mechanism: &dyn ReportMechanism,
) -> Result<DynamicOutcome, PipelineError> {
    let matcher = registry()
        .dynamic_matcher("hst-greedy")
        .expect("hst-greedy is registered");
    run_dynamic_spec(
        instance,
        task_times,
        plan,
        config,
        mechanism,
        matcher.as_ref(),
    )
}

/// The generic dynamic driver: replays the shift/task timeline of `plan`
/// and `task_times` through any `mechanism × dynamic-matcher` pairing.
///
/// RNG discipline matches the static [`crate::run_spec`] driver: the
/// mechanism draws from one seeded stream (so a pairing's obfuscation noise
/// is independent of the matcher choice) and randomized matchers draw from
/// a dedicated tie-break stream. For the `hst-greedy` matcher this is
/// seed-for-seed identical to the pre-registry hardwired driver.
///
/// # Panics
///
/// Panics if `task_times` and the instance's task count differ, or the
/// plan's worker count does not match the instance.
pub fn run_dynamic_spec(
    instance: &Instance,
    task_times: &[f64],
    plan: &ShiftPlan,
    config: &DynamicConfig,
    mechanism: &dyn ReportMechanism,
    matcher: &dyn DynamicAssignStrategy,
) -> Result<DynamicOutcome, PipelineError> {
    assert_eq!(
        task_times.len(),
        instance.num_tasks(),
        "one arrival time per task"
    );
    assert_eq!(
        plan.shifts.len(),
        instance.num_workers(),
        "one shift per worker"
    );

    let server = Server::new(instance.region, config.grid_side, config.seed ^ 0xD1CE);
    let epsilon = Epsilon::new(config.epsilon);
    let mut reporter = mechanism.reporter(epsilon, Some(&server))?;
    let mut rng = seeded_rng(config.seed, 0xD1CE_0001);
    let mut tie_rng = seeded_rng(config.seed, 0xD1CE_0002);

    let events = build_timeline(plan, task_times);

    let mut pool = matcher.pool(Some(&server))?;
    let mut pairs = Vec::new();
    let mut dropped = 0usize;
    let mut peak = 0usize;

    for &(_, _, _, kind) in &events {
        match kind {
            EventKind::ShiftStart(w) => {
                let report = reporter.report(&instance.workers[w], &mut rng);
                pool.insert(w as u64, report)?;
                peak = peak.max(pool.available());
            }
            EventKind::ShiftEnd(w) => {
                // No-op if the worker was already assigned.
                let _ = pool.withdraw(w as u64);
            }
            EventKind::Task(t) => {
                let report = reporter.report(&instance.tasks[t], &mut rng);
                match pool.assign(report, &mut tie_rng)? {
                    Some(w) => pairs.push((t, w as usize)),
                    None => dropped += 1,
                }
            }
        }
    }

    let total_distance = pairs
        .iter()
        .map(|&(t, w)| instance.tasks[t].dist(&instance.workers[w]))
        .sum();
    Ok(DynamicOutcome {
        pairs,
        dropped_tasks: dropped,
        total_distance,
        peak_available: peak,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::ArrivalProcess;
    use pombm_workload::{synthetic, SyntheticParams};

    fn instance(tasks: usize, workers: usize, seed: u64) -> Instance {
        let params = SyntheticParams {
            num_tasks: tasks,
            num_workers: workers,
            ..SyntheticParams::default()
        };
        synthetic::generate(&params, &mut seeded_rng(seed, 0))
    }

    fn uniform_times(n: usize, horizon: f64, seed: u64) -> Vec<f64> {
        let mut rng = seeded_rng(seed, 99);
        ArrivalProcess::Uniform {
            window_secs: horizon,
        }
        .timestamps(n, &mut rng)
    }

    #[test]
    fn always_on_fleet_drops_nothing() {
        let inst = instance(60, 120, 1);
        // Shifts end (exclusively) at the horizon and departures process
        // before equal-timestamp tasks, so arrivals must stay strictly
        // inside the window.
        let times = uniform_times(60, 100.0, 1);
        let plan = ShiftPlan::always_on(120, 101.0);
        let out = run_dynamic(&inst, &times, &plan, &DynamicConfig::default());
        assert_eq!(out.dropped_tasks, 0);
        assert_eq!(out.pairs.len(), 60);
        assert_eq!(out.assignment_rate(), 1.0);
        assert!(out.total_distance > 0.0);
        assert_eq!(out.peak_available, 120, "all workers registered at t=0");
    }

    #[test]
    fn sparse_shifts_drop_tasks() {
        // Short shifts with low coverage: some tasks must find an empty
        // pool.
        let inst = instance(100, 40, 2);
        let times = uniform_times(100, 1000.0, 2);
        let plan = ShiftPlan::uniform(40, 1000.0, 5.0, 15.0, &mut seeded_rng(3, 0));
        let out = run_dynamic(&inst, &times, &plan, &DynamicConfig::default());
        assert!(
            out.dropped_tasks > 0,
            "expected drops under sparse coverage"
        );
        assert!(out.assignment_rate() < 1.0);
        assert_eq!(out.pairs.len() + out.dropped_tasks, 100);
    }

    #[test]
    fn no_worker_serves_twice_and_only_on_shift_workers_serve() {
        let inst = instance(80, 60, 3);
        let times = uniform_times(80, 200.0, 3);
        let plan = ShiftPlan::uniform(60, 200.0, 50.0, 100.0, &mut seeded_rng(4, 0));
        let out = run_dynamic(&inst, &times, &plan, &DynamicConfig::default());
        let mut seen = std::collections::HashSet::new();
        for &(_, w) in &out.pairs {
            assert!(seen.insert(w), "worker {w} assigned twice");
        }
    }

    #[test]
    fn runs_are_reproducible() {
        let inst = instance(50, 50, 5);
        let times = uniform_times(50, 100.0, 5);
        let plan = ShiftPlan::uniform(50, 100.0, 20.0, 60.0, &mut seeded_rng(6, 0));
        let a = run_dynamic(&inst, &times, &plan, &DynamicConfig::default());
        let b = run_dynamic(&inst, &times, &plan, &DynamicConfig::default());
        assert_eq!(a.pairs, b.pairs);
        assert_eq!(a.total_distance, b.total_distance);
    }

    #[test]
    fn higher_coverage_assigns_more() {
        let inst = instance(120, 50, 7);
        let times = uniform_times(120, 500.0, 7);
        let short = ShiftPlan::uniform(50, 500.0, 10.0, 20.0, &mut seeded_rng(8, 0));
        let long = ShiftPlan::uniform(50, 500.0, 200.0, 400.0, &mut seeded_rng(8, 0));
        let cfg = DynamicConfig::default();
        let a = run_dynamic(&inst, &times, &short, &cfg);
        let b = run_dynamic(&inst, &times, &long, &cfg);
        assert!(
            b.pairs.len() > a.pairs.len(),
            "longer shifts ({}) should assign more than shorter ({})",
            b.pairs.len(),
            a.pairs.len()
        );
    }

    #[test]
    fn laplace_mechanism_drives_the_same_fleet() {
        // The dynamic pool accepts any location-reporting mechanism:
        // planar Laplace reports are snapped onto the tree (Lap-HG style).
        let inst = instance(60, 120, 4);
        let times = uniform_times(60, 100.0, 4);
        let plan = ShiftPlan::always_on(120, 101.0);
        let mechanism = registry().mechanism("laplace").unwrap();
        let out = run_dynamic_with(
            &inst,
            &times,
            &plan,
            &DynamicConfig::default(),
            mechanism.as_ref(),
        )
        .unwrap();
        assert_eq!(out.dropped_tasks, 0);
        assert_eq!(out.pairs.len(), 60);
        let hst = run_dynamic(&inst, &times, &plan, &DynamicConfig::default());
        assert_ne!(
            out.pairs, hst.pairs,
            "different mechanisms, different noise"
        );
    }

    #[test]
    fn blind_mechanism_is_rejected() {
        let inst = instance(5, 5, 6);
        let times = uniform_times(5, 10.0, 6);
        let plan = ShiftPlan::always_on(5, 11.0);
        let mechanism = registry().mechanism("blind").unwrap();
        let err = run_dynamic_with(
            &inst,
            &times,
            &plan,
            &DynamicConfig::default(),
            mechanism.as_ref(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("location"), "{err}");
    }

    #[test]
    #[should_panic(expected = "one arrival time per task")]
    fn mismatched_times_rejected() {
        let inst = instance(10, 10, 9);
        let plan = ShiftPlan::always_on(10, 10.0);
        let _ = run_dynamic(&inst, &[1.0], &plan, &DynamicConfig::default());
    }

    #[test]
    fn spec_driver_with_hst_greedy_matches_legacy_driver() {
        let inst = instance(70, 50, 12);
        let times = uniform_times(70, 300.0, 12);
        let plan = ShiftPlan::uniform(50, 300.0, 40.0, 120.0, &mut seeded_rng(13, 0));
        let config = DynamicConfig::default();
        for mech_name in ["hst", "laplace", "exp", "identity"] {
            let mechanism = registry().mechanism(mech_name).unwrap();
            let matcher = registry().dynamic_matcher("hst-greedy").unwrap();
            let legacy =
                run_dynamic_with(&inst, &times, &plan, &config, mechanism.as_ref()).unwrap();
            let spec = run_dynamic_spec(
                &inst,
                &times,
                &plan,
                &config,
                mechanism.as_ref(),
                matcher.as_ref(),
            )
            .unwrap();
            assert_eq!(legacy.pairs, spec.pairs, "{mech_name}");
            assert_eq!(legacy.total_distance, spec.total_distance, "{mech_name}");
            assert_eq!(legacy.peak_available, spec.peak_available, "{mech_name}");
        }
    }

    #[test]
    fn every_registered_dynamic_matcher_drives_the_fleet() {
        let inst = instance(60, 120, 4);
        let times = uniform_times(60, 100.0, 4);
        let plan = ShiftPlan::always_on(120, 101.0);
        let mechanism = registry().mechanism("identity").unwrap();
        for matcher in registry().dynamic_matchers() {
            let out = run_dynamic_spec(
                &inst,
                &times,
                &plan,
                &DynamicConfig::default(),
                mechanism.as_ref(),
                matcher.as_ref(),
            )
            .unwrap_or_else(|e| panic!("{}: {e}", matcher.name()));
            assert_eq!(out.dropped_tasks, 0, "{}", matcher.name());
            assert_eq!(out.pairs.len(), 60, "{}", matcher.name());
            assert_eq!(out.peak_available, 120, "{}", matcher.name());
            let mut seen = std::collections::HashSet::new();
            for &(_, w) in &out.pairs {
                assert!(
                    seen.insert(w),
                    "{}: worker {w} assigned twice",
                    matcher.name()
                );
            }
        }
    }

    #[test]
    fn kd_rebuild_beats_the_random_floor_on_distance() {
        let inst = instance(80, 160, 21);
        let times = uniform_times(80, 100.0, 21);
        let plan = ShiftPlan::always_on(160, 101.0);
        let config = DynamicConfig::default();
        let mechanism = registry().mechanism("identity").unwrap();
        let dist = |name: &str| {
            let matcher = registry().dynamic_matcher(name).unwrap();
            run_dynamic_spec(
                &inst,
                &times,
                &plan,
                &config,
                mechanism.as_ref(),
                matcher.as_ref(),
            )
            .unwrap()
            .total_distance
        };
        let kd = dist("kd-rebuild");
        let random = dist("random");
        assert!(
            kd < random / 2.0,
            "nearest-worker matching (kd {kd}) should beat the blind floor ({random}) widely"
        );
    }

    #[test]
    fn blind_mechanism_pairs_only_with_the_random_dynamic_matcher() {
        let inst = instance(30, 30, 6);
        let times = uniform_times(30, 50.0, 6);
        let plan = ShiftPlan::always_on(30, 51.0);
        let config = DynamicConfig::default();
        let mechanism = registry().mechanism("blind").unwrap();
        let random = registry().dynamic_matcher("random").unwrap();
        let out = run_dynamic_spec(
            &inst,
            &times,
            &plan,
            &config,
            mechanism.as_ref(),
            random.as_ref(),
        )
        .unwrap();
        assert_eq!(out.pairs.len(), 30, "blind x random is measurable");
        for name in ["hst-greedy", "kd-rebuild"] {
            let matcher = registry().dynamic_matcher(name).unwrap();
            let err = run_dynamic_spec(
                &inst,
                &times,
                &plan,
                &config,
                mechanism.as_ref(),
                matcher.as_ref(),
            )
            .unwrap_err();
            assert!(err.to_string().contains("location"), "{name}: {err}");
        }
    }

    #[test]
    fn random_dynamic_matcher_does_not_perturb_the_mechanism_stream() {
        // The random pool draws from the dedicated tie stream, so the
        // mechanism's obfuscation noise must be byte-identical to what the
        // deterministic matchers observed under the same seed.
        let inst = instance(40, 80, 17);
        let times = uniform_times(40, 100.0, 17);
        let plan = ShiftPlan::always_on(80, 101.0);
        let config = DynamicConfig::default();
        let mechanism = registry().mechanism("laplace").unwrap();
        let random = registry().dynamic_matcher("random").unwrap();
        let a = run_dynamic_spec(
            &inst,
            &times,
            &plan,
            &config,
            mechanism.as_ref(),
            random.as_ref(),
        )
        .unwrap();
        let b = run_dynamic_spec(
            &inst,
            &times,
            &plan,
            &config,
            mechanism.as_ref(),
            random.as_ref(),
        )
        .unwrap();
        assert_eq!(a.pairs, b.pairs, "randomized matcher must be seeded");
    }
}
