//! Named spatial+temporal workload models — the third registry axis.
//!
//! The paper varies *workloads* as deliberately as it varies mechanisms:
//! Table II sweeps Normal synthetics, Table III replays the Chengdu trace.
//! A [`Scenario`] packages that axis as an object-safe trait — seedable
//! worker placement, task placement, and the demand curve feeding the
//! shift-plan machinery — catalogued in [`crate::registry`] next to
//! mechanisms and matchers, and threaded through every execution surface:
//! `run`, `ratio`, both sweep flavours, `dynamic`, and `serve`.
//!
//! # Determinism contract
//!
//! A scenario is a pure function of its seed arguments: the same
//! `(seed, size)` must produce byte-identical instances on every shard,
//! thread, partition, and machine. Derive every stream through
//! [`pombm_geom::seeded_rng`] with a scenario-specific tag and never touch
//! ambient state (`tests/scenario.rs` and `pombm-lint` both enforce this).
//! The `uniform` scenario reproduces the pre-scenario derivations
//! bit-exactly, which is why every legacy golden fingerprint still holds.
//!
//! # Registered scenarios
//!
//! * `uniform` — the legacy default: Table II synthetics at the default
//!   µ/σ, on the exact pre-scenario RNG streams.
//! * `normal` — Table II at the tight end of the σ sweep (µ 100, σ 10):
//!   one dense central cluster.
//! * `hotspot` — the Chengdu city model (8 anisotropic Gaussian hotspots
//!   plus uniform background) rescaled into the 200 × 200 space, with a
//!   front-loaded rush-hour demand curve on the dynamic surfaces.
//! * `poisson-disk` — blue-noise worker placement (grid-backed O(n)
//!   Bridson sampling) under uniform task demand: maximally even supply.
//! * `adversarial-cell` — every task and worker packed into one tiny
//!   patch, collapsing all mass onto a single HST cell to stress the tree
//!   mechanism's resolution.
//!
//! # Adding a custom scenario
//!
//! Implement the trait and run it directly, mirroring the
//! [`crate::algorithm`] worked example:
//!
//! ```
//! use pombm::scenario::Scenario;
//! use pombm_geom::{seeded_rng, Point, Rect};
//! use pombm_workload::{Instance, SyntheticParams};
//! use rand::Rng;
//!
//! /// Demand and supply on two parallel lines.
//! struct TwoLines;
//! impl Scenario for TwoLines {
//!     fn name(&self) -> &'static str { "two-lines" }
//!     fn summary(&self) -> &'static str { "tasks on x=50, workers on x=150" }
//!     fn instance(&self, seed: u64, size: usize) -> Instance {
//!         self.timeline_instance(seed, size, size)
//!     }
//!     fn timeline_instance(&self, seed: u64, tasks: usize, workers: usize) -> Instance {
//!         let side = SyntheticParams::SPACE_SIDE;
//!         let mut rng = seeded_rng(seed, 0x11E5);
//!         let mut column =
//!             |x: f64, n: usize| (0..n).map(|_| Point::new(x, rng.gen::<f64>() * side)).collect();
//!         let (t, w) = (column(50.0, tasks), column(150.0, workers));
//!         Instance::new(Rect::square(side), t, w)
//!     }
//! }
//! assert_eq!(TwoLines.instance(7, 32).num_workers(), 32);
//! ```

use crate::algorithm::PipelineError;
use crate::sweep::{dynamic_shift_plan, dynamic_task_times, DYNAMIC_SWEEP_HORIZON};
use pombm_geom::{seeded_rng, Point, Rect};
use pombm_workload::shifts::ShiftPlan;
use pombm_workload::{chengdu, synthetic, Instance, SyntheticParams};
use rand::rngs::StdRng;
use rand::Rng;

/// The scenario every surface falls back to when none is named; its output
/// is bit-identical to the pre-scenario derivations.
pub const DEFAULT_SCENARIO: &str = "uniform";

/// The multiplier every sweep derivation mixes sizes into seeds with
/// (2⁶⁴/φ); scenario streams reuse it so `uniform` stays bit-exact.
const SEED_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// A named, seedable spatial+temporal workload model.
///
/// Object-safe, like [`crate::algorithm::ReportMechanism`] and
/// [`crate::algorithm::AssignStrategy`]: registered instances live behind
/// `Arc<dyn Scenario>` in the [`crate::registry`]. The two required
/// methods cover the spatial axis (where tasks and workers are); the two
/// provided methods cover the temporal axis (when tasks arrive, when
/// workers are on shift) and default to the legacy sweep derivations.
pub trait Scenario: Send + Sync {
    /// Registry name (lower-case; lookup is case-insensitive).
    fn name(&self) -> &'static str;

    /// One-line description for `pombm scenarios`.
    fn summary(&self) -> &'static str;

    /// The square sweep instance for `size`: `size` tasks and `size`
    /// workers, a pure function of `(seed, size)`. Both sweep flavours and
    /// `pombm run --scenario` consume this.
    fn instance(&self, seed: u64, size: usize) -> Instance;

    /// The timeline instance for the event-driven surfaces (`pombm
    /// dynamic`, `pombm serve`), where task and worker counts differ; a
    /// pure function of `(seed, num_tasks, num_workers)`.
    fn timeline_instance(&self, seed: u64, num_tasks: usize, num_workers: usize) -> Instance;

    /// The demand curve: sorted task arrival times over
    /// `[0, DYNAMIC_SWEEP_HORIZON)`. Defaults to the legacy uniform draw
    /// of [`dynamic_task_times`].
    fn task_times(&self, seed: u64, num_tasks: usize) -> Vec<f64> {
        dynamic_task_times(seed, num_tasks)
    }

    /// The fleet's shift plan for a named kind (`always-on`, `short`,
    /// `long`). Defaults to the legacy derivation of
    /// [`dynamic_shift_plan`], including its listing-rich unknown-kind
    /// error.
    fn shift_plan(
        &self,
        kind: &str,
        num_workers: usize,
        seed: u64,
    ) -> Result<ShiftPlan, PipelineError> {
        dynamic_shift_plan(kind, num_workers, seed)
    }
}

/// `uniform`: the legacy default workload on the exact legacy streams.
///
/// Every derivation here must stay bit-identical to the pre-scenario code
/// paths ([`crate::sweep::sweep_instance`] and the `0xD1CE_0006` timeline
/// draw) — all existing golden fingerprints and golden JSON depend on it.
pub struct UniformScenario;

impl Scenario for UniformScenario {
    fn name(&self) -> &'static str {
        "uniform"
    }

    fn summary(&self) -> &'static str {
        "legacy default synthetics (bit-identical to pre-scenario output)"
    }

    fn instance(&self, seed: u64, size: usize) -> Instance {
        crate::sweep::sweep_instance(seed, size)
    }

    fn timeline_instance(&self, seed: u64, num_tasks: usize, num_workers: usize) -> Instance {
        let params = SyntheticParams {
            num_tasks,
            num_workers,
            ..SyntheticParams::default()
        };
        synthetic::generate(&params, &mut seeded_rng(seed, 0xD1CE_0006))
    }
}

/// `normal`: Table II synthetics at the tight end of the σ sweep.
pub struct NormalScenario;

impl NormalScenario {
    /// σ from Table II's sweep floor: one dense central cluster instead of
    /// the default's broader cloud.
    const SIGMA: f64 = 10.0;

    fn params(num_tasks: usize, num_workers: usize) -> SyntheticParams {
        SyntheticParams {
            num_tasks,
            num_workers,
            sigma: Self::SIGMA,
            ..SyntheticParams::default()
        }
    }
}

impl Scenario for NormalScenario {
    fn name(&self) -> &'static str {
        "normal"
    }

    fn summary(&self) -> &'static str {
        "Table II Normal cluster at the tight sigma end (mu 100, sigma 10)"
    }

    fn instance(&self, seed: u64, size: usize) -> Instance {
        let stream = seed ^ (size as u64).wrapping_mul(SEED_MIX);
        synthetic::generate(
            &Self::params(size, size),
            &mut seeded_rng(stream, 0x5CE2_0001),
        )
    }

    fn timeline_instance(&self, seed: u64, num_tasks: usize, num_workers: usize) -> Instance {
        synthetic::generate(
            &Self::params(num_tasks, num_workers),
            &mut seeded_rng(seed, 0x5CE2_0002),
        )
    }
}

/// `hotspot`: the Chengdu city model rescaled into the synthetic space.
pub struct HotspotScenario;

impl HotspotScenario {
    /// Meters-per-unit rescale aligning the 10 km city with the 200-unit
    /// synthetic space, so a given ε means the same privacy level (the
    /// same factor [`Instance::scaled`] documents for the real trace).
    const CITY_SCALE: f64 = 1.0 / 50.0;

    fn sample_city(seed: u64, num_tasks: usize, num_workers: usize, rng: &mut StdRng) -> Instance {
        // One fixed city per seed (same seed ⇒ same city, as in the trace
        // generator); only the sampled points vary with the stream.
        let city = chengdu::CityModel::generate(seed);
        let weights: Vec<f64> = city.hotspots.iter().map(|h| h.weight).collect();
        let tasks = (0..num_tasks)
            .map(|_| city.sample(city.task_background, &weights, rng))
            .collect();
        let workers = (0..num_workers)
            .map(|_| city.sample(city.worker_background, &weights, rng))
            .collect();
        Instance::new(city.region, tasks, workers).scaled(Self::CITY_SCALE)
    }
}

impl Scenario for HotspotScenario {
    fn name(&self) -> &'static str {
        "hotspot"
    }

    fn summary(&self) -> &'static str {
        "Chengdu city model: Gaussian hotspots + background, rush-hour demand"
    }

    fn instance(&self, seed: u64, size: usize) -> Instance {
        let stream = seed ^ (size as u64).wrapping_mul(SEED_MIX);
        Self::sample_city(seed, size, size, &mut seeded_rng(stream, 0x5CE3_0001))
    }

    fn timeline_instance(&self, seed: u64, num_tasks: usize, num_workers: usize) -> Instance {
        Self::sample_city(
            seed,
            num_tasks,
            num_workers,
            &mut seeded_rng(seed, 0x5CE3_0002),
        )
    }

    /// Rush-hour demand: the legacy uniform draw squashed toward the start
    /// of the horizon (`t → T·(t/T)²`). The transform is monotone, so the
    /// times stay sorted and the draw count stays identical.
    fn task_times(&self, seed: u64, num_tasks: usize) -> Vec<f64> {
        let mut times = dynamic_task_times(seed, num_tasks);
        for t in &mut times {
            *t = (*t / DYNAMIC_SWEEP_HORIZON).powi(2) * DYNAMIC_SWEEP_HORIZON;
        }
        times
    }
}

/// `poisson-disk`: blue-noise worker placement under uniform task demand.
pub struct PoissonDiskScenario;

impl PoissonDiskScenario {
    /// Candidate throws per active point — Bridson's recommended k.
    const ATTEMPTS: usize = 30;

    /// Grid-backed O(n) Bridson sampling of `target` points in a
    /// `side × side` square with pairwise distance ≥ r, where r is sized
    /// so `target` disks slightly under-fill the square. If the walk
    /// saturates early (possible for unlucky seeds), the remainder is
    /// topped up uniformly so counts are always exact.
    fn blue_noise(side: f64, target: usize, rng: &mut StdRng) -> Vec<Point> {
        let mut points: Vec<Point> = Vec::with_capacity(target);
        if target == 0 {
            return points;
        }
        let r = side * (0.7 / target as f64).sqrt();
        // Cell side r/√2: at most one sample per grid cell, so the
        // neighborhood check below scans a constant 5×5 window.
        let cell = r / std::f64::consts::SQRT_2;
        let dim = (side / cell).ceil() as usize;
        let mut grid: Vec<Option<usize>> = vec![None; dim * dim];
        let cell_of = |p: &Point| -> (usize, usize) {
            (
                ((p.x / cell) as usize).min(dim - 1),
                ((p.y / cell) as usize).min(dim - 1),
            )
        };
        let mut active: Vec<usize> = Vec::new();
        let insert = |p: Point,
                      points: &mut Vec<Point>,
                      active: &mut Vec<usize>,
                      grid: &mut Vec<Option<usize>>| {
            let (cx, cy) = cell_of(&p);
            grid[cy * dim + cx] = Some(points.len());
            active.push(points.len());
            points.push(p);
        };
        let first = Point::new(rng.gen::<f64>() * side, rng.gen::<f64>() * side);
        insert(first, &mut points, &mut active, &mut grid);
        while !active.is_empty() && points.len() < target {
            let slot = rng.gen_range(0..active.len());
            let center = points[active[slot]];
            let mut placed = false;
            for _ in 0..Self::ATTEMPTS {
                let angle = rng.gen::<f64>() * std::f64::consts::TAU;
                let dist = r * (1.0 + rng.gen::<f64>());
                let p = Point::new(center.x + dist * angle.cos(), center.y + dist * angle.sin());
                if !(0.0..=side).contains(&p.x) || !(0.0..=side).contains(&p.y) {
                    continue;
                }
                let (cx, cy) = cell_of(&p);
                let clear = (cx.saturating_sub(2)..=(cx + 2).min(dim - 1)).all(|nx| {
                    (cy.saturating_sub(2)..=(cy + 2).min(dim - 1))
                        .all(|ny| grid[ny * dim + nx].is_none_or(|i| points[i].dist(&p) >= r))
                });
                if clear {
                    insert(p, &mut points, &mut active, &mut grid);
                    placed = true;
                    break;
                }
            }
            if !placed {
                active.swap_remove(slot);
            }
        }
        while points.len() < target {
            points.push(Point::new(rng.gen::<f64>() * side, rng.gen::<f64>() * side));
        }
        points
    }

    fn generate(num_tasks: usize, num_workers: usize, rng: &mut StdRng) -> Instance {
        let side = SyntheticParams::SPACE_SIDE;
        // Tasks first, then workers — the synthetic generator's draw order.
        let tasks = (0..num_tasks)
            .map(|_| Point::new(rng.gen::<f64>() * side, rng.gen::<f64>() * side))
            .collect();
        let workers = Self::blue_noise(side, num_workers, rng);
        Instance::new(Rect::square(side), tasks, workers)
    }
}

impl Scenario for PoissonDiskScenario {
    fn name(&self) -> &'static str {
        "poisson-disk"
    }

    fn summary(&self) -> &'static str {
        "blue-noise worker placement (Bridson O(n)) under uniform demand"
    }

    fn instance(&self, seed: u64, size: usize) -> Instance {
        let stream = seed ^ (size as u64).wrapping_mul(SEED_MIX);
        Self::generate(size, size, &mut seeded_rng(stream, 0x5CE4_0001))
    }

    fn timeline_instance(&self, seed: u64, num_tasks: usize, num_workers: usize) -> Instance {
        Self::generate(num_tasks, num_workers, &mut seeded_rng(seed, 0x5CE4_0002))
    }
}

/// `adversarial-cell`: all mass collapsed onto a single HST cell.
pub struct AdversarialCellScenario;

impl AdversarialCellScenario {
    /// Patch side as a fraction of the workspace: 200/128 ≈ 1.56 units —
    /// well inside one predefined-point cell at the default grid sides
    /// (200/32 = 6.25 units per cell), so the whole workload snaps to at
    /// most a handful of leaves and the tree mechanism's resolution, not
    /// the matcher, dominates the outcome.
    const PATCH_DIVISOR: f64 = 128.0;

    fn generate(num_tasks: usize, num_workers: usize, rng: &mut StdRng) -> Instance {
        let side = SyntheticParams::SPACE_SIDE;
        let patch = side / Self::PATCH_DIVISOR;
        let corner_x = rng.gen::<f64>() * (side - patch);
        let corner_y = rng.gen::<f64>() * (side - patch);
        let draw = |rng: &mut StdRng| {
            Point::new(
                corner_x + rng.gen::<f64>() * patch,
                corner_y + rng.gen::<f64>() * patch,
            )
        };
        let tasks = (0..num_tasks).map(|_| draw(rng)).collect();
        let workers = (0..num_workers).map(|_| draw(rng)).collect();
        Instance::new(Rect::square(side), tasks, workers)
    }
}

impl Scenario for AdversarialCellScenario {
    fn name(&self) -> &'static str {
        "adversarial-cell"
    }

    fn summary(&self) -> &'static str {
        "all mass on one tiny patch: a single-HST-cell stress test"
    }

    fn instance(&self, seed: u64, size: usize) -> Instance {
        let stream = seed ^ (size as u64).wrapping_mul(SEED_MIX);
        Self::generate(size, size, &mut seeded_rng(stream, 0x5CE5_0001))
    }

    fn timeline_instance(&self, seed: u64, num_tasks: usize, num_workers: usize) -> Instance {
        Self::generate(num_tasks, num_workers, &mut seeded_rng(seed, 0x5CE5_0002))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::registry;

    #[test]
    fn uniform_matches_the_legacy_sweep_instance() {
        let scenario = registry().require_scenario("uniform").unwrap();
        for (seed, size) in [(0u64, 12usize), (5, 48), (99, 7)] {
            let a = scenario.instance(seed, size);
            let b = crate::sweep::sweep_instance(seed, size);
            assert_eq!(a.tasks, b.tasks, "seed {seed} size {size}");
            assert_eq!(a.workers, b.workers, "seed {seed} size {size}");
        }
    }

    #[test]
    fn uniform_matches_the_legacy_timeline_instance() {
        let scenario = registry().require_scenario("uniform").unwrap();
        let a = scenario.timeline_instance(3, 20, 30);
        let params = SyntheticParams {
            num_tasks: 20,
            num_workers: 30,
            ..SyntheticParams::default()
        };
        let b = synthetic::generate(&params, &mut seeded_rng(3, 0xD1CE_0006));
        assert_eq!(a.tasks, b.tasks);
        assert_eq!(a.workers, b.workers);
    }

    #[test]
    fn every_scenario_is_deterministic_and_in_region() {
        for scenario in registry().scenarios() {
            let a = scenario.instance(11, 40);
            let b = scenario.instance(11, 40);
            assert_eq!(a.tasks, b.tasks, "{}", scenario.name());
            assert_eq!(a.workers, b.workers, "{}", scenario.name());
            assert_eq!(a.num_tasks(), 40, "{}", scenario.name());
            assert_eq!(a.num_workers(), 40, "{}", scenario.name());
            a.validate().unwrap_or_else(|e| {
                panic!("{} instance invalid: {e}", scenario.name());
            });
            let t = scenario.timeline_instance(11, 25, 35);
            assert_eq!(
                (t.num_tasks(), t.num_workers()),
                (25, 35),
                "{}",
                scenario.name()
            );
            t.validate().unwrap_or_else(|e| {
                panic!("{} timeline instance invalid: {e}", scenario.name());
            });
        }
    }

    #[test]
    fn scenarios_differ_from_each_other() {
        let scenarios = registry().scenarios();
        for (i, a) in scenarios.iter().enumerate() {
            for b in &scenarios[i + 1..] {
                let x = a.instance(4, 24);
                let y = b.instance(4, 24);
                assert_ne!(
                    x.tasks,
                    y.tasks,
                    "{} and {} generated the same tasks",
                    a.name(),
                    b.name()
                );
            }
        }
    }

    #[test]
    fn task_times_stay_sorted_and_bounded() {
        for scenario in registry().scenarios() {
            let times = scenario.task_times(9, 64);
            assert_eq!(times.len(), 64, "{}", scenario.name());
            assert!(
                times.windows(2).all(|w| w[0] <= w[1]),
                "{}: times must be sorted",
                scenario.name()
            );
            assert!(
                times
                    .iter()
                    .all(|t| (0.0..DYNAMIC_SWEEP_HORIZON).contains(t)),
                "{}: times must live in [0, horizon)",
                scenario.name()
            );
        }
    }

    #[test]
    fn hotspot_demand_is_front_loaded() {
        let uniform = UniformScenario.task_times(2, 200);
        let rush = HotspotScenario.task_times(2, 200);
        let median = |v: &[f64]| v[v.len() / 2];
        assert!(
            median(&rush) < median(&uniform),
            "rush-hour median {} should precede uniform median {}",
            median(&rush),
            median(&uniform)
        );
    }

    #[test]
    fn blue_noise_spreads_workers_out() {
        let scenario = PoissonDiskScenario;
        let inst = scenario.instance(1, 64);
        let min_gap = |pts: &[Point]| -> f64 {
            let mut best = f64::INFINITY;
            for (i, a) in pts.iter().enumerate() {
                for b in &pts[i + 1..] {
                    best = best.min(a.dist(b));
                }
            }
            best
        };
        // Workers keep the Bridson separation; uniform tasks of the same
        // count land far closer together with overwhelming probability.
        assert!(
            min_gap(&inst.workers) > 2.0 * min_gap(&inst.tasks),
            "workers gap {} vs tasks gap {}",
            min_gap(&inst.workers),
            min_gap(&inst.tasks)
        );
    }

    #[test]
    fn adversarial_cell_is_tiny() {
        let inst = AdversarialCellScenario.instance(6, 50);
        let span = |pts: &[Point]| {
            let (mut lo_x, mut hi_x, mut lo_y, mut hi_y) = (
                f64::INFINITY,
                f64::NEG_INFINITY,
                f64::INFINITY,
                f64::NEG_INFINITY,
            );
            for p in pts {
                lo_x = lo_x.min(p.x);
                hi_x = hi_x.max(p.x);
                lo_y = lo_y.min(p.y);
                hi_y = hi_y.max(p.y);
            }
            (hi_x - lo_x).max(hi_y - lo_y)
        };
        let all: Vec<Point> = inst.tasks.iter().chain(&inst.workers).copied().collect();
        let patch = SyntheticParams::SPACE_SIDE / AdversarialCellScenario::PATCH_DIVISOR;
        assert!(span(&all) <= patch, "span {} > patch {patch}", span(&all));
    }
}
