//! Timed arrival streams and response-latency accounting.
//!
//! The paper reports that TBF "responds to each task in 0.0015 seconds" and
//! the case study "in no more than 0.003 seconds" — per-task *latency*
//! claims, not just totals. This module replays an instance as a timed
//! stream (Poisson or uniform arrivals over a service window), measures the
//! wall-clock assignment latency of every task, and reports the percentiles
//! an operator would put in an SLO.

use crate::pipeline::PipelineConfig;
use crate::server::Server;
use pombm_geom::seeded_rng;
use pombm_hst::LeafCode;
use pombm_matching::{HstGreedy, Matching};
use pombm_privacy::{Epsilon, HstMechanism};
use pombm_workload::Instance;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// How task arrival times are laid out over the service window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Poisson process: exponential inter-arrival gaps with the given rate
    /// (tasks per second). The realistic model for ride requests.
    Poisson {
        /// Expected arrivals per second.
        rate: f64,
    },
    /// Evenly spaced arrivals across a window of the given length.
    Uniform {
        /// Total window length in seconds.
        window_secs: f64,
    },
}

impl ArrivalProcess {
    /// Generates non-decreasing arrival timestamps (seconds from stream
    /// start) for `count` tasks.
    pub fn timestamps<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Vec<f64> {
        match self {
            ArrivalProcess::Poisson { rate } => {
                assert!(*rate > 0.0, "rate must be positive");
                let mut t = 0.0;
                (0..count)
                    .map(|_| {
                        // Inverse-CDF exponential gap.
                        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                        t += -u.ln() / rate;
                        t
                    })
                    .collect()
            }
            ArrivalProcess::Uniform { window_secs } => {
                assert!(*window_secs >= 0.0, "window must be non-negative");
                if count <= 1 {
                    return vec![0.0; count];
                }
                (0..count)
                    .map(|i| window_secs * i as f64 / (count - 1) as f64)
                    .collect()
            }
        }
    }
}

/// Latency statistics of one simulated stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamReport {
    /// Number of tasks assigned.
    pub assigned: usize,
    /// Total travel distance on true locations.
    pub total_distance: f64,
    /// Mean per-task assignment latency.
    pub mean_latency: Duration,
    /// Median per-task latency.
    pub p50_latency: Duration,
    /// 99th-percentile per-task latency.
    pub p99_latency: Duration,
    /// Worst per-task latency.
    pub max_latency: Duration,
    /// Generated arrival span (timestamp of the last task), seconds.
    pub span_secs: f64,
}

impl StreamReport {
    fn from_latencies(mut latencies: Vec<Duration>, total_distance: f64, span_secs: f64) -> Self {
        assert!(!latencies.is_empty(), "stream produced no assignments");
        latencies.sort_unstable();
        let n = latencies.len();
        let sum: Duration = latencies.iter().sum();
        let pick = |q: f64| latencies[((n - 1) as f64 * q).round() as usize];
        StreamReport {
            assigned: n,
            total_distance,
            mean_latency: sum / n as u32,
            p50_latency: pick(0.50),
            p99_latency: pick(0.99),
            max_latency: latencies[n - 1],
            span_secs,
        }
    }
}

/// Replays `instance` as a timed TBF stream: workers obfuscated and
/// registered upfront, each task obfuscated and assigned at its arrival
/// timestamp, per-task latency measured around the assignment call.
///
/// The simulation is *logical-time*: it does not sleep between arrivals (the
/// latency of interest is compute latency, and the paper's response-time
/// claims are per task), but timestamps are generated and reported so
/// callers can check the stream is feasible (`p99 ≪ mean inter-arrival
/// gap`).
pub fn simulate_stream(
    instance: &Instance,
    server: &Server,
    config: &PipelineConfig,
    process: ArrivalProcess,
) -> StreamReport {
    let epsilon = Epsilon::new(config.epsilon);
    let mechanism = HstMechanism::new(server.hst(), epsilon);
    let mut rng = seeded_rng(config.seed, 0xA881);

    let reported_workers: Vec<LeafCode> = instance
        .workers
        .iter()
        .map(|w| mechanism.obfuscate(server.hst(), server.snap(w), &mut rng))
        .collect();
    let mut matcher = HstGreedy::new(server.hst().ctx(), reported_workers, config.engine);

    let timestamps = process.timestamps(instance.num_tasks(), &mut rng);
    let span_secs = timestamps.last().copied().unwrap_or(0.0);

    let mut latencies = Vec::with_capacity(instance.num_tasks());
    let mut matching = Matching::new();
    for (t_idx, t) in instance.tasks.iter().enumerate() {
        // The latency window covers what the paper's metric covers: from
        // receiving the (obfuscated) task to completing the assignment.
        let reported = mechanism.obfuscate(server.hst(), server.snap(t), &mut rng);
        // lint: allow(DET-TIME) — per-task latency metric; reported as
        // measured milliseconds, never fingerprinted.
        let start = Instant::now();
        if let Some(w_idx) = matcher.assign(reported) {
            latencies.push(start.elapsed());
            matching.pairs.push((t_idx, w_idx));
        }
    }
    let total_distance = matching.total_distance(&instance.tasks, &instance.workers);
    StreamReport::from_latencies(latencies, total_distance, span_secs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pombm_workload::{synthetic, SyntheticParams};

    fn instance() -> Instance {
        let params = SyntheticParams {
            num_tasks: 200,
            num_workers: 400,
            ..SyntheticParams::default()
        };
        synthetic::generate(&params, &mut seeded_rng(1, 0))
    }

    #[test]
    fn poisson_timestamps_are_increasing_with_right_rate() {
        let mut rng = seeded_rng(2, 0);
        let ts = ArrivalProcess::Poisson { rate: 10.0 }.timestamps(5000, &mut rng);
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
        // 5000 arrivals at 10/s: span ≈ 500 s.
        let span = *ts.last().unwrap();
        assert!((span - 500.0).abs() < 30.0, "span {span}");
    }

    #[test]
    fn uniform_timestamps_are_evenly_spaced() {
        let mut rng = seeded_rng(3, 0);
        let ts = ArrivalProcess::Uniform { window_secs: 90.0 }.timestamps(10, &mut rng);
        assert_eq!(ts[0], 0.0);
        assert_eq!(*ts.last().unwrap(), 90.0);
        let gap = ts[1] - ts[0];
        assert!(ts.windows(2).all(|w| (w[1] - w[0] - gap).abs() < 1e-9));
    }

    #[test]
    fn degenerate_counts() {
        let mut rng = seeded_rng(4, 0);
        assert!(ArrivalProcess::Poisson { rate: 1.0 }
            .timestamps(0, &mut rng)
            .is_empty());
        assert_eq!(
            ArrivalProcess::Uniform { window_secs: 10.0 }.timestamps(1, &mut rng),
            vec![0.0]
        );
    }

    #[test]
    fn stream_report_percentiles_are_ordered() {
        let inst = instance();
        let server = Server::new(inst.region, 32, 9);
        let config = PipelineConfig::default();
        let report = simulate_stream(
            &inst,
            &server,
            &config,
            ArrivalProcess::Poisson { rate: 100.0 },
        );
        assert_eq!(report.assigned, 200);
        assert!(report.total_distance > 0.0);
        assert!(report.p50_latency <= report.p99_latency);
        assert!(report.p99_latency <= report.max_latency);
        assert!(report.mean_latency <= report.max_latency);
        assert!(report.span_secs > 0.0);
    }

    #[test]
    fn paper_latency_claim_holds_comfortably() {
        // The paper reports per-task response under 1.5 ms on 2016 hardware
        // at |T| = 5000, |W| = 7000. Even in a debug build at our smaller
        // test size, staying under 50 ms per task is a very loose sanity
        // check that nothing is accidentally quadratic per arrival.
        let inst = instance();
        let server = Server::new(inst.region, 32, 10);
        let config = PipelineConfig::default();
        let report = simulate_stream(
            &inst,
            &server,
            &config,
            ArrivalProcess::Uniform { window_secs: 60.0 },
        );
        assert!(
            report.p99_latency < Duration::from_millis(50),
            "p99 {:?}",
            report.p99_latency
        );
    }

    #[test]
    fn stream_is_deterministic_in_seed() {
        let inst = instance();
        let server = Server::new(inst.region, 32, 11);
        let config = PipelineConfig::default();
        let a = simulate_stream(
            &inst,
            &server,
            &config,
            ArrivalProcess::Poisson { rate: 5.0 },
        );
        let b = simulate_stream(
            &inst,
            &server,
            &config,
            ArrivalProcess::Poisson { rate: 5.0 },
        );
        assert_eq!(a.assigned, b.assigned);
        assert_eq!(a.total_distance, b.total_distance);
        assert_eq!(a.span_secs, b.span_secs);
    }
}
