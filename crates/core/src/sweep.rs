//! Sharded, registry-wide competitive-ratio sweeps.
//!
//! Theorem 3's `O(ε⁻⁴ log N log² k)` bound is a statement about one
//! algorithm; the registry makes it cheap to ask the empirical question for
//! *every* `mechanism × matcher` product at once. A sweep takes a set of
//! mechanisms and matchers (defaulting to the full registry), a grid of
//! instance sizes and privacy budgets ε, and measures each pairing's
//! [`RatioReport`] (Definition 8's expectation, estimated by
//! [`empirical_competitive_ratio`]) on a deterministic synthetic instance
//! per size.
//!
//! # Sharding and determinism
//!
//! The job list — the full `pairing × size × ε` product — is fanned out
//! over `crossbeam` scoped threads, mirroring [`pombm_privacy::batch`]:
//! shard `s` takes the `s`-th contiguous chunk of jobs and writes results
//! through a `parking_lot`-protected output vector, one lock acquisition
//! per shard. Unlike the batch obfuscator, every job derives its RNG seeds
//! from its *position in the job list*, never from the shard that happens
//! to execute it, so sweep output is bit-identical for every shard count:
//! deterministic in `seed` alone, not just in `(seed, num_shards)`.
//!
//! Incompatible pairings (e.g. the `blind` mechanism with any
//! location-aware matcher) and degenerate measurements (empty instances,
//! zero-distance optima) do not abort the sweep: each cell records either
//! a report or the typed error's message, so a full-registry sweep always
//! completes.

use crate::algorithm::{AssignStrategy, PipelineError, ReportMechanism};
use crate::pipeline::PipelineConfig;
use crate::ratio::{empirical_competitive_ratio, RatioReport};
use crate::registry::{registry, AlgorithmSpec};
use parking_lot::Mutex;
use pombm_geom::seeded_rng;
use pombm_workload::{synthetic, Instance, SyntheticParams};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// What to sweep: the pairing filter, the instance/ε grid, and the
/// execution parameters.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Mechanism names to include; empty means every registered mechanism.
    pub mechanisms: Vec<String>,
    /// Matcher names to include; empty means every registered matcher.
    pub matchers: Vec<String>,
    /// Instance sizes: each entry generates one synthetic instance with
    /// `size` tasks and `size` workers (so `k = size` pairs are matched).
    pub sizes: Vec<usize>,
    /// Privacy budgets ε to sweep.
    pub epsilons: Vec<f64>,
    /// Shuffled-arrival repetitions per cell.
    pub repetitions: u64,
    /// Worker threads to fan the job list over. Results are bit-identical
    /// for every value ≥ 1; this only trades wall-clock for cores.
    pub shards: usize,
    /// Base pipeline configuration: `seed` roots every derived RNG stream,
    /// `epsilon` is overridden per cell by the ε grid.
    pub base: PipelineConfig,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            mechanisms: Vec::new(),
            matchers: Vec::new(),
            sizes: vec![48],
            epsilons: vec![0.6],
            repetitions: 3,
            shards: 1,
            base: PipelineConfig::default(),
        }
    }
}

/// One cell of the sweep product: exactly one of `report` / `error` is set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepCell {
    /// Stage-1 mechanism name.
    pub mechanism: String,
    /// Stage-2 matcher name.
    pub matcher: String,
    /// Tasks in this cell's instance.
    pub num_tasks: usize,
    /// Workers in this cell's instance.
    pub num_workers: usize,
    /// Privacy budget ε of this cell.
    pub epsilon: f64,
    /// The measured ratio, when the pairing is measurable.
    pub report: Option<RatioReport>,
    /// The typed error's message, when it is not (incompatible reports,
    /// degenerate optimum, ...).
    pub error: Option<String>,
}

/// A completed sweep: the cell list in job order (mechanism-major, then
/// matcher, size, ε) plus the parameters needed to reproduce it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepReport {
    /// Root seed every cell's RNG streams derive from.
    pub seed: u64,
    /// Repetitions per cell.
    pub repetitions: u64,
    /// All measured cells.
    pub cells: Vec<SweepCell>,
}

impl SweepReport {
    /// Cells that produced a measurement.
    pub fn measured(&self) -> impl Iterator<Item = (&SweepCell, &RatioReport)> {
        self.cells
            .iter()
            .filter_map(|c| Some((c, c.report.as_ref()?)))
    }

    /// Cells rejected with a typed error.
    pub fn failed(&self) -> impl Iterator<Item = &SweepCell> {
        self.cells.iter().filter(|c| c.error.is_some())
    }
}

/// One unit of sweep work, fully determined before any thread runs.
struct Job {
    spec: AlgorithmSpec,
    size: usize,
    epsilon: f64,
    /// Seed for this job's pipeline/shuffle streams; derived from the job's
    /// position so it is independent of shard assignment.
    job_seed: u64,
}

/// The deterministic instance a sweep uses for `size`: `size` tasks and
/// `size` workers from the standard synthetic generator, seeded by
/// `(seed, size)` only.
pub fn sweep_instance(seed: u64, size: usize) -> Instance {
    let params = SyntheticParams {
        num_tasks: size,
        num_workers: size,
        ..SyntheticParams::default()
    };
    let stream = seed ^ (size as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    synthetic::generate(&params, &mut seeded_rng(stream, 0x51EE))
}

fn resolve_mechanisms(names: &[String]) -> Result<Vec<Arc<dyn ReportMechanism>>, PipelineError> {
    if names.is_empty() {
        return Ok(registry().mechanisms().to_vec());
    }
    names
        .iter()
        .map(|n| {
            registry()
                .mechanism(n)
                .ok_or_else(|| PipelineError::UnknownName {
                    kind: "mechanism",
                    name: n.clone(),
                    known: registry()
                        .mechanisms()
                        .iter()
                        .map(|m| m.name().to_string())
                        .collect(),
                })
        })
        .collect()
}

fn resolve_matchers(names: &[String]) -> Result<Vec<Arc<dyn AssignStrategy>>, PipelineError> {
    if names.is_empty() {
        return Ok(registry().matchers().to_vec());
    }
    names
        .iter()
        .map(|n| {
            registry()
                .matcher(n)
                .ok_or_else(|| PipelineError::UnknownName {
                    kind: "matcher",
                    name: n.clone(),
                    known: registry()
                        .matchers()
                        .iter()
                        .map(|m| m.name().to_string())
                        .collect(),
                })
        })
        .collect()
}

fn run_job(job: &Job, base: &PipelineConfig, repetitions: u64) -> SweepCell {
    let instance = sweep_instance(base.seed, job.size);
    let config = PipelineConfig {
        epsilon: job.epsilon,
        seed: job.job_seed,
        ..*base
    };
    let (report, error) =
        match empirical_competitive_ratio(&job.spec, &instance, &config, repetitions) {
            Ok(r) => (Some(r), None),
            Err(e) => (None, Some(e.to_string())),
        };
    SweepCell {
        mechanism: job.spec.mechanism.name().to_string(),
        matcher: job.spec.matcher.name().to_string(),
        num_tasks: instance.num_tasks(),
        num_workers: instance.num_workers(),
        epsilon: job.epsilon,
        report,
        error,
    }
}

/// Runs the sweep, fanning the `pairing × size × ε` product over
/// `config.shards` scoped threads.
///
/// Fails fast on configuration errors (unknown names, empty grids, zero
/// shards/repetitions); per-cell measurement failures are recorded in the
/// cells, not returned.
pub fn run_sweep(config: &SweepConfig) -> Result<SweepReport, PipelineError> {
    if config.shards == 0 {
        return Err(PipelineError::InvalidConfig {
            field: "shards",
            why: "the sweep needs at least one shard",
        });
    }
    if config.repetitions == 0 {
        return Err(PipelineError::InvalidConfig {
            field: "repetitions",
            why: "the sweep needs at least one repetition per cell",
        });
    }
    if config.sizes.is_empty() {
        return Err(PipelineError::InvalidConfig {
            field: "sizes",
            why: "the sweep needs at least one instance size",
        });
    }
    if config.epsilons.is_empty() {
        return Err(PipelineError::InvalidConfig {
            field: "epsilons",
            why: "the sweep needs at least one privacy budget",
        });
    }
    let mechanisms = resolve_mechanisms(&config.mechanisms)?;
    let matchers = resolve_matchers(&config.matchers)?;

    let mut jobs = Vec::new();
    for mechanism in &mechanisms {
        for matcher in &matchers {
            for &size in &config.sizes {
                for &epsilon in &config.epsilons {
                    // Per-job seed from the job index: independent of the
                    // shard that executes it, so shard count never changes
                    // any cell.
                    let job_seed = config
                        .base
                        .seed
                        .wrapping_add((jobs.len() as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    jobs.push(Job {
                        spec: AlgorithmSpec::compose(mechanism.clone(), matcher.clone()),
                        size,
                        epsilon,
                        job_seed,
                    });
                }
            }
        }
    }

    let chunk = jobs.len().div_ceil(config.shards).max(1);
    let out: Mutex<Vec<Option<SweepCell>>> = Mutex::new((0..jobs.len()).map(|_| None).collect());
    crossbeam::thread::scope(|scope| {
        for (s, slice) in jobs.chunks(chunk).enumerate() {
            let out = &out;
            let base = &config.base;
            let repetitions = config.repetitions;
            scope.spawn(move |_| {
                // Compute the whole chunk locally; take the lock once.
                let local: Vec<SweepCell> = slice
                    .iter()
                    .map(|job| run_job(job, base, repetitions))
                    .collect();
                let mut guard = out.lock();
                for (i, cell) in local.into_iter().enumerate() {
                    guard[s * chunk + i] = Some(cell);
                }
            });
        }
    })
    .expect("sweep shards never panic");

    let cells = out
        .into_inner()
        .into_iter()
        .map(|c| c.expect("every job produces exactly one cell"))
        .collect();
    Ok(SweepReport {
        seed: config.base.seed,
        repetitions: config.repetitions,
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SweepConfig {
        SweepConfig {
            mechanisms: vec!["identity".into(), "laplace".into()],
            matchers: vec!["greedy".into(), "offline-opt".into()],
            sizes: vec![12],
            epsilons: vec![0.6],
            repetitions: 2,
            shards: 1,
            base: PipelineConfig {
                grid_side: 16,
                ..PipelineConfig::default()
            },
        }
    }

    #[test]
    fn sweep_covers_the_product() {
        let report = run_sweep(&small_config()).unwrap();
        assert_eq!(report.cells.len(), 2 * 2);
        assert_eq!(report.measured().count(), 4);
        assert_eq!(report.failed().count(), 0);
        for (cell, r) in report.measured() {
            assert!(r.ratio >= 1.0 - 1e-9, "{}+{}", cell.mechanism, cell.matcher);
        }
    }

    #[test]
    fn identity_offline_opt_cell_is_the_oracle() {
        let report = run_sweep(&small_config()).unwrap();
        let (_, oracle) = report
            .measured()
            .find(|(c, _)| c.mechanism == "identity" && c.matcher == "offline-opt")
            .expect("oracle cell present");
        assert_eq!(oracle.ratio, 1.0);
    }

    #[test]
    fn unknown_names_fail_fast() {
        let mut config = small_config();
        config.mechanisms = vec!["bogus".into()];
        assert!(matches!(
            run_sweep(&config),
            Err(PipelineError::UnknownName {
                kind: "mechanism",
                ..
            })
        ));
        let mut config = small_config();
        config.matchers = vec!["bogus".into()];
        assert!(matches!(
            run_sweep(&config),
            Err(PipelineError::UnknownName {
                kind: "matcher",
                ..
            })
        ));
    }

    #[test]
    fn degenerate_grids_fail_fast() {
        for broken in [
            SweepConfig {
                shards: 0,
                ..small_config()
            },
            SweepConfig {
                repetitions: 0,
                ..small_config()
            },
            SweepConfig {
                sizes: vec![],
                ..small_config()
            },
            SweepConfig {
                epsilons: vec![],
                ..small_config()
            },
        ] {
            assert!(matches!(
                run_sweep(&broken),
                Err(PipelineError::InvalidConfig { .. })
            ));
        }
    }

    #[test]
    fn incompatible_cells_record_errors_without_aborting() {
        let config = SweepConfig {
            mechanisms: vec!["blind".into()],
            matchers: vec!["greedy".into(), "random".into()],
            ..small_config()
        };
        let report = run_sweep(&config).unwrap();
        assert_eq!(report.cells.len(), 2);
        let by_matcher = |m: &str| report.cells.iter().find(|c| c.matcher == m).unwrap();
        assert!(by_matcher("greedy").error.is_some());
        assert!(by_matcher("random").report.is_some());
    }

    #[test]
    fn empty_size_cell_is_a_recorded_error() {
        let config = SweepConfig {
            mechanisms: vec!["identity".into()],
            matchers: vec!["greedy".into()],
            sizes: vec![0],
            ..small_config()
        };
        let report = run_sweep(&config).unwrap();
        assert_eq!(report.cells.len(), 1);
        assert!(report.cells[0]
            .error
            .as_deref()
            .unwrap()
            .contains("non-empty"));
    }
}
