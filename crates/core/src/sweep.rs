//! Sharded, registry-wide competitive-ratio sweeps.
//!
//! Theorem 3's `O(ε⁻⁴ log N log² k)` bound is a statement about one
//! algorithm; the registry makes it cheap to ask the empirical question for
//! *every* `mechanism × matcher` product at once. A sweep takes a set of
//! mechanisms and matchers (defaulting to the full registry), a grid of
//! instance sizes and privacy budgets ε, and measures each pairing's
//! [`RatioReport`] (Definition 8's expectation, estimated by
//! [`empirical_competitive_ratio`]) on a deterministic synthetic instance
//! per size.
//!
//! # Sharding and determinism
//!
//! The job list — the full `pairing × size × ε` product — is fanned out
//! over `crossbeam` scoped threads, mirroring [`pombm_privacy::batch`]:
//! shard `s` takes the `s`-th contiguous chunk of jobs and writes results
//! through a `parking_lot`-protected output vector, one lock acquisition
//! per shard. Every job derives its RNG seeds from its *position in the
//! job list*, never from the shard that happens to execute it, so sweep
//! output is bit-identical for every shard count: deterministic in `seed`
//! alone.
//!
//! Cells can additionally parallelize *within* themselves via
//! [`PipelineConfig::threads`] — the batched obfuscation of
//! [`crate::algorithm::ReportMechanism::report_batch`] and the blocked
//! Hungarian behind `offline-opt` and the OPT denominator — without
//! changing a single output byte, and [`SweepConfig::timings`] records
//! per-cell wall-clock into a `wall_ms` column that is entirely absent
//! (not `null`) from the JSON when off, keeping golden byte-compares
//! exact.
//!
//! Incompatible pairings (e.g. the `blind` mechanism with any
//! location-aware matcher) and degenerate measurements (empty instances,
//! zero-distance optima) do not abort the sweep: each cell records either
//! a report or the typed error's message, so a full-registry sweep always
//! completes.
//!
//! # The dynamic axis
//!
//! [`run_dynamic_sweep`] is the same engine pointed at the event-driven
//! half of the codebase: a `mechanism × dynamic-matcher × shift-plan ×
//! size × ε` product where every cell replays one deterministic
//! shift/task timeline through [`crate::dynamic::run_dynamic_spec`] and
//! records a [`DynamicMeasurement`] (assignment rate, total distance, peak
//! availability). Task times and shift plans derive from `(seed, size)`
//! and `(seed, size, plan)` alone — identical across pairings — while
//! noise streams derive from the job index, so dynamic sweeps share the
//! static sweep's shard-count invariance.
//!
//! # Partitioned execution and checkpoints
//!
//! Because the job list is a pure function of the configuration, the same
//! invariance extends across *process* boundaries: a [`PartitionPlan`]
//! (`i/N`) names a contiguous slice of the job-index space, and
//! [`run_sweep_partition`] / [`run_dynamic_sweep_partition`] compute just
//! that slice into a self-describing [`PartialSweepReport`] /
//! [`DynamicPartialSweepReport`] — partition coordinates, a config
//! [fingerprint](sweep_fingerprint), the covered index range, and the
//! cells. The [`crate::merge`] module validates a set of partials
//! (identical fingerprints, disjoint full coverage) and reassembles them
//! in job-index order into JSON byte-identical to a single-process run,
//! so scheduling partitions on different machines is just transport.
//!
//! Partitioned runs can also checkpoint: with a checkpoint directory,
//! every completed cell is appended to a fingerprint-keyed JSONL log as
//! it finishes, and a re-run (same flavour + fingerprint, any partition
//! spec) resumes from the surviving entries instead of recomputing them.
//! Resumed output is byte-identical to a fresh run because cells are
//! deterministic and the JSON encoding round-trips `f64`s exactly.

use crate::algorithm::{AssignStrategy, DynamicAssignStrategy, PipelineError, ReportMechanism};
use crate::dynamic::{run_dynamic_spec, DynamicConfig, DynamicOutcome};
use crate::pipeline::PipelineConfig;
use crate::ratio::{dynamic_offline_optimum, empirical_competitive_ratio, RatioReport};
use crate::registry::{registry, AlgorithmSpec, Role, DEFAULT_DYNAMIC_ORACLE};
use crate::scenario::{Scenario, DEFAULT_SCENARIO};
use parking_lot::Mutex;
use pombm_geom::seeded_rng;
use pombm_matching::HstGreedyEngine;
use pombm_workload::shifts::ShiftPlan;
use pombm_workload::{synthetic, Instance, SyntheticParams};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::Write as _;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// What to sweep: the pairing filter, the instance/ε grid, and the
/// execution parameters.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Mechanism names to include; empty means every registered mechanism.
    pub mechanisms: Vec<String>,
    /// Matcher names to include; empty means every registered matcher.
    pub matchers: Vec<String>,
    /// Workload scenario names ([`crate::scenario`]) to sweep; empty means
    /// just the legacy `uniform` default (NOT every registered scenario —
    /// the pre-scenario grid shape must survive unchanged).
    pub scenarios: Vec<String>,
    /// Instance sizes: each entry generates one synthetic instance with
    /// `size` tasks and `size` workers (so `k = size` pairs are matched).
    pub sizes: Vec<usize>,
    /// Privacy budgets ε to sweep.
    pub epsilons: Vec<f64>,
    /// Shuffled-arrival repetitions per cell.
    pub repetitions: u64,
    /// Worker threads to fan the job list over. Results are bit-identical
    /// for every value ≥ 1; this only trades wall-clock for cores.
    pub shards: usize,
    /// Record per-cell wall-clock into [`SweepCell::wall_ms`]. Off by
    /// default: timings are inherently machine-dependent, so the golden
    /// JSON byte-compares and the shard/thread-invariance checks run with
    /// timings disabled (the column is then absent from the JSON, not
    /// `null`).
    pub timings: bool,
    /// Base pipeline configuration: `seed` roots every derived RNG stream,
    /// `epsilon` is overridden per cell by the ε grid, and `threads`
    /// parallelizes *within* a cell (batched obfuscation + the Hungarian
    /// `offline-opt`/OPT solves) without changing any output.
    pub base: PipelineConfig,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            mechanisms: Vec::new(),
            matchers: Vec::new(),
            scenarios: Vec::new(),
            sizes: vec![48],
            epsilons: vec![0.6],
            repetitions: 3,
            shards: 1,
            timings: false,
            base: PipelineConfig::default(),
        }
    }
}

/// One cell of the sweep product: exactly one of `report` / `error` is set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepCell {
    /// Workload scenario this cell's instance came from; absent — not
    /// `null` — for the legacy `uniform` default, so pre-scenario golden
    /// JSON byte-compares exactly and old reports still parse.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub scenario: Option<String>,
    /// Stage-1 mechanism name.
    pub mechanism: String,
    /// Stage-2 matcher name.
    pub matcher: String,
    /// Tasks in this cell's instance.
    pub num_tasks: usize,
    /// Workers in this cell's instance.
    pub num_workers: usize,
    /// Privacy budget ε of this cell.
    pub epsilon: f64,
    /// The measured ratio, when the pairing is measurable.
    pub report: Option<RatioReport>,
    /// The typed error's message, when it is not (incompatible reports,
    /// degenerate optimum, ...).
    pub error: Option<String>,
    /// Wall-clock of this cell's measurement in milliseconds; present only
    /// when the sweep ran with [`SweepConfig::timings`] (and absent — not
    /// `null` — from the JSON otherwise, keeping golden byte-compares
    /// exact).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub wall_ms: Option<f64>,
}

/// A completed sweep: the cell list in job order (mechanism-major, then
/// matcher, size, ε) plus the parameters needed to reproduce it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepReport {
    /// Root seed every cell's RNG streams derive from.
    pub seed: u64,
    /// Repetitions per cell.
    pub repetitions: u64,
    /// All measured cells.
    pub cells: Vec<SweepCell>,
}

impl SweepReport {
    /// Cells that produced a measurement.
    pub fn measured(&self) -> impl Iterator<Item = (&SweepCell, &RatioReport)> {
        self.cells
            .iter()
            .filter_map(|c| Some((c, c.report.as_ref()?)))
    }

    /// Cells rejected with a typed error.
    pub fn failed(&self) -> impl Iterator<Item = &SweepCell> {
        self.cells.iter().filter(|c| c.error.is_some())
    }
}

/// One unit of sweep work, fully determined before any thread runs.
struct Job {
    scenario: Arc<dyn Scenario>,
    spec: AlgorithmSpec,
    size: usize,
    epsilon: f64,
    /// Seed for this job's pipeline/shuffle streams; derived from the job's
    /// position so it is independent of shard assignment.
    job_seed: u64,
}

/// The scenario a sweep cell should record: `None` for the `uniform`
/// default (keeping the column absent from legacy-shaped JSON), the name
/// otherwise.
fn cell_scenario(scenario: &dyn Scenario) -> Option<String> {
    (scenario.name() != DEFAULT_SCENARIO).then(|| scenario.name().to_string())
}

/// The workload scenarios a sweep runs: the explicit filter resolved
/// against the registry (case-insensitively, with a listing-rich error on
/// unknown names), or just the legacy `uniform` default when empty.
fn resolve_scenarios(names: &[String]) -> Result<Vec<Arc<dyn Scenario>>, PipelineError> {
    if names.is_empty() {
        let uniform = registry()
            .scenario(DEFAULT_SCENARIO)
            .expect("the uniform scenario is always registered");
        return Ok(vec![uniform]);
    }
    names
        .iter()
        .map(|n| registry().require_scenario(n))
        .collect()
}

/// The deterministic instance a sweep uses for `size`: `size` tasks and
/// `size` workers from the standard synthetic generator, seeded by
/// `(seed, size)` only.
pub fn sweep_instance(seed: u64, size: usize) -> Instance {
    let params = SyntheticParams {
        num_tasks: size,
        num_workers: size,
        ..SyntheticParams::default()
    };
    let stream = seed ^ (size as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    synthetic::generate(&params, &mut seeded_rng(stream, 0x51EE))
}

fn resolve_mechanisms(names: &[String]) -> Result<Vec<Arc<dyn ReportMechanism>>, PipelineError> {
    if names.is_empty() {
        return Ok(registry().mechanisms().to_vec());
    }
    names
        .iter()
        .map(|n| {
            registry()
                .mechanism(n)
                .ok_or_else(|| PipelineError::UnknownEntry {
                    kind: "mechanism",
                    name: n.clone(),
                    known: registry()
                        .mechanisms()
                        .iter()
                        .map(|m| m.name().to_string())
                        .collect(),
                })
        })
        .collect()
}

fn resolve_matchers(names: &[String]) -> Result<Vec<Arc<dyn AssignStrategy>>, PipelineError> {
    if names.is_empty() {
        return Ok(registry().matchers().to_vec());
    }
    names
        .iter()
        .map(|n| {
            registry()
                .matcher(n)
                .ok_or_else(|| PipelineError::UnknownEntry {
                    kind: "matcher",
                    name: n.clone(),
                    known: registry()
                        .matchers()
                        .iter()
                        .map(|m| m.name().to_string())
                        .collect(),
                })
        })
        .collect()
}

fn run_job(job: &Job, base: &PipelineConfig, repetitions: u64, timings: bool) -> SweepCell {
    // lint: allow(DET-TIME) — the timings-gated wall_ms path itself; the
    // merge strips wall_ms before fingerprinting.
    let started = timings.then(std::time::Instant::now);
    let instance = job.scenario.instance(base.seed, job.size);
    let config = PipelineConfig {
        epsilon: job.epsilon,
        seed: job.job_seed,
        ..*base
    };
    let (report, error) =
        match empirical_competitive_ratio(&job.spec, &instance, &config, repetitions) {
            Ok(r) => (Some(r), None),
            Err(e) => (None, Some(e.to_string())),
        };
    SweepCell {
        scenario: cell_scenario(job.scenario.as_ref()),
        mechanism: job.spec.mechanism.name().to_string(),
        matcher: job.spec.matcher.name().to_string(),
        num_tasks: instance.num_tasks(),
        num_workers: instance.num_workers(),
        epsilon: job.epsilon,
        report,
        error,
        wall_ms: started.map(|s| s.elapsed().as_secs_f64() * 1e3),
    }
}

/// Validates the static grid shape and resolves names into the full job
/// list: the `pairing × size × ε` product in mechanism-major order, each
/// job carrying a seed derived from its index alone.
fn build_jobs(config: &SweepConfig) -> Result<Vec<Job>, PipelineError> {
    if config.shards == 0 {
        return Err(PipelineError::InvalidConfig {
            field: "shards",
            why: "the sweep needs at least one shard",
        });
    }
    if config.repetitions == 0 {
        return Err(PipelineError::InvalidConfig {
            field: "repetitions",
            why: "the sweep needs at least one repetition per cell",
        });
    }
    if config.sizes.is_empty() {
        return Err(PipelineError::InvalidConfig {
            field: "sizes",
            why: "the sweep needs at least one instance size",
        });
    }
    if config.epsilons.is_empty() {
        return Err(PipelineError::InvalidConfig {
            field: "epsilons",
            why: "the sweep needs at least one privacy budget",
        });
    }
    let mechanisms = resolve_mechanisms(&config.mechanisms)?;
    let matchers = resolve_matchers(&config.matchers)?;
    let scenarios = resolve_scenarios(&config.scenarios)?;

    let mut jobs = Vec::new();
    // Scenario is the outermost axis: a single-scenario sweep enumerates
    // jobs in exactly the pre-scenario order, so every job index (and
    // therefore every job seed) is unchanged.
    for scenario in &scenarios {
        for mechanism in &mechanisms {
            for matcher in &matchers {
                for &size in &config.sizes {
                    for &epsilon in &config.epsilons {
                        // Per-job seed from the job index: independent of the
                        // shard that executes it, so shard count never changes
                        // any cell.
                        let job_seed = config.base.seed.wrapping_add(
                            (jobs.len() as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        );
                        jobs.push(Job {
                            scenario: scenario.clone(),
                            spec: AlgorithmSpec::compose(mechanism.clone(), matcher.clone()),
                            size,
                            epsilon,
                            job_seed,
                        });
                    }
                }
            }
        }
    }
    Ok(jobs)
}

/// Number of jobs (cells) the static sweep grid expands to — the space a
/// [`PartitionPlan`] slices. Fails on the same configuration errors as
/// [`run_sweep`].
pub fn sweep_job_count(config: &SweepConfig) -> Result<usize, PipelineError> {
    Ok(build_jobs(config)?.len())
}

/// Runs the sweep, fanning the `pairing × size × ε` product over
/// `config.shards` scoped threads.
///
/// Fails fast on configuration errors (unknown names, empty grids, zero
/// shards/repetitions); per-cell measurement failures are recorded in the
/// cells, not returned.
pub fn run_sweep(config: &SweepConfig) -> Result<SweepReport, PipelineError> {
    let jobs = build_jobs(config)?;
    let range = 0..jobs.len();
    let cells = execute(&jobs, range, config.shards, None, |job| {
        run_job(job, &config.base, config.repetitions, config.timings)
    })?;
    Ok(SweepReport {
        seed: config.base.seed,
        repetitions: config.repetitions,
        cells,
    })
}

// ---------------------------------------------------------------------------
// Partitioned execution
// ---------------------------------------------------------------------------

/// Flavour tag static partial reports carry in their `flavor` field.
pub const STATIC_FLAVOR: &str = "static";
/// Flavour tag dynamic partial reports carry in their `flavor` field.
pub const DYNAMIC_FLAVOR: &str = "dynamic";

/// A named contiguous `i/N` slice of a sweep's job-index space
/// (1-based: `1/3`, `2/3`, `3/3`).
///
/// The job list is a pure function of the [`SweepConfig`] /
/// [`DynamicSweepConfig`], so every process that agrees on the
/// configuration agrees on the job order; a plan only selects *which*
/// contiguous indices a process computes. Slices are balanced: `total`
/// jobs split into `N` runs whose lengths differ by at most one, with the
/// earlier partitions taking the longer runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionPlan {
    /// 1-based partition number.
    index: usize,
    /// Total partitions the job space is split into.
    count: usize,
}

impl Default for PartitionPlan {
    fn default() -> Self {
        PartitionPlan::full()
    }
}

impl PartitionPlan {
    /// The trivial plan covering the whole job space (`1/1`).
    pub fn full() -> Self {
        PartitionPlan { index: 1, count: 1 }
    }

    /// Plan for partition `index` of `count` (1-based, `1 ≤ index ≤ count`).
    pub fn new(index: usize, count: usize) -> Result<Self, PipelineError> {
        if count == 0 || index == 0 || index > count {
            return Err(PipelineError::InvalidConfig {
                field: "partition",
                why: "expected `i/N` with 1 <= i <= N (partitions are 1-based)",
            });
        }
        Ok(PartitionPlan { index, count })
    }

    /// Parses the CLI form `i/N` (e.g. `2/3`).
    pub fn parse(s: &str) -> Result<Self, PipelineError> {
        let parse = || -> Option<(usize, usize)> {
            let (i, n) = s.split_once('/')?;
            Some((i.trim().parse().ok()?, n.trim().parse().ok()?))
        };
        let Some((index, count)) = parse() else {
            return Err(PipelineError::InvalidConfig {
                field: "partition",
                why: "expected the form `i/N` (e.g. `2/3`)",
            });
        };
        PartitionPlan::new(index, count)
    }

    /// 1-based partition number.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Total partitions.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The contiguous job-index range this plan covers out of `total`
    /// jobs. Empty for partitions beyond the job count (`total < N`).
    pub fn slice(&self, total: usize) -> Range<usize> {
        let base = total / self.count;
        let rem = total % self.count;
        let i = self.index - 1;
        let start = i * base + i.min(rem);
        let len = base + usize::from(i < rem);
        start..start + len
    }
}

impl std::fmt::Display for PartitionPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// 64-bit FNV-1a over length-delimited parts; stable across runs and
/// platforms (unlike `DefaultHasher`, whose output is unspecified).
fn fingerprint_of(parts: &[String]) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for part in parts {
        eat(part.as_bytes());
        eat(&[0xff]); // part delimiter, not valid UTF-8 inside a part
    }
    format!("{hash:016x}")
}

fn pipeline_fingerprint_parts(base: &PipelineConfig) -> Vec<String> {
    vec![
        format!("seed={}", base.seed),
        format!("grid={}", base.grid_side),
        format!(
            "engine={}",
            match base.engine {
                HstGreedyEngine::Scan => "scan",
                HstGreedyEngine::Indexed => "indexed",
            }
        ),
        format!("euclid={}", base.euclid_cells),
        format!("capacity={}", base.capacity),
        // `threads`, `shards` and `timings` are deliberately absent: they
        // never change deterministic cell content, so partials produced at
        // different parallelism levels must merge.
    ]
}

fn epsilon_bits(epsilons: &[f64]) -> String {
    epsilons
        .iter()
        .map(|e| format!("{:016x}", e.to_bits()))
        .collect::<Vec<_>>()
        .join(",")
}

/// Deterministic fingerprint of everything that shapes a static sweep's
/// job list and cell content: resolved mechanism/matcher names, the
/// size/ε grids, repetitions, and the output-relevant [`PipelineConfig`]
/// fields. Two configs with equal fingerprints produce byte-identical
/// cells for the same job indices; [`crate::merge`] refuses to combine
/// partials whose fingerprints differ.
pub fn sweep_fingerprint(config: &SweepConfig) -> Result<String, PipelineError> {
    let mechanisms = resolve_mechanisms(&config.mechanisms)?;
    let matchers = resolve_matchers(&config.matchers)?;
    let scenarios = resolve_scenarios(&config.scenarios)?;
    let mut parts = vec![
        STATIC_FLAVOR.to_string(),
        // Resolved names, so `[]` and an explicit `["uniform"]` (the same
        // job list) fingerprint identically.
        scenarios
            .iter()
            .map(|s| s.name())
            .collect::<Vec<_>>()
            .join(","),
        mechanisms
            .iter()
            .map(|m| m.name())
            .collect::<Vec<_>>()
            .join(","),
        matchers
            .iter()
            .map(|m| m.name())
            .collect::<Vec<_>>()
            .join(","),
        config
            .sizes
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(","),
        epsilon_bits(&config.epsilons),
        format!("reps={}", config.repetitions),
    ];
    parts.extend(pipeline_fingerprint_parts(&config.base));
    Ok(fingerprint_of(&parts))
}

/// Deterministic fingerprint of a dynamic sweep's job list and cell
/// content; the dynamic counterpart of [`sweep_fingerprint`].
pub fn dynamic_sweep_fingerprint(config: &DynamicSweepConfig) -> Result<String, PipelineError> {
    let mechanisms = resolve_mechanisms(&config.mechanisms)?;
    let matchers = resolve_dynamic_matchers(&config.matchers, config.ratio)?;
    let plans = resolve_plan_kinds(config)?;
    let scenarios = resolve_scenarios(&config.scenarios)?;
    let mut parts = vec![
        DYNAMIC_FLAVOR.to_string(),
        // Resolved names, like the static flavour above.
        scenarios
            .iter()
            .map(|s| s.name())
            .collect::<Vec<_>>()
            .join(","),
        mechanisms
            .iter()
            .map(|m| m.name())
            .collect::<Vec<_>>()
            .join(","),
        matchers
            .iter()
            .map(|m| m.name())
            .collect::<Vec<_>>()
            .join(","),
        plans.join(","),
        config
            .sizes
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(","),
        epsilon_bits(&config.epsilons),
        format!("grid={}", config.grid_side),
        format!("seed={}", config.seed),
        format!("horizon={:016x}", DYNAMIC_SWEEP_HORIZON.to_bits()),
    ];
    if config.ratio {
        // The resolved oracle name: ratio cells carry extra columns, so a
        // ratio sweep must never share checkpoints or merge inputs with a
        // plain sweep of the same grid.
        parts.push(format!("oracle={DEFAULT_DYNAMIC_ORACLE}"));
    }
    Ok(fingerprint_of(&parts))
}

/// One partition's worth of a static sweep: self-describing enough for
/// [`crate::merge::merge_static`] to validate and reassemble a full
/// [`SweepReport`] from a set of these.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PartialSweepReport {
    /// Always [`STATIC_FLAVOR`]; lets `pombm merge` sniff mixed inputs.
    pub flavor: String,
    /// [`sweep_fingerprint`] of the producing configuration.
    pub fingerprint: String,
    /// 1-based partition number, or `0` for a custom
    /// [`run_sweep_range`] slice.
    pub partition_index: usize,
    /// Total partitions, or `0` for a custom slice.
    pub partition_count: usize,
    /// Size of the full job-index space this partial was cut from.
    pub total_jobs: usize,
    /// First (global) job index this partial covers; it covers
    /// `start..start + cells.len()`.
    pub start: usize,
    /// Root seed of the producing configuration.
    pub seed: u64,
    /// Repetitions per cell of the producing configuration.
    pub repetitions: u64,
    /// The covered cells, in job-index order.
    pub cells: Vec<SweepCell>,
}

impl PartialSweepReport {
    /// The global job-index range this partial covers.
    pub fn covers(&self) -> Range<usize> {
        self.start..self.start + self.cells.len()
    }
}

/// One partition's worth of a dynamic sweep; the
/// [`crate::merge::merge_dynamic`] input mirroring [`PartialSweepReport`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DynamicPartialSweepReport {
    /// Always [`DYNAMIC_FLAVOR`].
    pub flavor: String,
    /// [`dynamic_sweep_fingerprint`] of the producing configuration.
    pub fingerprint: String,
    /// 1-based partition number, or `0` for a custom slice.
    pub partition_index: usize,
    /// Total partitions, or `0` for a custom slice.
    pub partition_count: usize,
    /// Size of the full job-index space this partial was cut from.
    pub total_jobs: usize,
    /// First (global) job index this partial covers.
    pub start: usize,
    /// Root seed of the producing configuration.
    pub seed: u64,
    /// Simulation horizon shared by all cells.
    pub horizon: f64,
    /// The covered cells, in job-index order.
    pub cells: Vec<DynamicSweepCell>,
}

impl DynamicPartialSweepReport {
    /// The global job-index range this partial covers.
    pub fn covers(&self) -> Range<usize> {
        self.start..self.start + self.cells.len()
    }
}

/// How to execute one partition: which slice, and optionally where to
/// checkpoint completed cells and when to stop early.
#[derive(Debug, Clone, Default)]
pub struct PartitionRun {
    /// The `i/N` slice to compute (default: the full `1/1` space).
    pub plan: PartitionPlan,
    /// Checkpoint directory: completed cells are appended to a
    /// fingerprint-keyed JSONL log as they finish, and cells already in
    /// the log are resumed instead of recomputed.
    pub checkpoint: Option<PathBuf>,
    /// Stop (with [`PipelineError::CellCap`]) after this many *freshly
    /// computed* cells; requires `checkpoint` so the work survives.
    pub max_cells: Option<usize>,
}

/// How a partitioned run's cells were obtained — the resume log the CLI
/// reports to stderr.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PartialRunStats {
    /// Cells served from the checkpoint log instead of recomputed.
    pub resumed: usize,
    /// Cells freshly computed this run.
    pub computed: usize,
}

/// Append-only JSONL store of completed cells, keyed by flavour +
/// config fingerprint so runs of a different configuration can share one
/// directory without ever resuming each other's cells. Each line is
/// `[global_job_index, cell]`; a kill can truncate only the final line,
/// which (like any unparseable line) is simply recomputed on resume.
struct CheckpointStore<T> {
    path: PathBuf,
    file: Mutex<std::fs::File>,
    // lint: allow(DET-HASH) — keyed lookups via remove(&index) only; cells
    // are re-emitted in job order, never in map order.
    resumed: Mutex<HashMap<usize, T>>,
}

impl<T: Serialize + Deserialize> CheckpointStore<T> {
    /// Opens (or creates) the log for `flavor`+`fingerprint` and loads its
    /// resumable cells. `total_jobs` bounds the persisted indices: a line
    /// whose u64 index does not fit `usize` or falls outside the job list
    /// is corrupt or foreign and is skipped — recomputed like a torn line,
    /// never a panic or a silent misplacement.
    fn open(
        dir: &Path,
        flavor: &str,
        fingerprint: &str,
        total_jobs: usize,
    ) -> Result<Self, PipelineError> {
        let err = |path: &Path, why: String| PipelineError::Checkpoint {
            path: path.display().to_string(),
            why,
        };
        std::fs::create_dir_all(dir).map_err(|e| err(dir, e.to_string()))?;
        let path = dir.join(format!("{flavor}-{fingerprint}.jsonl"));
        // lint: allow(DET-HASH) — see the field note: lookups only.
        let mut resumed = HashMap::new();
        if path.exists() {
            let text = std::fs::read_to_string(&path).map_err(|e| err(&path, e.to_string()))?;
            for line in text.lines() {
                let Ok(entry) = serde_json::from_str::<serde::Value>(line) else {
                    continue;
                };
                let Some(items) = entry.as_array() else {
                    continue;
                };
                if items.len() != 2 {
                    continue;
                }
                let (Some(index), Ok(cell)) = (items[0].as_u64(), T::from_value(&items[1])) else {
                    continue;
                };
                let Ok(index) = usize::try_from(index) else {
                    continue;
                };
                if index >= total_jobs {
                    continue;
                }
                resumed.insert(index, cell);
            }
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| err(&path, e.to_string()))?;
        Ok(CheckpointStore {
            path,
            file: Mutex::new(file),
            resumed: Mutex::new(resumed),
        })
    }

    fn take(&self, index: usize) -> Option<T> {
        self.resumed.lock().remove(&index)
    }

    /// Appends one `[index, cell]` line. The line is fully pre-formatted
    /// (payload *and* trailing newline) before any I/O, then emitted as a
    /// **single** `write_all`: with O_APPEND, one whole-line write cannot
    /// interleave with another process appending to the same log, and a
    /// crash mid-write can only tear the final line — which `open` skips
    /// as recompute. Never split this into multiple writes; the resume
    /// tolerance tests in `tests/partition.rs` (truncated and
    /// garbage-interleaved tails) pin the recovery behaviour.
    fn append(&self, index: usize, cell: &T) -> Result<(), PipelineError> {
        let entry = serde::Value::Array(vec![serde::Value::UInt(index as u64), cell.to_value()]);
        let mut line = serde_json::to_string(&entry).map_err(|e| PipelineError::Checkpoint {
            path: self.path.display().to_string(),
            why: e.to_string(),
        })?;
        line.push('\n');
        let mut file = self.file.lock();
        file.write_all(line.as_bytes())
            .and_then(|_| file.flush())
            .map_err(|e| PipelineError::Checkpoint {
                path: self.path.display().to_string(),
                why: e.to_string(),
            })
    }
}

/// Checkpoint context threaded through [`execute`]: the store, the
/// fresh-cell cap, and the resume counters.
struct Checkpointing<T> {
    store: CheckpointStore<T>,
    max_cells: Option<usize>,
    resumed: AtomicUsize,
    computed: AtomicUsize,
}

impl<T> Checkpointing<T> {
    fn stats(&self) -> PartialRunStats {
        PartialRunStats {
            resumed: self.resumed.load(Ordering::SeqCst),
            computed: self.computed.load(Ordering::SeqCst),
        }
    }
}

/// Fans `jobs[range]` over `shards` scoped threads: shard `s` takes the
/// `s`-th contiguous chunk of the slice and computes (or resumes from the
/// checkpoint) one cell per job, appending fresh cells to the checkpoint
/// as they finish. Output order equals job order for every shard count —
/// the shared execution core of both sweep flavours and their partitioned
/// variants. Checkpoint entries are keyed by *global* job index, so a log
/// written under one partition spec resumes under any other.
fn execute<J: Sync, T: Send + Serialize + Deserialize>(
    jobs: &[J],
    range: Range<usize>,
    shards: usize,
    ckpt: Option<&Checkpointing<T>>,
    run: impl Fn(&J) -> T + Sync,
) -> Result<Vec<T>, PipelineError> {
    let slice = &jobs[range.clone()];
    let chunk = slice.len().div_ceil(shards).max(1);
    let out: Mutex<Vec<Option<T>>> = Mutex::new((0..slice.len()).map(|_| None).collect());
    let fail: Mutex<Option<PipelineError>> = Mutex::new(None);
    let capped = AtomicBool::new(false);
    crossbeam::thread::scope(|scope| {
        for (s, shard_jobs) in slice.chunks(chunk).enumerate() {
            let out = &out;
            let fail = &fail;
            let capped = &capped;
            let run = &run;
            let start = range.start;
            scope.spawn(move |_| {
                for (i, job) in shard_jobs.iter().enumerate() {
                    if capped.load(Ordering::SeqCst) || fail.lock().is_some() {
                        return;
                    }
                    let local = s * chunk + i;
                    let global = start + local;
                    let cell = match ckpt.and_then(|c| c.store.take(global)) {
                        Some(resumed) => {
                            ckpt.expect("take came from ckpt")
                                .resumed
                                .fetch_add(1, Ordering::SeqCst);
                            resumed
                        }
                        None => {
                            if let Some(c) = ckpt {
                                // Tickets, not a compare: exactly `cap`
                                // fresh cells get computed even when
                                // several shards race for the last one.
                                let ticket = c.computed.fetch_add(1, Ordering::SeqCst);
                                if c.max_cells.is_some_and(|cap| ticket >= cap) {
                                    c.computed.fetch_sub(1, Ordering::SeqCst);
                                    capped.store(true, Ordering::SeqCst);
                                    return;
                                }
                            }
                            let cell = run(job);
                            if let Some(c) = ckpt {
                                if let Err(e) = c.store.append(global, &cell) {
                                    *fail.lock() = Some(e);
                                    return;
                                }
                            }
                            cell
                        }
                    };
                    out.lock()[local] = Some(cell);
                }
            });
        }
    })
    .expect("sweep shards never panic");
    if let Some(e) = fail.into_inner() {
        return Err(e);
    }
    if capped.load(Ordering::SeqCst) {
        return Err(PipelineError::CellCap {
            computed: ckpt.map_or(0, |c| c.computed.load(Ordering::SeqCst)),
        });
    }
    Ok(out
        .into_inner()
        .into_iter()
        .map(|c| c.expect("every job produces exactly one cell"))
        .collect())
}

/// Validates a custom slice against the job space and the
/// checkpoint/cap pairing rules shared by both flavours.
fn check_slice(
    range: &Range<usize>,
    total: usize,
    checkpoint: Option<&Path>,
    max_cells: Option<usize>,
) -> Result<(), PipelineError> {
    if range.start > range.end || range.end > total {
        return Err(PipelineError::InvalidConfig {
            field: "partition",
            why: "the covered range must lie inside the job-index space",
        });
    }
    if max_cells.is_some() && checkpoint.is_none() {
        return Err(PipelineError::InvalidConfig {
            field: "max-cells",
            why: "--max-cells requires --checkpoint (capped work must survive to be resumed)",
        });
    }
    if max_cells == Some(0) {
        return Err(PipelineError::InvalidConfig {
            field: "max-cells",
            why: "--max-cells must be at least 1 (a zero-cell cap can never make progress)",
        });
    }
    Ok(())
}

/// `slice_of` maps the job-space size to the covered range, so callers
/// with an `i/N` plan never build the job list twice just to learn its
/// length.
fn run_static_slice(
    config: &SweepConfig,
    slice_of: impl FnOnce(usize) -> Range<usize>,
    partition_index: usize,
    partition_count: usize,
    checkpoint: Option<&Path>,
    max_cells: Option<usize>,
) -> Result<(PartialSweepReport, PartialRunStats), PipelineError> {
    let jobs = build_jobs(config)?;
    let range = slice_of(jobs.len());
    check_slice(&range, jobs.len(), checkpoint, max_cells)?;
    let fingerprint = sweep_fingerprint(config)?;
    let ckpt = checkpoint
        .map(|dir| -> Result<Checkpointing<SweepCell>, PipelineError> {
            Ok(Checkpointing {
                store: CheckpointStore::open(dir, STATIC_FLAVOR, &fingerprint, jobs.len())?,
                max_cells,
                resumed: AtomicUsize::new(0),
                computed: AtomicUsize::new(0),
            })
        })
        .transpose()?;
    let mut cells = execute(&jobs, range.clone(), config.shards, ckpt.as_ref(), |job| {
        run_job(job, &config.base, config.repetitions, config.timings)
    })?;
    if !config.timings {
        // Resumed cells may carry `wall_ms` from a `--timings` run of the
        // same fingerprint; normalize so resumed output stays
        // byte-identical to a fresh timings-off run.
        for cell in &mut cells {
            cell.wall_ms = None;
        }
    }
    let stats = ckpt.map_or(
        PartialRunStats {
            resumed: 0,
            computed: cells.len(),
        },
        |c| c.stats(),
    );
    Ok((
        PartialSweepReport {
            flavor: STATIC_FLAVOR.to_string(),
            fingerprint,
            partition_index,
            partition_count,
            total_jobs: jobs.len(),
            start: range.start,
            seed: config.base.seed,
            repetitions: config.repetitions,
            cells,
        },
        stats,
    ))
}

/// Runs one partition of the static sweep (optionally checkpointed),
/// returning the self-describing partial report plus resume statistics.
/// Deterministic like [`run_sweep`]: the same `(config, plan)` produces
/// byte-identical partials at any shard count, fresh or resumed.
pub fn run_sweep_partition(
    config: &SweepConfig,
    run: &PartitionRun,
) -> Result<(PartialSweepReport, PartialRunStats), PipelineError> {
    run_static_slice(
        config,
        |total| run.plan.slice(total),
        run.plan.index(),
        run.plan.count(),
        run.checkpoint.as_deref(),
        run.max_cells,
    )
}

/// Runs an arbitrary contiguous job-index slice of the static sweep —
/// the building block for custom (ragged) schedulers; `partition_index` /
/// `partition_count` are recorded as `0` ("custom slice").
pub fn run_sweep_range(
    config: &SweepConfig,
    range: Range<usize>,
) -> Result<PartialSweepReport, PipelineError> {
    run_static_slice(config, move |_| range, 0, 0, None, None).map(|(partial, _)| partial)
}

// ---------------------------------------------------------------------------
// Dynamic-fleet sweeps
// ---------------------------------------------------------------------------

/// Fixed simulation horizon of every dynamic sweep cell (seconds). Task
/// arrival times and shift windows both live in `[0, horizon)`.
pub const DYNAMIC_SWEEP_HORIZON: f64 = 1000.0;

/// The named shift-plan shapes a dynamic sweep can replay; an empty
/// `shift_plans` filter in [`DynamicSweepConfig`] means all of them.
///
/// * `always-on` — every worker present for the whole horizon (the paper's
///   static model as a special case; nothing should drop);
/// * `short` — uniform random shifts of 5–15% of the horizon (sparse
///   coverage, the drop-rate stress case);
/// * `long` — uniform random shifts of 40–80% of the horizon.
pub const SHIFT_PLAN_KINDS: [&str; 3] = ["always-on", "short", "long"];

/// The deterministic task arrival times a dynamic sweep uses for
/// `num_tasks` tasks: sorted uniform draws over `[0, horizon)`, seeded by
/// `(seed, num_tasks)` only — identical for every pairing and plan, so
/// cells differ only in what they measure.
pub fn dynamic_task_times(seed: u64, num_tasks: usize) -> Vec<f64> {
    let stream = seed ^ (num_tasks as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut rng = seeded_rng(stream, 0xD1CE_0005);
    let mut times: Vec<f64> = (0..num_tasks)
        .map(|_| rng.gen::<f64>() * DYNAMIC_SWEEP_HORIZON)
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    times
}

/// The deterministic shift plan a dynamic sweep uses for a
/// `(kind, num_workers)` cell, seeded by `(seed, num_workers, kind)` only.
/// Fails fast with a listing-rich error on an unknown kind.
pub fn dynamic_shift_plan(
    kind: &str,
    num_workers: usize,
    seed: u64,
) -> Result<ShiftPlan, PipelineError> {
    let stream = seed ^ (num_workers as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let h = DYNAMIC_SWEEP_HORIZON;
    match kind {
        // End strictly after the horizon so tasks at t < horizon always
        // find the full fleet (departures process before same-time tasks).
        "always-on" => Ok(ShiftPlan::always_on(num_workers, h + 1.0)),
        "short" => Ok(ShiftPlan::uniform(
            num_workers,
            h,
            0.05 * h,
            0.15 * h,
            &mut seeded_rng(stream, 0xD1CE_0003),
        )),
        "long" => Ok(ShiftPlan::uniform(
            num_workers,
            h,
            0.4 * h,
            0.8 * h,
            &mut seeded_rng(stream, 0xD1CE_0004),
        )),
        other => Err(PipelineError::UnknownEntry {
            kind: "shift plan",
            name: other.to_string(),
            known: SHIFT_PLAN_KINDS.iter().map(|s| s.to_string()).collect(),
        }),
    }
}

/// What the dynamic sweep runs: the pairing/plan filters, the instance/ε
/// grid, and the execution parameters. Mirrors [`SweepConfig`], with shift
/// plans as the extra axis and no repetitions (each cell replays one
/// deterministic timeline).
#[derive(Debug, Clone)]
pub struct DynamicSweepConfig {
    /// Mechanism names to include; empty means every registered mechanism.
    pub mechanisms: Vec<String>,
    /// Dynamic matcher names to include; empty means every registered
    /// dynamic matcher.
    pub matchers: Vec<String>,
    /// Workload scenario names to sweep; empty means just the legacy
    /// `uniform` default, exactly as in [`SweepConfig::scenarios`].
    pub scenarios: Vec<String>,
    /// Shift-plan kinds to replay; empty means all of
    /// [`SHIFT_PLAN_KINDS`].
    pub shift_plans: Vec<String>,
    /// Instance sizes: `size` tasks and `size` workers per cell.
    pub sizes: Vec<usize>,
    /// Privacy budgets ε to sweep.
    pub epsilons: Vec<f64>,
    /// Worker threads; results are bit-identical for every value ≥ 1.
    pub shards: usize,
    /// Record per-cell wall-clock into [`DynamicSweepCell::wall_ms`]; same
    /// golden-exclusion semantics as [`SweepConfig::timings`].
    pub timings: bool,
    /// Measure each cell against the clairvoyant `dynamic-opt` oracle:
    /// populates [`DynamicSweepCell::competitive_ratio`] and the
    /// drop-latency percentile columns, admits the oracle itself in
    /// matcher position (its cell reports ratio exactly 1.0), and enters
    /// the resolved oracle name into the config fingerprint — so
    /// partitioned/checkpointed/merged ratio sweeps can never mix with
    /// plain ones. Off (the default), cells serialize byte-identically to
    /// pre-ratio sweeps.
    pub ratio: bool,
    /// Predefined-point grid side of each cell's server.
    pub grid_side: usize,
    /// Root seed every derived stream (instances, times, plans, noise)
    /// descends from.
    pub seed: u64,
}

impl Default for DynamicSweepConfig {
    fn default() -> Self {
        DynamicSweepConfig {
            mechanisms: Vec::new(),
            matchers: Vec::new(),
            scenarios: Vec::new(),
            shift_plans: Vec::new(),
            sizes: vec![48],
            epsilons: vec![0.6],
            shards: 1,
            timings: false,
            ratio: false,
            grid_side: 32,
            seed: 0,
        }
    }
}

/// The measured outcome of one dynamic sweep cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DynamicMeasurement {
    /// Tasks assigned to a worker.
    pub assigned: usize,
    /// Tasks that arrived while the pool was empty.
    pub dropped: usize,
    /// `assigned / (assigned + dropped)`; 1.0 for an empty timeline.
    pub assignment_rate: f64,
    /// Total true-location travel distance of the assigned pairs.
    pub total_distance: f64,
    /// Largest number of simultaneously available workers observed.
    pub peak_available: usize,
}

impl DynamicMeasurement {
    /// Summarizes a [`DynamicOutcome`] (the CLI's `--json` shape too).
    pub fn from_outcome(out: &DynamicOutcome) -> Self {
        DynamicMeasurement {
            assigned: out.pairs.len(),
            dropped: out.dropped_tasks,
            assignment_rate: out.assignment_rate(),
            total_distance: out.total_distance,
            peak_available: out.peak_available,
        }
    }
}

/// One cell of the dynamic sweep product: exactly one of
/// `measurement` / `error` is set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DynamicSweepCell {
    /// Workload scenario this cell's instance/timeline came from; absent
    /// for the legacy `uniform` default, exactly as in
    /// [`SweepCell::scenario`].
    #[serde(skip_serializing_if = "Option::is_none")]
    pub scenario: Option<String>,
    /// Stage-1 mechanism name.
    pub mechanism: String,
    /// Stage-2 dynamic matcher name.
    pub matcher: String,
    /// Shift-plan kind replayed by this cell.
    pub plan: String,
    /// Tasks in this cell's instance.
    pub num_tasks: usize,
    /// Workers in this cell's instance.
    pub num_workers: usize,
    /// Privacy budget ε of this cell.
    pub epsilon: f64,
    /// The measured outcome, when the pairing is measurable.
    pub measurement: Option<DynamicMeasurement>,
    /// This cell's total distance over the clairvoyant optimum's; present
    /// only under [`DynamicSweepConfig::ratio`]. Exactly 1.0 for the
    /// oracle's own cell.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub competitive_ratio: Option<f64>,
    /// Median time a dropped task would have waited for the next shift
    /// start (nearest-rank); present under [`DynamicSweepConfig::ratio`]
    /// when at least one dropped task has a future shift start.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub drop_latency_p50: Option<f64>,
    /// 95th-percentile drop latency (nearest-rank), same presence rule as
    /// [`DynamicSweepCell::drop_latency_p50`].
    #[serde(skip_serializing_if = "Option::is_none")]
    pub drop_latency_p95: Option<f64>,
    /// The typed error's message, when it is not (e.g. blind reports into
    /// a location-aware pool).
    pub error: Option<String>,
    /// Wall-clock of this cell's replay in milliseconds; present only
    /// when the sweep ran with [`DynamicSweepConfig::timings`].
    #[serde(skip_serializing_if = "Option::is_none")]
    pub wall_ms: Option<f64>,
}

/// A completed dynamic sweep: cells in job order (mechanism-major, then
/// matcher, plan, size, ε).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DynamicSweepReport {
    /// Root seed every cell's streams derive from.
    pub seed: u64,
    /// Simulation horizon shared by all cells.
    pub horizon: f64,
    /// All measured cells.
    pub cells: Vec<DynamicSweepCell>,
}

impl DynamicSweepReport {
    /// Cells that produced a measurement.
    pub fn measured(&self) -> impl Iterator<Item = (&DynamicSweepCell, &DynamicMeasurement)> {
        self.cells
            .iter()
            .filter_map(|c| Some((c, c.measurement.as_ref()?)))
    }

    /// Cells rejected with a typed error.
    pub fn failed(&self) -> impl Iterator<Item = &DynamicSweepCell> {
        self.cells.iter().filter(|c| c.error.is_some())
    }
}

struct DynamicJob {
    scenario: Arc<dyn Scenario>,
    mechanism: Arc<dyn ReportMechanism>,
    matcher: Arc<dyn DynamicAssignStrategy>,
    plan_kind: String,
    size: usize,
    epsilon: f64,
    /// Seed for this job's noise streams; derived from the job's position
    /// in the job list, never from the executing shard.
    job_seed: u64,
}

/// Resolves the dynamic-matcher filter. Ratio sweeps admit the
/// [`Role::OracleOnly`](crate::registry::Role) `dynamic-opt` entry — and
/// include it by default, so the denominator shows up as its own
/// ratio-1.0 row — while plain sweeps stay pairing-only, making oracle
/// misuse a typed [`PipelineError::RoleMismatch`].
fn resolve_dynamic_matchers(
    names: &[String],
    ratio: bool,
) -> Result<Vec<Arc<dyn DynamicAssignStrategy>>, PipelineError> {
    if names.is_empty() {
        if ratio {
            return Ok(registry().dynamic_matcher_catalog().all().to_vec());
        }
        return Ok(registry().dynamic_matchers());
    }
    names
        .iter()
        .map(|n| {
            if ratio {
                registry().dynamic_matcher_any(n)
            } else {
                registry().require_dynamic_matcher(n)
            }
        })
        .collect()
}

/// Nearest-rank (p50, p95) of how long each dropped task would have waited
/// for the next shift start after its arrival; dropped tasks with no
/// future shift start are excluded, and both are `None` when nothing
/// qualifies.
fn drop_latency_percentiles(
    dropped: impl Iterator<Item = usize>,
    times: &[f64],
    plan: &ShiftPlan,
) -> (Option<f64>, Option<f64>) {
    let mut starts: Vec<f64> = plan.shifts.iter().map(|s| s.start).collect();
    starts.sort_by(|a, b| a.partial_cmp(b).expect("finite shift starts"));
    let mut latencies: Vec<f64> = dropped
        .filter_map(|t| {
            let at = times[t];
            starts
                .iter()
                .find(|&&start| start > at)
                .map(|start| start - at)
        })
        .collect();
    if latencies.is_empty() {
        return (None, None);
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let rank = |p: f64| {
        let n = latencies.len();
        let idx = ((p * n as f64).ceil() as usize).clamp(1, n) - 1;
        latencies[idx]
    };
    (Some(rank(0.50)), Some(rank(0.95)))
}

/// The oracle's "run" for its own sweep cell: the clairvoyant solution
/// presented as a [`DynamicMeasurement`]. `peak_available` replays the
/// timeline with the oracle's consumption schedule (a worker leaves the
/// pool when its assigned task arrives), mirroring how the online driver
/// samples the peak after each registration.
fn oracle_measurement(
    opt: &pombm_matching::ClairvoyantAssignment,
    times: &[f64],
    plan: &ShiftPlan,
) -> DynamicMeasurement {
    let num_tasks = times.len();
    let num_workers = plan.shifts.len();
    let mut worker_of = vec![None; num_tasks];
    for &(t, w) in &opt.pairs {
        worker_of[t] = Some(w);
    }
    let mut present = vec![false; num_workers];
    let mut consumed = vec![false; num_workers];
    let mut available = 0usize;
    let mut peak = 0usize;
    for &(_, _, _, kind) in &crate::dynamic::build_timeline(plan, times) {
        match kind {
            crate::dynamic::EventKind::ShiftStart(w) => {
                present[w] = true;
                available += 1;
                peak = peak.max(available);
            }
            crate::dynamic::EventKind::ShiftEnd(w) => {
                if present[w] && !consumed[w] {
                    present[w] = false;
                    available -= 1;
                }
            }
            crate::dynamic::EventKind::Task(t) => {
                if let Some(w) = worker_of[t] {
                    consumed[w] = true;
                    present[w] = false;
                    available -= 1;
                }
            }
        }
    }
    let assigned = opt.size();
    let dropped = opt.dropped.len();
    DynamicMeasurement {
        assigned,
        dropped,
        assignment_rate: if assigned + dropped == 0 {
            1.0
        } else {
            assigned as f64 / (assigned + dropped) as f64
        },
        total_distance: opt.total_cost,
        peak_available: peak,
    }
}

fn run_dynamic_job(
    job: &DynamicJob,
    grid_side: usize,
    seed: u64,
    timings: bool,
    ratio: bool,
) -> DynamicSweepCell {
    // lint: allow(DET-TIME) — the timings-gated wall_ms path itself; the
    // merge strips wall_ms before fingerprinting.
    let started = timings.then(std::time::Instant::now);
    let instance = job.scenario.instance(seed, job.size);
    let times = job.scenario.task_times(seed, job.size);
    let plan = job
        .scenario
        .shift_plan(&job.plan_kind, job.size, seed)
        .expect("plan kinds were validated before the fan-out");
    let config = DynamicConfig {
        epsilon: job.epsilon,
        grid_side,
        seed: job.job_seed,
    };
    // The oracle denominator is shared by every repetition of this cell's
    // timeline; solved at threads=1 so cells stay shard-invariant (the
    // clairvoyant engine is bit-identical at every thread count anyway).
    let oracle = ratio.then(|| dynamic_offline_optimum(&instance, &times, &plan));
    let is_oracle_cell = registry()
        .dynamic_matcher_catalog()
        .role_of(job.matcher.name())
        == Some(Role::OracleOnly);

    type OnlineRun = (f64, std::collections::BTreeSet<usize>);
    let outcome: Result<(DynamicMeasurement, Option<OnlineRun>), String> = if is_oracle_cell {
        match &oracle {
            Some(Ok(opt)) => Ok((oracle_measurement(opt, &times, &plan), None)),
            Some(Err(e)) => Err(e.to_string()),
            // resolve_dynamic_matchers only admits the oracle under
            // --ratio, so a ratio-less oracle cell cannot be built by the
            // sweep; report the role error defensively anyway.
            None => Err(PipelineError::RoleMismatch {
                kind: "dynamic matcher",
                name: job.matcher.name().to_string(),
                role: "oracle-only",
                wanted: "pairing",
            }
            .to_string()),
        }
    } else {
        match run_dynamic_spec(
            &instance,
            &times,
            &plan,
            &config,
            job.mechanism.as_ref(),
            job.matcher.as_ref(),
        ) {
            Ok(out) => {
                let assigned: std::collections::BTreeSet<usize> =
                    out.pairs.iter().map(|&(t, _)| t).collect();
                Ok((
                    DynamicMeasurement::from_outcome(&out),
                    Some((out.total_distance, assigned)),
                ))
            }
            Err(e) => Err(e.to_string()),
        }
    };

    let (measurement, competitive_ratio, drop_p50, drop_p95, error) = match outcome {
        Err(e) => (None, None, None, None, Some(e)),
        Ok((m, online)) => match (&oracle, online) {
            // Ratio off: the pre-ratio cell, bit for bit.
            (None, _) => (Some(m), None, None, None, None),
            (Some(Err(e)), _) => (None, None, None, None, Some(e.to_string())),
            (Some(Ok(opt)), online) => {
                let (numerator, dropped): (f64, Vec<usize>) = match online {
                    Some((total, assigned)) => (
                        total,
                        (0..instance.num_tasks())
                            .filter(|t| !assigned.contains(t))
                            .collect(),
                    ),
                    // The oracle's own cell: numerator = denominator, so
                    // the ratio divides to exactly 1.0.
                    None => (opt.total_cost, opt.dropped.clone()),
                };
                let (p50, p95) = drop_latency_percentiles(dropped.into_iter(), &times, &plan);
                (Some(m), Some(numerator / opt.total_cost), p50, p95, None)
            }
        },
    };

    DynamicSweepCell {
        scenario: cell_scenario(job.scenario.as_ref()),
        mechanism: job.mechanism.name().to_string(),
        matcher: job.matcher.name().to_string(),
        plan: job.plan_kind.clone(),
        num_tasks: instance.num_tasks(),
        num_workers: instance.num_workers(),
        epsilon: job.epsilon,
        measurement,
        competitive_ratio,
        drop_latency_p50: drop_p50,
        drop_latency_p95: drop_p95,
        error,
        wall_ms: started.map(|s| s.elapsed().as_secs_f64() * 1e3),
    }
}

/// The shift-plan kinds a dynamic sweep replays: the explicit filter, or
/// all of [`SHIFT_PLAN_KINDS`] when empty — validated upfront so the
/// fan-out cannot panic.
fn resolve_plan_kinds(config: &DynamicSweepConfig) -> Result<Vec<String>, PipelineError> {
    let plans: Vec<String> = if config.shift_plans.is_empty() {
        SHIFT_PLAN_KINDS.iter().map(|s| s.to_string()).collect()
    } else {
        config.shift_plans.clone()
    };
    for kind in &plans {
        dynamic_shift_plan(kind, 1, 0)?;
    }
    Ok(plans)
}

/// Validates the dynamic grid shape and resolves names into the full job
/// list (mechanism-major, then matcher, plan, size, ε), each job seeded
/// by its index alone.
fn build_dynamic_jobs(config: &DynamicSweepConfig) -> Result<Vec<DynamicJob>, PipelineError> {
    if config.shards == 0 {
        return Err(PipelineError::InvalidConfig {
            field: "shards",
            why: "the sweep needs at least one shard",
        });
    }
    if config.sizes.is_empty() {
        return Err(PipelineError::InvalidConfig {
            field: "sizes",
            why: "the sweep needs at least one instance size",
        });
    }
    if config.epsilons.is_empty() {
        return Err(PipelineError::InvalidConfig {
            field: "epsilons",
            why: "the sweep needs at least one privacy budget",
        });
    }
    let mechanisms = resolve_mechanisms(&config.mechanisms)?;
    let matchers = resolve_dynamic_matchers(&config.matchers, config.ratio)?;
    let plans = resolve_plan_kinds(config)?;
    let scenarios = resolve_scenarios(&config.scenarios)?;

    let mut jobs = Vec::new();
    // Scenario outermost, exactly as in `build_jobs`: a single-scenario
    // sweep keeps the pre-scenario job order and seeds.
    for scenario in &scenarios {
        for mechanism in &mechanisms {
            for matcher in &matchers {
                for plan_kind in &plans {
                    for &size in &config.sizes {
                        for &epsilon in &config.epsilons {
                            let job_seed = config.seed.wrapping_add(
                                (jobs.len() as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                            );
                            jobs.push(DynamicJob {
                                scenario: scenario.clone(),
                                mechanism: mechanism.clone(),
                                matcher: matcher.clone(),
                                plan_kind: plan_kind.clone(),
                                size,
                                epsilon,
                                job_seed,
                            });
                        }
                    }
                }
            }
        }
    }
    Ok(jobs)
}

/// Number of jobs (cells) the dynamic sweep grid expands to.
pub fn dynamic_sweep_job_count(config: &DynamicSweepConfig) -> Result<usize, PipelineError> {
    Ok(build_dynamic_jobs(config)?.len())
}

/// Runs the dynamic sweep, fanning the
/// `pairing × plan × size × ε` product over `config.shards` scoped
/// threads. Deterministic in `config.seed` for every shard count, exactly
/// like [`run_sweep`].
///
/// Fails fast on configuration errors (unknown mechanism / dynamic matcher
/// / plan names, empty grids, zero shards); per-cell failures (e.g. the
/// blind mechanism into a location-aware pool) are recorded in the cells.
pub fn run_dynamic_sweep(config: &DynamicSweepConfig) -> Result<DynamicSweepReport, PipelineError> {
    let jobs = build_dynamic_jobs(config)?;
    let range = 0..jobs.len();
    let cells = execute(&jobs, range, config.shards, None, |job| {
        run_dynamic_job(
            job,
            config.grid_side,
            config.seed,
            config.timings,
            config.ratio,
        )
    })?;
    Ok(DynamicSweepReport {
        seed: config.seed,
        horizon: DYNAMIC_SWEEP_HORIZON,
        cells,
    })
}

/// `slice_of` maps the job-space size to the covered range, mirroring
/// [`run_static_slice`].
fn run_dynamic_slice(
    config: &DynamicSweepConfig,
    slice_of: impl FnOnce(usize) -> Range<usize>,
    partition_index: usize,
    partition_count: usize,
    checkpoint: Option<&Path>,
    max_cells: Option<usize>,
) -> Result<(DynamicPartialSweepReport, PartialRunStats), PipelineError> {
    let jobs = build_dynamic_jobs(config)?;
    let range = slice_of(jobs.len());
    check_slice(&range, jobs.len(), checkpoint, max_cells)?;
    let fingerprint = dynamic_sweep_fingerprint(config)?;
    let ckpt = checkpoint
        .map(
            |dir| -> Result<Checkpointing<DynamicSweepCell>, PipelineError> {
                Ok(Checkpointing {
                    store: CheckpointStore::open(dir, DYNAMIC_FLAVOR, &fingerprint, jobs.len())?,
                    max_cells,
                    resumed: AtomicUsize::new(0),
                    computed: AtomicUsize::new(0),
                })
            },
        )
        .transpose()?;
    let mut cells = execute(&jobs, range.clone(), config.shards, ckpt.as_ref(), |job| {
        run_dynamic_job(
            job,
            config.grid_side,
            config.seed,
            config.timings,
            config.ratio,
        )
    })?;
    if !config.timings {
        // Resumed cells may carry `wall_ms` from a `--timings` run of the
        // same fingerprint; normalize so resumed output stays
        // byte-identical to a fresh timings-off run.
        for cell in &mut cells {
            cell.wall_ms = None;
        }
    }
    let stats = ckpt.map_or(
        PartialRunStats {
            resumed: 0,
            computed: cells.len(),
        },
        |c| c.stats(),
    );
    Ok((
        DynamicPartialSweepReport {
            flavor: DYNAMIC_FLAVOR.to_string(),
            fingerprint,
            partition_index,
            partition_count,
            total_jobs: jobs.len(),
            start: range.start,
            seed: config.seed,
            horizon: DYNAMIC_SWEEP_HORIZON,
            cells,
        },
        stats,
    ))
}

/// Runs one partition of the dynamic sweep (optionally checkpointed); the
/// dynamic counterpart of [`run_sweep_partition`].
pub fn run_dynamic_sweep_partition(
    config: &DynamicSweepConfig,
    run: &PartitionRun,
) -> Result<(DynamicPartialSweepReport, PartialRunStats), PipelineError> {
    run_dynamic_slice(
        config,
        |total| run.plan.slice(total),
        run.plan.index(),
        run.plan.count(),
        run.checkpoint.as_deref(),
        run.max_cells,
    )
}

/// Runs an arbitrary contiguous job-index slice of the dynamic sweep; the
/// dynamic counterpart of [`run_sweep_range`].
pub fn run_dynamic_sweep_range(
    config: &DynamicSweepConfig,
    range: Range<usize>,
) -> Result<DynamicPartialSweepReport, PipelineError> {
    run_dynamic_slice(config, move |_| range, 0, 0, None, None).map(|(partial, _)| partial)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SweepConfig {
        SweepConfig {
            mechanisms: vec!["identity".into(), "laplace".into()],
            matchers: vec!["greedy".into(), "offline-opt".into()],
            scenarios: Vec::new(),
            sizes: vec![12],
            epsilons: vec![0.6],
            repetitions: 2,
            shards: 1,
            timings: false,
            base: PipelineConfig {
                grid_side: 16,
                ..PipelineConfig::default()
            },
        }
    }

    #[test]
    fn sweep_covers_the_product() {
        let report = run_sweep(&small_config()).unwrap();
        assert_eq!(report.cells.len(), 2 * 2);
        assert_eq!(report.measured().count(), 4);
        assert_eq!(report.failed().count(), 0);
        for (cell, r) in report.measured() {
            assert!(r.ratio >= 1.0 - 1e-9, "{}+{}", cell.mechanism, cell.matcher);
        }
    }

    #[test]
    fn identity_offline_opt_cell_is_the_oracle() {
        let report = run_sweep(&small_config()).unwrap();
        let (_, oracle) = report
            .measured()
            .find(|(c, _)| c.mechanism == "identity" && c.matcher == "offline-opt")
            .expect("oracle cell present");
        assert_eq!(oracle.ratio, 1.0);
    }

    #[test]
    fn unknown_names_fail_fast() {
        let mut config = small_config();
        config.mechanisms = vec!["bogus".into()];
        assert!(matches!(
            run_sweep(&config),
            Err(PipelineError::UnknownEntry {
                kind: "mechanism",
                ..
            })
        ));
        let mut config = small_config();
        config.matchers = vec!["bogus".into()];
        assert!(matches!(
            run_sweep(&config),
            Err(PipelineError::UnknownEntry {
                kind: "matcher",
                ..
            })
        ));
    }

    #[test]
    fn degenerate_grids_fail_fast() {
        for broken in [
            SweepConfig {
                shards: 0,
                ..small_config()
            },
            SweepConfig {
                repetitions: 0,
                ..small_config()
            },
            SweepConfig {
                sizes: vec![],
                ..small_config()
            },
            SweepConfig {
                epsilons: vec![],
                ..small_config()
            },
        ] {
            assert!(matches!(
                run_sweep(&broken),
                Err(PipelineError::InvalidConfig { .. })
            ));
        }
    }

    #[test]
    fn incompatible_cells_record_errors_without_aborting() {
        let config = SweepConfig {
            mechanisms: vec!["blind".into()],
            matchers: vec!["greedy".into(), "random".into()],
            ..small_config()
        };
        let report = run_sweep(&config).unwrap();
        assert_eq!(report.cells.len(), 2);
        let by_matcher = |m: &str| report.cells.iter().find(|c| c.matcher == m).unwrap();
        assert!(by_matcher("greedy").error.is_some());
        assert!(by_matcher("random").report.is_some());
    }

    #[test]
    fn empty_size_cell_is_a_recorded_error() {
        let config = SweepConfig {
            mechanisms: vec!["identity".into()],
            matchers: vec!["greedy".into()],
            sizes: vec![0],
            ..small_config()
        };
        let report = run_sweep(&config).unwrap();
        assert_eq!(report.cells.len(), 1);
        assert!(report.cells[0]
            .error
            .as_deref()
            .unwrap()
            .contains("non-empty"));
    }

    fn small_dynamic_config() -> DynamicSweepConfig {
        DynamicSweepConfig {
            mechanisms: vec!["identity".into(), "hst".into()],
            matchers: vec!["hst-greedy".into(), "kd-rebuild".into()],
            scenarios: Vec::new(),
            shift_plans: vec!["always-on".into(), "short".into()],
            sizes: vec![16],
            epsilons: vec![0.6],
            shards: 1,
            timings: false,
            ratio: false,
            grid_side: 16,
            seed: 0,
        }
    }

    #[test]
    fn dynamic_sweep_covers_the_product() {
        let report = run_dynamic_sweep(&small_dynamic_config()).unwrap();
        assert_eq!(report.cells.len(), 2 * 2 * 2);
        assert_eq!(report.measured().count(), 8);
        assert_eq!(report.failed().count(), 0);
        for (cell, m) in report.measured() {
            assert_eq!(
                m.assigned + m.dropped,
                16,
                "{}+{}",
                cell.mechanism,
                cell.matcher
            );
            if cell.plan == "always-on" {
                assert_eq!(m.dropped, 0, "always-on never drops");
                assert_eq!(m.assignment_rate, 1.0);
                assert_eq!(m.peak_available, 16);
            }
        }
    }

    #[test]
    fn dynamic_sweep_timelines_are_shared_across_pairings() {
        // Task times and shift plans depend on (seed, size, plan) only, so
        // every pairing of one cell column faces the same scenario: the
        // identity x hst-greedy and hst x hst-greedy cells must report the
        // same peak availability under the same plan.
        let report = run_dynamic_sweep(&small_dynamic_config()).unwrap();
        for plan in ["always-on", "short"] {
            let peaks: Vec<usize> = report
                .measured()
                .filter(|(c, _)| c.plan == plan)
                .map(|(_, m)| m.peak_available)
                .collect();
            assert!(
                peaks.windows(2).all(|w| w[0] == w[1]),
                "{plan}: peaks diverged {peaks:?}"
            );
        }
    }

    #[test]
    fn dynamic_sweep_records_incompatible_cells_without_aborting() {
        let config = DynamicSweepConfig {
            mechanisms: vec!["blind".into()],
            matchers: vec![],
            shift_plans: vec!["always-on".into()],
            ..small_dynamic_config()
        };
        let report = run_dynamic_sweep(&config).unwrap();
        assert_eq!(report.cells.len(), registry().dynamic_matchers().len());
        let by_matcher = |m: &str| report.cells.iter().find(|c| c.matcher == m).unwrap();
        assert!(by_matcher("hst-greedy").error.is_some());
        assert!(by_matcher("kd-rebuild").error.is_some());
        assert!(by_matcher("random").measurement.is_some());
    }

    #[test]
    fn dynamic_sweep_fails_fast_on_unknown_names_and_empty_grids() {
        let mut config = small_dynamic_config();
        config.matchers = vec!["bogus".into()];
        assert!(matches!(
            run_dynamic_sweep(&config),
            Err(PipelineError::UnknownEntry {
                kind: "dynamic matcher",
                ..
            })
        ));
        let mut config = small_dynamic_config();
        config.shift_plans = vec!["bogus".into()];
        assert!(matches!(
            run_dynamic_sweep(&config),
            Err(PipelineError::UnknownEntry {
                kind: "shift plan",
                ..
            })
        ));
        for broken in [
            DynamicSweepConfig {
                shards: 0,
                ..small_dynamic_config()
            },
            DynamicSweepConfig {
                sizes: vec![],
                ..small_dynamic_config()
            },
            DynamicSweepConfig {
                epsilons: vec![],
                ..small_dynamic_config()
            },
        ] {
            assert!(matches!(
                run_dynamic_sweep(&broken),
                Err(PipelineError::InvalidConfig { .. })
            ));
        }
    }

    #[test]
    fn dynamic_sweep_empty_filters_mean_the_full_registry() {
        let config = DynamicSweepConfig {
            mechanisms: Vec::new(),
            matchers: Vec::new(),
            shift_plans: Vec::new(),
            sizes: vec![8],
            ..small_dynamic_config()
        };
        let report = run_dynamic_sweep(&config).unwrap();
        let expected = registry().mechanisms().len()
            * registry().dynamic_matchers().len()
            * SHIFT_PLAN_KINDS.len();
        assert_eq!(report.cells.len(), expected);
        // Only blind x location-aware cells fail.
        assert_eq!(
            report.failed().count(),
            (registry().dynamic_matchers().len() - 1) * SHIFT_PLAN_KINDS.len()
        );
        for cell in report.failed() {
            assert_eq!(cell.mechanism, "blind");
            assert_ne!(cell.matcher, "random");
        }
    }

    #[test]
    fn shift_plan_kinds_generate_and_unknown_kinds_error() {
        for kind in SHIFT_PLAN_KINDS {
            let plan = dynamic_shift_plan(kind, 40, 3).unwrap();
            assert_eq!(plan.shifts.len(), 40, "{kind}");
            for s in &plan.shifts {
                assert!(s.start < s.end, "{kind}");
            }
        }
        assert!(dynamic_shift_plan("weekend", 4, 0).is_err());
        let times = dynamic_task_times(5, 64);
        assert_eq!(times.len(), 64);
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "times are sorted");
        assert!(times
            .iter()
            .all(|&t| (0.0..DYNAMIC_SWEEP_HORIZON).contains(&t)));
        assert_eq!(times, dynamic_task_times(5, 64), "deterministic in seed");
        assert_ne!(times, dynamic_task_times(6, 64), "seed matters");
    }

    #[test]
    fn ratio_resolution_admits_the_oracle_only_under_ratio() {
        // Empty filter: pairing-only without --ratio, the full catalog
        // (oracle row included) with it.
        let plain = resolve_dynamic_matchers(&[], false).unwrap();
        let with_ratio = resolve_dynamic_matchers(&[], true).unwrap();
        assert_eq!(plain.len() + 1, with_ratio.len());
        assert!(with_ratio
            .iter()
            .any(|m| m.name() == DEFAULT_DYNAMIC_ORACLE));
        assert!(plain.iter().all(|m| m.name() != DEFAULT_DYNAMIC_ORACLE));
        // Naming the oracle outside a ratio sweep is a typed role error;
        // under --ratio the same name resolves.
        assert!(resolve_dynamic_matchers(&["dynamic-opt".into()], false).is_err());
        let named = resolve_dynamic_matchers(&["dynamic-opt".into()], true).unwrap();
        assert_eq!(named.len(), 1);
        assert_eq!(named[0].name(), DEFAULT_DYNAMIC_ORACLE);
    }

    #[test]
    fn drop_latency_percentiles_use_the_next_shift_start() {
        use pombm_workload::shifts::Shift;
        let plan = ShiftPlan {
            horizon: 100.0,
            shifts: vec![
                Shift {
                    worker: 0,
                    start: 10.0,
                    end: 20.0,
                },
                Shift {
                    worker: 1,
                    start: 50.0,
                    end: 60.0,
                },
            ],
        };
        let times = [0.0, 30.0, 70.0, 5.0];
        // Tasks 0 and 3 wait for the start at 10 (latencies 10 and 5),
        // task 1 for the start at 50 (latency 20); task 2 arrives after
        // every start and is excluded. Sorted latencies [5, 10, 20]:
        // nearest-rank p50 is 10, p95 is 20.
        let (p50, p95) = drop_latency_percentiles([0usize, 1, 2, 3].into_iter(), &times, &plan);
        assert_eq!(p50, Some(10.0));
        assert_eq!(p95, Some(20.0));
        let (p50, p95) = drop_latency_percentiles(std::iter::empty(), &times, &plan);
        assert_eq!((p50, p95), (None, None));
        // Drops with no later shift to wait for leave both undefined.
        let (p50, p95) = drop_latency_percentiles([2usize].into_iter(), &times, &plan);
        assert_eq!((p50, p95), (None, None));
    }

    #[test]
    fn ratio_enters_the_fingerprint_and_nothing_else_new() {
        let plain = small_dynamic_config();
        let with_ratio = DynamicSweepConfig {
            ratio: true,
            ..small_dynamic_config()
        };
        assert_ne!(
            dynamic_sweep_fingerprint(&plain).unwrap(),
            dynamic_sweep_fingerprint(&with_ratio).unwrap(),
            "ratio sweeps must not share checkpoints with plain sweeps"
        );
        // Parallelism stays outside the fingerprint either way.
        let sharded = DynamicSweepConfig {
            shards: 7,
            ratio: true,
            ..small_dynamic_config()
        };
        assert_eq!(
            dynamic_sweep_fingerprint(&with_ratio).unwrap(),
            dynamic_sweep_fingerprint(&sharded).unwrap()
        );
    }
}
