//! Sharded, registry-wide competitive-ratio sweeps.
//!
//! Theorem 3's `O(ε⁻⁴ log N log² k)` bound is a statement about one
//! algorithm; the registry makes it cheap to ask the empirical question for
//! *every* `mechanism × matcher` product at once. A sweep takes a set of
//! mechanisms and matchers (defaulting to the full registry), a grid of
//! instance sizes and privacy budgets ε, and measures each pairing's
//! [`RatioReport`] (Definition 8's expectation, estimated by
//! [`empirical_competitive_ratio`]) on a deterministic synthetic instance
//! per size.
//!
//! # Sharding and determinism
//!
//! The job list — the full `pairing × size × ε` product — is fanned out
//! over `crossbeam` scoped threads, mirroring [`pombm_privacy::batch`]:
//! shard `s` takes the `s`-th contiguous chunk of jobs and writes results
//! through a `parking_lot`-protected output vector, one lock acquisition
//! per shard. Every job derives its RNG seeds from its *position in the
//! job list*, never from the shard that happens to execute it, so sweep
//! output is bit-identical for every shard count: deterministic in `seed`
//! alone.
//!
//! Cells can additionally parallelize *within* themselves via
//! [`PipelineConfig::threads`] — the batched obfuscation of
//! [`crate::algorithm::ReportMechanism::report_batch`] and the blocked
//! Hungarian behind `offline-opt` and the OPT denominator — without
//! changing a single output byte, and [`SweepConfig::timings`] records
//! per-cell wall-clock into a `wall_ms` column that is entirely absent
//! (not `null`) from the JSON when off, keeping golden byte-compares
//! exact.
//!
//! Incompatible pairings (e.g. the `blind` mechanism with any
//! location-aware matcher) and degenerate measurements (empty instances,
//! zero-distance optima) do not abort the sweep: each cell records either
//! a report or the typed error's message, so a full-registry sweep always
//! completes.
//!
//! # The dynamic axis
//!
//! [`run_dynamic_sweep`] is the same engine pointed at the event-driven
//! half of the codebase: a `mechanism × dynamic-matcher × shift-plan ×
//! size × ε` product where every cell replays one deterministic
//! shift/task timeline through [`crate::dynamic::run_dynamic_spec`] and
//! records a [`DynamicMeasurement`] (assignment rate, total distance, peak
//! availability). Task times and shift plans derive from `(seed, size)`
//! and `(seed, size, plan)` alone — identical across pairings — while
//! noise streams derive from the job index, so dynamic sweeps share the
//! static sweep's shard-count invariance.

use crate::algorithm::{AssignStrategy, DynamicAssignStrategy, PipelineError, ReportMechanism};
use crate::dynamic::{run_dynamic_spec, DynamicConfig, DynamicOutcome};
use crate::pipeline::PipelineConfig;
use crate::ratio::{empirical_competitive_ratio, RatioReport};
use crate::registry::{registry, AlgorithmSpec};
use parking_lot::Mutex;
use pombm_geom::seeded_rng;
use pombm_workload::shifts::ShiftPlan;
use pombm_workload::{synthetic, Instance, SyntheticParams};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// What to sweep: the pairing filter, the instance/ε grid, and the
/// execution parameters.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Mechanism names to include; empty means every registered mechanism.
    pub mechanisms: Vec<String>,
    /// Matcher names to include; empty means every registered matcher.
    pub matchers: Vec<String>,
    /// Instance sizes: each entry generates one synthetic instance with
    /// `size` tasks and `size` workers (so `k = size` pairs are matched).
    pub sizes: Vec<usize>,
    /// Privacy budgets ε to sweep.
    pub epsilons: Vec<f64>,
    /// Shuffled-arrival repetitions per cell.
    pub repetitions: u64,
    /// Worker threads to fan the job list over. Results are bit-identical
    /// for every value ≥ 1; this only trades wall-clock for cores.
    pub shards: usize,
    /// Record per-cell wall-clock into [`SweepCell::wall_ms`]. Off by
    /// default: timings are inherently machine-dependent, so the golden
    /// JSON byte-compares and the shard/thread-invariance checks run with
    /// timings disabled (the column is then absent from the JSON, not
    /// `null`).
    pub timings: bool,
    /// Base pipeline configuration: `seed` roots every derived RNG stream,
    /// `epsilon` is overridden per cell by the ε grid, and `threads`
    /// parallelizes *within* a cell (batched obfuscation + the Hungarian
    /// `offline-opt`/OPT solves) without changing any output.
    pub base: PipelineConfig,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            mechanisms: Vec::new(),
            matchers: Vec::new(),
            sizes: vec![48],
            epsilons: vec![0.6],
            repetitions: 3,
            shards: 1,
            timings: false,
            base: PipelineConfig::default(),
        }
    }
}

/// One cell of the sweep product: exactly one of `report` / `error` is set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepCell {
    /// Stage-1 mechanism name.
    pub mechanism: String,
    /// Stage-2 matcher name.
    pub matcher: String,
    /// Tasks in this cell's instance.
    pub num_tasks: usize,
    /// Workers in this cell's instance.
    pub num_workers: usize,
    /// Privacy budget ε of this cell.
    pub epsilon: f64,
    /// The measured ratio, when the pairing is measurable.
    pub report: Option<RatioReport>,
    /// The typed error's message, when it is not (incompatible reports,
    /// degenerate optimum, ...).
    pub error: Option<String>,
    /// Wall-clock of this cell's measurement in milliseconds; present only
    /// when the sweep ran with [`SweepConfig::timings`] (and absent — not
    /// `null` — from the JSON otherwise, keeping golden byte-compares
    /// exact).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub wall_ms: Option<f64>,
}

/// A completed sweep: the cell list in job order (mechanism-major, then
/// matcher, size, ε) plus the parameters needed to reproduce it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepReport {
    /// Root seed every cell's RNG streams derive from.
    pub seed: u64,
    /// Repetitions per cell.
    pub repetitions: u64,
    /// All measured cells.
    pub cells: Vec<SweepCell>,
}

impl SweepReport {
    /// Cells that produced a measurement.
    pub fn measured(&self) -> impl Iterator<Item = (&SweepCell, &RatioReport)> {
        self.cells
            .iter()
            .filter_map(|c| Some((c, c.report.as_ref()?)))
    }

    /// Cells rejected with a typed error.
    pub fn failed(&self) -> impl Iterator<Item = &SweepCell> {
        self.cells.iter().filter(|c| c.error.is_some())
    }
}

/// One unit of sweep work, fully determined before any thread runs.
struct Job {
    spec: AlgorithmSpec,
    size: usize,
    epsilon: f64,
    /// Seed for this job's pipeline/shuffle streams; derived from the job's
    /// position so it is independent of shard assignment.
    job_seed: u64,
}

/// The deterministic instance a sweep uses for `size`: `size` tasks and
/// `size` workers from the standard synthetic generator, seeded by
/// `(seed, size)` only.
pub fn sweep_instance(seed: u64, size: usize) -> Instance {
    let params = SyntheticParams {
        num_tasks: size,
        num_workers: size,
        ..SyntheticParams::default()
    };
    let stream = seed ^ (size as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    synthetic::generate(&params, &mut seeded_rng(stream, 0x51EE))
}

fn resolve_mechanisms(names: &[String]) -> Result<Vec<Arc<dyn ReportMechanism>>, PipelineError> {
    if names.is_empty() {
        return Ok(registry().mechanisms().to_vec());
    }
    names
        .iter()
        .map(|n| {
            registry()
                .mechanism(n)
                .ok_or_else(|| PipelineError::UnknownName {
                    kind: "mechanism",
                    name: n.clone(),
                    known: registry()
                        .mechanisms()
                        .iter()
                        .map(|m| m.name().to_string())
                        .collect(),
                })
        })
        .collect()
}

fn resolve_matchers(names: &[String]) -> Result<Vec<Arc<dyn AssignStrategy>>, PipelineError> {
    if names.is_empty() {
        return Ok(registry().matchers().to_vec());
    }
    names
        .iter()
        .map(|n| {
            registry()
                .matcher(n)
                .ok_or_else(|| PipelineError::UnknownName {
                    kind: "matcher",
                    name: n.clone(),
                    known: registry()
                        .matchers()
                        .iter()
                        .map(|m| m.name().to_string())
                        .collect(),
                })
        })
        .collect()
}

fn run_job(job: &Job, base: &PipelineConfig, repetitions: u64, timings: bool) -> SweepCell {
    let started = timings.then(std::time::Instant::now);
    let instance = sweep_instance(base.seed, job.size);
    let config = PipelineConfig {
        epsilon: job.epsilon,
        seed: job.job_seed,
        ..*base
    };
    let (report, error) =
        match empirical_competitive_ratio(&job.spec, &instance, &config, repetitions) {
            Ok(r) => (Some(r), None),
            Err(e) => (None, Some(e.to_string())),
        };
    SweepCell {
        mechanism: job.spec.mechanism.name().to_string(),
        matcher: job.spec.matcher.name().to_string(),
        num_tasks: instance.num_tasks(),
        num_workers: instance.num_workers(),
        epsilon: job.epsilon,
        report,
        error,
        wall_ms: started.map(|s| s.elapsed().as_secs_f64() * 1e3),
    }
}

/// Runs the sweep, fanning the `pairing × size × ε` product over
/// `config.shards` scoped threads.
///
/// Fails fast on configuration errors (unknown names, empty grids, zero
/// shards/repetitions); per-cell measurement failures are recorded in the
/// cells, not returned.
pub fn run_sweep(config: &SweepConfig) -> Result<SweepReport, PipelineError> {
    if config.shards == 0 {
        return Err(PipelineError::InvalidConfig {
            field: "shards",
            why: "the sweep needs at least one shard",
        });
    }
    if config.repetitions == 0 {
        return Err(PipelineError::InvalidConfig {
            field: "repetitions",
            why: "the sweep needs at least one repetition per cell",
        });
    }
    if config.sizes.is_empty() {
        return Err(PipelineError::InvalidConfig {
            field: "sizes",
            why: "the sweep needs at least one instance size",
        });
    }
    if config.epsilons.is_empty() {
        return Err(PipelineError::InvalidConfig {
            field: "epsilons",
            why: "the sweep needs at least one privacy budget",
        });
    }
    let mechanisms = resolve_mechanisms(&config.mechanisms)?;
    let matchers = resolve_matchers(&config.matchers)?;

    let mut jobs = Vec::new();
    for mechanism in &mechanisms {
        for matcher in &matchers {
            for &size in &config.sizes {
                for &epsilon in &config.epsilons {
                    // Per-job seed from the job index: independent of the
                    // shard that executes it, so shard count never changes
                    // any cell.
                    let job_seed = config
                        .base
                        .seed
                        .wrapping_add((jobs.len() as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    jobs.push(Job {
                        spec: AlgorithmSpec::compose(mechanism.clone(), matcher.clone()),
                        size,
                        epsilon,
                        job_seed,
                    });
                }
            }
        }
    }

    let cells = fan_out(&jobs, config.shards, |job| {
        run_job(job, &config.base, config.repetitions, config.timings)
    });
    Ok(SweepReport {
        seed: config.base.seed,
        repetitions: config.repetitions,
        cells,
    })
}

/// Fans `jobs` over `shards` crossbeam scoped threads: shard `s` takes the
/// `s`-th contiguous chunk, computes its results locally, and writes them
/// back under one lock acquisition. Output order equals job order for every
/// shard count — the shared execution core of both sweep flavours.
fn fan_out<J: Sync, T: Send>(jobs: &[J], shards: usize, run: impl Fn(&J) -> T + Sync) -> Vec<T> {
    let chunk = jobs.len().div_ceil(shards).max(1);
    let out: Mutex<Vec<Option<T>>> = Mutex::new((0..jobs.len()).map(|_| None).collect());
    crossbeam::thread::scope(|scope| {
        for (s, slice) in jobs.chunks(chunk).enumerate() {
            let out = &out;
            let run = &run;
            scope.spawn(move |_| {
                let local: Vec<T> = slice.iter().map(run).collect();
                let mut guard = out.lock();
                for (i, cell) in local.into_iter().enumerate() {
                    guard[s * chunk + i] = Some(cell);
                }
            });
        }
    })
    .expect("sweep shards never panic");
    out.into_inner()
        .into_iter()
        .map(|c| c.expect("every job produces exactly one cell"))
        .collect()
}

// ---------------------------------------------------------------------------
// Dynamic-fleet sweeps
// ---------------------------------------------------------------------------

/// Fixed simulation horizon of every dynamic sweep cell (seconds). Task
/// arrival times and shift windows both live in `[0, horizon)`.
pub const DYNAMIC_SWEEP_HORIZON: f64 = 1000.0;

/// The named shift-plan shapes a dynamic sweep can replay; an empty
/// `shift_plans` filter in [`DynamicSweepConfig`] means all of them.
///
/// * `always-on` — every worker present for the whole horizon (the paper's
///   static model as a special case; nothing should drop);
/// * `short` — uniform random shifts of 5–15% of the horizon (sparse
///   coverage, the drop-rate stress case);
/// * `long` — uniform random shifts of 40–80% of the horizon.
pub const SHIFT_PLAN_KINDS: [&str; 3] = ["always-on", "short", "long"];

/// The deterministic task arrival times a dynamic sweep uses for
/// `num_tasks` tasks: sorted uniform draws over `[0, horizon)`, seeded by
/// `(seed, num_tasks)` only — identical for every pairing and plan, so
/// cells differ only in what they measure.
pub fn dynamic_task_times(seed: u64, num_tasks: usize) -> Vec<f64> {
    let stream = seed ^ (num_tasks as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut rng = seeded_rng(stream, 0xD1CE_0005);
    let mut times: Vec<f64> = (0..num_tasks)
        .map(|_| rng.gen::<f64>() * DYNAMIC_SWEEP_HORIZON)
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    times
}

/// The deterministic shift plan a dynamic sweep uses for a
/// `(kind, num_workers)` cell, seeded by `(seed, num_workers, kind)` only.
/// Fails fast with a listing-rich error on an unknown kind.
pub fn dynamic_shift_plan(
    kind: &str,
    num_workers: usize,
    seed: u64,
) -> Result<ShiftPlan, PipelineError> {
    let stream = seed ^ (num_workers as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let h = DYNAMIC_SWEEP_HORIZON;
    match kind {
        // End strictly after the horizon so tasks at t < horizon always
        // find the full fleet (departures process before same-time tasks).
        "always-on" => Ok(ShiftPlan::always_on(num_workers, h + 1.0)),
        "short" => Ok(ShiftPlan::uniform(
            num_workers,
            h,
            0.05 * h,
            0.15 * h,
            &mut seeded_rng(stream, 0xD1CE_0003),
        )),
        "long" => Ok(ShiftPlan::uniform(
            num_workers,
            h,
            0.4 * h,
            0.8 * h,
            &mut seeded_rng(stream, 0xD1CE_0004),
        )),
        other => Err(PipelineError::UnknownName {
            kind: "shift plan",
            name: other.to_string(),
            known: SHIFT_PLAN_KINDS.iter().map(|s| s.to_string()).collect(),
        }),
    }
}

/// What the dynamic sweep runs: the pairing/plan filters, the instance/ε
/// grid, and the execution parameters. Mirrors [`SweepConfig`], with shift
/// plans as the extra axis and no repetitions (each cell replays one
/// deterministic timeline).
#[derive(Debug, Clone)]
pub struct DynamicSweepConfig {
    /// Mechanism names to include; empty means every registered mechanism.
    pub mechanisms: Vec<String>,
    /// Dynamic matcher names to include; empty means every registered
    /// dynamic matcher.
    pub matchers: Vec<String>,
    /// Shift-plan kinds to replay; empty means all of
    /// [`SHIFT_PLAN_KINDS`].
    pub shift_plans: Vec<String>,
    /// Instance sizes: `size` tasks and `size` workers per cell.
    pub sizes: Vec<usize>,
    /// Privacy budgets ε to sweep.
    pub epsilons: Vec<f64>,
    /// Worker threads; results are bit-identical for every value ≥ 1.
    pub shards: usize,
    /// Record per-cell wall-clock into [`DynamicSweepCell::wall_ms`]; same
    /// golden-exclusion semantics as [`SweepConfig::timings`].
    pub timings: bool,
    /// Predefined-point grid side of each cell's server.
    pub grid_side: usize,
    /// Root seed every derived stream (instances, times, plans, noise)
    /// descends from.
    pub seed: u64,
}

impl Default for DynamicSweepConfig {
    fn default() -> Self {
        DynamicSweepConfig {
            mechanisms: Vec::new(),
            matchers: Vec::new(),
            shift_plans: Vec::new(),
            sizes: vec![48],
            epsilons: vec![0.6],
            shards: 1,
            timings: false,
            grid_side: 32,
            seed: 0,
        }
    }
}

/// The measured outcome of one dynamic sweep cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DynamicMeasurement {
    /// Tasks assigned to a worker.
    pub assigned: usize,
    /// Tasks that arrived while the pool was empty.
    pub dropped: usize,
    /// `assigned / (assigned + dropped)`; 1.0 for an empty timeline.
    pub assignment_rate: f64,
    /// Total true-location travel distance of the assigned pairs.
    pub total_distance: f64,
    /// Largest number of simultaneously available workers observed.
    pub peak_available: usize,
}

impl DynamicMeasurement {
    /// Summarizes a [`DynamicOutcome`] (the CLI's `--json` shape too).
    pub fn from_outcome(out: &DynamicOutcome) -> Self {
        DynamicMeasurement {
            assigned: out.pairs.len(),
            dropped: out.dropped_tasks,
            assignment_rate: out.assignment_rate(),
            total_distance: out.total_distance,
            peak_available: out.peak_available,
        }
    }
}

/// One cell of the dynamic sweep product: exactly one of
/// `measurement` / `error` is set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DynamicSweepCell {
    /// Stage-1 mechanism name.
    pub mechanism: String,
    /// Stage-2 dynamic matcher name.
    pub matcher: String,
    /// Shift-plan kind replayed by this cell.
    pub plan: String,
    /// Tasks in this cell's instance.
    pub num_tasks: usize,
    /// Workers in this cell's instance.
    pub num_workers: usize,
    /// Privacy budget ε of this cell.
    pub epsilon: f64,
    /// The measured outcome, when the pairing is measurable.
    pub measurement: Option<DynamicMeasurement>,
    /// The typed error's message, when it is not (e.g. blind reports into
    /// a location-aware pool).
    pub error: Option<String>,
    /// Wall-clock of this cell's replay in milliseconds; present only
    /// when the sweep ran with [`DynamicSweepConfig::timings`].
    #[serde(skip_serializing_if = "Option::is_none")]
    pub wall_ms: Option<f64>,
}

/// A completed dynamic sweep: cells in job order (mechanism-major, then
/// matcher, plan, size, ε).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DynamicSweepReport {
    /// Root seed every cell's streams derive from.
    pub seed: u64,
    /// Simulation horizon shared by all cells.
    pub horizon: f64,
    /// All measured cells.
    pub cells: Vec<DynamicSweepCell>,
}

impl DynamicSweepReport {
    /// Cells that produced a measurement.
    pub fn measured(&self) -> impl Iterator<Item = (&DynamicSweepCell, &DynamicMeasurement)> {
        self.cells
            .iter()
            .filter_map(|c| Some((c, c.measurement.as_ref()?)))
    }

    /// Cells rejected with a typed error.
    pub fn failed(&self) -> impl Iterator<Item = &DynamicSweepCell> {
        self.cells.iter().filter(|c| c.error.is_some())
    }
}

struct DynamicJob {
    mechanism: Arc<dyn ReportMechanism>,
    matcher: Arc<dyn DynamicAssignStrategy>,
    plan_kind: String,
    size: usize,
    epsilon: f64,
    /// Seed for this job's noise streams; derived from the job's position
    /// in the job list, never from the executing shard.
    job_seed: u64,
}

fn resolve_dynamic_matchers(
    names: &[String],
) -> Result<Vec<Arc<dyn DynamicAssignStrategy>>, PipelineError> {
    if names.is_empty() {
        return Ok(registry().dynamic_matchers().to_vec());
    }
    names
        .iter()
        .map(|n| registry().require_dynamic_matcher(n))
        .collect()
}

fn run_dynamic_job(
    job: &DynamicJob,
    grid_side: usize,
    seed: u64,
    timings: bool,
) -> DynamicSweepCell {
    let started = timings.then(std::time::Instant::now);
    let instance = sweep_instance(seed, job.size);
    let times = dynamic_task_times(seed, job.size);
    let plan = dynamic_shift_plan(&job.plan_kind, job.size, seed)
        .expect("plan kinds were validated before the fan-out");
    let config = DynamicConfig {
        epsilon: job.epsilon,
        grid_side,
        seed: job.job_seed,
    };
    let (measurement, error) = match run_dynamic_spec(
        &instance,
        &times,
        &plan,
        &config,
        job.mechanism.as_ref(),
        job.matcher.as_ref(),
    ) {
        Ok(out) => (Some(DynamicMeasurement::from_outcome(&out)), None),
        Err(e) => (None, Some(e.to_string())),
    };
    DynamicSweepCell {
        mechanism: job.mechanism.name().to_string(),
        matcher: job.matcher.name().to_string(),
        plan: job.plan_kind.clone(),
        num_tasks: instance.num_tasks(),
        num_workers: instance.num_workers(),
        epsilon: job.epsilon,
        measurement,
        error,
        wall_ms: started.map(|s| s.elapsed().as_secs_f64() * 1e3),
    }
}

/// Runs the dynamic sweep, fanning the
/// `pairing × plan × size × ε` product over `config.shards` scoped
/// threads. Deterministic in `config.seed` for every shard count, exactly
/// like [`run_sweep`].
///
/// Fails fast on configuration errors (unknown mechanism / dynamic matcher
/// / plan names, empty grids, zero shards); per-cell failures (e.g. the
/// blind mechanism into a location-aware pool) are recorded in the cells.
pub fn run_dynamic_sweep(config: &DynamicSweepConfig) -> Result<DynamicSweepReport, PipelineError> {
    if config.shards == 0 {
        return Err(PipelineError::InvalidConfig {
            field: "shards",
            why: "the sweep needs at least one shard",
        });
    }
    if config.sizes.is_empty() {
        return Err(PipelineError::InvalidConfig {
            field: "sizes",
            why: "the sweep needs at least one instance size",
        });
    }
    if config.epsilons.is_empty() {
        return Err(PipelineError::InvalidConfig {
            field: "epsilons",
            why: "the sweep needs at least one privacy budget",
        });
    }
    let mechanisms = resolve_mechanisms(&config.mechanisms)?;
    let matchers = resolve_dynamic_matchers(&config.matchers)?;
    let plans: Vec<String> = if config.shift_plans.is_empty() {
        SHIFT_PLAN_KINDS.iter().map(|s| s.to_string()).collect()
    } else {
        config.shift_plans.clone()
    };
    for kind in &plans {
        // Validate every plan name upfront so the fan-out cannot panic.
        dynamic_shift_plan(kind, 1, 0)?;
    }

    let mut jobs = Vec::new();
    for mechanism in &mechanisms {
        for matcher in &matchers {
            for plan_kind in &plans {
                for &size in &config.sizes {
                    for &epsilon in &config.epsilons {
                        let job_seed = config.seed.wrapping_add(
                            (jobs.len() as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        );
                        jobs.push(DynamicJob {
                            mechanism: mechanism.clone(),
                            matcher: matcher.clone(),
                            plan_kind: plan_kind.clone(),
                            size,
                            epsilon,
                            job_seed,
                        });
                    }
                }
            }
        }
    }

    let cells = fan_out(&jobs, config.shards, |job| {
        run_dynamic_job(job, config.grid_side, config.seed, config.timings)
    });
    Ok(DynamicSweepReport {
        seed: config.seed,
        horizon: DYNAMIC_SWEEP_HORIZON,
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SweepConfig {
        SweepConfig {
            mechanisms: vec!["identity".into(), "laplace".into()],
            matchers: vec!["greedy".into(), "offline-opt".into()],
            sizes: vec![12],
            epsilons: vec![0.6],
            repetitions: 2,
            shards: 1,
            timings: false,
            base: PipelineConfig {
                grid_side: 16,
                ..PipelineConfig::default()
            },
        }
    }

    #[test]
    fn sweep_covers_the_product() {
        let report = run_sweep(&small_config()).unwrap();
        assert_eq!(report.cells.len(), 2 * 2);
        assert_eq!(report.measured().count(), 4);
        assert_eq!(report.failed().count(), 0);
        for (cell, r) in report.measured() {
            assert!(r.ratio >= 1.0 - 1e-9, "{}+{}", cell.mechanism, cell.matcher);
        }
    }

    #[test]
    fn identity_offline_opt_cell_is_the_oracle() {
        let report = run_sweep(&small_config()).unwrap();
        let (_, oracle) = report
            .measured()
            .find(|(c, _)| c.mechanism == "identity" && c.matcher == "offline-opt")
            .expect("oracle cell present");
        assert_eq!(oracle.ratio, 1.0);
    }

    #[test]
    fn unknown_names_fail_fast() {
        let mut config = small_config();
        config.mechanisms = vec!["bogus".into()];
        assert!(matches!(
            run_sweep(&config),
            Err(PipelineError::UnknownName {
                kind: "mechanism",
                ..
            })
        ));
        let mut config = small_config();
        config.matchers = vec!["bogus".into()];
        assert!(matches!(
            run_sweep(&config),
            Err(PipelineError::UnknownName {
                kind: "matcher",
                ..
            })
        ));
    }

    #[test]
    fn degenerate_grids_fail_fast() {
        for broken in [
            SweepConfig {
                shards: 0,
                ..small_config()
            },
            SweepConfig {
                repetitions: 0,
                ..small_config()
            },
            SweepConfig {
                sizes: vec![],
                ..small_config()
            },
            SweepConfig {
                epsilons: vec![],
                ..small_config()
            },
        ] {
            assert!(matches!(
                run_sweep(&broken),
                Err(PipelineError::InvalidConfig { .. })
            ));
        }
    }

    #[test]
    fn incompatible_cells_record_errors_without_aborting() {
        let config = SweepConfig {
            mechanisms: vec!["blind".into()],
            matchers: vec!["greedy".into(), "random".into()],
            ..small_config()
        };
        let report = run_sweep(&config).unwrap();
        assert_eq!(report.cells.len(), 2);
        let by_matcher = |m: &str| report.cells.iter().find(|c| c.matcher == m).unwrap();
        assert!(by_matcher("greedy").error.is_some());
        assert!(by_matcher("random").report.is_some());
    }

    #[test]
    fn empty_size_cell_is_a_recorded_error() {
        let config = SweepConfig {
            mechanisms: vec!["identity".into()],
            matchers: vec!["greedy".into()],
            sizes: vec![0],
            ..small_config()
        };
        let report = run_sweep(&config).unwrap();
        assert_eq!(report.cells.len(), 1);
        assert!(report.cells[0]
            .error
            .as_deref()
            .unwrap()
            .contains("non-empty"));
    }

    fn small_dynamic_config() -> DynamicSweepConfig {
        DynamicSweepConfig {
            mechanisms: vec!["identity".into(), "hst".into()],
            matchers: vec!["hst-greedy".into(), "kd-rebuild".into()],
            shift_plans: vec!["always-on".into(), "short".into()],
            sizes: vec![16],
            epsilons: vec![0.6],
            shards: 1,
            timings: false,
            grid_side: 16,
            seed: 0,
        }
    }

    #[test]
    fn dynamic_sweep_covers_the_product() {
        let report = run_dynamic_sweep(&small_dynamic_config()).unwrap();
        assert_eq!(report.cells.len(), 2 * 2 * 2);
        assert_eq!(report.measured().count(), 8);
        assert_eq!(report.failed().count(), 0);
        for (cell, m) in report.measured() {
            assert_eq!(
                m.assigned + m.dropped,
                16,
                "{}+{}",
                cell.mechanism,
                cell.matcher
            );
            if cell.plan == "always-on" {
                assert_eq!(m.dropped, 0, "always-on never drops");
                assert_eq!(m.assignment_rate, 1.0);
                assert_eq!(m.peak_available, 16);
            }
        }
    }

    #[test]
    fn dynamic_sweep_timelines_are_shared_across_pairings() {
        // Task times and shift plans depend on (seed, size, plan) only, so
        // every pairing of one cell column faces the same scenario: the
        // identity x hst-greedy and hst x hst-greedy cells must report the
        // same peak availability under the same plan.
        let report = run_dynamic_sweep(&small_dynamic_config()).unwrap();
        for plan in ["always-on", "short"] {
            let peaks: Vec<usize> = report
                .measured()
                .filter(|(c, _)| c.plan == plan)
                .map(|(_, m)| m.peak_available)
                .collect();
            assert!(
                peaks.windows(2).all(|w| w[0] == w[1]),
                "{plan}: peaks diverged {peaks:?}"
            );
        }
    }

    #[test]
    fn dynamic_sweep_records_incompatible_cells_without_aborting() {
        let config = DynamicSweepConfig {
            mechanisms: vec!["blind".into()],
            matchers: vec![],
            shift_plans: vec!["always-on".into()],
            ..small_dynamic_config()
        };
        let report = run_dynamic_sweep(&config).unwrap();
        assert_eq!(report.cells.len(), registry().dynamic_matchers().len());
        let by_matcher = |m: &str| report.cells.iter().find(|c| c.matcher == m).unwrap();
        assert!(by_matcher("hst-greedy").error.is_some());
        assert!(by_matcher("kd-rebuild").error.is_some());
        assert!(by_matcher("random").measurement.is_some());
    }

    #[test]
    fn dynamic_sweep_fails_fast_on_unknown_names_and_empty_grids() {
        let mut config = small_dynamic_config();
        config.matchers = vec!["bogus".into()];
        assert!(matches!(
            run_dynamic_sweep(&config),
            Err(PipelineError::UnknownName {
                kind: "dynamic matcher",
                ..
            })
        ));
        let mut config = small_dynamic_config();
        config.shift_plans = vec!["bogus".into()];
        assert!(matches!(
            run_dynamic_sweep(&config),
            Err(PipelineError::UnknownName {
                kind: "shift plan",
                ..
            })
        ));
        for broken in [
            DynamicSweepConfig {
                shards: 0,
                ..small_dynamic_config()
            },
            DynamicSweepConfig {
                sizes: vec![],
                ..small_dynamic_config()
            },
            DynamicSweepConfig {
                epsilons: vec![],
                ..small_dynamic_config()
            },
        ] {
            assert!(matches!(
                run_dynamic_sweep(&broken),
                Err(PipelineError::InvalidConfig { .. })
            ));
        }
    }

    #[test]
    fn dynamic_sweep_empty_filters_mean_the_full_registry() {
        let config = DynamicSweepConfig {
            mechanisms: Vec::new(),
            matchers: Vec::new(),
            shift_plans: Vec::new(),
            sizes: vec![8],
            ..small_dynamic_config()
        };
        let report = run_dynamic_sweep(&config).unwrap();
        let expected = registry().mechanisms().len()
            * registry().dynamic_matchers().len()
            * SHIFT_PLAN_KINDS.len();
        assert_eq!(report.cells.len(), expected);
        // Only blind x location-aware cells fail.
        assert_eq!(
            report.failed().count(),
            (registry().dynamic_matchers().len() - 1) * SHIFT_PLAN_KINDS.len()
        );
        for cell in report.failed() {
            assert_eq!(cell.mechanism, "blind");
            assert_ne!(cell.matcher, "random");
        }
    }

    #[test]
    fn shift_plan_kinds_generate_and_unknown_kinds_error() {
        for kind in SHIFT_PLAN_KINDS {
            let plan = dynamic_shift_plan(kind, 40, 3).unwrap();
            assert_eq!(plan.shifts.len(), 40, "{kind}");
            for s in &plan.shifts {
                assert!(s.start < s.end, "{kind}");
            }
        }
        assert!(dynamic_shift_plan("weekend", 4, 0).is_err());
        let times = dynamic_task_times(5, 64);
        assert_eq!(times.len(), 64);
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "times are sorted");
        assert!(times
            .iter()
            .all(|&t| (0.0..DYNAMIC_SWEEP_HORIZON).contains(&t)));
        assert_eq!(times, dynamic_task_times(5, 64), "deterministic in seed");
        assert_ne!(times, dynamic_task_times(6, 64), "seed matters");
    }
}
