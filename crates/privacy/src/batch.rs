//! Parallel batch obfuscation.
//!
//! The paper's workflow obfuscates every *registered worker* before any task
//! arrives (step 2 of Fig. 1) — an embarrassingly parallel batch that
//! dominates setup latency at the 10⁵ scale of the scalability experiments.
//! This module shards a batch over `crossbeam` scoped threads, giving each
//! shard an independent RNG stream (so results are deterministic in
//! `(seed, num_shards)` and never depend on thread scheduling), and collects
//! results through a `parking_lot`-protected output vector.
//!
//! Obfuscating one leaf is `O(D)` (Alg. 3), so the batch is compute-bound
//! and scales nearly linearly with cores until memory bandwidth interferes;
//! `benches/mechanism.rs` measures the crossover.

use crate::hst_mechanism::HstMechanism;
use crate::laplace::PlanarLaplace;
use parking_lot::Mutex;
use pombm_geom::{seeded_rng, Point};
use pombm_hst::{Hst, LeafCode};

/// Number of worker threads to use for a batch of `n` items: one shard per
/// ~4096 items, capped by available parallelism.
pub fn default_shards(n: usize) -> usize {
    let by_size = n.div_ceil(4096).max(1);
    let by_cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    by_size.min(by_cores)
}

/// Obfuscates a batch of HST leaves in parallel with Alg. 3.
///
/// Deterministic in `(seed, shards)`: shard `s` handles the contiguous range
/// `[s·ceil(n/shards), …)` with RNG stream `s`, so the output is a pure
/// function of the inputs regardless of scheduling.
pub fn obfuscate_leaves_parallel(
    mechanism: &HstMechanism,
    hst: &Hst,
    exact: &[LeafCode],
    seed: u64,
    shards: usize,
) -> Vec<LeafCode> {
    assert!(shards > 0, "need at least one shard");
    let n = exact.len();
    if n == 0 {
        return Vec::new();
    }
    let chunk = n.div_ceil(shards);
    let out = Mutex::new(vec![LeafCode(0); n]);
    crossbeam::thread::scope(|scope| {
        for (s, slice) in exact.chunks(chunk).enumerate() {
            let out = &out;
            scope.spawn(move |_| {
                let mut rng = seeded_rng(seed, 0xBA7C_0000 + s as u64);
                // Compute into a local buffer; take the lock once per shard.
                let local: Vec<LeafCode> = slice
                    .iter()
                    .map(|&x| mechanism.obfuscate(hst, x, &mut rng))
                    .collect();
                let mut guard = out.lock();
                guard[s * chunk..s * chunk + local.len()].copy_from_slice(&local);
            });
        }
    })
    .expect("obfuscation shards never panic");
    out.into_inner()
}

/// Sequential reference with the identical sharded RNG schedule; used by
/// tests and as the fallback for tiny batches.
pub fn obfuscate_leaves_sequential(
    mechanism: &HstMechanism,
    hst: &Hst,
    exact: &[LeafCode],
    seed: u64,
    shards: usize,
) -> Vec<LeafCode> {
    assert!(shards > 0, "need at least one shard");
    let n = exact.len();
    if n == 0 {
        return Vec::new();
    }
    let chunk = n.div_ceil(shards);
    let mut out = Vec::with_capacity(n);
    for (s, slice) in exact.chunks(chunk).enumerate() {
        let mut rng = seeded_rng(seed, 0xBA7C_0000 + s as u64);
        out.extend(slice.iter().map(|&x| mechanism.obfuscate(hst, x, &mut rng)));
    }
    out
}

/// Obfuscates a batch of Euclidean locations in parallel with the planar
/// Laplace mechanism; same determinism contract as
/// [`obfuscate_leaves_parallel`].
pub fn obfuscate_points_parallel(
    mechanism: &PlanarLaplace,
    locations: &[Point],
    seed: u64,
    shards: usize,
) -> Vec<Point> {
    assert!(shards > 0, "need at least one shard");
    let n = locations.len();
    if n == 0 {
        return Vec::new();
    }
    let chunk = n.div_ceil(shards);
    let out = Mutex::new(vec![Point::ORIGIN; n]);
    crossbeam::thread::scope(|scope| {
        for (s, slice) in locations.chunks(chunk).enumerate() {
            let out = &out;
            scope.spawn(move |_| {
                let mut rng = seeded_rng(seed, 0xBA7C_8000 + s as u64);
                let local: Vec<Point> = slice
                    .iter()
                    .map(|p| mechanism.obfuscate(p, &mut rng))
                    .collect();
                let mut guard = out.lock();
                guard[s * chunk..s * chunk + local.len()].copy_from_slice(&local);
            });
        }
    })
    .expect("obfuscation shards never panic");
    out.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Epsilon;
    use pombm_geom::{Grid, Rect};

    fn setup() -> (Hst, HstMechanism) {
        let grid = Grid::square(Rect::square(200.0), 16);
        let mut rng = seeded_rng(1, 0);
        let hst = Hst::build(&grid.to_point_set(), &mut rng);
        let mech = HstMechanism::new(&hst, Epsilon::new(0.4));
        (hst, mech)
    }

    #[test]
    fn parallel_equals_sequential_reference() {
        let (hst, mech) = setup();
        let exact: Vec<LeafCode> = (0..1000).map(|i| hst.leaf_of(i % 256)).collect();
        for shards in [1, 2, 3, 7] {
            let par = obfuscate_leaves_parallel(&mech, &hst, &exact, 9, shards);
            let seq = obfuscate_leaves_sequential(&mech, &hst, &exact, 9, shards);
            assert_eq!(par, seq, "shards = {shards}");
        }
    }

    #[test]
    fn determinism_across_runs() {
        let (hst, mech) = setup();
        let exact: Vec<LeafCode> = (0..500).map(|i| hst.leaf_of(i % 200)).collect();
        let a = obfuscate_leaves_parallel(&mech, &hst, &exact, 3, 4);
        let b = obfuscate_leaves_parallel(&mech, &hst, &exact, 3, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let (hst, mech) = setup();
        let exact: Vec<LeafCode> = (0..500).map(|i| hst.leaf_of(i % 200)).collect();
        let a = obfuscate_leaves_parallel(&mech, &hst, &exact, 3, 4);
        let b = obfuscate_leaves_parallel(&mech, &hst, &exact, 4, 4);
        assert_ne!(a, b);
    }

    #[test]
    fn outputs_belong_to_tree() {
        let (hst, mech) = setup();
        let exact: Vec<LeafCode> = (0..300).map(|i| hst.leaf_of(i % 100)).collect();
        for z in obfuscate_leaves_parallel(&mech, &hst, &exact, 5, 3) {
            assert!(hst.ctx().contains(z));
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let (hst, mech) = setup();
        assert!(obfuscate_leaves_parallel(&mech, &hst, &[], 0, 4).is_empty());
        let lap = PlanarLaplace::new(Epsilon::new(1.0));
        assert!(obfuscate_points_parallel(&lap, &[], 0, 2).is_empty());
    }

    #[test]
    fn point_batch_matches_distribution() {
        // Mean displacement of the parallel Laplace batch ≈ 2/ε.
        let eps = 0.5;
        let lap = PlanarLaplace::new(Epsilon::new(eps));
        let origin = vec![Point::new(50.0, 50.0); 40_000];
        let noisy = obfuscate_points_parallel(&lap, &origin, 7, 8);
        let mean: f64 = noisy
            .iter()
            .zip(&origin)
            .map(|(a, b)| a.dist(b))
            .sum::<f64>()
            / noisy.len() as f64;
        assert!((mean - 2.0 / eps).abs() < 0.1, "mean displacement {mean}");
    }

    #[test]
    fn default_shards_is_sane() {
        assert_eq!(default_shards(0), 1);
        assert!(default_shards(1) >= 1);
        assert!(default_shards(1 << 20) >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let (hst, mech) = setup();
        let _ = obfuscate_leaves_parallel(&mech, &hst, &[hst.leaf_of(0)], 0, 0);
    }
}
