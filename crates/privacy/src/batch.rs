//! Parallel batch obfuscation, bit-identical to the scalar loop.
//!
//! The paper's workflow obfuscates every *registered worker* before any task
//! arrives (step 2 of Fig. 1) — an embarrassingly parallel batch that
//! dominates setup latency at the 10⁵ scale of the scalability experiments.
//!
//! # Determinism contract
//!
//! Historically this module was deterministic only in `(seed, shards)`:
//! each shard owned a derived RNG stream, so changing the shard count
//! changed the output. The contract is now **shard-invariant per-item RNG
//! streams**: a cheap sequential pass advances the caller's stream exactly
//! as the scalar loop would (each mechanism exposes the matching
//! `advance_obfuscate`), snapshotting the 32-byte generator state at every
//! item boundary; the expensive sampling then replays each item from its
//! own snapshot on whatever thread owns it. The result — and the state the
//! caller's RNG is left in — is **bit-identical to the scalar loop for
//! every thread count**, which is what lets the generic pipeline driver
//! dispatch here without disturbing any golden fingerprint.
//!
//! The split pays off because the sequential pass is draw-replay only: two
//! `next_u64` calls per planar-Laplace item (the trigonometry, `exp` and
//! Lambert-W work all happen in the parallel pass) and the `O(D)` coin
//! flips of the HST walk (the descent arithmetic and leaf validation move
//! off the critical path). `benches/mechanism.rs` measures the crossover.

use crate::hst_mechanism::HstMechanism;
use crate::laplace::PlanarLaplace;
use parking_lot::Mutex;
use pombm_geom::Point;
use pombm_hst::{Hst, LeafCode};
use rand::rngs::StdRng;

/// Number of worker threads to use for a batch of `n` items: one thread
/// per ~4096 items, capped by available parallelism.
pub fn default_threads(n: usize) -> usize {
    let by_size = n.div_ceil(4096).max(1);
    let by_cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    by_size.min(by_cores)
}

/// Runs the two-pass snapshot batch: `advance` replays item `i`'s draw
/// schedule on the shared stream (recording where it starts), `sample`
/// computes item `i`'s output from its recorded starting state.
fn snapshot_batch<T, A, S>(
    n: usize,
    rng: &mut StdRng,
    threads: usize,
    mut advance: A,
    sample: S,
    zero: T,
) -> Vec<T>
where
    T: Copy + Send,
    A: FnMut(&mut StdRng),
    S: Fn(usize, &mut StdRng) -> T + Sync,
{
    assert!(threads > 0, "need at least one thread");
    if n == 0 {
        return Vec::new();
    }
    // Pass 1 (sequential): snapshot the stream at every item boundary.
    let mut states = Vec::with_capacity(n);
    for _ in 0..n {
        states.push(rng.clone());
        advance(rng);
    }
    // Pass 2 (parallel): replay every item from its own snapshot.
    let chunk = n.div_ceil(threads);
    let out = Mutex::new(vec![zero; n]);
    crossbeam::thread::scope(|scope| {
        for (s, slice) in states.chunks(chunk).enumerate() {
            let out = &out;
            let sample = &sample;
            scope.spawn(move |_| {
                // Compute into a local buffer; take the lock once per chunk.
                let local: Vec<T> = slice
                    .iter()
                    .enumerate()
                    .map(|(k, state)| sample(s * chunk + k, &mut state.clone()))
                    .collect();
                let mut guard = out.lock();
                guard[s * chunk..s * chunk + local.len()].copy_from_slice(&local);
            });
        }
    })
    .expect("obfuscation threads never panic");
    out.into_inner()
}

/// Obfuscates a batch of HST leaves with Alg. 3, continuing the caller's
/// RNG stream exactly as the scalar loop
/// `exact.iter().map(|&x| mechanism.obfuscate(hst, x, rng))` would.
///
/// Output and final stream state are bit-identical for every `threads ≥ 1`.
pub fn obfuscate_leaves_batch(
    mechanism: &HstMechanism,
    hst: &Hst,
    exact: &[LeafCode],
    rng: &mut StdRng,
    threads: usize,
) -> Vec<LeafCode> {
    if threads == 1 {
        return obfuscate_leaves_scalar(mechanism, hst, exact, rng);
    }
    let depth = hst.depth();
    snapshot_batch(
        exact.len(),
        rng,
        threads,
        |rng| mechanism.advance_obfuscate(depth, rng),
        |i, rng| mechanism.obfuscate(hst, exact[i], rng),
        LeafCode(0),
    )
}

/// The scalar reference loop for [`obfuscate_leaves_batch`]; also the
/// `threads = 1` fast path (no snapshots, no spawns).
pub fn obfuscate_leaves_scalar(
    mechanism: &HstMechanism,
    hst: &Hst,
    exact: &[LeafCode],
    rng: &mut StdRng,
) -> Vec<LeafCode> {
    exact
        .iter()
        .map(|&x| mechanism.obfuscate(hst, x, rng))
        .collect()
}

/// Obfuscates a batch of Euclidean locations with the planar Laplace
/// mechanism; same contract as [`obfuscate_leaves_batch`].
pub fn obfuscate_points_batch(
    mechanism: &PlanarLaplace,
    locations: &[Point],
    rng: &mut StdRng,
    threads: usize,
) -> Vec<Point> {
    if threads == 1 {
        return obfuscate_points_scalar(mechanism, locations, rng);
    }
    snapshot_batch(
        locations.len(),
        rng,
        threads,
        |rng| mechanism.advance_obfuscate(rng),
        |i, rng| mechanism.obfuscate(&locations[i], rng),
        Point::ORIGIN,
    )
}

/// The scalar reference loop for [`obfuscate_points_batch`]; also the
/// `threads = 1` fast path.
pub fn obfuscate_points_scalar(
    mechanism: &PlanarLaplace,
    locations: &[Point],
    rng: &mut StdRng,
) -> Vec<Point> {
    locations
        .iter()
        .map(|p| mechanism.obfuscate(p, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Epsilon;
    use pombm_geom::{seeded_rng, Grid, Rect};
    use rand::Rng;

    fn setup() -> (Hst, HstMechanism) {
        let grid = Grid::square(Rect::square(200.0), 16);
        let mut rng = seeded_rng(1, 0);
        let hst = Hst::build(&grid.to_point_set(), &mut rng);
        let mech = HstMechanism::new(&hst, Epsilon::new(0.4));
        (hst, mech)
    }

    #[test]
    fn leaf_batch_equals_scalar_loop_at_every_thread_count() {
        let (hst, mech) = setup();
        let exact: Vec<LeafCode> = (0..1000).map(|i| hst.leaf_of(i % 256)).collect();
        let mut scalar_rng = seeded_rng(9, 0);
        let scalar = obfuscate_leaves_scalar(&mech, &hst, &exact, &mut scalar_rng);
        for threads in [1, 2, 3, 7] {
            let mut rng = seeded_rng(9, 0);
            let par = obfuscate_leaves_batch(&mech, &hst, &exact, &mut rng, threads);
            assert_eq!(par, scalar, "threads = {threads}");
            assert_eq!(
                rng, scalar_rng,
                "threads = {threads}: stream left in a different state"
            );
        }
    }

    #[test]
    fn point_batch_equals_scalar_loop_at_every_thread_count() {
        let lap = PlanarLaplace::new(Epsilon::new(0.7));
        let mut loc_rng = seeded_rng(2, 7);
        let locations: Vec<Point> = (0..800)
            .map(|_| Point::new(loc_rng.gen::<f64>() * 100.0, loc_rng.gen::<f64>() * 100.0))
            .collect();
        let mut scalar_rng = seeded_rng(3, 0);
        let scalar = obfuscate_points_scalar(&lap, &locations, &mut scalar_rng);
        for threads in [1, 2, 5, 8] {
            let mut rng = seeded_rng(3, 0);
            let par = obfuscate_points_batch(&lap, &locations, &mut rng, threads);
            assert_eq!(par, scalar, "threads = {threads}");
            assert_eq!(rng, scalar_rng, "threads = {threads}: stream drifted");
        }
    }

    #[test]
    fn advance_consumes_exactly_the_obfuscation_draws() {
        // The advance replays must stay in lock step with the full
        // samplers draw-for-draw, or the snapshot batch silently drifts.
        let (hst, mech) = setup();
        let mut walked = seeded_rng(11, 0);
        let mut advanced = seeded_rng(11, 0);
        for i in 0..500 {
            let x = hst.leaf_of(i % hst.num_points());
            let _ = mech.obfuscate(&hst, x, &mut walked);
            mech.advance_obfuscate(hst.depth(), &mut advanced);
            assert_eq!(walked, advanced, "hst walk drifted at item {i}");
        }
        let lap = PlanarLaplace::new(Epsilon::new(0.5));
        let p = Point::new(4.0, 2.0);
        for i in 0..500 {
            let _ = lap.obfuscate(&p, &mut walked);
            lap.advance_obfuscate(&mut advanced);
            assert_eq!(walked, advanced, "laplace drifted at item {i}");
        }
    }

    #[test]
    fn determinism_across_runs() {
        let (hst, mech) = setup();
        let exact: Vec<LeafCode> = (0..500).map(|i| hst.leaf_of(i % 200)).collect();
        let a = obfuscate_leaves_batch(&mech, &hst, &exact, &mut seeded_rng(3, 0), 4);
        let b = obfuscate_leaves_batch(&mech, &hst, &exact, &mut seeded_rng(3, 0), 4);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let (hst, mech) = setup();
        let exact: Vec<LeafCode> = (0..500).map(|i| hst.leaf_of(i % 200)).collect();
        let a = obfuscate_leaves_batch(&mech, &hst, &exact, &mut seeded_rng(3, 0), 4);
        let b = obfuscate_leaves_batch(&mech, &hst, &exact, &mut seeded_rng(4, 0), 4);
        assert_ne!(a, b);
    }

    #[test]
    fn outputs_belong_to_tree() {
        let (hst, mech) = setup();
        let exact: Vec<LeafCode> = (0..300).map(|i| hst.leaf_of(i % 100)).collect();
        for z in obfuscate_leaves_batch(&mech, &hst, &exact, &mut seeded_rng(5, 0), 3) {
            assert!(hst.ctx().contains(z));
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let (hst, mech) = setup();
        assert!(obfuscate_leaves_batch(&mech, &hst, &[], &mut seeded_rng(0, 0), 4).is_empty());
        let lap = PlanarLaplace::new(Epsilon::new(1.0));
        assert!(obfuscate_points_batch(&lap, &[], &mut seeded_rng(0, 0), 2).is_empty());
    }

    #[test]
    fn point_batch_matches_distribution() {
        // Mean displacement of the parallel Laplace batch ≈ 2/ε.
        let eps = 0.5;
        let lap = PlanarLaplace::new(Epsilon::new(eps));
        let origin = vec![Point::new(50.0, 50.0); 40_000];
        let noisy = obfuscate_points_batch(&lap, &origin, &mut seeded_rng(7, 0), 8);
        let mean: f64 = noisy
            .iter()
            .zip(&origin)
            .map(|(a, b)| a.dist(b))
            .sum::<f64>()
            / noisy.len() as f64;
        assert!((mean - 2.0 / eps).abs() < 0.1, "mean displacement {mean}");
    }

    #[test]
    fn default_threads_is_sane() {
        assert_eq!(default_threads(0), 1);
        assert!(default_threads(1) >= 1);
        assert!(default_threads(1 << 20) >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let (hst, mech) = setup();
        let _ = obfuscate_leaves_batch(&mech, &hst, &[hst.leaf_of(0)], &mut seeded_rng(0, 0), 0);
    }
}
