//! Verification of ε-Geo-Indistinguishability (Definition 7).
//!
//! Definition 7 requires `M(x1)(z) ≤ e^{ε·d(x1,x2)}·M(x2)(z)` for all inputs
//! `x1, x2` and outputs `z`. For the HST mechanism the output distribution is
//! available in closed form (Eq. 3), so the property can be checked *exactly*
//! over every triple of leaves of a small tree — this is Theorem 1 turned
//! into an executable test. The check is exposed as a library function so
//! integration tests, property tests and examples can all call it.

use crate::hst_mechanism::HstMechanism;
use pombm_hst::{Hst, LeafCode};

/// Result of an exact Geo-I audit over all `(x1, x2, z)` triples.
#[derive(Debug, Clone, PartialEq)]
pub struct GeoIAudit {
    /// The largest observed value of `ln(M(x1)(z)/M(x2)(z)) / d_T(x1,x2)`,
    /// i.e. the *effective* privacy loss rate. Geo-I holds iff this is at
    /// most ε (up to floating-point slack).
    pub max_loss_rate: f64,
    /// The ε the mechanism claims (in tree units).
    pub claimed_epsilon: f64,
    /// Number of triples inspected.
    pub triples: u64,
}

impl GeoIAudit {
    /// Whether the audit passed with relative slack `tol`.
    pub fn holds(&self, tol: f64) -> bool {
        self.max_loss_rate <= self.claimed_epsilon * (1.0 + tol) + f64::MIN_POSITIVE
    }
}

/// Exactly audits the HST mechanism over every `(x1, x2, z)` triple of real
/// *and fake* leaves.
///
/// `O(c^{3D}·D)` — intended for trees with at most a few hundred leaves.
///
/// # Panics
///
/// Panics if the complete tree has more than 2⁸ leaves.
pub fn audit_hst_mechanism(hst: &Hst, mechanism: &HstMechanism) -> GeoIAudit {
    let leaves = hst.num_leaves();
    assert!(
        leaves <= 1 << 8,
        "exact audit over {leaves} leaves is infeasible; shrink the tree"
    );
    let eps_tree = mechanism.table().epsilon().value();
    let mut max_rate = 0.0f64;
    let mut triples = 0u64;
    for x1 in 0..leaves {
        for x2 in 0..leaves {
            if x1 == x2 {
                continue;
            }
            let (a, b) = (LeafCode(x1), LeafCode(x2));
            let d = hst.tree_dist_units(a, b) as f64;
            for z in 0..leaves {
                let z = LeafCode(z);
                let p1 = mechanism.probability(hst, a, z);
                let p2 = mechanism.probability(hst, b, z);
                triples += 1;
                if p1 > 0.0 && p2 > 0.0 {
                    let rate = (p1 / p2).ln() / d;
                    max_rate = max_rate.max(rate);
                } else {
                    // Eq. 3 assigns positive weight to every leaf unless ε is
                    // so large that wt underflows; then both sides underflow
                    // identically by symmetry of the level structure.
                    assert!(
                        p1 == 0.0 && p2 == 0.0 || d > 0.0,
                        "one-sided zero probability breaks Geo-I outright"
                    );
                }
            }
        }
    }
    GeoIAudit {
        max_loss_rate: max_rate,
        claimed_epsilon: eps_tree,
        triples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Epsilon;
    use pombm_geom::{seeded_rng, Grid, Rect};

    /// Builds a small HST (≤ 256 complete-tree leaves) for exact auditing;
    /// skips random draws whose branching factor makes the complete tree too
    /// wide for the O(leaves³) audit.
    fn small_hst(seed: u64) -> Option<Hst> {
        let grid = Grid::square(Rect::square(8.0), 2);
        let mut rng = seeded_rng(seed, 0);
        let hst = Hst::build(&grid.to_point_set(), &mut rng);
        (hst.num_leaves() <= 256).then_some(hst)
    }

    #[test]
    fn theorem1_exact_audit_passes() {
        let mut audited = 0;
        for seed in 0..6 {
            let Some(hst) = small_hst(seed) else { continue };
            for eps in [0.05, 0.2, 1.0] {
                let m = HstMechanism::new(&hst, Epsilon::new(eps));
                let audit = audit_hst_mechanism(&hst, &m);
                assert!(
                    audit.holds(1e-9),
                    "seed {seed} ε {eps}: loss rate {} > {}",
                    audit.max_loss_rate,
                    audit.claimed_epsilon
                );
                assert!(audit.triples > 0);
                audited += 1;
            }
        }
        assert!(audited >= 3, "too few auditable trees");
    }

    #[test]
    fn loss_rate_is_tight_for_adjacent_leaves() {
        // The bound in Theorem 1 is achieved by obfuscating to the exact
        // leaf of a nearby point: the audit's max rate should be very close
        // to ε, not just below it — confirming the mechanism spends the
        // whole budget.
        let hst = small_hst(1).expect("2x2 grid always yields a small tree");
        let eps = 0.1;
        let m = HstMechanism::new(&hst, Epsilon::new(eps));
        let audit = audit_hst_mechanism(&hst, &m);
        let eps_tree = m.table().epsilon().value();
        assert!(
            audit.max_loss_rate > 0.9 * eps_tree,
            "mechanism wastes budget: rate {} vs ε {eps_tree}",
            audit.max_loss_rate
        );
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn audit_rejects_huge_trees() {
        let grid = Grid::square(Rect::square(512.0), 8);
        let mut rng = seeded_rng(0, 0);
        let hst = Hst::build(&grid.to_point_set(), &mut rng);
        let m = HstMechanism::new(&hst, Epsilon::new(0.1));
        let _ = audit_hst_mechanism(&hst, &m);
    }
}
