//! The tree-based privacy mechanism (Algs. 2 and 3 of the paper).

use crate::weights::WeightTable;
use crate::Epsilon;
use pombm_hst::{Hst, LeafCode};
use rand::Rng;

/// The paper's ε-Geo-Indistinguishable mechanism on a complete c-ary HST.
///
/// Given the exact leaf `x`, every leaf `z` is chosen with probability
/// `wt_{lvl(lca(x,z))} / WT` (Eq. 3) — exponentially decaying in the tree
/// distance, which by Theorem 1 yields ε-Geo-I *in the tree metric*.
///
/// Two samplers are provided:
///
/// * [`HstMechanism::obfuscate_naive`] — Alg. 2: enumerate all `c^D` leaves
///   and sample from the explicit distribution. `O(c^D · D)`; only usable on
///   small trees, kept as the executable specification.
/// * [`HstMechanism::obfuscate`] — Alg. 3: the `O(D)` random walk. Walk up
///   from `x`, at each level deciding between "continue upward" (probability
///   `pu_i = tw_{i+1}/tw_i`) and "stop"; on stopping at level `i ≥ 1`, pick
///   one of the `c − 1` sibling subtrees uniformly and then a uniform
///   root-to-leaf path inside it. Theorem 2 shows this generates exactly the
///   Alg. 2 distribution (re-verified here by a chi-square test).
///
/// # Budget scaling
///
/// The ε of Definition 7 is a rate per unit distance. [`HstMechanism::new`]
/// takes the budget per *original metric unit* and multiplies by the HST's
/// construction scale, so that the guarantee
/// `M(x1)(z) ≤ exp(ε · d_T(x1,x2)) · M(x2)(z)` holds with `d_T` measured in
/// the same units as the input coordinates (for unscaled point sets, e.g.
/// grids with pitch ≥ 1, the factor is 1 and this matches the paper
/// verbatim).
#[derive(Debug, Clone)]
pub struct HstMechanism {
    table: WeightTable,
}

impl HstMechanism {
    /// Builds the mechanism for `hst` with budget `epsilon` per
    /// original-metric unit.
    pub fn new(hst: &Hst, epsilon: Epsilon) -> Self {
        let eps_tree = Epsilon::new(epsilon.value() * hst.scale());
        HstMechanism {
            table: WeightTable::new(eps_tree, hst.branching(), hst.depth()),
        }
    }

    /// Builds the mechanism directly from a `(c, D)` shape with a budget in
    /// tree units; used by tests and by callers that manage scaling
    /// themselves.
    pub fn from_shape(epsilon: Epsilon, branching: u32, depth: u32) -> Self {
        HstMechanism {
            table: WeightTable::new(epsilon, branching, depth),
        }
    }

    /// The underlying weight table.
    #[inline]
    pub fn table(&self) -> &WeightTable {
        &self.table
    }

    /// Exact probability that leaf `x` is obfuscated to leaf `z` (Eq. 3).
    pub fn probability(&self, hst: &Hst, x: LeafCode, z: LeafCode) -> f64 {
        self.table.leaf_probability(hst.lca_level(x, z))
    }

    /// Alg. 2: sample by enumerating every leaf of the complete tree.
    ///
    /// # Panics
    ///
    /// Panics if the complete tree has more than 2²² leaves; use
    /// [`HstMechanism::obfuscate`] instead.
    pub fn obfuscate_naive<R: Rng + ?Sized>(
        &self,
        hst: &Hst,
        x: LeafCode,
        rng: &mut R,
    ) -> LeafCode {
        let leaves = hst.num_leaves();
        assert!(
            leaves <= 1 << 22,
            "naive enumeration over {leaves} leaves; use the random walk"
        );
        // Draw u ~ U[0, WT) and walk the cumulative distribution. Weights
        // depend only on the LCA level, computed per leaf.
        let mut u = rng.gen::<f64>() * self.table.total();
        for v in 0..leaves {
            let z = LeafCode(v);
            let w = self.table.wt(hst.lca_level(x, z));
            if u < w {
                return z;
            }
            u -= w;
        }
        // Floating-point slack: the residual mass belongs to the last leaf.
        LeafCode(leaves - 1)
    }

    /// Alg. 3: the `O(D)` random-walk sampler.
    pub fn obfuscate<R: Rng + ?Sized>(&self, hst: &Hst, x: LeafCode, rng: &mut R) -> LeafCode {
        debug_assert!(hst.ctx().contains(x), "exact leaf outside tree");
        let ctx = hst.ctx();
        let c = ctx.branching as u64;
        let depth = ctx.depth;

        // Upward phase: find the stopping level.
        let mut stop_level = depth;
        for i in 0..depth {
            if rng.gen::<f64>() >= self.table.pu(i) {
                stop_level = i;
                break;
            }
        }
        if stop_level == 0 {
            // Changed direction immediately at the leaf: keep x (probability
            // wt_0 / WT).
            return x;
        }

        // Downward phase. The LCA of x and the output is the level-
        // `stop_level` ancestor of x. First step down must avoid x's own
        // level-(stop_level - 1) ancestor: pick one of the other c-1
        // children uniformly.
        let anc = ctx.ancestor(x, stop_level);
        let own_digit = ctx.digit(x, stop_level - 1) as u64;
        let mut pick = rng.gen_range(0..c - 1);
        if pick >= own_digit {
            pick += 1;
        }
        let mut prefix = anc * c + pick;
        // Remaining descent: uniform child at every level.
        for _ in 0..stop_level - 1 {
            prefix = prefix * c + rng.gen_range(0..c);
        }
        debug_assert!(ctx.contains(LeafCode(prefix)));
        LeafCode(prefix)
    }

    /// Advances `rng` exactly as one [`HstMechanism::obfuscate`] call on a
    /// depth-`depth` tree would, skipping the descent arithmetic.
    ///
    /// The walk's draw schedule depends only on the stopping level, never
    /// on the exact leaf: the upward phase draws one coin per level until
    /// it stops, and a stop at level `s ≥ 1` consumes one sibling pick
    /// plus `s − 1` descent draws. Replaying just that schedule is the
    /// cheap sequential pass of
    /// [`batch::obfuscate_leaves_batch`](crate::batch::obfuscate_leaves_batch);
    /// it must consume exactly as many draws as `obfuscate` (pinned by a
    /// test).
    pub fn advance_obfuscate<R: Rng + ?Sized>(&self, depth: u32, rng: &mut R) {
        let mut stop_level = depth;
        for i in 0..depth {
            if rng.gen::<f64>() >= self.table.pu(i) {
                stop_level = i;
                break;
            }
        }
        for _ in 0..stop_level {
            let _ = rng.next_u64();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pombm_geom::{seeded_rng, Grid, Point, PointSet, Rect};
    use pombm_hst::HstParams;
    use std::collections::HashMap;

    fn example1_hst() -> Hst {
        let points = PointSet::new(vec![
            Point::new(1.0, 1.0),
            Point::new(2.0, 3.0),
            Point::new(5.0, 3.0),
            Point::new(4.0, 4.0),
        ]);
        let mut rng = seeded_rng(0, 0);
        Hst::build_with(
            &points,
            HstParams {
                fixed: Some(pombm_hst::construct::FixedDraw {
                    beta: 0.5,
                    permutation: vec![0, 1, 2, 3],
                }),
                branching: None,
            },
            &mut rng,
        )
    }

    #[test]
    fn probabilities_sum_to_one_over_all_leaves() {
        let hst = example1_hst();
        let m = HstMechanism::new(&hst, Epsilon::new(0.1));
        for p in 0..hst.num_points() {
            let x = hst.leaf_of(p);
            let sum: f64 = (0..hst.num_leaves())
                .map(|v| m.probability(&hst, x, LeafCode(v)))
                .sum();
            assert!((sum - 1.0).abs() < 1e-9, "point {p}: total mass {sum}");
        }
    }

    #[test]
    fn example3_path_probability() {
        // Example 3 computes P(o1 -> f3) = 0.119, which equals the level-2
        // per-leaf probability in Table I. Identify the level-2 sibling
        // leaves of o1 and check each carries 0.119.
        let hst = example1_hst();
        let m = HstMechanism::new(&hst, Epsilon::new(0.1));
        let o1 = hst.leaf_of(0);
        let level2: Vec<u64> = (0..hst.num_leaves())
            .filter(|&v| hst.lca_level(o1, LeafCode(v)) == 2)
            .collect();
        assert_eq!(level2.len(), 2, "c=2: two leaves at LCA level 2");
        for v in level2 {
            assert!((m.probability(&hst, o1, LeafCode(v)) - 0.119).abs() < 1e-3);
        }
    }

    /// Chi-square statistic of observed counts against expected
    /// probabilities.
    fn chi_square(observed: &HashMap<u64, u64>, expected: &[f64], trials: u64) -> f64 {
        expected
            .iter()
            .enumerate()
            .map(|(v, &p)| {
                let e = p * trials as f64;
                let o = *observed.get(&(v as u64)).unwrap_or(&0) as f64;
                if e > 0.0 {
                    (o - e).powi(2) / e
                } else {
                    // Zero-probability cells must stay empty.
                    assert_eq!(o, 0.0, "mass on impossible leaf {v}");
                    0.0
                }
            })
            .sum()
    }

    #[test]
    fn random_walk_matches_alg2_distribution() {
        // Theorem 2: Alg. 3 generates exactly the Alg. 2 distribution.
        // Sample both heavily on the Example 1 tree and chi-square them
        // against the closed form.
        let hst = example1_hst();
        let m = HstMechanism::new(&hst, Epsilon::new(0.1));
        let x = hst.leaf_of(0);
        let trials = 200_000u64;
        let expected: Vec<f64> = (0..hst.num_leaves())
            .map(|v| m.probability(&hst, x, LeafCode(v)))
            .collect();

        for (name, stream) in [("walk", 11u64), ("naive", 12u64)] {
            let mut rng = seeded_rng(99, stream);
            let mut counts: HashMap<u64, u64> = HashMap::new();
            for _ in 0..trials {
                let z = if name == "walk" {
                    m.obfuscate(&hst, x, &mut rng)
                } else {
                    m.obfuscate_naive(&hst, x, &mut rng)
                };
                *counts.entry(z.0).or_insert(0) += 1;
            }
            let stat = chi_square(&counts, &expected, trials);
            // 15 degrees of freedom (16 leaves); the 0.999 quantile of
            // chi²(15) is ~37.7. Allow generous slack against flakiness.
            assert!(stat < 45.0, "{name}: chi-square {stat} too large");
        }
    }

    #[test]
    fn walk_and_naive_agree_on_ternary_tree() {
        // A non-binary shape exercises the sibling-choice branch properly.
        let grid = Grid::square(Rect::square(30.0), 3); // 9 points
        let ps = grid.to_point_set();
        let mut rng = seeded_rng(5, 0);
        let hst = Hst::build(&ps, &mut rng);
        let m = HstMechanism::new(&hst, Epsilon::new(0.05));
        let x = hst.leaf_of(4);
        let trials = 100_000u64;
        let expected: Vec<f64> = (0..hst.num_leaves())
            .map(|v| m.probability(&hst, x, LeafCode(v)))
            .collect();
        let mut rng2 = seeded_rng(6, 1);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for _ in 0..trials {
            *counts.entry(m.obfuscate(&hst, x, &mut rng2).0).or_insert(0) += 1;
        }
        let stat = chi_square(&counts, &expected, trials);
        let dof = hst.num_leaves() as f64 - 1.0;
        // Normal approximation of the chi-square 0.999 quantile.
        let bound = dof + 4.0 * (2.0 * dof).sqrt();
        assert!(stat < bound, "chi-square {stat} exceeds {bound}");
    }

    #[test]
    fn obfuscation_is_identity_for_huge_epsilon() {
        let hst = example1_hst();
        let m = HstMechanism::new(&hst, Epsilon::new(1e9));
        let mut rng = seeded_rng(1, 1);
        for p in 0..hst.num_points() {
            let x = hst.leaf_of(p);
            for _ in 0..50 {
                assert_eq!(m.obfuscate(&hst, x, &mut rng), x);
            }
        }
    }

    #[test]
    fn tiny_epsilon_spreads_mass_widely() {
        let hst = example1_hst();
        let m = HstMechanism::new(&hst, Epsilon::new(1e-9));
        let mut rng = seeded_rng(2, 2);
        let x = hst.leaf_of(0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            seen.insert(m.obfuscate(&hst, x, &mut rng).0);
        }
        // Nearly uniform over 16 leaves: all should appear in 2000 draws.
        assert_eq!(seen.len() as u64, hst.num_leaves());
    }

    #[test]
    fn outputs_always_belong_to_tree() {
        let grid = Grid::square(Rect::square(100.0), 5);
        let ps = grid.to_point_set();
        let mut rng = seeded_rng(3, 3);
        let hst = Hst::build(&ps, &mut rng);
        let m = HstMechanism::new(&hst, Epsilon::new(0.4));
        for p in 0..hst.num_points() {
            let x = hst.leaf_of(p);
            for _ in 0..200 {
                let z = m.obfuscate(&hst, x, &mut rng);
                assert!(hst.ctx().contains(z));
            }
        }
    }
}
