//! The exponential mechanism over the predefined point set.
//!
//! A third ε-Geo-Indistinguishable baseline beyond the planar Laplace and
//! the paper's HST mechanism: the classic exponential mechanism of McSherry
//! and Talwar instantiated with the (negated) Euclidean distance as the
//! quality score, restricted to the server's predefined points. A true
//! location snapped to point `x` reports point `z` with probability
//!
//! ```text
//! M(x)(z) ∝ exp(-ε · d(x, z) / 2)
//! ```
//!
//! The `/2` pays for the shift of the normalizing constant between two
//! sources: for any `x₁, x₂, z`,
//!
//! ```text
//! M(x₁)(z) / M(x₂)(z) = exp(ε(d(x₂,z) − d(x₁,z))/2) · W(x₂)/W(x₁)
//!                     ≤ exp(ε·d(x₁,x₂)/2) · exp(ε·d(x₁,x₂)/2)
//! ```
//!
//! by the triangle inequality applied to both factors, so the mechanism is
//! ε-Geo-I on the discrete metric — the same guarantee and the same output
//! domain as the paper's HST mechanism, which makes it the natural ablation
//! for "how much of TBF's win is the *tree*, not just discretization?".
//!
//! Sampling uses per-source [`AliasTable`]s built lazily (`O(N)` the first
//! time a source point reports, `O(1)` afterwards), mirroring how a worker
//! app would cache its own distribution.

use crate::alias::AliasTable;
use crate::Epsilon;
use pombm_geom::{PointId, PointSet};
use rand::Rng;
use std::collections::HashMap;

/// Exponential mechanism over a predefined [`PointSet`]; see the module
/// docs for the privacy argument.
#[derive(Debug, Clone)]
pub struct ExponentialMechanism {
    epsilon: Epsilon,
    points: PointSet,
    // lint: allow(DET-HASH) — per-point memo built via entry(); only ever
    // read by key lookup, never iterated.
    tables: HashMap<PointId, AliasTable>,
}

impl ExponentialMechanism {
    /// Creates the mechanism over `points` with budget `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty.
    pub fn new(points: PointSet, epsilon: Epsilon) -> Self {
        assert!(!points.is_empty(), "exponential mechanism needs candidates");
        ExponentialMechanism {
            epsilon,
            points,
            // lint: allow(DET-HASH) — see the field note: lookups only.
            tables: HashMap::new(),
        }
    }

    /// The configured privacy budget.
    #[inline]
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// The candidate output points.
    #[inline]
    pub fn points(&self) -> &PointSet {
        &self.points
    }

    /// Unnormalized sampling weights for source point `x`.
    pub fn weights_for(&self, x: PointId) -> Vec<f64> {
        let eps = self.epsilon.value();
        (0..self.points.len())
            .map(|z| (-eps * self.points.dist(x, z) / 2.0).exp())
            .collect()
    }

    /// Exact probability that source `x` reports candidate `z`.
    pub fn probability(&self, x: PointId, z: PointId) -> f64 {
        let weights = self.weights_for(x);
        let total: f64 = weights.iter().sum();
        weights[z] / total
    }

    /// Obfuscates source point `x`, lazily caching its alias table.
    pub fn obfuscate<R: Rng + ?Sized>(&mut self, x: PointId, rng: &mut R) -> PointId {
        let eps = self.epsilon.value();
        let points = &self.points;
        let table = self.tables.entry(x).or_insert_with(|| {
            let weights: Vec<f64> = (0..points.len())
                .map(|z| (-eps * points.dist(x, z) / 2.0).exp())
                .collect();
            AliasTable::new(&weights)
        });
        table.sample(rng)
    }

    /// Obfuscates without touching the cache (`O(N)` inverse-CDF walk).
    /// Produces the same distribution as [`Self::obfuscate`]; used by tests
    /// and one-shot callers.
    pub fn obfuscate_uncached<R: Rng + ?Sized>(&self, x: PointId, rng: &mut R) -> PointId {
        let weights = self.weights_for(x);
        let total: f64 = weights.iter().sum();
        let mut u = rng.gen::<f64>() * total;
        for (z, w) in weights.iter().enumerate() {
            u -= w;
            if u <= 0.0 {
                return z;
            }
        }
        weights.len() - 1
    }

    /// Number of cached per-source alias tables.
    #[inline]
    pub fn cached_sources(&self) -> usize {
        self.tables.len()
    }

    /// Exhaustively verifies ε-Geo-I over all `(x₁, x₂, z)` triples:
    /// `M(x₁)(z) ≤ exp(ε·d(x₁,x₂)) · M(x₂)(z)`. `O(N³)`; intended for tests
    /// and small candidate sets.
    pub fn audit_geo_i(&self, tol: f64) -> Result<(), String> {
        let n = self.points.len();
        let eps = self.epsilon.value();
        let probs: Vec<Vec<f64>> = (0..n)
            .map(|x| {
                let w = self.weights_for(x);
                let total: f64 = w.iter().sum();
                w.into_iter().map(|v| v / total).collect()
            })
            .collect();
        for x1 in 0..n {
            for x2 in 0..n {
                let bound = (eps * self.points.dist(x1, x2)).exp();
                for (z, (&p1, &p2)) in probs[x1].iter().zip(&probs[x2]).enumerate() {
                    if p1 > bound * p2 * (1.0 + tol) {
                        return Err(format!(
                            "Geo-I violated at x1={x1}, x2={x2}, z={z}: \
                             {p1} > e^(ε·d)·{p2} = {}",
                            bound * p2
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pombm_geom::{seeded_rng, Grid, Point, Rect};

    fn small_points() -> PointSet {
        Grid::square(Rect::square(10.0), 3).to_point_set()
    }

    #[test]
    fn probabilities_normalize() {
        let m = ExponentialMechanism::new(small_points(), Epsilon::new(0.5));
        let sum: f64 = (0..9).map(|z| m.probability(0, z)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identity_is_most_probable() {
        let m = ExponentialMechanism::new(small_points(), Epsilon::new(0.5));
        for x in 0..9 {
            let px = m.probability(x, x);
            for z in 0..9 {
                assert!(px >= m.probability(x, z), "source {x}, candidate {z}");
            }
        }
    }

    #[test]
    fn nearer_candidates_weigh_more() {
        let points = PointSet::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(5.0, 0.0),
        ]);
        let m = ExponentialMechanism::new(points, Epsilon::new(1.0));
        assert!(m.probability(0, 1) > m.probability(0, 2));
    }

    #[test]
    fn geo_i_holds_exactly() {
        for eps in [0.2, 1.0, 4.0] {
            let m = ExponentialMechanism::new(small_points(), Epsilon::new(eps));
            m.audit_geo_i(1e-9).unwrap();
        }
    }

    #[test]
    fn cached_and_uncached_distributions_agree() {
        let mut m = ExponentialMechanism::new(small_points(), Epsilon::new(0.8));
        let draws = 60_000;
        let mut cached = [0usize; 9];
        let mut uncached = [0usize; 9];
        let mut rng = seeded_rng(4, 0);
        for _ in 0..draws {
            cached[m.obfuscate(2, &mut rng)] += 1;
        }
        let mut rng = seeded_rng(5, 0);
        for _ in 0..draws {
            uncached[m.obfuscate_uncached(2, &mut rng)] += 1;
        }
        assert_eq!(m.cached_sources(), 1);
        for z in 0..9 {
            let a = cached[z] as f64 / draws as f64;
            let b = uncached[z] as f64 / draws as f64;
            let exact = m.probability(2, z);
            assert!((a - exact).abs() < 0.012, "cached z={z}: {a} vs {exact}");
            assert!((b - exact).abs() < 0.012, "uncached z={z}: {b} vs {exact}");
        }
    }

    #[test]
    fn tighter_epsilon_flattens_distribution() {
        let strict = ExponentialMechanism::new(small_points(), Epsilon::new(0.05));
        let loose = ExponentialMechanism::new(small_points(), Epsilon::new(5.0));
        // Probability of reporting truthfully grows with ε.
        assert!(loose.probability(4, 4) > strict.probability(4, 4));
        // Under a tiny ε every candidate is nearly uniform.
        let p = strict.probability(4, 0);
        assert!((p - 1.0 / 9.0).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_candidates_panic() {
        // `PointSet::new` already rejects empty inputs, so the mechanism's
        // own guard is a second line of defence that normal construction
        // can never reach.
        let _ = ExponentialMechanism::new(PointSet::new(vec![]), Epsilon::new(1.0));
    }
}
