//! Walker/Vose alias tables for O(1) discrete sampling.
//!
//! The naive HST mechanism (Alg. 2) and the exponential mechanism both
//! sample from a fixed categorical distribution over up to `N` outcomes.
//! Inverse-CDF sampling costs `O(N)` per draw; an alias table costs `O(N)`
//! once and `O(1)` per draw, which matters when the same source location is
//! obfuscated repeatedly (workers re-reporting across epochs, repeated
//! experiment repetitions).

use rand::Rng;

/// A Walker alias table over `n` outcomes built with Vose's O(n) algorithm.
///
/// Sampling draws one uniform index and one uniform real, so each draw is
/// O(1) regardless of the support size.
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// `prob[i]` is the probability of keeping column `i` (vs. its alias).
    prob: Vec<f64>,
    /// `alias[i]` is the outcome used when column `i` rejects.
    alias: Vec<u32>,
    /// Normalized outcome probabilities, kept for exact inspection/tests.
    pmf: Vec<f64>,
}

impl AliasTable {
    /// Builds an alias table from non-negative `weights`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// entry, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(
            !weights.is_empty(),
            "alias table needs at least one outcome"
        );
        assert!(
            weights.len() <= u32::MAX as usize,
            "alias table supports at most 2^32 - 1 outcomes"
        );
        let mut total = 0.0f64;
        for (i, &w) in weights.iter().enumerate() {
            assert!(
                w.is_finite() && w >= 0.0,
                "weight {i} must be finite and non-negative, got {w}"
            );
            total += w;
        }
        assert!(total > 0.0, "weights must not all be zero");

        let n = weights.len();
        let pmf: Vec<f64> = weights.iter().map(|w| w / total).collect();
        // Scaled probabilities: mean 1. Classify into small (< 1) and large.
        let mut scaled: Vec<f64> = pmf.iter().map(|p| p * n as f64).collect();
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }

        let mut prob = vec![1.0f64; n];
        let mut alias = vec![0u32; n];
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            // The large column donates the mass the small column lacks.
            scaled[l as usize] = (scaled[l as usize] + scaled[s as usize]) - 1.0;
            if scaled[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Whatever remains (numerical leftovers) keeps probability 1.
        for i in large {
            prob[i as usize] = 1.0;
        }
        for i in small {
            prob[i as usize] = 1.0;
        }

        AliasTable { prob, alias, pmf }
    }

    /// Number of outcomes.
    #[inline]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// The exact normalized probability of outcome `i`.
    #[inline]
    pub fn probability(&self, i: usize) -> f64 {
        self.pmf[i]
    }

    /// Draws one outcome in O(1).
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pombm_geom::seeded_rng;

    #[test]
    fn single_outcome_always_sampled() {
        let t = AliasTable::new(&[3.5]);
        let mut rng = seeded_rng(0, 0);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
        assert_eq!(t.probability(0), 1.0);
    }

    #[test]
    fn zero_weight_outcomes_never_sampled() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0, 2.0]);
        let mut rng = seeded_rng(1, 0);
        for _ in 0..10_000 {
            let s = t.sample(&mut rng);
            assert!(s == 1 || s == 3, "sampled zero-weight outcome {s}");
        }
        assert_eq!(t.probability(0), 0.0);
        assert_eq!(t.probability(2), 0.0);
    }

    #[test]
    fn pmf_is_normalized() {
        let t = AliasTable::new(&[1.0, 2.0, 3.0, 4.0]);
        let sum: f64 = (0..4).map(|i| t.probability(i)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((t.probability(3) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empirical_frequencies_match_pmf() {
        let weights = [5.0, 1.0, 0.5, 2.5, 1.0];
        let t = AliasTable::new(&weights);
        let mut rng = seeded_rng(2, 0);
        let draws = 200_000usize;
        let mut counts = [0usize; 5];
        for _ in 0..draws {
            counts[t.sample(&mut rng)] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            let emp = count as f64 / draws as f64;
            let exact = t.probability(i);
            assert!(
                (emp - exact).abs() < 0.01,
                "outcome {i}: empirical {emp} vs exact {exact}"
            );
        }
    }

    #[test]
    fn extreme_weight_ratios_build() {
        // Ratios like exp(-eps * 2^{D+2}) underflow to ~0; construction must
        // stay finite and the dominant outcome must dominate.
        let t = AliasTable::new(&[1.0, 1e-300, 0.0, 1e-12]);
        let mut rng = seeded_rng(3, 0);
        let hits = (0..1000).filter(|_| t.sample(&mut rng) == 0).count();
        assert!(hits > 990);
    }

    #[test]
    #[should_panic(expected = "at least one outcome")]
    fn empty_weights_panic() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "must not all be zero")]
    fn all_zero_weights_panic() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_weight_panics() {
        let _ = AliasTable::new(&[1.0, -0.1]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn nan_weight_panics() {
        let _ = AliasTable::new(&[1.0, f64::NAN]);
    }
}
