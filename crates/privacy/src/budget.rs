//! Privacy-budget accounting across repeated reports.
//!
//! Geo-Indistinguishability composes like differential privacy: a user who
//! reports their (perturbed) location `k` times at budget ε per report has
//! spent `k·ε` against any adversary correlating the reports (sequential
//! composition). The paper treats a single assignment round; a deployed
//! system re-reports as workers move, so budget accounting is the piece an
//! operator must add. This module provides a small, thread-safe ledger:
//! each participant gets a lifetime budget, every obfuscation *charges* the
//! ledger first, and exhausted participants are refused before any data
//! leaves the device.

use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Why a charge was refused.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BudgetError {
    /// The requested ε would exceed the participant's remaining budget.
    Exhausted {
        /// Budget still available.
        remaining: f64,
        /// Budget that was requested.
        requested: f64,
    },
}

impl std::fmt::Display for BudgetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetError::Exhausted {
                remaining,
                requested,
            } => write!(
                f,
                "privacy budget exhausted: requested ε={requested}, remaining ε={remaining}"
            ),
        }
    }
}

impl std::error::Error for BudgetError {}

/// A thread-safe per-participant privacy-budget ledger.
///
/// The ledger is a `BTreeMap` so that [`BudgetLedger::total_spent`] sums
/// in participant-id order: float addition is not associative, so a
/// hash-ordered sum would change in the last bits from run to run.
#[derive(Debug)]
pub struct BudgetLedger {
    lifetime: f64,
    spent: Mutex<BTreeMap<u64, f64>>,
}

impl BudgetLedger {
    /// Creates a ledger granting every participant the same lifetime budget.
    ///
    /// # Panics
    ///
    /// Panics unless `lifetime` is positive and finite.
    pub fn new(lifetime: f64) -> Self {
        assert!(
            lifetime.is_finite() && lifetime > 0.0,
            "lifetime budget must be positive, got {lifetime}"
        );
        BudgetLedger {
            lifetime,
            spent: Mutex::new(BTreeMap::new()),
        }
    }

    /// The lifetime budget per participant.
    pub fn lifetime(&self) -> f64 {
        self.lifetime
    }

    /// Remaining budget of a participant (full for unknown ids).
    pub fn remaining(&self, participant: u64) -> f64 {
        let spent = self.spent.lock();
        (self.lifetime - spent.get(&participant).copied().unwrap_or(0.0)).max(0.0)
    }

    /// Atomically charges `epsilon` against a participant's budget.
    ///
    /// Either the whole charge is recorded (and `Ok` returned) or nothing is
    /// (so a refused report can be retried later at lower ε).
    pub fn charge(&self, participant: u64, epsilon: f64) -> Result<(), BudgetError> {
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "charge must be positive, got {epsilon}"
        );
        let mut spent = self.spent.lock();
        let used = spent.entry(participant).or_insert(0.0);
        let remaining = self.lifetime - *used;
        // A small relative tolerance keeps k charges of lifetime/k from
        // failing on the last one through floating-point drift.
        if epsilon > remaining + self.lifetime * 1e-12 {
            return Err(BudgetError::Exhausted {
                remaining: remaining.max(0.0),
                requested: epsilon,
            });
        }
        *used += epsilon;
        Ok(())
    }

    /// Total budget spent across all participants (an operator-side gauge).
    pub fn total_spent(&self) -> f64 {
        self.spent.lock().values().sum()
    }

    /// Number of participants that have spent anything.
    pub fn active_participants(&self) -> usize {
        self.spent.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_participants_have_full_budget() {
        let ledger = BudgetLedger::new(1.0);
        assert_eq!(ledger.remaining(7), 1.0);
        assert_eq!(ledger.active_participants(), 0);
    }

    #[test]
    fn charges_accumulate_and_exhaust() {
        let ledger = BudgetLedger::new(1.0);
        assert!(ledger.charge(1, 0.4).is_ok());
        assert!(ledger.charge(1, 0.4).is_ok());
        assert!((ledger.remaining(1) - 0.2).abs() < 1e-12);
        let err = ledger.charge(1, 0.4).unwrap_err();
        match err {
            BudgetError::Exhausted {
                remaining,
                requested,
            } => {
                assert!((remaining - 0.2).abs() < 1e-12);
                assert_eq!(requested, 0.4);
            }
        }
        // The refused charge spent nothing.
        assert!((ledger.remaining(1) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn exactly_k_equal_charges_fit() {
        let ledger = BudgetLedger::new(1.0);
        for _ in 0..10 {
            ledger.charge(3, 0.1).expect("10 x 0.1 fits in 1.0");
        }
        assert!(ledger.charge(3, 0.1).is_err());
    }

    #[test]
    fn participants_are_independent() {
        let ledger = BudgetLedger::new(0.5);
        ledger.charge(1, 0.5).unwrap();
        assert!(ledger.charge(2, 0.5).is_ok());
        assert_eq!(ledger.active_participants(), 2);
        assert_eq!(ledger.total_spent(), 1.0);
    }

    #[test]
    fn concurrent_charges_never_overspend() {
        use std::sync::Arc;
        let ledger = Arc::new(BudgetLedger::new(1.0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let ledger = Arc::clone(&ledger);
            handles.push(std::thread::spawn(move || {
                let mut granted = 0u32;
                for _ in 0..100 {
                    if ledger.charge(42, 0.01).is_ok() {
                        granted += 1;
                    }
                }
                granted
            }));
        }
        let total: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100, "exactly 1.0/0.01 charges may succeed");
        assert!(ledger.remaining(42) < 1e-9);
    }

    #[test]
    fn error_displays() {
        let e = BudgetError::Exhausted {
            remaining: 0.1,
            requested: 0.5,
        };
        assert!(e.to_string().contains("0.5"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_lifetime_rejected() {
        let _ = BudgetLedger::new(0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn negative_charge_rejected() {
        let ledger = BudgetLedger::new(1.0);
        let _ = ledger.charge(0, -0.1);
    }
}
