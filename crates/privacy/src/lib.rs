#![warn(missing_docs)]

//! ε-Geo-Indistinguishable privacy mechanisms for spatial crowdsourcing.
//!
//! This crate implements both sides of the paper's comparison:
//!
//! * [`HstMechanism`] — the paper's contribution: obfuscation of HST leaves
//!   with probabilities `M(x)(z) = wt_{lvl(lca(x,z))} / WT` where
//!   `wt_i = exp(ε·(4 − 2^{i+2}))`. Two implementations produce the same
//!   distribution: the naive `O(c^D)` enumeration of Alg. 2 and the `O(D)`
//!   random walk of Alg. 3.
//! * [`PlanarLaplace`] — the widely used planar Laplace mechanism of Andrés
//!   et al. (CCS'13), the privacy layer of the Lap-GR / Lap-HG / Prob
//!   baselines.
//! * [`ReachEstimator`] — the reachability-probability computation behind the
//!   Prob baseline of the paper's case study (To et al., ICDE'18 style).
//! * [`ExponentialMechanism`] — the exponential mechanism over the
//!   predefined points; the ablation separating "discretize to the grid"
//!   from "use the tree" (same output domain as TBF, no HST).
//! * [`geo_i`] — exact and statistical verification that a mechanism
//!   satisfies ε-Geo-Indistinguishability (Definition 7).

//! # Example
//!
//! ```
//! use pombm_geom::{seeded_rng, Grid, Rect};
//! use pombm_hst::Hst;
//! use pombm_privacy::{Epsilon, HstMechanism};
//!
//! let points = Grid::square(Rect::square(100.0), 4).to_point_set();
//! let mut rng = seeded_rng(1, 0);
//! let hst = Hst::build(&points, &mut rng);
//!
//! // The paper's mechanism: obfuscate a leaf with the O(D) random walk.
//! let mech = HstMechanism::new(&hst, Epsilon::new(0.6));
//! let x = hst.leaf_of(5);
//! let z = mech.obfuscate(&hst, x, &mut rng);
//! assert!(hst.ctx().contains(z), "output is a leaf of the complete tree");
//!
//! // Exact probabilities are available for auditing (Theorem 1).
//! let p: f64 = (0..hst.num_leaves())
//!     .map(|v| mech.probability(&hst, x, pombm_hst::LeafCode(v)))
//!     .sum();
//! assert!((p - 1.0).abs() < 1e-9);
//! ```

pub mod alias;
pub mod batch;
pub mod budget;
pub mod exponential;
pub mod geo_i;
pub mod hst_mechanism;
pub mod laplace;
pub mod psd;
pub mod reach;
pub mod weights;

pub use alias::AliasTable;
pub use exponential::ExponentialMechanism;
pub use hst_mechanism::HstMechanism;
pub use laplace::PlanarLaplace;
pub use reach::ReachEstimator;
pub use weights::WeightTable;

/// A privacy budget ε > 0 (Definition 7).
///
/// The budget is interpreted per unit of distance *in the metric the
/// mechanism operates on*: Euclidean units for [`PlanarLaplace`], tree units
/// for [`HstMechanism`].
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Epsilon(f64);

impl Epsilon {
    /// Wraps a budget, validating it is finite and strictly positive.
    pub fn new(value: f64) -> Self {
        assert!(
            value.is_finite() && value > 0.0,
            "privacy budget must be a positive finite number, got {value}"
        );
        Epsilon(value)
    }

    /// The raw budget value.
    #[inline]
    pub fn value(&self) -> f64 {
        self.0
    }
}

impl From<f64> for Epsilon {
    fn from(v: f64) -> Self {
        Epsilon::new(v)
    }
}

impl std::fmt::Display for Epsilon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ε={}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_accepts_positive() {
        assert_eq!(Epsilon::new(0.2).value(), 0.2);
        assert_eq!(Epsilon::from(1.0).value(), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn epsilon_rejects_zero() {
        let _ = Epsilon::new(0.0);
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn epsilon_rejects_nan() {
        let _ = Epsilon::new(f64::NAN);
    }

    #[test]
    fn epsilon_displays() {
        assert_eq!(Epsilon::new(0.5).to_string(), "ε=0.5");
    }
}
