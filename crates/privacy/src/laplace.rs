//! The planar Laplace mechanism (Andrés et al., CCS 2013).
//!
//! This is the privacy layer of all three baselines in the paper's
//! evaluation (Lap-GR, Lap-HG and the case study's Prob): the true location
//! is displaced by a vector whose direction is uniform and whose length
//! follows the distribution obtained by normalizing `exp(−ε·r)` over the
//! plane. The mechanism is ε-Geo-Indistinguishable in the Euclidean metric.

use crate::Epsilon;
use pombm_geom::Point;
use rand::Rng;

/// Planar (polar) Laplace noise with budget ε per Euclidean unit.
#[derive(Debug, Clone, Copy)]
pub struct PlanarLaplace {
    epsilon: Epsilon,
}

impl PlanarLaplace {
    /// Creates the mechanism.
    pub fn new(epsilon: Epsilon) -> Self {
        PlanarLaplace { epsilon }
    }

    /// The privacy budget.
    #[inline]
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// Probability density of the displacement magnitude `r ≥ 0`:
    /// `ε²·r·e^{−εr}` (the radial marginal of the planar Laplace density).
    pub fn radial_pdf(&self, r: f64) -> f64 {
        let eps = self.epsilon.value();
        if r < 0.0 {
            0.0
        } else {
            eps * eps * r * (-eps * r).exp()
        }
    }

    /// CDF of the displacement magnitude:
    /// `C(r) = 1 − (1 + εr)·e^{−εr}`.
    pub fn radial_cdf(&self, r: f64) -> f64 {
        let eps = self.epsilon.value();
        if r <= 0.0 {
            0.0
        } else {
            1.0 - (1.0 + eps * r) * (-eps * r).exp()
        }
    }

    /// Samples a displacement radius by inverting the radial CDF:
    /// `r = −(1/ε)·(W₋₁((p−1)/e) + 1)` for `p ~ U(0,1)` (Andrés et al.,
    /// Eq. for polar Laplacian sampling).
    pub fn sample_radius<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let eps = self.epsilon.value();
        // p ∈ (0, 1) open: p = 0 would give r = 0 (fine) but p = 1 gives
        // r = ∞; the standard generator returns [0, 1), which is safe.
        let p: f64 = rng.gen();
        let z = (p - 1.0) / std::f64::consts::E;
        -(lambert_w_m1(z) + 1.0) / eps
    }

    /// Obfuscates a location: uniform angle, radius from
    /// [`PlanarLaplace::sample_radius`].
    pub fn obfuscate<R: Rng + ?Sized>(&self, location: &Point, rng: &mut R) -> Point {
        let theta = rng.gen::<f64>() * std::f64::consts::TAU;
        let r = self.sample_radius(rng);
        Point::new(location.x + r * theta.cos(), location.y + r * theta.sin())
    }

    /// Advances `rng` exactly as one [`PlanarLaplace::obfuscate`] call
    /// would — one draw for the angle, one for the radius — without the
    /// trigonometry and Lambert-W work.
    ///
    /// This is the cheap sequential pass of
    /// [`batch::obfuscate_points_batch`](crate::batch::obfuscate_points_batch):
    /// it records where each item's draws start so the expensive sampling
    /// can run on any thread while reproducing the scalar stream
    /// bit-for-bit. Must consume exactly as many draws as `obfuscate`
    /// (pinned by a test).
    pub fn advance_obfuscate<R: Rng + ?Sized>(&self, rng: &mut R) {
        let _ = rng.gen::<f64>();
        let _ = rng.gen::<f64>();
    }
}

/// The `W₋₁` branch of the Lambert W function on `[−1/e, 0)`.
///
/// Solves `w·e^w = z` with `w ≤ −1`. Uses a branch-appropriate initial guess
/// followed by Halley iterations; converges to machine precision in ≤ 6
/// steps over the whole domain.
pub fn lambert_w_m1(z: f64) -> f64 {
    let inv_e = -(-1.0f64).exp(); // −1/e
    assert!(
        (inv_e..0.0).contains(&z),
        "W₋₁ domain is [−1/e, 0), got {z}"
    );
    if (z - inv_e).abs() < 1e-300 {
        return -1.0;
    }

    // Initial guess. Near the branch point z = −1/e use the square-root
    // series w ≈ −1 − η − η²/3 with η = sqrt(2(1 + e·z)); near 0⁻ use the
    // asymptotic w ≈ ln(−z) − ln(−ln(−z)).
    let eta = (2.0 * (1.0 + std::f64::consts::E * z)).sqrt();
    let mut w = if eta < 0.5 {
        -1.0 - eta - eta * eta / 3.0
    } else {
        let l1 = (-z).ln();
        let l2 = (-l1).ln();
        l1 - l2
    };

    // Halley iteration on f(w) = w·e^w − z.
    for _ in 0..50 {
        let ew = w.exp();
        let f = w * ew - z;
        if f == 0.0 {
            break;
        }
        let denom = ew * (w + 1.0) - (w + 2.0) * f / (2.0 * w + 2.0);
        let step = f / denom;
        w -= step;
        if step.abs() < 1e-14 * w.abs().max(1.0) {
            break;
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use pombm_geom::seeded_rng;

    #[test]
    fn lambert_w_m1_inverts_w_exp_w() {
        for &w in &[-1.0001f64, -1.5, -2.0, -5.0, -10.0, -30.0, -700.0] {
            let z = w * w.exp();
            if z == 0.0 {
                continue; // underflow for very negative w
            }
            let back = lambert_w_m1(z);
            assert!(
                (back - w).abs() < 1e-8 * w.abs(),
                "W₋₁({z}) = {back}, expected {w}"
            );
        }
    }

    #[test]
    fn lambert_w_m1_at_branch_point() {
        let z = -(-1.0f64).exp();
        assert!((lambert_w_m1(z) + 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "domain")]
    fn lambert_w_m1_rejects_positive() {
        let _ = lambert_w_m1(0.5);
    }

    #[test]
    fn radial_cdf_matches_pdf_numerically() {
        let m = PlanarLaplace::new(Epsilon::new(0.3));
        // Trapezoidal integral of the pdf vs. closed-form CDF.
        let mut acc = 0.0;
        let h = 0.01;
        let mut r = 0.0;
        while r < 30.0 {
            acc += h * (m.radial_pdf(r) + m.radial_pdf(r + h)) / 2.0;
            r += h;
            let cdf = m.radial_cdf(r);
            assert!((acc - cdf).abs() < 1e-4, "r={r}: ∫pdf={acc} cdf={cdf}");
        }
    }

    #[test]
    fn sampled_radii_follow_radial_cdf() {
        // Kolmogorov–Smirnov-style check at a few quantiles.
        let m = PlanarLaplace::new(Epsilon::new(0.5));
        let mut rng = seeded_rng(21, 0);
        let n = 50_000;
        let mut radii: Vec<f64> = (0..n).map(|_| m.sample_radius(&mut rng)).collect();
        radii.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let empirical = radii[(q * n as f64) as usize];
            let theoretical = m.radial_cdf(empirical);
            assert!(
                (theoretical - q).abs() < 0.01,
                "quantile {q}: r={empirical}, cdf={theoretical}"
            );
        }
    }

    #[test]
    fn mean_radius_is_two_over_epsilon() {
        // E[r] = 2/ε for the radial marginal ε²·r·e^{−εr}.
        let eps = 0.4;
        let m = PlanarLaplace::new(Epsilon::new(eps));
        let mut rng = seeded_rng(22, 0);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| m.sample_radius(&mut rng)).sum::<f64>() / n as f64;
        assert!(
            (mean - 2.0 / eps).abs() < 0.05,
            "mean {mean} vs expected {}",
            2.0 / eps
        );
    }

    #[test]
    fn obfuscate_displaces_isotropically() {
        let m = PlanarLaplace::new(Epsilon::new(1.0));
        let mut rng = seeded_rng(23, 0);
        let origin = Point::new(10.0, 10.0);
        let n = 40_000;
        let (mut sx, mut sy) = (0.0, 0.0);
        for _ in 0..n {
            let p = m.obfuscate(&origin, &mut rng);
            sx += p.x - origin.x;
            sy += p.y - origin.y;
        }
        // Mean displacement ≈ 0 in both axes (std of the mean ≈ 2.8/√n ≈
        // 0.014 per axis at ε = 1).
        assert!((sx / n as f64).abs() < 0.1);
        assert!((sy / n as f64).abs() < 0.1);
    }

    #[test]
    fn larger_epsilon_means_smaller_noise() {
        let mut rng = seeded_rng(24, 0);
        let tight = PlanarLaplace::new(Epsilon::new(2.0));
        let loose = PlanarLaplace::new(Epsilon::new(0.2));
        let n = 20_000;
        let avg = |m: &PlanarLaplace, rng: &mut rand::rngs::StdRng| -> f64 {
            (0..n).map(|_| m.sample_radius(rng)).sum::<f64>() / n as f64
        };
        let a = avg(&tight, &mut rng);
        let b = avg(&loose, &mut rng);
        assert!(a * 5.0 < b, "tight {a} vs loose {b}");
    }

    #[test]
    fn empirical_geo_i_ratio_on_discretized_plane() {
        // Discretize displacements into coarse cells and verify
        // P(x1 -> cell) <= e^{ε d(x1,x2)} P(x2 -> cell) within sampling
        // error, for a nearby pair x1, x2.
        let eps = 0.5;
        let m = PlanarLaplace::new(Epsilon::new(eps));
        let x1 = Point::new(0.0, 0.0);
        let x2 = Point::new(1.0, 0.0);
        let n = 400_000usize;
        let cell = 2.0;
        let key = |p: Point| ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64);
        let mut h1 = std::collections::HashMap::new();
        let mut h2 = std::collections::HashMap::new();
        let mut rng = seeded_rng(25, 0);
        for _ in 0..n {
            *h1.entry(key(m.obfuscate(&x1, &mut rng))).or_insert(0u32) += 1;
            *h2.entry(key(m.obfuscate(&x2, &mut rng))).or_insert(0u32) += 1;
        }
        let bound = (eps * x1.dist(&x2)).exp();
        for (k, &c1) in &h1 {
            let c2 = *h2.get(k).unwrap_or(&0);
            if c1 < 500 || c2 < 500 {
                continue; // skip cells with large relative sampling error
            }
            let ratio = c1 as f64 / c2 as f64;
            assert!(
                ratio < bound * 1.25,
                "cell {k:?}: ratio {ratio} vs bound {bound}"
            );
        }
    }
}
