//! Reachability probabilities under planar Laplace noise.
//!
//! The paper's case study (Sec. IV-C) compares against **Prob** (To et al.,
//! ICDE 2018): workers and tasks report Laplace-obfuscated locations and the
//! server assigns a task to the worker that maximizes the probability that
//! the *true* worker–task distance is within the worker's reachable radius.
//!
//! With both endpoints obfuscated independently, the true displacement is
//! `s + n_w − n_t` where `s` is the observed (obfuscated) separation vector
//! and `n_w, n_t` are independent planar Laplace draws. The probability
//! `P(‖s + n_w − n_t‖ ≤ R)` has no convenient closed form, so we estimate it
//! by a *fixed, precomputed* Monte-Carlo sample of the noise-difference
//! distribution — deterministic (seeded), isotropic (only `‖s‖` matters) and
//! amortized across all queries of an experiment run.

use crate::laplace::PlanarLaplace;
use crate::Epsilon;
use pombm_geom::{seeded_rng, Point};
use rand::Rng;

/// Anything that can answer `P(true distance ≤ radius | obfuscated
/// separation)` queries — implemented by the exact-ish Monte-Carlo
/// [`ReachEstimator`] and by the amortized [`ReachTable`].
pub trait ReachProbability {
    /// Probability that the true distance is within `radius` given the
    /// observed obfuscated separation.
    fn probability(&self, separation: f64, radius: f64) -> f64;
}

/// Estimator for `P(true distance ≤ radius | obfuscated separation)` under
/// double planar Laplace noise with budget ε.
#[derive(Debug, Clone)]
pub struct ReachEstimator {
    /// Precomputed draws of `n_w − n_t`.
    noise_diff: Vec<Point>,
}

impl ReachEstimator {
    /// Default number of Monte-Carlo noise samples; ~1.6% standard error on
    /// mid-range probabilities, negligible against workload noise.
    pub const DEFAULT_SAMPLES: usize = 4000;

    /// Builds the estimator with `samples` noise-difference draws using a
    /// deterministic seed.
    pub fn new(epsilon: Epsilon, samples: usize, seed: u64) -> Self {
        assert!(samples > 0, "need at least one noise sample");
        let mech = PlanarLaplace::new(epsilon);
        let mut rng = seeded_rng(seed, 0xF00D);
        let origin = Point::ORIGIN;
        let noise_diff = (0..samples)
            .map(|_| {
                let a = mech.obfuscate(&origin, &mut rng);
                let b = mech.obfuscate(&origin, &mut rng);
                Point::new(a.x - b.x, a.y - b.y)
            })
            .collect();
        ReachEstimator { noise_diff }
    }

    /// Convenience constructor with [`ReachEstimator::DEFAULT_SAMPLES`].
    pub fn with_defaults(epsilon: Epsilon, seed: u64) -> Self {
        Self::new(epsilon, Self::DEFAULT_SAMPLES, seed)
    }

    /// Estimates `P(‖s + n‖ ≤ radius)` where `‖s‖ = separation` and `n` is
    /// the noise difference. By isotropy the separation can be placed on the
    /// x-axis.
    pub fn probability(&self, separation: f64, radius: f64) -> f64 {
        assert!(separation >= 0.0 && radius >= 0.0, "distances must be ≥ 0");
        let r2 = radius * radius;
        let hits = self
            .noise_diff
            .iter()
            .filter(|n| {
                let dx = separation + n.x;
                dx * dx + n.y * n.y <= r2
            })
            .count();
        hits as f64 / self.noise_diff.len() as f64
    }

    /// Number of stored noise samples.
    pub fn samples(&self) -> usize {
        self.noise_diff.len()
    }
}

impl ReachProbability for ReachEstimator {
    fn probability(&self, separation: f64, radius: f64) -> f64 {
        ReachEstimator::probability(self, separation, radius)
    }
}

/// Precomputed `(separation, radius) → probability` grid with bilinear
/// interpolation, turning each query into O(1).
///
/// The Prob baseline evaluates a reach probability for every available
/// worker on every task arrival — `O(n·m)` queries per run — so the
/// per-query Monte-Carlo cost of [`ReachEstimator`] must be paid once here,
/// not per query. Probabilities are monotone and smooth in both arguments,
/// so a modest grid with bilinear interpolation is accurate to well under
/// the Monte-Carlo noise floor.
#[derive(Debug, Clone)]
pub struct ReachTable {
    max_separation: f64,
    max_radius: f64,
    sep_bins: usize,
    rad_bins: usize,
    /// `values[r * (sep_bins + 1) + s]`, row-major over radius then
    /// separation grid nodes.
    values: Vec<f64>,
}

impl ReachTable {
    /// Builds the table from `estimator` over `[0, max_separation] × [0,
    /// max_radius]` with the given grid resolution.
    pub fn build(
        estimator: &ReachEstimator,
        max_separation: f64,
        max_radius: f64,
        sep_bins: usize,
        rad_bins: usize,
    ) -> Self {
        assert!(sep_bins > 0 && rad_bins > 0, "need at least one bin");
        assert!(
            max_separation > 0.0 && max_radius > 0.0,
            "table extents must be positive"
        );
        let mut values = Vec::with_capacity((sep_bins + 1) * (rad_bins + 1));
        for r in 0..=rad_bins {
            let radius = max_radius * r as f64 / rad_bins as f64;
            for s in 0..=sep_bins {
                let sep = max_separation * s as f64 / sep_bins as f64;
                values.push(estimator.probability(sep, radius));
            }
        }
        ReachTable {
            max_separation,
            max_radius,
            sep_bins,
            rad_bins,
            values,
        }
    }

    /// Convenience: default estimator + a `256 × 64` grid.
    pub fn with_defaults(
        epsilon: crate::Epsilon,
        max_separation: f64,
        max_radius: f64,
        seed: u64,
    ) -> Self {
        let estimator = ReachEstimator::with_defaults(epsilon, seed);
        Self::build(&estimator, max_separation, max_radius, 256, 64)
    }

    fn node(&self, s: usize, r: usize) -> f64 {
        self.values[r * (self.sep_bins + 1) + s]
    }
}

impl ReachProbability for ReachTable {
    fn probability(&self, separation: f64, radius: f64) -> f64 {
        // Queries beyond the table extent clamp to the border; separations
        // beyond max_separation have ~0 probability anyway if the extent was
        // chosen as the workspace diameter.
        let sx = (separation / self.max_separation * self.sep_bins as f64)
            .clamp(0.0, self.sep_bins as f64);
        let ry = (radius / self.max_radius * self.rad_bins as f64).clamp(0.0, self.rad_bins as f64);
        let (s0, r0) = (sx.floor() as usize, ry.floor() as usize);
        let (s1, r1) = ((s0 + 1).min(self.sep_bins), (r0 + 1).min(self.rad_bins));
        let (fs, fr) = (sx - s0 as f64, ry - r0 as f64);
        let top = self.node(s0, r0) * (1.0 - fs) + self.node(s1, r0) * fs;
        let bottom = self.node(s0, r1) * (1.0 - fs) + self.node(s1, r1) * fs;
        top * (1.0 - fr) + bottom * fr
    }
}

/// Samples one noise-difference vector; exposed for tests and simulations
/// that want per-draw (not amortized) noise.
pub fn sample_noise_diff<R: Rng + ?Sized>(epsilon: Epsilon, rng: &mut R) -> Point {
    let mech = PlanarLaplace::new(epsilon);
    let a = mech.obfuscate(&Point::ORIGIN, rng);
    let b = mech.obfuscate(&Point::ORIGIN, rng);
    Point::new(a.x - b.x, a.y - b.y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_is_monotone_in_radius() {
        let est = ReachEstimator::new(Epsilon::new(0.5), 4000, 7);
        let mut prev = 0.0;
        for r in [0.0, 1.0, 2.0, 5.0, 10.0, 50.0] {
            let p = est.probability(3.0, r);
            assert!(p >= prev, "radius {r}: {p} < {prev}");
            prev = p;
        }
    }

    #[test]
    fn probability_is_antitone_in_separation() {
        let est = ReachEstimator::new(Epsilon::new(0.5), 4000, 7);
        let mut prev = 1.0;
        for s in [0.0, 2.0, 5.0, 10.0, 40.0] {
            let p = est.probability(s, 5.0);
            assert!(p <= prev + 1e-12, "sep {s}: {p} > {prev}");
            prev = p;
        }
    }

    #[test]
    fn extreme_cases_saturate() {
        let est = ReachEstimator::new(Epsilon::new(2.0), 4000, 9);
        // Huge radius, small separation: near certain.
        assert!(est.probability(1.0, 1000.0) > 0.999);
        // Tiny radius, huge separation: near impossible.
        assert!(est.probability(1000.0, 1.0) < 1e-3);
    }

    #[test]
    fn deterministic_across_instances() {
        let a = ReachEstimator::new(Epsilon::new(0.7), 1000, 42);
        let b = ReachEstimator::new(Epsilon::new(0.7), 1000, 42);
        assert_eq!(a.probability(4.0, 6.0), b.probability(4.0, 6.0));
    }

    #[test]
    fn matches_direct_monte_carlo() {
        // Cross-check the cached estimator against fresh per-draw sampling.
        let eps = Epsilon::new(0.4);
        let est = ReachEstimator::new(eps, 20_000, 11);
        let mut rng = pombm_geom::seeded_rng(12, 0);
        let (sep, radius) = (5.0, 8.0);
        let n = 20_000;
        let direct = (0..n)
            .filter(|_| {
                let d = sample_noise_diff(eps, &mut rng);
                let dx = sep + d.x;
                (dx * dx + d.y * d.y).sqrt() <= radius
            })
            .count() as f64
            / n as f64;
        let cached = est.probability(sep, radius);
        assert!(
            (direct - cached).abs() < 0.02,
            "direct {direct} vs cached {cached}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_samples_rejected() {
        let _ = ReachEstimator::new(Epsilon::new(1.0), 0, 0);
    }

    #[test]
    fn table_tracks_estimator() {
        let eps = Epsilon::new(0.5);
        let est = ReachEstimator::new(eps, 8000, 5);
        let table = ReachTable::build(&est, 100.0, 30.0, 200, 60);
        for (sep, rad) in [(0.0, 5.0), (3.3, 12.7), (20.0, 15.0), (60.0, 29.0)] {
            let direct = est.probability(sep, rad);
            let interp = ReachProbability::probability(&table, sep, rad);
            assert!(
                (direct - interp).abs() < 0.03,
                "sep {sep} rad {rad}: direct {direct} vs table {interp}"
            );
        }
    }

    #[test]
    fn table_clamps_out_of_range_queries() {
        let eps = Epsilon::new(0.5);
        let est = ReachEstimator::new(eps, 2000, 6);
        let table = ReachTable::build(&est, 50.0, 20.0, 64, 32);
        // Beyond max separation: clamps to border value (≈ 0 here).
        let far = ReachProbability::probability(&table, 500.0, 10.0);
        assert!(far <= ReachProbability::probability(&table, 50.0, 10.0) + 1e-12);
        // Beyond max radius: clamps to the widest-radius row.
        let wide = ReachProbability::probability(&table, 5.0, 100.0);
        assert!((0.0..=1.0).contains(&wide));
    }

    #[test]
    fn table_is_monotone_like_the_estimator() {
        let eps = Epsilon::new(0.8);
        let table = ReachTable::with_defaults(eps, 80.0, 25.0, 9);
        let mut prev = 1.0;
        for sep in [0.0, 5.0, 10.0, 20.0, 40.0, 79.0] {
            let p = ReachProbability::probability(&table, sep, 15.0);
            assert!(p <= prev + 0.02, "sep {sep}: {p} > {prev}");
            prev = p;
        }
    }
}
