//! Weight and cumulative-weight tables for the HST mechanism.

use crate::Epsilon;
use pombm_hst::level_distance;

/// Precomputed sampling tables for the HST mechanism over a `(c, D)` tree at
/// budget ε (Sec. III-C / III-D of the paper).
///
/// * `wt[i] = exp(ε·(4 − 2^{i+2}))` for `i ≥ 1`, `wt[0] = 1` — the weight of
///   each individual leaf whose LCA with the exact leaf is at level `i`.
/// * `WT = wt_0 + Σ_{i=1}^{D} c^{i-1}(c-1)·wt_i` — the normalizer (Eq. 4).
/// * `tw[k] = Σ_{i≥k} (level-i leaf count)·wt_i` for `k ≥ 1`, `tw[0] = WT` —
///   total weight at-or-above level `k` (Eq. 7), driving the upward-walk
///   continuation probabilities `pu_i = tw_{i+1}/tw_i`.
///
/// The `tw` sums are accumulated from the deepest level downward so that the
/// tiny high-level weights are added before the dominant low-level ones,
/// avoiding catastrophic absorption.
#[derive(Debug, Clone)]
pub struct WeightTable {
    epsilon: Epsilon,
    branching: u32,
    depth: u32,
    wt: Vec<f64>,
    tw: Vec<f64>,
}

impl WeightTable {
    /// Builds the table for a complete `c`-ary HST of depth `D`.
    ///
    /// `epsilon` is interpreted per *tree unit*: the exponent for a leaf at
    /// LCA level `i` is `−ε·(2^{i+2} − 4)`, exactly the paper's constants.
    /// Callers that want a budget per original-metric unit multiply by the
    /// tree's scale first (see [`crate::HstMechanism::new`]).
    pub fn new(epsilon: Epsilon, branching: u32, depth: u32) -> Self {
        assert!(branching >= 2, "complete HST needs branching >= 2");
        assert!(depth >= 1, "HST needs at least one level");
        let eps = epsilon.value();
        let c = branching as f64;

        let mut wt = Vec::with_capacity(depth as usize + 1);
        wt.push(1.0); // wt_0
        for i in 1..=depth {
            wt.push((-eps * level_distance(i) as f64).exp());
        }

        // leaf_count[i] = number of leaves in L_i(x): 1, then (c-1)c^{i-1}.
        let leaf_count = |i: u32| -> f64 {
            if i == 0 {
                1.0
            } else {
                (c - 1.0) * c.powi(i as i32 - 1)
            }
        };

        // tw[k] for k in 0..=depth+1; tw[depth+1] = 0 ends the walk at the
        // root. Accumulate from the top (smallest terms first).
        let mut tw = vec![0.0; depth as usize + 2];
        for k in (1..=depth).rev() {
            tw[k as usize] = tw[k as usize + 1] + leaf_count(k) * wt[k as usize];
        }
        tw[0] = tw[1] + wt[0]; // WT

        WeightTable {
            epsilon,
            branching,
            depth,
            wt,
            tw,
        }
    }

    /// The privacy budget per tree unit.
    #[inline]
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// Branching factor `c`.
    #[inline]
    pub fn branching(&self) -> u32 {
        self.branching
    }

    /// Tree depth `D`.
    #[inline]
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// `wt_i`: weight of one leaf at LCA level `i` (Eq. 3 numerator).
    #[inline]
    pub fn wt(&self, level: u32) -> f64 {
        self.wt[level as usize]
    }

    /// `WT`: the normalizer (Eq. 4).
    #[inline]
    pub fn total(&self) -> f64 {
        self.tw[0]
    }

    /// `tw_k`: total weight of leaves whose LCA level is `≥ k` (Eq. 7).
    #[inline]
    pub fn tw(&self, level: u32) -> f64 {
        self.tw[level as usize]
    }

    /// Probability that the obfuscated leaf equals one *specific* leaf at
    /// LCA level `level` (Eq. 3).
    #[inline]
    pub fn leaf_probability(&self, level: u32) -> f64 {
        self.wt(level) / self.total()
    }

    /// Probability that the obfuscated leaf's LCA with the exact leaf is at
    /// `level` (i.e. summed over all leaves of that level class).
    pub fn level_probability(&self, level: u32) -> f64 {
        let count = if level == 0 {
            1.0
        } else {
            (self.branching as f64 - 1.0) * (self.branching as f64).powi(level as i32 - 1)
        };
        count * self.leaf_probability(level)
    }

    /// Upward-continuation probability `pu_i = tw_{i+1} / tw_i` at level `i`
    /// of the random walk (Sec. III-D). Returns 0 when `tw_i` has fully
    /// underflowed (an unreachable state, kept safe anyway).
    #[inline]
    pub fn pu(&self, level: u32) -> f64 {
        let denom = self.tw[level as usize];
        if denom <= 0.0 {
            0.0
        } else {
            self.tw[level as usize + 1] / denom
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table I of the paper: c = 2, D = 4, ε = 0.1, from leaf o1.
    #[test]
    fn table1_weights_and_probabilities() {
        let t = WeightTable::new(Epsilon::new(0.1), 2, 4);
        // Weights (paper reports 3 decimals).
        assert!((t.wt(0) - 1.0).abs() < 1e-12);
        assert!((t.wt(1) - 0.670).abs() < 5e-4);
        assert!((t.wt(2) - 0.301).abs() < 5e-4);
        assert!((t.wt(3) - 0.061).abs() < 5e-4);
        assert!((t.wt(4) - 0.002).abs() < 5e-4);
        // Per-leaf probabilities.
        assert!((t.leaf_probability(0) - 0.394).abs() < 1e-3);
        assert!((t.leaf_probability(1) - 0.264).abs() < 1e-3);
        assert!((t.leaf_probability(2) - 0.119).abs() < 1e-3);
        assert!((t.leaf_probability(3) - 0.024).abs() < 1e-3);
        assert!((t.leaf_probability(4) - 0.001).abs() < 1e-3);
    }

    #[test]
    fn example3_walk_probabilities() {
        // Example 3: pu_0 = 0.606, pu_1 = 0.564 for the Table I setting.
        let t = WeightTable::new(Epsilon::new(0.1), 2, 4);
        assert!((t.pu(0) - 0.606).abs() < 1e-3);
        assert!((t.pu(1) - 0.564).abs() < 1e-3);
        // The walk always stops at the root.
        assert_eq!(t.pu(4), 0.0);
    }

    #[test]
    fn level_probabilities_sum_to_one() {
        for (c, d, eps) in [(2u32, 4u32, 0.1), (3, 6, 0.5), (5, 3, 1.0), (2, 12, 0.2)] {
            let t = WeightTable::new(Epsilon::new(eps), c, d);
            let sum: f64 = (0..=d).map(|l| t.level_probability(l)).sum();
            assert!((sum - 1.0).abs() < 1e-9, "c={c} D={d} ε={eps}: sum {sum}");
        }
    }

    #[test]
    fn weights_decay_with_level() {
        let t = WeightTable::new(Epsilon::new(0.3), 3, 8);
        for i in 0..8 {
            assert!(t.wt(i) > t.wt(i + 1), "wt must strictly decay");
        }
    }

    #[test]
    fn tw_is_decreasing_and_anchored() {
        let t = WeightTable::new(Epsilon::new(0.4), 2, 6);
        for k in 0..=6 {
            assert!(t.tw(k) >= t.tw(k + 1));
        }
        assert!((t.tw(0) - t.total()).abs() < 1e-15);
        assert_eq!(t.tw(7), 0.0);
    }

    #[test]
    fn pu_matches_level_probability_decomposition() {
        // Stopping at level i has probability (∏_{j<i} pu_j)(1 - pu_i) which
        // must equal level_probability(i); this is Theorem 2 restated on the
        // tables.
        let t = WeightTable::new(Epsilon::new(0.25), 3, 5);
        let mut ascend = 1.0;
        for i in 0..=5 {
            let stop = ascend * (1.0 - t.pu(i));
            assert!(
                (stop - t.level_probability(i)).abs() < 1e-12,
                "level {i}: walk {stop} vs direct {}",
                t.level_probability(i)
            );
            ascend *= t.pu(i);
        }
        assert!(ascend < 1e-12, "walk must terminate by the root");
    }

    #[test]
    fn huge_epsilon_underflows_gracefully() {
        // ε so large that every non-zero level underflows: the mechanism
        // degenerates to the identity, never NaN.
        let t = WeightTable::new(Epsilon::new(1e6), 2, 10);
        assert!((t.leaf_probability(0) - 1.0).abs() < 1e-12);
        for l in 1..=10 {
            assert_eq!(t.wt(l), 0.0);
            assert!(t.pu(l).is_finite());
        }
        assert_eq!(t.pu(0), 0.0, "never leaves the exact leaf");
    }

    #[test]
    fn tiny_epsilon_is_nearly_uniform() {
        // ε → 0 makes every leaf equally likely: leaf probabilities at all
        // levels converge to 1/c^D.
        let t = WeightTable::new(Epsilon::new(1e-12), 2, 6);
        let uniform = 1.0 / 64.0;
        for l in 0..=6 {
            assert!((t.leaf_probability(l) - uniform).abs() < 1e-6);
        }
    }
}
