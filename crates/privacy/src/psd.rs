//! Private Spatial Decomposition (PSD) — the aggregate-DP alternative.
//!
//! The paper's related-work section contrasts its per-location Geo-I
//! mechanisms with the *aggregate* approach of To et al. (PVLDB 2014): the
//! worker set is summarized as a spatial decomposition whose per-cell
//! **counts** are protected with Laplace noise (classic ε-differential
//! privacy on counts, not on individual coordinates), and tasks are geocast
//! to a region rather than matched to an individual. The paper argues such
//! schemes "are unfit for queries on individual locations"; implementing
//! PSD makes that contrast executable.
//!
//! This module provides a two-level adaptive grid (the AG structure of To et
//! al.): a coarse level-1 grid whose cells are subdivided proportionally to
//! their noisy counts, with the ε budget split between the levels. The
//! [`PsdIndex::geocast`] query returns the nearest region whose noisy count
//! is positive — the building block of PSD task assignment.

use crate::Epsilon;
use pombm_geom::{Point, Rect};
use rand::Rng;

/// One leaf cell of the decomposition with its noise-protected count.
#[derive(Debug, Clone)]
pub struct PsdCell {
    /// The cell's region.
    pub rect: Rect,
    /// Laplace-noised worker count (can be negative; consumers typically
    /// clamp at zero).
    pub noisy_count: f64,
    /// True count — kept for evaluation only, never exposed by queries.
    true_count: usize,
}

impl PsdCell {
    /// The true count, for *evaluation harnesses only* (a real server never
    /// sees it).
    pub fn true_count_for_evaluation(&self) -> usize {
        self.true_count
    }
}

/// A two-level adaptive grid with ε-differentially-private counts.
#[derive(Debug, Clone)]
pub struct PsdIndex {
    cells: Vec<PsdCell>,
    epsilon: Epsilon,
}

impl PsdIndex {
    /// Fraction of the budget spent on the first level (To et al. use an
    /// even split; we follow).
    const LEVEL1_BUDGET: f64 = 0.5;

    /// Builds the index over worker locations.
    ///
    /// * `level1` — first-level grid side (m₁ × m₁ cells).
    /// * The second level subdivides each cell into `m₂ × m₂` with
    ///   `m₂ = ceil(sqrt(noisy_count·ε₂ / c))` for the constant `c = 10`
    ///   recommended by To et al., capped to `[1, 8]`.
    pub fn build<R: Rng + ?Sized>(
        region: Rect,
        workers: &[Point],
        epsilon: Epsilon,
        level1: usize,
        rng: &mut R,
    ) -> Self {
        assert!(level1 > 0, "need at least one level-1 cell");
        let eps1 = epsilon.value() * Self::LEVEL1_BUDGET;
        let eps2 = epsilon.value() - eps1;

        // Level 1: uniform grid with noisy counts at budget ε₁.
        let mut cells = Vec::new();
        let (w, h) = (
            region.width() / level1 as f64,
            region.height() / level1 as f64,
        );
        for row in 0..level1 {
            for col in 0..level1 {
                let rect = Rect::new(
                    region.min_x + col as f64 * w,
                    region.min_y + row as f64 * h,
                    region.min_x + (col + 1) as f64 * w,
                    region.min_y + (row + 1) as f64 * h,
                );
                let members: Vec<&Point> = workers
                    .iter()
                    .filter(|p| cell_contains(&rect, region, p))
                    .collect();
                let noisy = members.len() as f64 + laplace_noise(1.0 / eps1, rng);

                // Level 2: subdivide adaptively by the noisy level-1 count.
                let m2 = ((noisy.max(0.0) * eps2 / 10.0).sqrt().ceil() as usize).clamp(1, 8);
                let (w2, h2) = (rect.width() / m2 as f64, rect.height() / m2 as f64);
                for r2 in 0..m2 {
                    for c2 in 0..m2 {
                        let sub = Rect::new(
                            rect.min_x + c2 as f64 * w2,
                            rect.min_y + r2 as f64 * h2,
                            rect.min_x + (c2 + 1) as f64 * w2,
                            rect.min_y + (r2 + 1) as f64 * h2,
                        );
                        let true_count = members
                            .iter()
                            .filter(|p| cell_contains(&sub, rect, p))
                            .count();
                        let noisy_count = true_count as f64 + laplace_noise(1.0 / eps2, rng);
                        cells.push(PsdCell {
                            rect: sub,
                            noisy_count,
                            true_count,
                        });
                    }
                }
            }
        }
        PsdIndex { cells, epsilon }
    }

    /// The protected cells.
    pub fn cells(&self) -> &[PsdCell] {
        &self.cells
    }

    /// The total budget the index consumed (sequential composition over the
    /// two levels; each worker is counted once per level).
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// Total noisy population (clamped per cell at zero).
    pub fn noisy_total(&self) -> f64 {
        self.cells.iter().map(|c| c.noisy_count.max(0.0)).sum()
    }

    /// Geocast: the cell nearest to `task` (by center distance) whose noisy
    /// count is at least `min_count`. Returns `None` if no cell qualifies.
    pub fn geocast(&self, task: &Point, min_count: f64) -> Option<&PsdCell> {
        self.cells
            .iter()
            .filter(|c| c.noisy_count >= min_count)
            .min_by(|a, b| {
                a.rect
                    .center()
                    .dist_sq(task)
                    .partial_cmp(&b.rect.center().dist_sq(task))
                    .expect("finite distances")
            })
    }
}

/// Half-open cell membership: a point on a shared edge belongs to the cell
/// on its upper side, except at the outer region boundary.
fn cell_contains(cell: &Rect, outer: Rect, p: &Point) -> bool {
    let in_x = p.x >= cell.min_x && (p.x < cell.max_x || cell.max_x >= outer.max_x);
    let in_y = p.y >= cell.min_y && (p.y < cell.max_y || cell.max_y >= outer.max_y);
    in_x && in_y
}

/// One-dimensional Laplace noise with scale `b` (sensitivity/ε).
pub fn laplace_noise<R: Rng + ?Sized>(b: f64, rng: &mut R) -> f64 {
    let u: f64 = rng.gen::<f64>() - 0.5;
    -b * u.signum() * (1.0 - 2.0 * u.abs()).max(f64::MIN_POSITIVE).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pombm_geom::seeded_rng;

    fn uniform_workers(n: usize, side: f64, seed: u64) -> Vec<Point> {
        let mut rng = seeded_rng(seed, 0);
        (0..n)
            .map(|_| Point::new(rng.gen::<f64>() * side, rng.gen::<f64>() * side))
            .collect()
    }

    #[test]
    fn cells_partition_the_population() {
        let region = Rect::square(100.0);
        let workers = uniform_workers(500, 100.0, 1);
        let mut rng = seeded_rng(2, 0);
        let idx = PsdIndex::build(region, &workers, Epsilon::new(1.0), 4, &mut rng);
        let total: usize = idx
            .cells()
            .iter()
            .map(|c| c.true_count_for_evaluation())
            .sum();
        assert_eq!(total, 500, "every worker in exactly one leaf cell");
    }

    #[test]
    fn noisy_total_tracks_true_total() {
        let region = Rect::square(100.0);
        let workers = uniform_workers(2000, 100.0, 3);
        let mut rng = seeded_rng(4, 0);
        let idx = PsdIndex::build(region, &workers, Epsilon::new(2.0), 4, &mut rng);
        let noisy = idx.noisy_total();
        // Noise scale per cell is 1/ε₂ = 1; with ≤ 4·4·64 cells the total
        // deviation stays small relative to 2000.
        assert!((noisy - 2000.0).abs() < 300.0, "noisy total {noisy}");
    }

    #[test]
    fn geocast_prefers_nearby_populated_cells() {
        let region = Rect::square(100.0);
        // All workers in the lower-left corner.
        let workers: Vec<Point> = uniform_workers(300, 20.0, 5);
        let mut rng = seeded_rng(6, 0);
        let idx = PsdIndex::build(region, &workers, Epsilon::new(2.0), 4, &mut rng);
        let cell = idx
            .geocast(&Point::new(5.0, 5.0), 3.0)
            .expect("populated corner");
        // The chosen cell's center is in the populated corner.
        let center = cell.rect.center();
        assert!(
            center.x < 40.0 && center.y < 40.0,
            "geocast went to {center} instead of the populated corner"
        );
        assert!(cell.true_count_for_evaluation() > 0 || cell.noisy_count >= 3.0);
    }

    #[test]
    fn geocast_none_when_threshold_unreachable() {
        let region = Rect::square(100.0);
        let mut rng = seeded_rng(7, 0);
        let idx = PsdIndex::build(region, &[], Epsilon::new(1.0), 2, &mut rng);
        assert!(idx.geocast(&Point::new(50.0, 50.0), 1e9).is_none());
    }

    #[test]
    fn denser_cells_subdivide_more() {
        let region = Rect::square(100.0);
        // Dense corner vs empty elsewhere: the dense level-1 cell should
        // produce more leaf cells than the empty ones.
        let workers = uniform_workers(3000, 25.0, 8); // all in one L1 cell of a 4x4 grid
        let mut rng = seeded_rng(9, 0);
        let idx = PsdIndex::build(region, &workers, Epsilon::new(2.0), 4, &mut rng);
        let dense_leaves = idx
            .cells()
            .iter()
            .filter(|c| c.rect.min_x < 25.0 && c.rect.min_y < 25.0)
            .count();
        let sparse_leaves = idx
            .cells()
            .iter()
            .filter(|c| c.rect.min_x >= 75.0 && c.rect.min_y >= 75.0)
            .count();
        assert!(
            dense_leaves > sparse_leaves,
            "dense {dense_leaves} vs sparse {sparse_leaves}"
        );
    }

    #[test]
    fn laplace_noise_is_centered_with_right_scale() {
        let mut rng = seeded_rng(10, 0);
        let b = 2.0;
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| laplace_noise(b, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let mad = samples.iter().map(|x| x.abs()).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        // E|X| = b for Laplace(b).
        assert!((mad - b).abs() < 0.05, "mean abs deviation {mad}");
    }

    #[test]
    fn counting_is_deterministic_given_seed() {
        let region = Rect::square(50.0);
        let workers = uniform_workers(100, 50.0, 11);
        let a = PsdIndex::build(
            region,
            &workers,
            Epsilon::new(1.0),
            3,
            &mut seeded_rng(12, 0),
        );
        let b = PsdIndex::build(
            region,
            &workers,
            Epsilon::new(1.0),
            3,
            &mut seeded_rng(12, 0),
        );
        assert_eq!(a.cells().len(), b.cells().len());
        for (x, y) in a.cells().iter().zip(b.cells()) {
            assert_eq!(x.noisy_count, y.noisy_count);
        }
    }
}
