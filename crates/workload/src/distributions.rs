//! Alternative spatial distributions for robustness sweeps.
//!
//! The paper's synthetic evaluation uses a single Normal distribution
//! (Table II). Mechanism behaviour depends heavily on spatial *shape* —
//! tree-based obfuscation interacts differently with uniform sprawl, skewed
//! corridors and multi-modal demand — so this module adds the standard
//! shapes used across the spatial-crowdsourcing literature (e.g. Tong et
//! al., PVLDB'16 compare uniform/Normal/skewed workloads). They power
//! robustness tests and the `distortion` extension experiment.

use crate::instance::Instance;
use pombm_geom::{Point, Rect};
use rand::Rng;
use rand_distr::{Distribution, Exp, Normal};
use serde::{Deserialize, Serialize};

/// A spatial distribution over a rectangular region.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Spatial {
    /// Uniform over the region.
    Uniform,
    /// Axis-independent Normal with the given mean and deviation,
    /// rejection-sampled into the region.
    Normal {
        /// Per-axis mean.
        mu: f64,
        /// Per-axis standard deviation.
        sigma: f64,
    },
    /// Exponentially skewed toward the region's minimum corner: each axis is
    /// `min + Exp(rate)`, rejection-sampled into the region. Models demand
    /// decaying away from a corner hub (port, airport).
    Skewed {
        /// Decay rate per unit distance; larger = more concentrated.
        rate: f64,
    },
    /// A balanced mixture of Normal components (multi-modal demand).
    Mixture(Vec<MixtureComponent>),
}

/// One component of [`Spatial::Mixture`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MixtureComponent {
    /// Component center.
    pub center: (f64, f64),
    /// Isotropic standard deviation.
    pub sigma: f64,
    /// Relative weight (unnormalized).
    pub weight: f64,
}

impl Spatial {
    /// Samples one point inside `region`.
    pub fn sample<R: Rng + ?Sized>(&self, region: &Rect, rng: &mut R) -> Point {
        match self {
            Spatial::Uniform => Point::new(
                region.min_x + rng.gen::<f64>() * region.width(),
                region.min_y + rng.gen::<f64>() * region.height(),
            ),
            Spatial::Normal { mu, sigma } => {
                let dist = Normal::new(*mu, *sigma).expect("valid Normal");
                loop {
                    let p = Point::new(dist.sample(rng), dist.sample(rng));
                    if region.contains(&p) {
                        return p;
                    }
                }
            }
            Spatial::Skewed { rate } => {
                let exp = Exp::new(*rate).expect("positive rate");
                loop {
                    let p = Point::new(
                        region.min_x + exp.sample(rng),
                        region.min_y + exp.sample(rng),
                    );
                    if region.contains(&p) {
                        return p;
                    }
                }
            }
            Spatial::Mixture(components) => {
                assert!(!components.is_empty(), "mixture needs components");
                let total: f64 = components.iter().map(|c| c.weight).sum();
                let mut u = rng.gen::<f64>() * total;
                let mut chosen = &components[components.len() - 1];
                for c in components {
                    if u < c.weight {
                        chosen = c;
                        break;
                    }
                    u -= c.weight;
                }
                let nx = Normal::new(chosen.center.0, chosen.sigma).expect("valid Normal");
                let ny = Normal::new(chosen.center.1, chosen.sigma).expect("valid Normal");
                loop {
                    let p = Point::new(nx.sample(rng), ny.sample(rng));
                    if region.contains(&p) {
                        return p;
                    }
                }
            }
        }
    }

    /// Samples `count` points.
    pub fn sample_many<R: Rng + ?Sized>(
        &self,
        region: &Rect,
        count: usize,
        rng: &mut R,
    ) -> Vec<Point> {
        (0..count).map(|_| self.sample(region, rng)).collect()
    }
}

/// Builds an instance with independent task and worker distributions.
pub fn generate<R: Rng + ?Sized>(
    region: Rect,
    tasks: (&Spatial, usize),
    workers: (&Spatial, usize),
    rng: &mut R,
) -> Instance {
    Instance::new(
        region,
        tasks.0.sample_many(&region, tasks.1, rng),
        workers.0.sample_many(&region, workers.1, rng),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pombm_geom::seeded_rng;

    const REGION: Rect = Rect {
        min_x: 0.0,
        min_y: 0.0,
        max_x: 100.0,
        max_y: 100.0,
    };

    #[test]
    fn uniform_covers_the_region() {
        let mut rng = seeded_rng(1, 0);
        let pts = Spatial::Uniform.sample_many(&REGION, 4000, &mut rng);
        let mean_x: f64 = pts.iter().map(|p| p.x).sum::<f64>() / pts.len() as f64;
        assert!((mean_x - 50.0).abs() < 2.0);
        // All four quadrants hit.
        for (qx, qy) in [(false, false), (false, true), (true, false), (true, true)] {
            assert!(
                pts.iter().any(|p| (p.x > 50.0) == qx && (p.y > 50.0) == qy),
                "quadrant {qx}/{qy} empty"
            );
        }
    }

    #[test]
    fn skewed_concentrates_at_the_corner() {
        let mut rng = seeded_rng(2, 0);
        let pts = Spatial::Skewed { rate: 0.1 }.sample_many(&REGION, 4000, &mut rng);
        let mean_x: f64 = pts.iter().map(|p| p.x).sum::<f64>() / pts.len() as f64;
        // Exp(0.1) has mean 10 (before truncation): far below the center.
        assert!(mean_x < 20.0, "mean_x {mean_x}");
        assert!(pts.iter().all(|p| REGION.contains(p)));
    }

    #[test]
    fn mixture_hits_all_modes() {
        let spatial = Spatial::Mixture(vec![
            MixtureComponent {
                center: (20.0, 20.0),
                sigma: 3.0,
                weight: 1.0,
            },
            MixtureComponent {
                center: (80.0, 80.0),
                sigma: 3.0,
                weight: 1.0,
            },
        ]);
        let mut rng = seeded_rng(3, 0);
        let pts = spatial.sample_many(&REGION, 2000, &mut rng);
        let near_a = pts
            .iter()
            .filter(|p| p.dist(&Point::new(20.0, 20.0)) < 15.0)
            .count();
        let near_b = pts
            .iter()
            .filter(|p| p.dist(&Point::new(80.0, 80.0)) < 15.0)
            .count();
        assert!(near_a > 700 && near_b > 700, "modes {near_a}/{near_b}");
        assert!(near_a + near_b > 1900, "almost everything near a mode");
    }

    #[test]
    fn mixture_weights_bias_mode_choice() {
        let spatial = Spatial::Mixture(vec![
            MixtureComponent {
                center: (20.0, 20.0),
                sigma: 2.0,
                weight: 9.0,
            },
            MixtureComponent {
                center: (80.0, 80.0),
                sigma: 2.0,
                weight: 1.0,
            },
        ]);
        let mut rng = seeded_rng(4, 0);
        let pts = spatial.sample_many(&REGION, 3000, &mut rng);
        let near_a = pts.iter().filter(|p| p.x < 50.0).count();
        let frac = near_a as f64 / pts.len() as f64;
        assert!((frac - 0.9).abs() < 0.03, "heavy mode fraction {frac}");
    }

    #[test]
    fn generate_pairs_distributions() {
        let mut rng = seeded_rng(5, 0);
        let inst = generate(
            REGION,
            (&Spatial::Uniform, 100),
            (&Spatial::Skewed { rate: 0.2 }, 200),
            &mut rng,
        );
        assert_eq!(inst.num_tasks(), 100);
        assert_eq!(inst.num_workers(), 200);
        inst.validate().unwrap();
    }

    #[test]
    fn normal_matches_table2_generator() {
        // Spatial::Normal must agree statistically with synthetic::generate.
        let mut rng = seeded_rng(6, 0);
        let pts = Spatial::Normal {
            mu: 100.0,
            sigma: 20.0,
        }
        .sample_many(&Rect::square(200.0), 5000, &mut rng);
        let mean: f64 = pts.iter().map(|p| p.x).sum::<f64>() / pts.len() as f64;
        assert!((mean - 100.0).abs() < 1.5);
    }
}
