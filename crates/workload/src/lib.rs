#![warn(missing_docs)]

//! Workload generation for the POMBM experiments.
//!
//! Two generators cover everything the paper's evaluation consumes:
//!
//! * [`synthetic`] — the Table II synthetic workloads: tasks and workers
//!   drawn from Normal distributions in a 200 × 200 space, with sweeps over
//!   `|T|`, `|W|`, µ, σ, ε and joint scalability sizes.
//! * [`chengdu`] — a stand-in for the Didi GAIA Chengdu trip data (Table
//!   III), which is not redistributable: a seeded hotspot-mixture city model
//!   over a 10 km × 10 km region producing 30 "days" of 4,245–5,034 task
//!   origins each. See DESIGN.md §4 for why this preserves the evaluation's
//!   shape.
//!
//! Both produce [`Instance`]s: plain task/worker coordinate lists (plus
//! optional reachable radii for the case study) with a deterministic arrival
//! order.

pub mod chengdu;
pub mod distributions;
pub mod instance;
pub mod params;
pub mod shifts;
pub mod synthetic;

pub use instance::{Instance, InstanceError};
pub use params::{RealParams, SyntheticParams};
