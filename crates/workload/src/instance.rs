//! Problem instances: the input to one experiment run.

use pombm_geom::{Point, Rect};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Why an [`Instance`] failed [`Instance::validate`].
///
/// Typed so callers can match on the defect instead of parsing a message;
/// the [`std::fmt::Display`] texts are the exact strings the stringly
/// predecessor produced, so user-facing errors are unchanged.
#[derive(Debug, Clone, PartialEq)]
pub enum InstanceError {
    /// A task coordinate is non-finite or outside the region.
    TaskOutsideRegion {
        /// Arrival index of the offending task.
        index: usize,
        /// Its recorded location.
        location: Point,
    },
    /// A worker coordinate is non-finite or outside the region.
    WorkerOutsideRegion {
        /// Index of the offending worker.
        index: usize,
        /// Its recorded location.
        location: Point,
    },
    /// `radii` is present but its length differs from the worker count.
    RadiusCountMismatch {
        /// Number of radii recorded.
        radii: usize,
        /// Number of workers recorded.
        workers: usize,
    },
    /// A reachable radius is non-finite or negative.
    InvalidRadius {
        /// Index of the offending radius.
        index: usize,
        /// Its recorded value.
        radius: f64,
    },
}

impl std::fmt::Display for InstanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstanceError::TaskOutsideRegion { index, location } => {
                write!(f, "task {index} at {location} outside region")
            }
            InstanceError::WorkerOutsideRegion { index, location } => {
                write!(f, "worker {index} at {location} outside region")
            }
            InstanceError::RadiusCountMismatch { .. } => f.write_str("radius count mismatch"),
            InstanceError::InvalidRadius { radius, .. } => {
                write!(f, "invalid radius {radius}")
            }
        }
    }
}

impl std::error::Error for InstanceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        // Validation failures are leaf defects of the instance data itself;
        // there is no underlying cause to chain.
        None
    }
}

/// One POMBM problem instance: a region, a set of workers known upfront, and
/// a sequence of tasks in arrival order.
///
/// The competitive-ratio definition (Definition 8) uses the *random order
/// model*; [`Instance::shuffle_tasks`] re-randomizes the arrival order for
/// repeated trials.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Instance {
    /// The workspace region (used for clamping obfuscated points and sizing
    /// indexes).
    pub region: Rect,
    /// Task locations in arrival order.
    pub tasks: Vec<Point>,
    /// Worker locations (registered before any task arrives).
    pub workers: Vec<Point>,
    /// Reachable radii, one per worker; `None` outside the case study.
    pub radii: Option<Vec<f64>>,
}

impl Instance {
    /// Creates an instance without radii.
    pub fn new(region: Rect, tasks: Vec<Point>, workers: Vec<Point>) -> Self {
        Instance {
            region,
            tasks,
            workers,
            radii: None,
        }
    }

    /// Attaches uniformly drawn reachable radii in `[lo, hi]` (the case
    /// study draws U[10, 20] for synthetic data and U[500, 1000] m for the
    /// real data).
    pub fn with_uniform_radii<R: Rng + ?Sized>(mut self, lo: f64, hi: f64, rng: &mut R) -> Self {
        assert!(lo <= hi && lo >= 0.0, "invalid radius range [{lo}, {hi}]");
        self.radii = Some(
            (0..self.workers.len())
                .map(|_| rng.gen_range(lo..=hi))
                .collect(),
        );
        self
    }

    /// Number of tasks `m = |T|`.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Number of workers `n = |W|`.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// The matching size bound `k = min(n, m)`.
    pub fn k(&self) -> usize {
        self.tasks.len().min(self.workers.len())
    }

    /// Shuffles the task arrival order in place (random order model).
    pub fn shuffle_tasks<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.tasks.shuffle(rng);
    }

    /// Returns a copy with all coordinates (region, locations, radii)
    /// multiplied by `factor`.
    ///
    /// Used to normalize the Chengdu-like trace (meters over 10 km) into the
    /// same unit scale as the synthetic 200 × 200 space, so a given ε means
    /// the same privacy level on both datasets (factor 1/50: 50 m per unit).
    pub fn scaled(&self, factor: f64) -> Instance {
        assert!(factor.is_finite() && factor > 0.0, "scale must be positive");
        let scale_point = |p: &Point| Point::new(p.x * factor, p.y * factor);
        Instance {
            region: Rect::new(
                self.region.min_x * factor,
                self.region.min_y * factor,
                self.region.max_x * factor,
                self.region.max_y * factor,
            ),
            tasks: self.tasks.iter().map(scale_point).collect(),
            workers: self.workers.iter().map(scale_point).collect(),
            radii: self
                .radii
                .as_ref()
                .map(|r| r.iter().map(|x| x * factor).collect()),
        }
    }

    /// Validates that every coordinate is finite and inside the region, and
    /// radii (if any) are positive and one-per-worker.
    pub fn validate(&self) -> Result<(), InstanceError> {
        for (i, p) in self.tasks.iter().enumerate() {
            if !p.is_finite() || !self.region.contains(p) {
                return Err(InstanceError::TaskOutsideRegion {
                    index: i,
                    location: *p,
                });
            }
        }
        for (i, p) in self.workers.iter().enumerate() {
            if !p.is_finite() || !self.region.contains(p) {
                return Err(InstanceError::WorkerOutsideRegion {
                    index: i,
                    location: *p,
                });
            }
        }
        if let Some(r) = &self.radii {
            if r.len() != self.workers.len() {
                return Err(InstanceError::RadiusCountMismatch {
                    radii: r.len(),
                    workers: self.workers.len(),
                });
            }
            if let Some((i, bad)) = r
                .iter()
                .enumerate()
                .find(|(_, x)| !x.is_finite() || **x < 0.0)
            {
                return Err(InstanceError::InvalidRadius {
                    index: i,
                    radius: *bad,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pombm_geom::seeded_rng;

    fn small() -> Instance {
        Instance::new(
            Rect::square(10.0),
            vec![Point::new(1.0, 1.0), Point::new(2.0, 2.0)],
            vec![Point::new(3.0, 3.0)],
        )
    }

    #[test]
    fn counts_and_k() {
        let i = small();
        assert_eq!(i.num_tasks(), 2);
        assert_eq!(i.num_workers(), 1);
        assert_eq!(i.k(), 1);
        i.validate().unwrap();
    }

    #[test]
    fn radii_are_in_range() {
        let mut rng = seeded_rng(1, 0);
        let i = small().with_uniform_radii(10.0, 20.0, &mut rng);
        for r in i.radii.as_ref().unwrap() {
            assert!((10.0..=20.0).contains(r));
        }
        i.validate().unwrap();
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let mut rng = seeded_rng(2, 0);
        let mut i = Instance::new(
            Rect::square(100.0),
            (0..50).map(|k| Point::new(k as f64, 0.0)).collect(),
            vec![],
        );
        let mut before: Vec<_> = i.tasks.iter().map(|p| p.x as i64).collect();
        i.shuffle_tasks(&mut rng);
        let mut after: Vec<_> = i.tasks.iter().map(|p| p.x as i64).collect();
        assert_ne!(before, after, "shuffle should change the order");
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
    }

    #[test]
    fn validate_catches_out_of_region() {
        let i = Instance::new(Rect::square(1.0), vec![Point::new(5.0, 5.0)], vec![]);
        assert!(i.validate().is_err());
    }

    #[test]
    fn validate_errors_are_typed_with_legacy_messages() {
        let task = Instance::new(Rect::square(1.0), vec![Point::new(5.0, 5.0)], vec![]);
        let err = task.validate().unwrap_err();
        assert_eq!(
            err,
            InstanceError::TaskOutsideRegion {
                index: 0,
                location: Point::new(5.0, 5.0),
            }
        );
        assert!(err.to_string().contains("task 0 at"));
        assert!(err.to_string().ends_with("outside region"));
        assert!(std::error::Error::source(&err).is_none());

        let worker = Instance::new(Rect::square(1.0), vec![], vec![Point::new(-3.0, 0.5)]);
        assert!(matches!(
            worker.validate().unwrap_err(),
            InstanceError::WorkerOutsideRegion { index: 0, .. }
        ));

        let mut mismatch = small();
        mismatch.radii = Some(vec![1.0, 2.0]);
        let err = mismatch.validate().unwrap_err();
        assert_eq!(
            err,
            InstanceError::RadiusCountMismatch {
                radii: 2,
                workers: 1,
            }
        );
        assert_eq!(err.to_string(), "radius count mismatch");

        let mut bad = small();
        bad.radii = Some(vec![-1.0]);
        let err = bad.validate().unwrap_err();
        assert_eq!(
            err,
            InstanceError::InvalidRadius {
                index: 0,
                radius: -1.0,
            }
        );
        assert_eq!(err.to_string(), "invalid radius -1");
    }

    #[test]
    fn scaled_rescales_everything() {
        let mut rng = seeded_rng(6, 0);
        let i = small().with_uniform_radii(10.0, 20.0, &mut rng);
        let s = i.scaled(0.1);
        assert_eq!(s.region.max_x, 1.0);
        assert_eq!(s.tasks[0], Point::new(0.1, 0.1));
        let r0 = i.radii.as_ref().unwrap()[0];
        assert!((s.radii.as_ref().unwrap()[0] - r0 * 0.1).abs() < 1e-12);
        s.validate().unwrap();
    }

    #[test]
    fn serde_roundtrip() {
        let mut rng = seeded_rng(3, 0);
        let i = small().with_uniform_radii(1.0, 2.0, &mut rng);
        let json = serde_json::to_string(&i).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        assert_eq!(back.tasks.len(), i.tasks.len());
        assert_eq!(back.radii.unwrap().len(), 1);
    }
}
