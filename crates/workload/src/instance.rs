//! Problem instances: the input to one experiment run.

use pombm_geom::{Point, Rect};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One POMBM problem instance: a region, a set of workers known upfront, and
/// a sequence of tasks in arrival order.
///
/// The competitive-ratio definition (Definition 8) uses the *random order
/// model*; [`Instance::shuffle_tasks`] re-randomizes the arrival order for
/// repeated trials.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Instance {
    /// The workspace region (used for clamping obfuscated points and sizing
    /// indexes).
    pub region: Rect,
    /// Task locations in arrival order.
    pub tasks: Vec<Point>,
    /// Worker locations (registered before any task arrives).
    pub workers: Vec<Point>,
    /// Reachable radii, one per worker; `None` outside the case study.
    pub radii: Option<Vec<f64>>,
}

impl Instance {
    /// Creates an instance without radii.
    pub fn new(region: Rect, tasks: Vec<Point>, workers: Vec<Point>) -> Self {
        Instance {
            region,
            tasks,
            workers,
            radii: None,
        }
    }

    /// Attaches uniformly drawn reachable radii in `[lo, hi]` (the case
    /// study draws U[10, 20] for synthetic data and U[500, 1000] m for the
    /// real data).
    pub fn with_uniform_radii<R: Rng + ?Sized>(mut self, lo: f64, hi: f64, rng: &mut R) -> Self {
        assert!(lo <= hi && lo >= 0.0, "invalid radius range [{lo}, {hi}]");
        self.radii = Some(
            (0..self.workers.len())
                .map(|_| rng.gen_range(lo..=hi))
                .collect(),
        );
        self
    }

    /// Number of tasks `m = |T|`.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Number of workers `n = |W|`.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// The matching size bound `k = min(n, m)`.
    pub fn k(&self) -> usize {
        self.tasks.len().min(self.workers.len())
    }

    /// Shuffles the task arrival order in place (random order model).
    pub fn shuffle_tasks<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.tasks.shuffle(rng);
    }

    /// Returns a copy with all coordinates (region, locations, radii)
    /// multiplied by `factor`.
    ///
    /// Used to normalize the Chengdu-like trace (meters over 10 km) into the
    /// same unit scale as the synthetic 200 × 200 space, so a given ε means
    /// the same privacy level on both datasets (factor 1/50: 50 m per unit).
    pub fn scaled(&self, factor: f64) -> Instance {
        assert!(factor.is_finite() && factor > 0.0, "scale must be positive");
        let scale_point = |p: &Point| Point::new(p.x * factor, p.y * factor);
        Instance {
            region: Rect::new(
                self.region.min_x * factor,
                self.region.min_y * factor,
                self.region.max_x * factor,
                self.region.max_y * factor,
            ),
            tasks: self.tasks.iter().map(scale_point).collect(),
            workers: self.workers.iter().map(scale_point).collect(),
            radii: self
                .radii
                .as_ref()
                .map(|r| r.iter().map(|x| x * factor).collect()),
        }
    }

    /// Validates that every coordinate is finite and inside the region, and
    /// radii (if any) are positive and one-per-worker.
    pub fn validate(&self) -> Result<(), String> {
        for (i, p) in self.tasks.iter().enumerate() {
            if !p.is_finite() || !self.region.contains(p) {
                return Err(format!("task {i} at {p} outside region"));
            }
        }
        for (i, p) in self.workers.iter().enumerate() {
            if !p.is_finite() || !self.region.contains(p) {
                return Err(format!("worker {i} at {p} outside region"));
            }
        }
        if let Some(r) = &self.radii {
            if r.len() != self.workers.len() {
                return Err("radius count mismatch".into());
            }
            if let Some(bad) = r.iter().find(|x| !x.is_finite() || **x < 0.0) {
                return Err(format!("invalid radius {bad}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pombm_geom::seeded_rng;

    fn small() -> Instance {
        Instance::new(
            Rect::square(10.0),
            vec![Point::new(1.0, 1.0), Point::new(2.0, 2.0)],
            vec![Point::new(3.0, 3.0)],
        )
    }

    #[test]
    fn counts_and_k() {
        let i = small();
        assert_eq!(i.num_tasks(), 2);
        assert_eq!(i.num_workers(), 1);
        assert_eq!(i.k(), 1);
        i.validate().unwrap();
    }

    #[test]
    fn radii_are_in_range() {
        let mut rng = seeded_rng(1, 0);
        let i = small().with_uniform_radii(10.0, 20.0, &mut rng);
        for r in i.radii.as_ref().unwrap() {
            assert!((10.0..=20.0).contains(r));
        }
        i.validate().unwrap();
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let mut rng = seeded_rng(2, 0);
        let mut i = Instance::new(
            Rect::square(100.0),
            (0..50).map(|k| Point::new(k as f64, 0.0)).collect(),
            vec![],
        );
        let mut before: Vec<_> = i.tasks.iter().map(|p| p.x as i64).collect();
        i.shuffle_tasks(&mut rng);
        let mut after: Vec<_> = i.tasks.iter().map(|p| p.x as i64).collect();
        assert_ne!(before, after, "shuffle should change the order");
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
    }

    #[test]
    fn validate_catches_out_of_region() {
        let i = Instance::new(Rect::square(1.0), vec![Point::new(5.0, 5.0)], vec![]);
        assert!(i.validate().is_err());
    }

    #[test]
    fn scaled_rescales_everything() {
        let mut rng = seeded_rng(6, 0);
        let i = small().with_uniform_radii(10.0, 20.0, &mut rng);
        let s = i.scaled(0.1);
        assert_eq!(s.region.max_x, 1.0);
        assert_eq!(s.tasks[0], Point::new(0.1, 0.1));
        let r0 = i.radii.as_ref().unwrap()[0];
        assert!((s.radii.as_ref().unwrap()[0] - r0 * 0.1).abs() < 1e-12);
        s.validate().unwrap();
    }

    #[test]
    fn serde_roundtrip() {
        let mut rng = seeded_rng(3, 0);
        let i = small().with_uniform_radii(1.0, 2.0, &mut rng);
        let json = serde_json::to_string(&i).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        assert_eq!(back.tasks.len(), i.tasks.len());
        assert_eq!(back.radii.unwrap().len(), 1);
    }
}
