//! Parameter grids of the paper's evaluation (Tables II and III).

use serde::{Deserialize, Serialize};

/// Table II: synthetic-data settings.
///
/// The paper marks its defaults in bold in the PDF; bolding does not survive
/// text extraction, so this reproduction uses the mid-values of each range
/// as defaults (|T| = 3000, |W| = 5000, µ = 100, σ = 20, ε = 0.6) and
/// records that choice in EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticParams {
    /// Number of tasks |T|.
    pub num_tasks: usize,
    /// Number of workers |W|.
    pub num_workers: usize,
    /// Mean µ of the Normal location distribution (both axes).
    pub mu: f64,
    /// Standard deviation σ of the Normal location distribution.
    pub sigma: f64,
    /// Privacy budget ε.
    pub epsilon: f64,
}

impl Default for SyntheticParams {
    fn default() -> Self {
        SyntheticParams {
            num_tasks: 3000,
            num_workers: 5000,
            mu: 100.0,
            sigma: 20.0,
            epsilon: 0.6,
        }
    }
}

impl SyntheticParams {
    /// Side length of the synthetic workspace (200 × 200).
    pub const SPACE_SIDE: f64 = 200.0;

    /// The |T| sweep of Table II.
    pub const TASK_COUNTS: [usize; 5] = [1000, 2000, 3000, 4000, 5000];
    /// The |W| sweep of Table II.
    pub const WORKER_COUNTS: [usize; 5] = [3000, 4000, 5000, 6000, 7000];
    /// The µ sweep of Table II.
    pub const MUS: [f64; 5] = [50.0, 75.0, 100.0, 125.0, 150.0];
    /// The σ sweep of Table II.
    pub const SIGMAS: [f64; 5] = [10.0, 15.0, 20.0, 25.0, 30.0];
    /// The ε sweep of Table II.
    pub const EPSILONS: [f64; 5] = [0.2, 0.4, 0.6, 0.8, 1.0];
    /// The scalability sweep (|T| = |W|) of Table II.
    pub const SCALABILITY: [usize; 5] = [20_000, 40_000, 60_000, 80_000, 100_000];

    /// Case-study reachable-radius range for synthetic data (Sec. IV-C).
    pub const REACH_RADIUS: (f64, f64) = (10.0, 20.0);
}

/// Table III: real-data settings (reproduced against the Chengdu-like
/// synthetic trace; see DESIGN.md §4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RealParams {
    /// Number of workers |W|.
    pub num_workers: usize,
    /// Privacy budget ε.
    pub epsilon: f64,
    /// Index of the simulated day (0..30).
    pub day: usize,
}

impl Default for RealParams {
    fn default() -> Self {
        RealParams {
            num_workers: 8000,
            epsilon: 0.6,
            day: 0,
        }
    }
}

impl RealParams {
    /// Side length of the real-data region (10 km, in meters).
    pub const SPACE_SIDE: f64 = 10_000.0;

    /// Number of simulated days (the paper evaluates Nov 2016's 30 days).
    pub const NUM_DAYS: usize = 30;
    /// Task-count range per peak-hour day (4,245–5,034 in the real data).
    pub const TASKS_PER_DAY: (usize, usize) = (4245, 5034);
    /// The |W| sweep of Table III.
    pub const WORKER_COUNTS: [usize; 5] = [6000, 7000, 8000, 9000, 10000];
    /// The ε sweep of Table III.
    pub const EPSILONS: [f64; 5] = [0.2, 0.4, 0.6, 0.8, 1.0];

    /// Case-study reachable-radius range for real data, in meters.
    pub const REACH_RADIUS: (f64, f64) = (500.0, 1000.0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_mid_values() {
        let p = SyntheticParams::default();
        assert_eq!(p.num_tasks, SyntheticParams::TASK_COUNTS[2]);
        assert_eq!(p.num_workers, SyntheticParams::WORKER_COUNTS[2]);
        assert_eq!(p.mu, SyntheticParams::MUS[2]);
        assert_eq!(p.sigma, SyntheticParams::SIGMAS[2]);
        assert_eq!(p.epsilon, SyntheticParams::EPSILONS[2]);
    }

    #[test]
    fn default_worker_count_covers_tasks() {
        // The paper always has |W| >= |T| in the default setting so every
        // task can be matched.
        let p = SyntheticParams::default();
        assert!(p.num_workers >= p.num_tasks);
        let r = RealParams::default();
        assert!(r.num_workers >= RealParams::TASKS_PER_DAY.1);
    }

    #[test]
    fn sweeps_are_sorted() {
        assert!(SyntheticParams::TASK_COUNTS.windows(2).all(|w| w[0] < w[1]));
        assert!(SyntheticParams::EPSILONS.windows(2).all(|w| w[0] < w[1]));
        assert!(RealParams::WORKER_COUNTS.windows(2).all(|w| w[0] < w[1]));
    }
}
