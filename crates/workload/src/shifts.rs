//! Worker shift schedules for the dynamic-pool extension.
//!
//! The paper's model knows every worker upfront; real fleets run shifts.
//! A [`ShiftPlan`] assigns each worker a presence window `[start, end)`
//! within a simulation horizon, so the dynamic simulator can replay worker
//! arrivals and departures interleaved with task arrivals.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// One worker's presence window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Shift {
    /// Index into the instance's worker array.
    pub worker: usize,
    /// Shift start time (inclusive).
    pub start: f64,
    /// Shift end time (exclusive); always greater than `start`.
    pub end: f64,
}

impl Shift {
    /// True iff the worker is on shift at time `t`.
    #[inline]
    pub fn covers(&self, t: f64) -> bool {
        self.start <= t && t < self.end
    }
}

/// Per-worker shift windows over a `[0, horizon)` simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShiftPlan {
    /// Simulation horizon; all shifts lie inside `[0, horizon)`.
    pub horizon: f64,
    /// One shift per worker, in worker order.
    pub shifts: Vec<Shift>,
}

impl ShiftPlan {
    /// Draws a random plan: each of `num_workers` workers starts uniformly
    /// in the horizon and stays for a uniform duration in
    /// `[min_duration, max_duration]` (clipped to the horizon).
    ///
    /// # Panics
    ///
    /// Panics if `horizon` or the duration range is non-positive or
    /// inverted.
    pub fn uniform<R: Rng + ?Sized>(
        num_workers: usize,
        horizon: f64,
        min_duration: f64,
        max_duration: f64,
        rng: &mut R,
    ) -> Self {
        assert!(horizon > 0.0, "horizon must be positive");
        assert!(
            0.0 < min_duration && min_duration <= max_duration,
            "need 0 < min_duration <= max_duration"
        );
        let shifts = (0..num_workers)
            .map(|worker| {
                let start = rng.gen::<f64>() * horizon;
                let duration = min_duration + rng.gen::<f64>() * (max_duration - min_duration);
                Shift {
                    worker,
                    start,
                    end: (start + duration).min(horizon),
                }
            })
            .collect();
        ShiftPlan { horizon, shifts }
    }

    /// A degenerate plan where every worker is present for the whole
    /// horizon — the paper's static model as a special case.
    pub fn always_on(num_workers: usize, horizon: f64) -> Self {
        assert!(horizon > 0.0, "horizon must be positive");
        ShiftPlan {
            horizon,
            shifts: (0..num_workers)
                .map(|worker| Shift {
                    worker,
                    start: 0.0,
                    end: horizon,
                })
                .collect(),
        }
    }

    /// Number of workers on shift at time `t`.
    pub fn on_shift_at(&self, t: f64) -> usize {
        self.shifts.iter().filter(|s| s.covers(t)).count()
    }

    /// Mean fraction of the horizon each worker is present.
    pub fn mean_coverage(&self) -> f64 {
        if self.shifts.is_empty() {
            return 0.0;
        }
        self.shifts
            .iter()
            .map(|s| (s.end - s.start) / self.horizon)
            .sum::<f64>()
            / self.shifts.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pombm_geom::seeded_rng;

    #[test]
    fn uniform_shifts_stay_in_horizon() {
        let mut rng = seeded_rng(0, 0);
        let plan = ShiftPlan::uniform(200, 100.0, 10.0, 30.0, &mut rng);
        assert_eq!(plan.shifts.len(), 200);
        for s in &plan.shifts {
            assert!(0.0 <= s.start && s.start < 100.0);
            assert!(s.start < s.end && s.end <= 100.0);
        }
    }

    #[test]
    fn always_on_covers_everything() {
        let plan = ShiftPlan::always_on(10, 50.0);
        assert_eq!(plan.on_shift_at(0.0), 10);
        assert_eq!(plan.on_shift_at(49.9), 10);
        assert_eq!(plan.on_shift_at(50.0), 0, "end is exclusive");
        assert!((plan.mean_coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_reflects_durations() {
        let mut rng = seeded_rng(1, 0);
        // 10-unit shifts in a 100-unit horizon: coverage ≈ 0.1 (less from
        // end clipping).
        let plan = ShiftPlan::uniform(500, 100.0, 10.0, 10.0, &mut rng);
        let cov = plan.mean_coverage();
        assert!(cov > 0.05 && cov <= 0.101, "coverage {cov}");
    }

    #[test]
    fn covers_is_half_open() {
        let s = Shift {
            worker: 0,
            start: 5.0,
            end: 8.0,
        };
        assert!(!s.covers(4.999));
        assert!(s.covers(5.0));
        assert!(s.covers(7.999));
        assert!(!s.covers(8.0));
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn zero_horizon_rejected() {
        let mut rng = seeded_rng(2, 0);
        let _ = ShiftPlan::uniform(5, 0.0, 1.0, 2.0, &mut rng);
    }

    #[test]
    #[should_panic(expected = "min_duration")]
    fn inverted_duration_range_rejected() {
        let mut rng = seeded_rng(3, 0);
        let _ = ShiftPlan::uniform(5, 10.0, 5.0, 2.0, &mut rng);
    }
}
