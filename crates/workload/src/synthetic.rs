//! Synthetic Normal workloads (Table II).

use crate::instance::Instance;
use crate::params::SyntheticParams;
use pombm_geom::{Point, Rect};
use rand::Rng;
use rand_distr::{Distribution, Normal};

/// Generates a synthetic instance per Table II: tasks and workers drawn
/// i.i.d. from `N(µ, σ²)` per axis inside the 200 × 200 space, rejection-
/// sampled into the region (resampling rather than clamping avoids the
/// boundary atom a clamp would create).
pub fn generate<R: Rng + ?Sized>(params: &SyntheticParams, rng: &mut R) -> Instance {
    let region = Rect::square(SyntheticParams::SPACE_SIDE);
    let normal = Normal::new(params.mu, params.sigma).expect("valid Normal parameters");
    let tasks = sample_points(params.num_tasks, &normal, &region, rng);
    let workers = sample_points(params.num_workers, &normal, &region, rng);
    Instance::new(region, tasks, workers)
}

/// Generates the case-study variant: the same instance plus uniform
/// reachable radii from [`SyntheticParams::REACH_RADIUS`].
pub fn generate_with_radii<R: Rng + ?Sized>(params: &SyntheticParams, rng: &mut R) -> Instance {
    let (lo, hi) = SyntheticParams::REACH_RADIUS;
    generate(params, rng).with_uniform_radii(lo, hi, rng)
}

fn sample_points<R: Rng + ?Sized>(
    count: usize,
    normal: &Normal<f64>,
    region: &Rect,
    rng: &mut R,
) -> Vec<Point> {
    (0..count)
        .map(|_| loop {
            let p = Point::new(normal.sample(rng), normal.sample(rng));
            if region.contains(&p) {
                break p;
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pombm_geom::seeded_rng;

    #[test]
    fn default_instance_shape() {
        let mut rng = seeded_rng(1, 0);
        let inst = generate(&SyntheticParams::default(), &mut rng);
        assert_eq!(inst.num_tasks(), 3000);
        assert_eq!(inst.num_workers(), 5000);
        inst.validate().unwrap();
    }

    #[test]
    fn sample_mean_tracks_mu() {
        let mut rng = seeded_rng(2, 0);
        let params = SyntheticParams {
            mu: 75.0,
            sigma: 10.0,
            num_tasks: 5000,
            num_workers: 10,
            epsilon: 0.6,
        };
        let inst = generate(&params, &mut rng);
        let mean_x: f64 = inst.tasks.iter().map(|p| p.x).sum::<f64>() / inst.tasks.len() as f64;
        let mean_y: f64 = inst.tasks.iter().map(|p| p.y).sum::<f64>() / inst.tasks.len() as f64;
        // σ = 10, n = 5000: standard error ≈ 0.14; allow 1.0.
        assert!((mean_x - 75.0).abs() < 1.0, "mean_x {mean_x}");
        assert!((mean_y - 75.0).abs() < 1.0, "mean_y {mean_y}");
    }

    #[test]
    fn sample_spread_tracks_sigma() {
        let mut rng = seeded_rng(3, 0);
        let params = SyntheticParams {
            sigma: 25.0,
            num_tasks: 5000,
            num_workers: 10,
            ..SyntheticParams::default()
        };
        let inst = generate(&params, &mut rng);
        let mean: f64 = inst.tasks.iter().map(|p| p.x).sum::<f64>() / inst.tasks.len() as f64;
        let var: f64 =
            inst.tasks.iter().map(|p| (p.x - mean).powi(2)).sum::<f64>() / inst.tasks.len() as f64;
        let sd = var.sqrt();
        assert!((sd - 25.0).abs() < 2.0, "sd {sd}");
    }

    #[test]
    fn edge_mu_stays_in_region() {
        // µ = 150 with σ = 30 pushes mass toward the boundary; rejection
        // sampling must keep everything inside.
        let mut rng = seeded_rng(4, 0);
        let params = SyntheticParams {
            mu: 150.0,
            sigma: 30.0,
            num_tasks: 2000,
            num_workers: 2000,
            epsilon: 0.6,
        };
        let inst = generate(&params, &mut rng);
        inst.validate().unwrap();
    }

    #[test]
    fn radii_variant_attaches_radii() {
        let mut rng = seeded_rng(5, 0);
        let params = SyntheticParams {
            num_tasks: 10,
            num_workers: 20,
            ..SyntheticParams::default()
        };
        let inst = generate_with_radii(&params, &mut rng);
        let radii = inst.radii.as_ref().unwrap();
        assert_eq!(radii.len(), 20);
        assert!(radii.iter().all(|r| (10.0..=20.0).contains(r)));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let params = SyntheticParams {
            num_tasks: 50,
            num_workers: 50,
            ..SyntheticParams::default()
        };
        let a = generate(&params, &mut seeded_rng(9, 0));
        let b = generate(&params, &mut seeded_rng(9, 0));
        assert_eq!(a.tasks, b.tasks);
        assert_eq!(a.workers, b.workers);
    }
}
