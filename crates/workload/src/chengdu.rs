//! Chengdu-like trace generator: the substitute for the Didi GAIA dataset.
//!
//! The paper's real experiments use trip records from Chengdu (Nov 2016):
//! task locations are passenger pickup origins in a 10 km × 10 km region
//! during the 14:00–14:30 peak half-hour, 4,245–5,034 tasks per day over 30
//! days. That dataset is licensed and not redistributable, so this module
//! generates a *city model* with the statistical features that matter to the
//! algorithms under test:
//!
//! * **Spatial clustering** — ride demand concentrates around hotspots
//!   (business districts, stations). Tasks are drawn from a mixture of
//!   anisotropic Gaussian hotspots plus a uniform background.
//! * **Day-to-day variation** — hotspot weights and task counts vary per
//!   day around a fixed city layout (same seed ⇒ same city).
//! * **Worker dispersion** — drivers are spread more evenly than demand: a
//!   flatter mixture of the same hotspots plus a heavier uniform component.
//!
//! Absolute distances will not match the paper's plots, but the relative
//! behaviour of the compared mechanisms — which is all the evaluation
//! interprets — is preserved (see DESIGN.md §4).

use crate::instance::Instance;
use crate::params::RealParams;
use pombm_geom::{seeded_rng, Point, Rect};
use rand::Rng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// A demand hotspot: an anisotropic Gaussian cluster.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Hotspot {
    /// Cluster center.
    pub center: Point,
    /// Standard deviation along x, in meters.
    pub sd_x: f64,
    /// Standard deviation along y, in meters.
    pub sd_y: f64,
    /// Relative demand weight (unnormalized).
    pub weight: f64,
}

/// A fixed city layout from which all 30 days are sampled.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CityModel {
    /// The 10 km × 10 km region.
    pub region: Rect,
    /// Demand hotspots.
    pub hotspots: Vec<Hotspot>,
    /// Fraction of tasks drawn from the uniform background (the rest come
    /// from hotspots).
    pub task_background: f64,
    /// Fraction of workers drawn from the uniform background.
    pub worker_background: f64,
}

impl CityModel {
    /// Default number of hotspots in the generated city.
    pub const DEFAULT_HOTSPOTS: usize = 8;

    /// Builds a deterministic city for `seed`: hotspot centers biased toward
    /// the middle of the region (as city centers are), sizes 300–900 m.
    pub fn generate(seed: u64) -> Self {
        let mut rng = seeded_rng(seed, 0xC17F);
        let side = RealParams::SPACE_SIDE;
        let region = Rect::square(side);
        let hotspots = (0..Self::DEFAULT_HOTSPOTS)
            .map(|_| {
                // Average two uniforms per axis to bias toward the center.
                let cx = (rng.gen::<f64>() + rng.gen::<f64>()) / 2.0 * side;
                let cy = (rng.gen::<f64>() + rng.gen::<f64>()) / 2.0 * side;
                Hotspot {
                    center: Point::new(cx, cy),
                    sd_x: rng.gen_range(300.0..900.0),
                    sd_y: rng.gen_range(300.0..900.0),
                    weight: rng.gen_range(0.5..2.0),
                }
            })
            .collect();
        CityModel {
            region,
            hotspots,
            task_background: 0.2,
            worker_background: 0.5,
        }
    }

    /// Samples one location from the mixture with the given background
    /// fraction, rejection-sampled into the region.
    ///
    /// `weights` are unnormalized per-hotspot demand weights (one per
    /// [`CityModel::hotspots`] entry); with probability `background` the
    /// point comes from the uniform background instead. Public so scenario
    /// generators outside this crate can place points on the city's
    /// hotspot structure without replaying a whole [`generate_day`].
    pub fn sample<R: Rng + ?Sized>(&self, background: f64, weights: &[f64], rng: &mut R) -> Point {
        loop {
            let p = if rng.gen::<f64>() < background {
                Point::new(
                    rng.gen::<f64>() * self.region.width() + self.region.min_x,
                    rng.gen::<f64>() * self.region.height() + self.region.min_y,
                )
            } else {
                let h = &self.hotspots[pick_weighted(weights, rng)];
                let nx = Normal::new(h.center.x, h.sd_x).expect("valid sd");
                let ny = Normal::new(h.center.y, h.sd_y).expect("valid sd");
                Point::new(nx.sample(rng), ny.sample(rng))
            };
            if self.region.contains(&p) {
                return p;
            }
        }
    }
}

/// Samples an index proportional to `weights`.
fn pick_weighted<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    let total: f64 = weights.iter().sum();
    let mut u = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        if u < *w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

/// Generates the instance for one simulated day.
///
/// The day index perturbs hotspot weights (±50%) and draws the task count
/// uniformly from the paper's reported per-day range. Worker locations are
/// drawn from the flatter worker mixture; `num_workers` comes from the
/// Table III sweep. Deterministic in `(city seed, day, num_workers)`.
pub fn generate_day(city: &CityModel, day: usize, num_workers: usize, seed: u64) -> Instance {
    assert!(day < RealParams::NUM_DAYS, "day out of range");
    let mut rng = seeded_rng(seed, 0xDA7 + day as u64);
    let (lo, hi) = RealParams::TASKS_PER_DAY;
    let num_tasks = rng.gen_range(lo..=hi);

    // Per-day demand weights.
    let weights: Vec<f64> = city
        .hotspots
        .iter()
        .map(|h| h.weight * rng.gen_range(0.5..1.5))
        .collect();
    let tasks = (0..num_tasks)
        .map(|_| city.sample(city.task_background, &weights, &mut rng))
        .collect();
    // Workers use the base weights (supply adapts slower than demand).
    let base: Vec<f64> = city.hotspots.iter().map(|h| h.weight).collect();
    let workers = (0..num_workers)
        .map(|_| city.sample(city.worker_background, &base, &mut rng))
        .collect();
    Instance::new(city.region, tasks, workers)
}

/// Case-study variant of [`generate_day`] with U[500, 1000] m radii.
pub fn generate_day_with_radii(
    city: &CityModel,
    day: usize,
    num_workers: usize,
    seed: u64,
) -> Instance {
    let mut rng = seeded_rng(seed, 0xBEEF + day as u64);
    let (lo, hi) = RealParams::REACH_RADIUS;
    generate_day(city, day, num_workers, seed).with_uniform_radii(lo, hi, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn city_is_deterministic() {
        let a = CityModel::generate(7);
        let b = CityModel::generate(7);
        assert_eq!(a.hotspots.len(), b.hotspots.len());
        for (x, y) in a.hotspots.iter().zip(&b.hotspots) {
            assert_eq!(x.center, y.center);
            assert_eq!(x.weight, y.weight);
        }
    }

    #[test]
    fn day_instance_matches_table3_shape() {
        let city = CityModel::generate(1);
        let inst = generate_day(&city, 0, 8000, 1);
        let (lo, hi) = RealParams::TASKS_PER_DAY;
        assert!((lo..=hi).contains(&inst.num_tasks()));
        assert_eq!(inst.num_workers(), 8000);
        inst.validate().unwrap();
    }

    #[test]
    fn days_differ_but_are_reproducible() {
        let city = CityModel::generate(2);
        let d0 = generate_day(&city, 0, 1000, 2);
        let d1 = generate_day(&city, 1, 1000, 2);
        assert_ne!(d0.tasks[..10], d1.tasks[..10], "days must differ");
        let d0_again = generate_day(&city, 0, 1000, 2);
        assert_eq!(d0.tasks, d0_again.tasks);
    }

    #[test]
    fn tasks_are_more_clustered_than_workers() {
        // Average nearest-hotspot distance should be smaller for tasks than
        // for workers (workers have a heavier uniform background).
        let city = CityModel::generate(3);
        let inst = generate_day(&city, 5, 4000, 3);
        let nearest_hotspot = |p: &Point| -> f64 {
            city.hotspots
                .iter()
                .map(|h| h.center.dist(p))
                .fold(f64::INFINITY, f64::min)
        };
        let avg = |pts: &[Point]| -> f64 {
            pts.iter().map(nearest_hotspot).sum::<f64>() / pts.len() as f64
        };
        let t = avg(&inst.tasks);
        let w = avg(&inst.workers);
        assert!(
            t < w,
            "tasks avg {t} should cluster tighter than workers {w}"
        );
    }

    #[test]
    fn radii_in_meter_range() {
        let city = CityModel::generate(4);
        let inst = generate_day_with_radii(&city, 2, 500, 4);
        for r in inst.radii.as_ref().unwrap() {
            assert!((500.0..=1000.0).contains(r));
        }
    }

    #[test]
    fn pick_weighted_respects_weights() {
        let mut rng = seeded_rng(5, 0);
        let weights = [1.0, 9.0];
        let n = 20_000;
        let ones = (0..n)
            .filter(|_| pick_weighted(&weights, &mut rng) == 1)
            .count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.02, "frac {frac}");
    }

    #[test]
    #[should_panic(expected = "day out of range")]
    fn day_bound_enforced() {
        let city = CityModel::generate(0);
        let _ = generate_day(&city, 30, 10, 0);
    }
}
