//! The rule engine: per-file scans over the lexer's masked views, plus
//! the waiver pragmas that make every rule escapable *with a reason*.
//!
//! See the crate docs ([`crate`]) for the rule catalogue. All rules are
//! textual: they match whole words against [`crate::lexer::Lexed::masked`]
//! (so comments and string bodies can never trip them) and read original
//! comment text only where a rule is *about* comments (`// SAFETY:`,
//! waiver pragmas).

use crate::lexer::{lex, Lexed, Span, TokKind};

/// Rule identifier: every `unsafe` needs an immediately preceding
/// `// SAFETY:` comment.
pub const UNSAFE_SAFETY: &str = "UNSAFE-SAFETY";
/// Rule identifier: `#[target_feature]` fns must be `unsafe` and only
/// reachable behind the runtime ISA-detection guard.
pub const TF_DISPATCH: &str = "TF-DISPATCH";
/// Rule identifier: no `HashMap`/`HashSet` in non-test code without a
/// waiver (iteration order is nondeterministic).
pub const DET_HASH: &str = "DET-HASH";
/// Rule identifier: no wall-clock reads outside the timing-gated path.
pub const DET_TIME: &str = "DET-TIME";
/// Rule identifier: no entropy-seeded RNG anywhere.
pub const DET_RNG: &str = "DET-RNG";
/// Rule identifier: waivers and `#[allow]` attributes need justification.
pub const WAIVER_REASON: &str = "WAIVER-REASON";
/// Rule identifier: per-crate `unsafe` count exceeded the checked-in
/// baseline (emitted by the baseline diff, not a per-file scan).
pub const UNSAFE_BASELINE: &str = "UNSAFE-BASELINE";

/// Every rule id the engine knows, in catalogue order.
pub const ALL_RULES: &[&str] = &[
    UNSAFE_SAFETY,
    TF_DISPATCH,
    DET_HASH,
    DET_TIME,
    DET_RNG,
    WAIVER_REASON,
    UNSAFE_BASELINE,
];

/// One finding, addressed by repo-relative path and 1-based line/column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule id from [`ALL_RULES`].
    pub rule: &'static str,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based byte column.
    pub col: usize,
    /// Human-readable explanation.
    pub message: String,
}

/// A parsed `// lint: allow(...)` pragma.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Rules this waiver suppresses.
    pub rules: Vec<String>,
    /// Whether it covers the whole file (`allow-file`) or a line range.
    pub file_scope: bool,
    /// 1-based line of the pragma comment.
    pub line: usize,
    /// Last covered line: the pragma's contiguous comment run (so a
    /// multi-line justification stays one waiver) plus the first code
    /// line after it. A blank line ends coverage.
    pub end: usize,
}

/// A `#[target_feature(enable = "…")]` function definition.
#[derive(Debug, Clone)]
pub struct TfDef {
    /// Function name.
    pub name: String,
    /// Feature string, e.g. `avx2`.
    pub feature: String,
    /// Index of the defining file in the workspace file list.
    pub file: usize,
    /// Byte offset of the name token in the defining file.
    pub name_off: usize,
    /// Byte span of the function body (for enclosing-context checks).
    pub body: Span,
}

/// One lexed file plus the derived context the rules need.
pub struct FileCtx {
    /// Repo-relative path, forward slashes.
    pub path: String,
    /// Raw source text.
    pub src: String,
    /// Lexer output (tiling + masked views).
    pub lexed: Lexed,
    /// Byte spans of `#[cfg(test)]` items (determinism rules skip them).
    pub test_regions: Vec<Span>,
    /// True for files under a `tests/`, `benches/` or `examples/` dir.
    pub is_test_path: bool,
    /// Parsed waiver pragmas.
    pub waivers: Vec<Waiver>,
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Whole-word occurrences of `needle` in `hay` (boundaries checked on the
/// needle's ends only, so needles like `Instant::now` work).
pub fn word_hits(hay: &str, needle: &str) -> Vec<usize> {
    let mut hits = Vec::new();
    let h = hay.as_bytes();
    let first_ident = needle.as_bytes().first().is_some_and(|&b| is_ident_byte(b));
    let last_ident = needle.as_bytes().last().is_some_and(|&b| is_ident_byte(b));
    let mut from = 0usize;
    while let Some(rel) = hay[from..].find(needle) {
        let at = from + rel;
        let end = at + needle.len();
        let left_ok = !first_ident || at == 0 || !is_ident_byte(h[at - 1]);
        let right_ok = !last_ident || end >= h.len() || !is_ident_byte(h[end]);
        if left_ok && right_ok {
            hits.push(at);
        }
        from = at + 1;
    }
    hits
}

/// Matches the opening bracket at `open` and returns the offset of the
/// closing one, honouring nesting (operates on masked text, so brackets in
/// strings or comments cannot unbalance it).
fn match_bracket(masked: &str, open: usize) -> Option<usize> {
    let b = masked.as_bytes();
    let (o, c) = match b[open] {
        b'(' => (b'(', b')'),
        b'[' => (b'[', b']'),
        b'{' => (b'{', b'}'),
        _ => return None,
    };
    let mut depth = 0isize;
    for (idx, &byte) in b.iter().enumerate().skip(open) {
        if byte == o {
            depth += 1;
        } else if byte == c {
            depth -= 1;
            if depth == 0 {
                return Some(idx);
            }
        }
    }
    None
}

impl FileCtx {
    /// Builds the per-file context: lexing, test-region discovery and
    /// waiver parsing. Malformed pragmas surface as [`WAIVER_REASON`]
    /// diagnostics pushed onto `diags`.
    pub fn build(path: String, src: String, diags: &mut Vec<Diagnostic>) -> FileCtx {
        let lexed = lex(&src);
        let is_test_path = path
            .split('/')
            .any(|c| c == "tests" || c == "benches" || c == "examples");
        let test_regions = find_test_regions(&lexed.masked);
        let mut ctx = FileCtx {
            path,
            src,
            lexed,
            test_regions,
            is_test_path,
            waivers: Vec::new(),
        };
        ctx.parse_waivers(diags);
        ctx
    }

    /// The masked text of a 1-based line.
    pub fn masked_line(&self, line: usize) -> &str {
        let span = self.lexed.line_span(line, self.src.len());
        &self.lexed.masked[span.start..span.end]
    }

    /// The original text of a 1-based line.
    pub fn src_line(&self, line: usize) -> &str {
        let span = self.lexed.line_span(line, self.src.len());
        &self.src[span.start..span.end]
    }

    /// True if `offset` falls inside a `#[cfg(test)]` item.
    pub fn in_test_region(&self, offset: usize) -> bool {
        self.test_regions
            .iter()
            .any(|s| offset >= s.start && offset < s.end)
    }

    /// True if the (masked) line is a `use` declaration.
    fn is_use_line(&self, line: usize) -> bool {
        let t = self.masked_line(line).trim_start();
        t.starts_with("use ") || t.starts_with("pub use ") || t.starts_with("pub(crate) use ")
    }

    /// True if a waiver suppresses `rule` at the given 1-based line.
    pub fn waived(&self, rule: &str, line: usize) -> bool {
        self.waivers.iter().any(|w| {
            w.rules.iter().any(|r| r == rule) && (w.file_scope || (w.line <= line && line <= w.end))
        })
    }

    /// Last line a waiver pragma at `line` covers: skip the pragma's
    /// continuation comment lines, then take the first code line. A blank
    /// line (or end of file) stops the walk — the waiver then covers only
    /// the comment run itself.
    fn waiver_end(&self, line: usize) -> usize {
        let total = self.lexed.line_count();
        let mut l = line + 1;
        while l <= total {
            if self.src_line(l).trim().is_empty() {
                break;
            }
            if !self.masked_line(l).trim().is_empty() {
                return l;
            }
            l += 1;
        }
        line
    }

    fn push(
        &self,
        diags: &mut Vec<Diagnostic>,
        rule: &'static str,
        offset: usize,
        message: String,
    ) {
        let (line, col) = self.lexed.line_col(offset);
        // WAIVER-REASON findings are about the escape hatch itself and
        // cannot be waived away; everything else can.
        if rule != WAIVER_REASON && self.waived(rule, line) {
            return;
        }
        diags.push(Diagnostic {
            rule,
            path: self.path.clone(),
            line,
            col,
            message,
        });
    }

    /// Parses `// lint: allow(...)` pragmas out of plain line comments.
    /// Doc comments (`///`, `//!`) are documentation, never pragmas — so
    /// rule-catalogue docs can show the syntax without waiving anything.
    fn parse_waivers(&mut self, diags: &mut Vec<Diagnostic>) {
        let mut out: Vec<Waiver> = Vec::new();
        let mut bad: Vec<(usize, String)> = Vec::new();
        for tok in &self.lexed.toks {
            if tok.kind != TokKind::LineComment {
                continue;
            }
            let text = &self.src[tok.span.start..tok.span.end];
            let body = match text.strip_prefix("//") {
                Some(rest) if !rest.starts_with('/') && !rest.starts_with('!') => rest.trim_start(),
                _ => continue,
            };
            let Some(rest) = body.strip_prefix("lint:") else {
                continue;
            };
            let rest = rest.trim_start();
            let (file_scope, rest) = if let Some(r) = rest.strip_prefix("allow-file(") {
                (true, r)
            } else if let Some(r) = rest.strip_prefix("allow(") {
                (false, r)
            } else {
                bad.push((
                    tok.span.start,
                    "malformed `lint:` pragma: expected `allow(RULE)` or `allow-file(RULE)`"
                        .to_string(),
                ));
                continue;
            };
            let Some(close) = rest.find(')') else {
                bad.push((
                    tok.span.start,
                    "malformed `lint:` pragma: missing `)`".to_string(),
                ));
                continue;
            };
            let rules: Vec<String> = rest[..close]
                .split(',')
                .map(|r| r.trim().to_string())
                .filter(|r| !r.is_empty())
                .collect();
            if rules.is_empty() {
                bad.push((
                    tok.span.start,
                    "waiver lists no rules; name the rule being waived".to_string(),
                ));
                continue;
            }
            for r in &rules {
                if !ALL_RULES.contains(&r.as_str()) {
                    bad.push((
                        tok.span.start,
                        format!("waiver references unknown rule `{r}`"),
                    ));
                }
            }
            // Require a separator and a non-empty justification.
            let tail = rest[close + 1..].trim_start();
            let reason = ["\u{2014}", "\u{2013}", "--", "-", ":"]
                .iter()
                .find_map(|sep| tail.strip_prefix(sep))
                .map(str::trim)
                .unwrap_or("");
            if reason.is_empty() {
                bad.push((
                    tok.span.start,
                    "waiver has no justification: write `// lint: allow(RULE) \u{2014} reason`"
                        .to_string(),
                ));
            }
            let line = self.lexed.line_of(tok.span.start);
            let end = self.waiver_end(line);
            out.push(Waiver {
                rules,
                file_scope,
                line,
                end,
            });
        }
        self.waivers = out;
        for (offset, message) in bad {
            self.push(diags, WAIVER_REASON, offset, message);
        }
    }
}

/// Finds `#[cfg(test)]` item spans: attribute through the end of the item
/// (brace-matched body, or the terminating `;` for braceless items).
fn find_test_regions(masked: &str) -> Vec<Span> {
    let mut regions = Vec::new();
    let b = masked.as_bytes();
    for at in word_hits(masked, "cfg") {
        let rest = masked[at + 3..].trim_start();
        if !rest.starts_with("(test)") && !rest.starts_with("( test )") {
            continue;
        }
        // Walk forward past the attribute's `]`, then to the item's end.
        let Some(open) = masked[at..].find('(').map(|p| at + p) else {
            continue;
        };
        let Some(close_paren) = match_bracket(masked, open) else {
            continue;
        };
        let mut cursor = close_paren + 1;
        while cursor < b.len() && b[cursor] != b']' {
            cursor += 1;
        }
        cursor += 1;
        // Item end: first `;` at depth 0 or the matched `{ … }` body.
        let mut end = b.len();
        let mut scan = cursor;
        while scan < b.len() {
            match b[scan] {
                b'{' => {
                    end = match_bracket(masked, scan)
                        .map(|e| e + 1)
                        .unwrap_or(b.len());
                    break;
                }
                b';' => {
                    end = scan + 1;
                    break;
                }
                _ => scan += 1,
            }
        }
        regions.push(Span { start: at, end });
    }
    regions
}

// ---------------------------------------------------------------------------
// UNSAFE-SAFETY
// ---------------------------------------------------------------------------

/// Byte offsets of every `unsafe` keyword in the file (masked view, so
/// strings/comments never count). Shared with the census.
pub fn unsafe_sites(ctx: &FileCtx) -> Vec<usize> {
    word_hits(&ctx.lexed.masked, "unsafe")
}

/// UNSAFE-SAFETY: every `unsafe` token must be immediately preceded by a
/// `// SAFETY:` comment — on the same line before the token, or in the
/// contiguous run of comment/attribute lines directly above (blank lines
/// break the run: "immediately" means immediately).
pub fn check_unsafe_safety(ctx: &FileCtx, diags: &mut Vec<Diagnostic>) {
    for at in unsafe_sites(ctx) {
        let (line, _) = ctx.lexed.line_col(at);
        let line_start = ctx.lexed.line_span(line, ctx.src.len()).start;
        if ctx.src[line_start..at].contains("SAFETY:") {
            continue;
        }
        let mut ok = false;
        let mut l = line;
        while l > 1 {
            l -= 1;
            let orig = ctx.src_line(l);
            if orig.trim().is_empty() {
                break;
            }
            let masked = ctx.masked_line(l).trim_start().to_string();
            if masked.is_empty() {
                // Pure comment line: scan it, keep walking the run.
                if orig.contains("SAFETY:") {
                    ok = true;
                    break;
                }
                continue;
            }
            if masked.starts_with("#[") || masked.starts_with("#![") {
                // Attributes sit between the comment and the item.
                if orig.contains("SAFETY:") {
                    ok = true;
                    break;
                }
                continue;
            }
            // Code line: only a trailing SAFETY comment on it counts.
            ok = orig.contains("SAFETY:");
            break;
        }
        if !ok {
            ctx.push(
                diags,
                UNSAFE_SAFETY,
                at,
                "`unsafe` without an immediately preceding `// SAFETY:` comment".to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// TF-DISPATCH
// ---------------------------------------------------------------------------

/// Collects `#[target_feature]` fn definitions in one file, emitting
/// diagnostics for non-`unsafe` or malformed ones.
pub fn collect_tf_defs(ctx: &FileCtx, file: usize, diags: &mut Vec<Diagnostic>) -> Vec<TfDef> {
    let masked = &ctx.lexed.masked;
    let b = masked.as_bytes();
    let mut defs = Vec::new();
    for at in word_hits(masked, "target_feature") {
        // Must be an attribute: previous non-ws char is `[`.
        let before = masked[..at].trim_end();
        if !before.ends_with('[') {
            continue;
        }
        let Some(open) = masked[at..].find('(').map(|p| at + p) else {
            continue;
        };
        let Some(close) = match_bracket(masked, open) else {
            continue;
        };
        // Feature string lives in the strings-kept view.
        let inner = &ctx.lexed.code[open + 1..close];
        let feature = inner
            .find('"')
            .and_then(|q1| {
                inner[q1 + 1..]
                    .find('"')
                    .map(|q2| &inner[q1 + 1..q1 + 1 + q2])
            })
            .unwrap_or("")
            .to_string();
        if feature.is_empty() {
            ctx.push(
                diags,
                TF_DISPATCH,
                at,
                "cannot read the feature string out of `#[target_feature(...)]`".to_string(),
            );
            continue;
        }
        // Skip to the item: past this attribute's `]`, then any further
        // attributes, then expect `… unsafe … fn name`.
        let mut cursor = close + 1;
        while cursor < b.len() && b[cursor] != b']' {
            cursor += 1;
        }
        cursor += 1;
        loop {
            while cursor < b.len() && (b[cursor] as char).is_whitespace() {
                cursor += 1;
            }
            if cursor < b.len() && b[cursor] == b'#' {
                let Some(open_b) = masked[cursor..].find('[').map(|p| cursor + p) else {
                    break;
                };
                let Some(close_b) = match_bracket(masked, open_b) else {
                    break;
                };
                cursor = close_b + 1;
                continue;
            }
            break;
        }
        let Some(fn_rel) = word_hits(&masked[cursor..], "fn").first().copied() else {
            ctx.push(
                diags,
                TF_DISPATCH,
                at,
                "`#[target_feature]` must sit on a function".to_string(),
            );
            continue;
        };
        let fn_at = cursor + fn_rel;
        let head = &masked[cursor..fn_at];
        if word_hits(head, "unsafe").is_empty() {
            ctx.push(
                diags,
                TF_DISPATCH,
                fn_at,
                format!("`#[target_feature(enable = \"{feature}\")]` fn must be `unsafe fn`"),
            );
        }
        // Name token.
        let mut name_start = fn_at + 2;
        while name_start < b.len() && !is_ident_byte(b[name_start]) {
            name_start += 1;
        }
        let mut name_end = name_start;
        while name_end < b.len() && is_ident_byte(b[name_end]) {
            name_end += 1;
        }
        let name = masked[name_start..name_end].to_string();
        if name.is_empty() {
            continue;
        }
        let body = masked[name_end..]
            .find('{')
            .map(|p| name_end + p)
            .and_then(|open_b| match_bracket(masked, open_b).map(|e| (open_b, e)));
        let Some((body_open, body_close)) = body else {
            continue;
        };
        defs.push(TfDef {
            name,
            feature,
            file,
            name_off: name_start,
            body: Span {
                start: body_open,
                end: body_close + 1,
            },
        });
    }
    defs
}

/// How many lines above a reach site the runtime guard must appear.
pub const TF_GUARD_WINDOW: usize = 20;

/// TF-DISPATCH reach check: every mention of a `#[target_feature]` fn —
/// outside its own definition — must either sit inside the body of a fn
/// gated on the *same* feature, or have
/// `is_x86_feature_detected!("<feature>")` within the preceding
/// [`TF_GUARD_WINDOW`] lines of the same file.
pub fn check_tf_reach(files: &[FileCtx], defs: &[TfDef], file: usize, diags: &mut Vec<Diagnostic>) {
    let ctx = &files[file];
    for def in defs {
        for at in word_hits(&ctx.lexed.masked, &def.name) {
            if def.file == file && at == def.name_off {
                continue;
            }
            // Inside the body of any same-feature TF fn in this file
            // (including its own): the feature is already enabled there.
            let enclosed = defs.iter().any(|d| {
                d.file == file && d.feature == def.feature && at >= d.body.start && at < d.body.end
            });
            if enclosed {
                continue;
            }
            let (line, _) = ctx.lexed.line_col(at);
            let from_line = line.saturating_sub(TF_GUARD_WINDOW).max(1);
            let win_start = ctx.lexed.line_span(from_line, ctx.src.len()).start;
            let win_end = ctx.lexed.line_span(line, ctx.src.len()).end;
            let window = &ctx.lexed.code[win_start..win_end];
            let guarded = window.contains("is_x86_feature_detected!")
                && window.contains(&format!("\"{}\"", def.feature));
            if !guarded {
                ctx.push(
                    diags,
                    TF_DISPATCH,
                    at,
                    format!(
                        "`{}` requires `{}`; guard the call with \
                         `is_x86_feature_detected!(\"{}\")` (within {} lines) or call it \
                         from a fn gated on the same feature",
                        def.name, def.feature, def.feature, TF_GUARD_WINDOW
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// DET-HASH / DET-TIME / DET-RNG
// ---------------------------------------------------------------------------

struct DetRule {
    rule: &'static str,
    needles: &'static [&'static str],
    message: fn(&str) -> String,
}

const DET_RULES: &[DetRule] = &[
    DetRule {
        rule: DET_HASH,
        needles: &["HashMap", "HashSet"],
        message: |w| {
            format!(
                "`{w}` iteration order is nondeterministic: use `BTree{}` or a canonical \
                 sort if order can reach serialized output, or waive with a reason",
                &w[4..]
            )
        },
    },
    DetRule {
        rule: DET_TIME,
        needles: &["Instant::now", "SystemTime"],
        message: |w| {
            format!(
                "`{w}` reads the wall clock: only the timings-gated `wall_ms` path may, \
                 and that path is stripped from golden output — waive with a reason if \
                 this is it"
            )
        },
    },
    DetRule {
        rule: DET_RNG,
        needles: &[
            "from_entropy",
            "thread_rng",
            "OsRng",
            "getrandom",
            "from_os_rng",
        ],
        message: |w| {
            format!(
                "`{w}` seeds randomness from the environment: every RNG state must \
                 derive from an explicit seed"
            )
        },
    },
];

/// Runs the three determinism word-scans over one file. Test code is
/// exempt from DET-HASH/DET-TIME (goldens are produced by non-test code);
/// DET-RNG applies everywhere — entropy in a test makes the *test*
/// nondeterministic.
pub fn check_det_rules(ctx: &FileCtx, diags: &mut Vec<Diagnostic>) {
    for rule in DET_RULES {
        let skip_tests = rule.rule != DET_RNG;
        if skip_tests && ctx.is_test_path {
            continue;
        }
        for needle in rule.needles {
            for at in word_hits(&ctx.lexed.masked, needle) {
                if skip_tests && ctx.in_test_region(at) {
                    continue;
                }
                let (line, _) = ctx.lexed.line_col(at);
                if ctx.is_use_line(line) {
                    continue;
                }
                ctx.push(diags, rule.rule, at, (rule.message)(needle));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// WAIVER-REASON for #[allow(...)]
// ---------------------------------------------------------------------------

/// WAIVER-REASON, attribute half: every `#[allow(...)]` / `#![allow(...)]`
/// must carry a justification — `reason = "…"` inside the attribute, a
/// trailing comment on the same line, or a comment line in the contiguous
/// comment/attribute run directly above.
pub fn check_allow_attrs(ctx: &FileCtx, diags: &mut Vec<Diagnostic>) {
    let masked = &ctx.lexed.masked;
    for at in word_hits(masked, "allow") {
        let before = masked[..at].trim_end();
        if !before.ends_with('[') {
            continue;
        }
        let Some(open) = masked[at..].find('(').map(|p| at + p) else {
            continue;
        };
        let Some(close) = match_bracket(masked, open) else {
            continue;
        };
        if ctx.lexed.code[open..close].contains("reason") {
            continue;
        }
        let (line, _) = ctx.lexed.line_col(at);
        // Trailing comment on the attribute's own line.
        let line_span = ctx.lexed.line_span(line, ctx.src.len());
        let orig = ctx.src_line(line);
        let masked_l = &masked[line_span.start..line_span.end];
        if orig.trim_end().len() > masked_l.trim_end().len() {
            continue; // The line ends in a comment.
        }
        // A comment line directly above (attributes may stack between).
        let mut justified = false;
        let mut l = line;
        while l > 1 {
            l -= 1;
            let o = ctx.src_line(l);
            if o.trim().is_empty() {
                break;
            }
            let m = ctx.masked_line(l).trim_start().to_string();
            if m.is_empty() {
                // A comment line — but a doc comment documents the item,
                // not the attribute, so it does not count as a reason.
                let t = o.trim_start();
                if t.starts_with("///") || t.starts_with("//!") {
                    continue;
                }
                justified = true;
                break;
            }
            if m.starts_with("#[") || m.starts_with("#![") {
                continue;
            }
            break;
        }
        if !justified {
            ctx.push(
                diags,
                WAIVER_REASON,
                at,
                "`#[allow(...)]` without a justification: add a comment saying why, \
                 or `reason = \"...\"`"
                    .to_string(),
            );
        }
    }
}
