//! A minimal hand-rolled Rust lexer: just enough token structure for
//! text-level rules to be exact about *where code is* and *where it isn't*.
//!
//! The lexer partitions a source file into a contiguous sequence of tokens:
//! plain [`TokKind::Code`] runs interleaved with line comments, (nested)
//! block comments, string literals, raw string literals (any `#` count,
//! with `b` prefixes), and char/byte-char literals. It does **not** parse
//! Rust — it only needs to never confuse the four lexical worlds (code,
//! comment, string, char), because every rule in [`crate::rules`] matches
//! words against the *masked* views this module produces:
//!
//! * [`Lexed::masked`] — comments **and** literal bodies blanked to spaces
//!   (newlines kept), so `"unsafe"` in a string or `// HashMap` in a
//!   comment can never trip a rule;
//! * [`Lexed::code`] — only comments blanked, literals kept, used where a
//!   rule must read string contents (e.g. the feature name inside
//!   `is_x86_feature_detected!("avx2")`).
//!
//! Both views are byte-for-byte the same length as the source, so every
//! offset is simultaneously valid in all three strings and the
//! line/column mapping ([`Lexed::line_col`]) is shared.
//!
//! Classic traps handled: nested block comments (`/* a /* b */ c */`),
//! raw strings with arbitrary hash fences (`r##"…"##`), raw *identifiers*
//! (`r#fn` is code, not a raw string), byte and byte-raw strings, and the
//! char-literal/lifetime ambiguity (`'a'` is a literal, `<'a, 'b>` is
//! code). Unterminated comments or strings extend to end of file rather
//! than failing: a linter must degrade gracefully on torn input.

/// Byte range `[start, end)` into the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First byte of the token.
    pub start: usize,
    /// One past the last byte of the token.
    pub end: usize,
}

/// Lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// A run of ordinary code (identifiers, punctuation, lifetimes…).
    Code,
    /// `// …` to end of line (doc comments `///` and `//!` included).
    LineComment,
    /// `/* … */`, nesting respected (doc comments `/** … */` included).
    BlockComment,
    /// `"…"` or `b"…"` with escapes.
    Str,
    /// `r"…"`, `r#"…"#`, `br##"…"##` — any hash count.
    RawStr,
    /// `'x'`, `'\n'`, `b'q'` — char and byte-char literals.
    Char,
}

/// One token: a kind plus its span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok {
    /// Lexical class.
    pub kind: TokKind,
    /// Byte range in the source.
    pub span: Span,
}

/// The result of lexing one file: the token tiling plus masked views.
#[derive(Debug, Clone)]
pub struct Lexed {
    /// Tokens in source order; their spans tile `[0, len)` exactly.
    pub toks: Vec<Tok>,
    /// Source with comments and literal bodies blanked to spaces.
    pub masked: String,
    /// Source with only comments blanked (literals kept).
    pub code: String,
    /// Byte offset of the start of each (0-based) line.
    pub line_starts: Vec<usize>,
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn utf8_len(lead: u8) -> usize {
    if lead < 0x80 {
        1
    } else if lead < 0xE0 {
        2
    } else if lead < 0xF0 {
        3
    } else {
        4
    }
}

/// Scans a normal (escaped) string body starting just after the opening
/// quote; returns the offset one past the closing quote (or EOF).
fn scan_string(b: &[u8], mut j: usize) -> usize {
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    b.len()
}

/// Attempts a raw-string fence at `j` (pointing at `#`s or the opening
/// quote). Returns the offset one past the closing fence, or `None` if
/// this is not a raw string (e.g. a raw identifier like `r#fn`).
fn scan_raw_string(b: &[u8], mut j: usize) -> Option<usize> {
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j >= b.len() || b[j] != b'"' {
        return None;
    }
    j += 1;
    while j < b.len() {
        if b[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while seen < hashes && k < b.len() && b[k] == b'#' {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return Some(k);
            }
        }
        j += 1;
    }
    Some(b.len())
}

/// Attempts a char/byte-char literal whose opening quote is at `q`.
/// Returns the offset one past the closing quote, or `None` for a
/// lifetime (or torn input).
fn scan_char(b: &[u8], q: usize) -> Option<usize> {
    let k = q + 1;
    if k >= b.len() {
        return None;
    }
    if b[k] == b'\\' {
        // Escapes are unambiguous: `'\n'`, `'\''`, `'\u{1F600}'`.
        let mut j = k;
        let limit = (q + 16).min(b.len());
        while j < limit {
            match b[j] {
                b'\\' => j += 2,
                b'\'' => return Some(j + 1),
                b'\n' => return None,
                _ => j += 1,
            }
        }
        return None;
    }
    if b[k] == b'\'' {
        // `''` is not a char literal; treat the quote as code.
        return None;
    }
    // One (possibly multibyte) char then a closing quote — otherwise this
    // is a lifetime such as `'a` in `<'a, 'b>`.
    let l = utf8_len(b[k]);
    if k + l < b.len() && b[k + l] == b'\'' {
        return Some(k + l + 1);
    }
    None
}

/// Lexes one source file into its token tiling and masked views.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let n = b.len();
    let mut toks: Vec<Tok> = Vec::new();
    let mut code_start = 0usize;
    let mut i = 0usize;

    macro_rules! special {
        ($kind:expr, $start:expr, $end:expr) => {{
            if code_start < $start {
                toks.push(Tok {
                    kind: TokKind::Code,
                    span: Span {
                        start: code_start,
                        end: $start,
                    },
                });
            }
            toks.push(Tok {
                kind: $kind,
                span: Span {
                    start: $start,
                    end: $end,
                },
            });
            code_start = $end;
            i = $end;
        }};
    }

    while i < n {
        let c = b[i];
        if c == b'/' && i + 1 < n && b[i + 1] == b'/' {
            let mut j = i + 2;
            while j < n && b[j] != b'\n' {
                j += 1;
            }
            special!(TokKind::LineComment, i, j);
            continue;
        }
        if c == b'/' && i + 1 < n && b[i + 1] == b'*' {
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < n && depth > 0 {
                if b[j] == b'/' && j + 1 < n && b[j + 1] == b'*' {
                    depth += 1;
                    j += 2;
                } else if b[j] == b'*' && j + 1 < n && b[j + 1] == b'/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            special!(TokKind::BlockComment, i, j);
            continue;
        }
        let prev_ident = i > 0 && is_ident_byte(b[i - 1]);
        if !prev_ident && (c == b'r' || c == b'b') {
            // Prefixed literals: r"…", r#"…"#, b"…", b'…', br#"…"#.
            if c == b'r' {
                if let Some(end) = scan_raw_string(b, i + 1) {
                    special!(TokKind::RawStr, i, end);
                    continue;
                }
            } else {
                match b.get(i + 1) {
                    Some(b'"') => {
                        let end = scan_string(b, i + 2);
                        special!(TokKind::Str, i, end);
                        continue;
                    }
                    Some(b'\'') => {
                        if let Some(end) = scan_char(b, i + 1) {
                            special!(TokKind::Char, i, end);
                            continue;
                        }
                    }
                    Some(b'r') => {
                        if let Some(end) = scan_raw_string(b, i + 2) {
                            special!(TokKind::RawStr, i, end);
                            continue;
                        }
                    }
                    _ => {}
                }
            }
            i += 1;
            continue;
        }
        if c == b'"' {
            let end = scan_string(b, i + 1);
            special!(TokKind::Str, i, end);
            continue;
        }
        if c == b'\'' {
            if let Some(end) = scan_char(b, i) {
                special!(TokKind::Char, i, end);
                continue;
            }
            i += 1;
            continue;
        }
        i += 1;
    }
    if code_start < n {
        toks.push(Tok {
            kind: TokKind::Code,
            span: Span {
                start: code_start,
                end: n,
            },
        });
    }

    // Masked views: replace every non-newline byte of a blanked token with
    // a space. All replacements are ASCII, so both views stay valid UTF-8.
    let mut masked = src.as_bytes().to_vec();
    let mut code = src.as_bytes().to_vec();
    for tok in &toks {
        let blank_in_code = matches!(tok.kind, TokKind::LineComment | TokKind::BlockComment);
        let blank_in_masked = tok.kind != TokKind::Code;
        for idx in tok.span.start..tok.span.end {
            if masked[idx] != b'\n' {
                if blank_in_masked {
                    masked[idx] = b' ';
                }
                if blank_in_code {
                    code[idx] = b' ';
                }
            }
        }
    }

    let mut line_starts = vec![0usize];
    for (idx, &byte) in b.iter().enumerate() {
        if byte == b'\n' {
            line_starts.push(idx + 1);
        }
    }

    Lexed {
        toks,
        masked: String::from_utf8(masked).expect("space substitution preserves UTF-8"),
        code: String::from_utf8(code).expect("space substitution preserves UTF-8"),
        line_starts,
    }
}

impl Lexed {
    /// 1-based `(line, column)` of a byte offset (column counts bytes).
    pub fn line_col(&self, offset: usize) -> (usize, usize) {
        let line = self.line_of(offset);
        (line, offset - self.line_starts[line - 1] + 1)
    }

    /// 1-based line number of a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(idx) => idx + 1,
            Err(idx) => idx,
        }
    }

    /// Number of lines (a trailing newline does not open a new line).
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }

    /// Byte span of a 1-based line, excluding the trailing newline.
    pub fn line_span(&self, line: usize, total_len: usize) -> Span {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map(|&next| next.saturating_sub(1))
            .unwrap_or(total_len);
        Span { start, end }
    }
}
