//! The `pombm-lint` binary: walks the workspace, runs every rule, and
//! exits `0` (clean), `1` (findings) or `2` (usage/IO error).

use std::path::PathBuf;
use std::process::ExitCode;

use pombm_lint::{Workspace, ALL_RULES};

const USAGE: &str = "\
pombm-lint: workspace determinism-and-unsafety auditor

USAGE:
    pombm-lint [--root DIR] [--json] [--baseline FILE] [--update-baseline]
               [--list-rules]

FLAGS:
    --root DIR          workspace root holding crates/ and shims/ (default .)
    --json              emit the machine-readable report on stdout
    --baseline FILE     diff the per-crate unsafe census against FILE
    --update-baseline   rewrite FILE from the current census (with --baseline)
    --list-rules        print the rule ids and exit
    --help              this text

EXIT CODES:
    0  clean     1  diagnostics emitted     2  usage or IO error
";

fn run() -> Result<u8, String> {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut baseline: Option<PathBuf> = None;
    let mut update_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(args.next().ok_or("--root needs a directory")?);
            }
            "--json" => json = true,
            "--baseline" => {
                baseline = Some(PathBuf::from(args.next().ok_or("--baseline needs a file")?));
            }
            "--update-baseline" => update_baseline = true,
            "--list-rules" => {
                for rule in ALL_RULES {
                    println!("{rule}");
                }
                return Ok(0);
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(0);
            }
            other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        }
    }
    if update_baseline && baseline.is_none() {
        return Err("--update-baseline requires --baseline FILE".to_string());
    }

    let workspace = Workspace::load(&root)?;
    let mut report = workspace.lint();

    if let Some(path) = &baseline {
        if update_baseline {
            std::fs::write(path, report.baseline_json())
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            eprintln!("pombm-lint: wrote {}", path.display());
        } else {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            report.check_baseline(&text, &path.display().to_string())?;
        }
    }

    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render_human());
    }
    Ok(u8::from(!report.is_clean()))
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => ExitCode::from(code),
        Err(msg) => {
            eprintln!("pombm-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}
