#![warn(missing_docs)]

//! `pombm-lint` — the workspace determinism-and-unsafety auditor.
//!
//! The repo's signature guarantee — byte-identical output at any
//! shard/thread/partition count — rests on conventions no compiler
//! checks: seed-derived RNG only, no wall-clock reads outside the
//! timings-gated `wall_ms` path, no hash-iteration order leaking into
//! serialized output, and hand-audited `unsafe` SIMD kernels. This crate
//! enforces those conventions mechanically on every push: a hand-rolled
//! lexer ([`lexer`], no `syn` — the container has no crates.io) feeds a
//! rule engine ([`rules`], [`engine`]) that walks `crates/` and `shims/`
//! and emits deterministic, path/line-sorted diagnostics in human and
//! `--json` form, with stable rule ids and exit codes (`0` clean, `1`
//! findings, `2` usage/IO error).
//!
//! # Rule catalogue
//!
//! | Rule | What it enforces |
//! |------|------------------|
//! | `UNSAFE-SAFETY` | Every `unsafe` token (block, fn, impl) is immediately preceded by a `// SAFETY:` comment — same line, or the contiguous comment/attribute run directly above (a blank line breaks the run). |
//! | `TF-DISPATCH` | Every `#[target_feature(enable = "F")]` fn is an `unsafe fn`, and every mention of it outside its definition is either inside the body of a fn gated on the same feature or within [`rules::TF_GUARD_WINDOW`] lines below an `is_x86_feature_detected!("F")` check in the same file. |
//! | `DET-HASH` | No `HashMap`/`HashSet` in non-test code without a waiver: their iteration order is seeded per-process, so any iteration that reaches serialized or order-canonical output flakes goldens. Convert to `BTreeMap`/`BTreeSet`, sort explicitly, or waive stating why order never escapes. `use` declarations are exempt. |
//! | `DET-TIME` | No `Instant::now` / `SystemTime` in non-test code without a waiver: wall-clock belongs only to the timings-gated `wall_ms` path (stripped from golden output) and to the bench/criterion measurement code. |
//! | `DET-RNG` | No entropy seeding anywhere — `from_entropy`, `thread_rng`, `OsRng`, `getrandom`, `from_os_rng`. Every RNG state must derive from an explicit seed; this one applies to test code too. |
//! | `WAIVER-REASON` | Escape hatches must explain themselves: `lint:` pragmas need a justification and must name known rules, and every `#[allow(...)]` attribute needs a `reason = "…"` or an adjacent comment. Not itself waivable. |
//! | `UNSAFE-BASELINE` | The per-crate `unsafe` count matches `ci/unsafe-baseline.json` exactly (two-sided ratchet); regenerate with `--update-baseline` after an audited change. |
//!
//! # Waiver syntax
//!
//! A plain line comment (never a doc comment) of the form:
//!
//! ```text
//! // lint: allow(DET-HASH) — lookups only; never iterated.
//! // lint: allow-file(DET-TIME) — wall-clock measurement is this file's purpose.
//! ```
//!
//! `allow` covers the pragma's contiguous comment run (so a multi-line
//! justification stays one waiver) plus the first code line after it —
//! a blank line ends coverage; `allow-file` covers the whole file. The
//! separator may be `—`, `–`, `--`, `-` or `:`; the justification must
//! be non-empty. Several rules may be waived at once:
//! `allow(DET-HASH, DET-TIME) — …`.
//!
//! # Test-code policy
//!
//! Files under `tests/`, `benches/` or `examples/` directories and items
//! under `#[cfg(test)]` are exempt from `DET-HASH`/`DET-TIME` (golden
//! bytes are produced by non-test code), but **not** from `DET-RNG`
//! (an entropy-seeded test is a flaky test) or `UNSAFE-SAFETY`.
//!
//! # CLI
//!
//! ```text
//! pombm-lint [--root DIR] [--json] [--baseline FILE] [--update-baseline] [--list-rules]
//! ```

pub mod engine;
pub mod lexer;
pub mod rules;

pub use engine::{crate_key, Report, SourceFile, Workspace};
pub use lexer::{lex, Lexed, Span, Tok, TokKind};
pub use rules::{Diagnostic, ALL_RULES};
