//! Workspace orchestration: file discovery, the rule pipeline, the
//! unsafe census with its ratcheted baseline, and report rendering
//! (human and `--json`) with deterministic, path/line-sorted output.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use serde_json::Value;

use crate::rules::{
    check_allow_attrs, check_det_rules, check_tf_reach, check_unsafe_safety, collect_tf_defs,
    unsafe_sites, Diagnostic, FileCtx, UNSAFE_BASELINE,
};

/// One input file: repo-relative path (forward slashes) plus contents.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Repo-relative path, e.g. `crates/matching/src/offline.rs`.
    pub path: String,
    /// Full source text.
    pub src: String,
}

/// The set of files to audit.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    /// Files in sorted path order.
    pub files: Vec<SourceFile>,
}

/// The outcome of one lint run.
#[derive(Debug, Clone)]
pub struct Report {
    /// All findings, sorted by `(path, line, col, rule)`.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-crate `unsafe` keyword counts (key: `crates/<name>` or
    /// `shims/<name>`), only crates with a nonzero count.
    pub unsafe_census: BTreeMap<String, usize>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of waiver pragmas parsed across the workspace.
    pub waivers: usize,
}

impl Workspace {
    /// Walks `<root>/crates` and `<root>/shims` for `.rs` files, skipping
    /// any directory named `target`. Paths are stored relative to `root`.
    pub fn load(root: &Path) -> Result<Workspace, String> {
        let mut files = Vec::new();
        let mut found_any_dir = false;
        for top in ["crates", "shims"] {
            let dir = root.join(top);
            if !dir.is_dir() {
                continue;
            }
            found_any_dir = true;
            let mut paths = Vec::new();
            collect_rs_files(&dir, &mut paths)?;
            for p in paths {
                let rel = p
                    .strip_prefix(root)
                    .unwrap_or(&p)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                let src = std::fs::read_to_string(&p)
                    .map_err(|e| format!("cannot read {}: {e}", p.display()))?;
                files.push(SourceFile { path: rel, src });
            }
        }
        if !found_any_dir {
            return Err(format!(
                "no `crates/` or `shims/` directory under {}",
                root.display()
            ));
        }
        files.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(Workspace { files })
    }

    /// Builds a workspace from in-memory `(path, source)` pairs — the
    /// test entry point.
    pub fn from_files(files: Vec<(&str, &str)>) -> Workspace {
        let mut files: Vec<SourceFile> = files
            .into_iter()
            .map(|(p, s)| SourceFile {
                path: p.to_string(),
                src: s.to_string(),
            })
            .collect();
        files.sort_by(|a, b| a.path.cmp(&b.path));
        Workspace { files }
    }

    /// Runs every rule over every file and assembles the report.
    pub fn lint(&self) -> Report {
        let mut diags: Vec<Diagnostic> = Vec::new();
        let ctxs: Vec<FileCtx> = self
            .files
            .iter()
            .map(|f| FileCtx::build(f.path.clone(), f.src.clone(), &mut diags))
            .collect();

        let mut census: BTreeMap<String, usize> = BTreeMap::new();
        let mut all_defs = Vec::new();
        for (idx, ctx) in ctxs.iter().enumerate() {
            check_unsafe_safety(ctx, &mut diags);
            check_det_rules(ctx, &mut diags);
            check_allow_attrs(ctx, &mut diags);
            all_defs.extend(collect_tf_defs(ctx, idx, &mut diags));
            let n = unsafe_sites(ctx).len();
            if n > 0 {
                *census.entry(crate_key(&ctx.path)).or_insert(0) += n;
            }
        }
        for idx in 0..ctxs.len() {
            check_tf_reach(&ctxs, &all_defs, idx, &mut diags);
        }

        diags.sort_by(|a, b| {
            (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
        });
        diags.dedup();
        Report {
            diagnostics: diags,
            unsafe_census: census,
            files_scanned: ctxs.len(),
            waivers: ctxs.iter().map(|c| c.waivers.len()).sum(),
        }
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The census key for a file: its first two path components
/// (`crates/matching`), or the first for files directly under the root.
pub fn crate_key(path: &str) -> String {
    let mut parts = path.split('/');
    match (parts.next(), parts.next()) {
        (Some(a), Some(b)) if b.contains('.') => a.to_string(),
        (Some(a), Some(b)) => format!("{a}/{b}"),
        (Some(a), None) => a.to_string(),
        _ => path.to_string(),
    }
}

impl Report {
    /// True when no rule fired.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Diffs the census against a baseline file's contents, appending an
    /// [`UNSAFE_BASELINE`] diagnostic per drifted crate. The ratchet is
    /// two-sided: growth means new unaudited `unsafe`; shrinkage means the
    /// baseline overstates the audit surface and must be ratcheted down.
    pub fn check_baseline(
        &mut self,
        baseline_json: &str,
        baseline_path: &str,
    ) -> Result<(), String> {
        let value: Value = serde_json::from_str(baseline_json)
            .map_err(|e| format!("cannot parse baseline {baseline_path}: {e:?}"))?;
        let Value::Object(top) = &value else {
            return Err(format!("baseline {baseline_path}: expected a JSON object"));
        };
        let counts = top
            .iter()
            .find(|(k, _)| k == "unsafe")
            .map(|(_, v)| v)
            .ok_or_else(|| format!("baseline {baseline_path}: missing `unsafe` object"))?;
        let Value::Object(pairs) = counts else {
            return Err(format!(
                "baseline {baseline_path}: `unsafe` must be an object"
            ));
        };
        let mut baseline: BTreeMap<String, usize> = BTreeMap::new();
        for (k, v) in pairs {
            let n = match v {
                Value::UInt(n) => *n as usize,
                Value::Int(n) if *n >= 0 => *n as usize,
                _ => return Err(format!("baseline {baseline_path}: `{k}` must be a count")),
            };
            baseline.insert(k.clone(), n);
        }
        let mut drifted: Vec<Diagnostic> = Vec::new();
        for (key, &have) in &self.unsafe_census {
            let want = baseline.get(key).copied().unwrap_or(0);
            if have > want {
                drifted.push(Diagnostic {
                    rule: UNSAFE_BASELINE,
                    path: key.clone(),
                    line: 0,
                    col: 0,
                    message: format!(
                        "unsafe count grew {want} -> {have}: audit the new sites \
                         (SAFETY comments), then regenerate {baseline_path} with \
                         --update-baseline"
                    ),
                });
            } else if have < want {
                drifted.push(Diagnostic {
                    rule: UNSAFE_BASELINE,
                    path: key.clone(),
                    line: 0,
                    col: 0,
                    message: format!(
                        "unsafe count shrank {want} -> {have}: ratchet the baseline \
                         down with --update-baseline"
                    ),
                });
            }
        }
        for (key, &want) in &baseline {
            if want > 0 && !self.unsafe_census.contains_key(key) {
                drifted.push(Diagnostic {
                    rule: UNSAFE_BASELINE,
                    path: key.clone(),
                    line: 0,
                    col: 0,
                    message: format!(
                        "unsafe count shrank {want} -> 0: ratchet the baseline down \
                         with --update-baseline"
                    ),
                });
            }
        }
        self.diagnostics.extend(drifted);
        self.diagnostics.sort_by(|a, b| {
            (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
        });
        Ok(())
    }

    /// Serializes the census in the baseline file format.
    pub fn baseline_json(&self) -> String {
        let pairs: Vec<(String, Value)> = self
            .unsafe_census
            .iter()
            .map(|(k, &v)| (k.clone(), Value::UInt(v as u64)))
            .collect();
        let top = Value::Object(vec![
            ("version".to_string(), Value::UInt(1)),
            ("unsafe".to_string(), Value::Object(pairs)),
        ]);
        let mut s = serde_json::to_string_pretty(&top).expect("baseline JSON is finite");
        s.push('\n');
        s
    }

    /// The full machine-readable report (stable field order, sorted
    /// diagnostics — byte-identical across runs).
    pub fn to_json(&self) -> String {
        let diags: Vec<Value> = self
            .diagnostics
            .iter()
            .map(|d| {
                Value::Object(vec![
                    ("rule".to_string(), Value::Str(d.rule.to_string())),
                    ("path".to_string(), Value::Str(d.path.clone())),
                    ("line".to_string(), Value::UInt(d.line as u64)),
                    ("col".to_string(), Value::UInt(d.col as u64)),
                    ("message".to_string(), Value::Str(d.message.clone())),
                ])
            })
            .collect();
        let census: Vec<(String, Value)> = self
            .unsafe_census
            .iter()
            .map(|(k, &v)| (k.clone(), Value::UInt(v as u64)))
            .collect();
        let top = Value::Object(vec![
            ("version".to_string(), Value::UInt(1)),
            (
                "files_scanned".to_string(),
                Value::UInt(self.files_scanned as u64),
            ),
            ("waivers".to_string(), Value::UInt(self.waivers as u64)),
            ("diagnostics".to_string(), Value::Array(diags)),
            ("unsafe_census".to_string(), Value::Object(census)),
        ]);
        serde_json::to_string(&top).expect("report JSON is finite")
    }

    /// Human-readable rendering: one `path:line:col: RULE: message` line
    /// per finding plus a summary trailer.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{}:{}:{}: {}: {}\n",
                d.path, d.line, d.col, d.rule, d.message
            ));
        }
        let total_unsafe: usize = self.unsafe_census.values().sum();
        if self.diagnostics.is_empty() {
            out.push_str(&format!(
                "pombm-lint: clean ({} files, {} waivers, {} unsafe sites)\n",
                self.files_scanned, self.waivers, total_unsafe
            ));
        } else {
            out.push_str(&format!(
                "pombm-lint: {} diagnostic(s) in {} file(s) scanned\n",
                self.diagnostics.len(),
                self.files_scanned
            ));
        }
        out
    }
}
