//! Per-rule fixtures, waiver behavior, the baseline ratchet, a pinned
//! JSON report, and the self-test that the workspace at HEAD lints clean.

use pombm_lint::{crate_key, Workspace};

/// Lints a single non-test-path fixture file.
fn lint_one(src: &str) -> pombm_lint::Report {
    Workspace::from_files(vec![("crates/x/src/a.rs", src)]).lint()
}

/// `(rule, line)` pairs of all findings.
fn hits(report: &pombm_lint::Report) -> Vec<(&'static str, usize)> {
    report
        .diagnostics
        .iter()
        .map(|d| (d.rule, d.line))
        .collect()
}

// ---------------------------------------------------------------------------
// UNSAFE-SAFETY
// ---------------------------------------------------------------------------

#[test]
fn unsafe_without_safety_comment_fires() {
    let r = lint_one("fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n");
    assert_eq!(hits(&r), [("UNSAFE-SAFETY", 2)]);
}

#[test]
fn safety_comment_above_or_same_line_passes() {
    let above =
        "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller checked.\n    unsafe { *p }\n}\n";
    assert!(lint_one(above).is_clean());
    let same = "fn f(p: *const u8) -> u8 {\n    /* SAFETY: checked */ unsafe { *p }\n}\n";
    assert!(lint_one(same).is_clean());
}

#[test]
fn safety_comment_walks_through_attributes() {
    let src = "// SAFETY: contract documented.\n#[inline]\nunsafe fn f() {}\n";
    assert!(lint_one(src).is_clean());
}

#[test]
fn blank_line_breaks_the_safety_run() {
    let src = "// SAFETY: too far away.\n\nunsafe fn f() {}\n";
    assert_eq!(hits(&lint_one(src)), [("UNSAFE-SAFETY", 3)]);
}

#[test]
fn unsafe_inside_strings_and_comments_is_ignored() {
    let src = "// unsafe in a comment\nfn f() -> &'static str {\n    \"unsafe { }\"\n}\n";
    assert!(lint_one(src).is_clean());
}

#[test]
fn unsafe_applies_to_test_code_too() {
    let src = "#[cfg(test)]\nmod tests {\n    fn f(p: *const u8) -> u8 {\n        unsafe { *p }\n    }\n}\n";
    assert_eq!(hits(&lint_one(src)), [("UNSAFE-SAFETY", 4)]);
}

// ---------------------------------------------------------------------------
// TF-DISPATCH
// ---------------------------------------------------------------------------

const TF_DEF: &str = "#[target_feature(enable = \"avx2\")]\n// SAFETY: caller must detect avx2.\nunsafe fn kernel(x: &[f64]) -> f64 {\n    x[0]\n}\n";

#[test]
fn tf_fn_must_be_unsafe() {
    let src = "#[target_feature(enable = \"avx2\")]\nfn kernel() {}\n";
    let r = lint_one(src);
    assert!(hits(&r).iter().any(|&(rule, _)| rule == "TF-DISPATCH"));
}

#[test]
fn tf_call_without_guard_fires() {
    let src = format!(
        "{TF_DEF}fn caller(x: &[f64]) -> f64 {{\n    // SAFETY: wrong — nothing was detected.\n    unsafe {{ kernel(x) }}\n}}\n"
    );
    let r = lint_one(&src);
    assert!(hits(&r).iter().any(|&(rule, _)| rule == "TF-DISPATCH"));
}

#[test]
fn tf_call_under_feature_detection_passes() {
    let src = format!(
        "{TF_DEF}fn caller(x: &[f64]) -> f64 {{\n    if std::arch::is_x86_feature_detected!(\"avx2\") {{\n        // SAFETY: avx2 just detected.\n        return unsafe {{ kernel(x) }};\n    }}\n    x[0]\n}}\n"
    );
    assert!(lint_one(&src).is_clean());
}

#[test]
fn tf_call_inside_same_feature_fn_passes() {
    let src = format!(
        "{TF_DEF}#[target_feature(enable = \"avx2\")]\n// SAFETY: same contract as `kernel`.\nunsafe fn outer(x: &[f64]) -> f64 {{\n    // SAFETY: our own contract covers `kernel`'s.\n    unsafe {{ kernel(x) }}\n}}\n"
    );
    assert!(lint_one(&src).is_clean());
}

// ---------------------------------------------------------------------------
// DET-HASH / DET-TIME / DET-RNG
// ---------------------------------------------------------------------------

#[test]
fn det_hash_fires_in_product_code() {
    let src =
        "fn f() {\n    let m = std::collections::HashMap::<u32, u32>::new();\n    drop(m);\n}\n";
    assert_eq!(hits(&lint_one(src)), [("DET-HASH", 2)]);
}

#[test]
fn det_hash_exempts_use_lines_tests_and_test_paths() {
    let use_line = "use std::collections::HashMap;\n";
    assert!(lint_one(use_line).is_clean());
    let in_tests =
        "#[cfg(test)]\nmod tests {\n    fn f() {\n        let _ = std::collections::HashMap::<u32, u32>::new();\n    }\n}\n";
    assert!(lint_one(in_tests).is_clean());
    let test_path = Workspace::from_files(vec![(
        "crates/x/tests/t.rs",
        "fn f() {\n    let _ = std::collections::HashMap::<u32, u32>::new();\n}\n",
    )])
    .lint();
    assert!(test_path.is_clean());
}

#[test]
fn det_time_fires_and_test_code_is_exempt() {
    let src = "fn f() {\n    let _ = std::time::Instant::now();\n}\n";
    assert_eq!(hits(&lint_one(src)), [("DET-TIME", 2)]);
    let in_tests =
        "#[cfg(test)]\nmod tests {\n    fn f() {\n        let _ = std::time::Instant::now();\n    }\n}\n";
    assert!(lint_one(in_tests).is_clean());
}

#[test]
fn det_rng_fires_even_in_test_code() {
    let src =
        "#[cfg(test)]\nmod tests {\n    fn f() {\n        let _ = rand::thread_rng();\n    }\n}\n";
    assert_eq!(hits(&lint_one(src)), [("DET-RNG", 4)]);
}

// ---------------------------------------------------------------------------
// Waivers
// ---------------------------------------------------------------------------

#[test]
fn waiver_suppresses_next_code_line() {
    let src = "fn f() {\n    // lint: allow(DET-TIME) — measured, not serialized.\n    let _ = std::time::Instant::now();\n}\n";
    let r = lint_one(src);
    assert!(r.is_clean());
    assert_eq!(r.waivers, 1);
}

#[test]
fn multi_line_waiver_comment_covers_the_code_after_the_run() {
    let src = "fn f() {\n    // lint: allow(DET-TIME) — a justification long enough\n    // to continue on a second comment line.\n    let _ = std::time::Instant::now();\n}\n";
    assert!(lint_one(src).is_clean());
}

#[test]
fn waiver_does_not_reach_past_a_blank_line() {
    let src = "fn f() {\n    // lint: allow(DET-TIME) — stale waiver.\n\n    let _ = std::time::Instant::now();\n}\n";
    assert_eq!(hits(&lint_one(src)), [("DET-TIME", 4)]);
}

#[test]
fn file_waiver_covers_everything() {
    let src = "// lint: allow-file(DET-TIME) — timing is this file's purpose.\nfn f() {\n    let _ = std::time::Instant::now();\n    let _ = std::time::Instant::now();\n}\n";
    assert!(lint_one(src).is_clean());
}

#[test]
fn waiver_without_reason_or_with_unknown_rule_fires() {
    let no_reason = "// lint: allow(DET-TIME)\nfn f() {}\n";
    assert_eq!(hits(&lint_one(no_reason)), [("WAIVER-REASON", 1)]);
    let unknown = "// lint: allow(NO-SUCH-RULE) — whatever.\nfn f() {}\n";
    assert_eq!(hits(&lint_one(unknown)), [("WAIVER-REASON", 1)]);
}

#[test]
fn waiver_reason_is_not_itself_waivable() {
    let src = "// lint: allow(WAIVER-REASON) — try to silence the cop.\n// lint: allow(DET-TIME)\nfn f() {}\n";
    let r = lint_one(src);
    assert!(hits(&r).contains(&("WAIVER-REASON", 2)));
}

#[test]
fn doc_comments_never_parse_as_waivers() {
    // The rule-catalogue docs quote the pragma syntax; doc comments must
    // not register waivers (or malformed-pragma findings).
    let src = "/// Example: `// lint: allow(DET-TIME)` — syntax docs.\nfn f() {\n    let _ = std::time::Instant::now();\n}\n";
    let r = lint_one(src);
    assert_eq!(r.waivers, 0);
    assert_eq!(hits(&r), [("DET-TIME", 3)]);
}

#[test]
fn allow_attr_needs_a_reason_or_comment() {
    let bare = "#[allow(dead_code)]\nfn f() {}\n";
    assert_eq!(hits(&lint_one(bare)), [("WAIVER-REASON", 1)]);
    let with_comment = "// Kept for the ffi example below.\n#[allow(dead_code)]\nfn f() {}\n";
    assert!(lint_one(with_comment).is_clean());
    let with_reason = "#[allow(dead_code, reason = \"ffi example\")]\nfn f() {}\n";
    assert!(lint_one(with_reason).is_clean());
}

// ---------------------------------------------------------------------------
// Census + baseline ratchet
// ---------------------------------------------------------------------------

fn census_fixture() -> pombm_lint::Report {
    Workspace::from_files(vec![
        (
            "crates/a/src/lib.rs",
            "// SAFETY: contract.\nunsafe fn f() {}\n// SAFETY: contract.\nunsafe fn g() {}\n",
        ),
        (
            "crates/b/src/lib.rs",
            "// SAFETY: contract.\nunsafe fn h() {}\n",
        ),
        ("shims/c/src/lib.rs", "fn safe() {}\n"),
    ])
    .lint()
}

#[test]
fn census_counts_per_crate() {
    let r = census_fixture();
    assert!(r.is_clean());
    assert_eq!(
        r.unsafe_census
            .iter()
            .map(|(k, &v)| (k.as_str(), v))
            .collect::<Vec<_>>(),
        [("crates/a", 2), ("crates/b", 1)]
    );
    assert_eq!(crate_key("crates/a/src/lib.rs"), "crates/a");
    assert_eq!(crate_key("README.md"), "README.md");
}

#[test]
fn baseline_matches_round_trip() {
    let mut r = census_fixture();
    let json = r.baseline_json();
    r.check_baseline(&json, "b.json").unwrap();
    assert!(r.is_clean());
}

#[test]
fn baseline_growth_and_shrink_both_fire() {
    let grown = "{\"version\": 1, \"unsafe\": {\"crates/a\": 1, \"crates/b\": 1}}";
    let mut r = census_fixture();
    r.check_baseline(grown, "b.json").unwrap();
    assert_eq!(hits(&r), [("UNSAFE-BASELINE", 0)]);
    assert!(r.diagnostics[0].message.contains("grew 1 -> 2"));

    let shrunk =
        "{\"version\": 1, \"unsafe\": {\"crates/a\": 2, \"crates/b\": 1, \"crates/gone\": 3}}";
    let mut r = census_fixture();
    r.check_baseline(shrunk, "b.json").unwrap();
    assert_eq!(hits(&r), [("UNSAFE-BASELINE", 0)]);
    assert!(r.diagnostics[0].message.contains("shrank 3 -> 0"));
}

#[test]
fn malformed_baseline_is_an_error_not_a_finding() {
    let mut r = census_fixture();
    assert!(r.check_baseline("not json", "b.json").is_err());
    assert!(r.check_baseline("{\"version\": 1}", "b.json").is_err());
}

// ---------------------------------------------------------------------------
// Report output
// ---------------------------------------------------------------------------

#[test]
fn json_report_is_pinned() {
    let r = Workspace::from_files(vec![(
        "crates/x/src/a.rs",
        "fn f() {\n    let _ = std::time::Instant::now();\n}\n",
    )])
    .lint();
    let expected = concat!(
        "{\"version\":1,\"files_scanned\":1,\"waivers\":0,\"diagnostics\":[",
        "{\"rule\":\"DET-TIME\",\"path\":\"crates/x/src/a.rs\",\"line\":2,\"col\":24,",
        "\"message\":\"`Instant::now` reads the wall clock: only the timings-gated ",
        "`wall_ms` path may, and that path is stripped from golden output \u{2014} ",
        "waive with a reason if this is it\"}",
        "],\"unsafe_census\":{}}"
    );
    assert_eq!(r.to_json(), expected);
}

#[test]
fn human_report_lines_are_sorted_and_stable() {
    let r = Workspace::from_files(vec![
        (
            "crates/x/src/b.rs",
            "fn f() {\n    let _ = std::time::Instant::now();\n}\n",
        ),
        (
            "crates/x/src/a.rs",
            "fn f() {\n    let m = std::collections::HashMap::<u32, u32>::new();\n    drop(m);\n}\n",
        ),
    ])
    .lint();
    let human = r.render_human();
    let lines: Vec<&str> = human.lines().collect();
    assert!(lines[0].starts_with("crates/x/src/a.rs:2:31: DET-HASH:"));
    assert!(lines[1].starts_with("crates/x/src/b.rs:2:24: DET-TIME:"));
    assert!(lines[2].starts_with("pombm-lint: 2 diagnostic(s)"));
}

// ---------------------------------------------------------------------------
// Self-test: the workspace at HEAD is clean
// ---------------------------------------------------------------------------

#[test]
fn workspace_at_head_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = Workspace::load(&root).expect("workspace root");
    let report = report.lint();
    let findings = report
        .diagnostics
        .iter()
        .map(|d| format!("{}:{}:{}: {}: {}", d.path, d.line, d.col, d.rule, d.message))
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        report.is_clean(),
        "the workspace must lint clean at HEAD:\n{findings}"
    );
}
