//! Lexer fixtures for the tricky token shapes the rules depend on, plus
//! a property test that the token tiling and line/col spans round-trip.

use pombm_lint::{lex, TokKind};

/// The kinds of the non-`Code` tokens, in source order.
fn special_kinds(src: &str) -> Vec<TokKind> {
    lex(src)
        .toks
        .iter()
        .filter(|t| t.kind != TokKind::Code)
        .map(|t| t.kind)
        .collect()
}

/// The source text of each token of `kind`.
fn texts(src: &str, kind: TokKind) -> Vec<&str> {
    lex(src)
        .toks
        .iter()
        .filter(|t| t.kind == kind)
        .map(|t| &src[t.span.start..t.span.end])
        .collect()
}

#[test]
fn raw_strings_swallow_quotes_and_hashes() {
    let src = r####"let a = r"no \escapes"; let b = r#"has "quotes" inside"#;"####;
    assert_eq!(
        texts(src, TokKind::RawStr),
        [r#"r"no \escapes""#, r###"r#"has "quotes" inside"#"###]
    );
}

#[test]
fn raw_identifiers_are_not_raw_strings() {
    // `r#fn` is a raw identifier: plain code, not the start of a string.
    let src = "fn r#fn() {} let s = r#\"real\"#;";
    assert_eq!(special_kinds(src), [TokKind::RawStr]);
    assert_eq!(texts(src, TokKind::RawStr), ["r#\"real\"#"]);
}

#[test]
fn nested_block_comments_close_at_depth_zero() {
    let src = "a /* outer /* inner */ still comment */ b";
    let lexed = lex(src);
    assert_eq!(special_kinds(src), [TokKind::BlockComment]);
    // Everything between `a` and `b` is one comment; the masked view
    // blanks it while keeping length.
    assert_eq!(lexed.masked.len(), src.len());
    assert!(lexed.masked.starts_with("a "));
    assert!(lexed.masked.ends_with(" b"));
    assert!(!lexed.masked.contains("inner"));
}

#[test]
fn keywords_inside_strings_are_masked() {
    let src = r#"let s = "unsafe { HashMap }"; // unsafe too"#;
    let lexed = lex(src);
    // Neither the string body nor the comment survives in `masked`.
    assert!(!lexed.masked.contains("unsafe"));
    assert!(!lexed.masked.contains("HashMap"));
    // The strings-kept view drops the comment but keeps the literal, so
    // feature-name checks can read string contents.
    assert!(lexed.code.contains("\"unsafe { HashMap }\""));
    assert!(!lexed.code.contains("unsafe too"));
}

#[test]
fn char_literals_and_lifetimes_disambiguate() {
    let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let q = '\"'; }";
    // Only the three char literals tokenize as Char; the lifetimes stay code.
    assert_eq!(texts(src, TokKind::Char), ["'x'", "'\\n'", "'\"'"]);
    let lexed = lex(src);
    assert!(lexed.masked.contains("<'a>"));
    assert!(lexed.masked.contains("&'a str"));
}

#[test]
fn multibyte_char_literal_keeps_byte_alignment() {
    let src = "let c = 'é'; let d = '√'; let s = \"süß\";";
    let lexed = lex(src);
    assert_eq!(lexed.masked.len(), src.len());
    assert_eq!(
        texts(src, TokKind::Char),
        ["'é'", "'√'"],
        "multibyte chars lex as single char literals"
    );
}

#[test]
fn byte_strings_and_prefixed_literals() {
    let src = r#"let a = b"bytes"; let b = br"raw bytes"; let c = b'x';"#;
    assert_eq!(
        special_kinds(src),
        [TokKind::Str, TokKind::RawStr, TokKind::Char]
    );
}

#[test]
fn line_comments_stop_at_newline_and_doc_comments_lex_as_comments() {
    let src = "/// doc\n//! inner\n// plain\ncode();";
    let lexed = lex(src);
    assert_eq!(
        special_kinds(src),
        [
            TokKind::LineComment,
            TokKind::LineComment,
            TokKind::LineComment
        ]
    );
    assert!(lexed.masked.contains("code();"));
}

#[test]
fn string_escapes_do_not_end_the_literal() {
    let src = r#"let s = "a \" b \\"; done();"#;
    let lexed = lex(src);
    assert_eq!(special_kinds(src), [TokKind::Str]);
    assert!(lexed.masked.contains("done();"));
}

#[test]
fn ident_prefix_is_not_a_literal_prefix() {
    // `bar"x"`: the `r` belongs to the identifier `bar`, so the literal is
    // a plain string, not a raw string.
    let src = "macro_rules1!(bar\"x\");";
    assert_eq!(special_kinds(src), [TokKind::Str]);
}

/// Self-contained source fragments the property test stitches together.
/// Each is valid at top level of a token stream regardless of neighbors
/// (every fragment ends outside any literal or comment).
const FRAGMENTS: &[&str] = &[
    "fn f() { g(1, 2); }\n",
    "// line comment with 'quotes' and \"strings\"\n",
    "/* block /* nested */ comment */\n",
    "let s = \"str with \\\" escape\";\n",
    "let r = r#\"raw \"inner\" string\"#;\n",
    "let c = 'x'; let lt: &'static str = \"y\";\n",
    "let b = b\"bytes\"; let bc = b'0';\n",
    "/// doc comment\nstruct T;\n",
    "let u = \"unsafe HashMap Instant::now\";\n",
    "let e = 'é'; // multibyte\n",
    "\n",
    "mod m { }\n",
];

proptest::proptest! {
    #[test]
    fn lexed_views_tile_and_round_trip(
        picks in proptest::collection::vec(0usize..12, 1..20)
    ) {
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        let lexed = lex(&src);

        // The token tiling covers [0, len) contiguously, in order.
        let mut cursor = 0usize;
        for tok in &lexed.toks {
            proptest::prop_assert_eq!(tok.span.start, cursor);
            proptest::prop_assert!(tok.span.end > tok.span.start);
            cursor = tok.span.end;
        }
        proptest::prop_assert_eq!(cursor, src.len());

        // Both masked views preserve byte length exactly.
        proptest::prop_assert_eq!(lexed.masked.len(), src.len());
        proptest::prop_assert_eq!(lexed.code.len(), src.len());

        for tok in &lexed.toks {
            let orig = &src[tok.span.start..tok.span.end];
            let masked = &lexed.masked[tok.span.start..tok.span.end];
            match tok.kind {
                // Code passes through both views byte-for-byte.
                TokKind::Code => {
                    proptest::prop_assert_eq!(orig, masked);
                    proptest::prop_assert_eq!(
                        orig,
                        &lexed.code[tok.span.start..tok.span.end]
                    );
                }
                // Everything else is blanked to spaces except newlines.
                _ => {
                    for (o, m) in orig.chars().zip(masked.chars()) {
                        if o == '\n' {
                            proptest::prop_assert_eq!(m, '\n');
                        } else {
                            proptest::prop_assert_eq!(m, ' ');
                        }
                    }
                }
            }
        }

        // line/col round-trips to the byte offset for every token start.
        for tok in &lexed.toks {
            let (line, col) = lexed.line_col(tok.span.start);
            proptest::prop_assert_eq!(
                lexed.line_starts[line - 1] + col - 1,
                tok.span.start
            );
            proptest::prop_assert_eq!(lexed.line_of(tok.span.start), line);
            let span = lexed.line_span(line, src.len());
            proptest::prop_assert!(span.start <= tok.span.start);
            proptest::prop_assert!(tok.span.start <= span.end);
        }
    }
}
