#![warn(missing_docs)]

//! # pombm-cli — command-line interface to the POMBM library
//!
//! A user-facing binary covering the full lifecycle of the paper's
//! workflow:
//!
//! ```text
//! pombm gen --tasks 3000 --workers 5000 --out instance.json
//! pombm publish --grid-side 32 --out tree.hst
//! pombm obfuscate --x 50 --y 120 --epsilon 0.6
//! pombm run --input instance.json --algo tbf --epsilon 0.6
//! pombm epochs --workers 1000 --lifetime 3.0
//! ```
//!
//! All command logic lives in [`commands`] as pure functions so it is
//! unit-tested in-process; `main.rs` is a thin shell.

pub mod args;
pub mod commands;

pub use args::Args;
pub use commands::{dispatch, USAGE};
